"""Benchmark: process-pool sweep backend vs the serial backend.

Acceptance pin for the execution-backend layer: a two-chip grid of six
Fig. 6 campaign cells (built with :class:`SpecGrid`, chips x seeds) run
through ``ExperimentRunner.run_many(backend="process")`` with two workers
must beat the same grid on the serial backend by at least 1.5x wall
clock, with bit-identical reports, scalars and arrays -- the pool buys
time, not different numbers.

Both runs start from the same warm state (one serial warm-up pass builds
every chip, M0 window and template; fork-started workers inherit them),
so the comparison measures the per-cell Monte-Carlo compute the pool
actually parallelises, not one-off template builds.
"""

import os
import time

import numpy as np
from record import record_benchmark

from repro.pipeline import ExperimentRunner, RunOptions, SpecGrid
from repro.pipeline.backends import available_cpus

NUM_CYCLES = 150_000
REPETITIONS = 100
WORKERS = 2
MIN_SPEEDUP = 1.5

#: A wall-clock speedup needs at least two schedulable CPUs; on a
#: single-CPU box the assert degrades to report-only, exactly like
#: REPRO_BENCH_RELAXED (equivalence is still checked in full).
RELAXED = os.environ.get("REPRO_BENCH_RELAXED") == "1" or available_cpus() < 2


def _grid_specs():
    """Six campaign cells: {chip1, chip2} x three seeds, 100 reps each."""
    options = RunOptions(quick=True, cycles=NUM_CYCLES, repetitions=REPETITIONS)
    return SpecGrid("fig6/chip1", options).build(
        chips=["chip1", "chip2"], seeds=[1_000, 2_000, 3_000]
    )


def test_bench_process_backend_beats_serial(report):
    specs = _grid_specs()
    assert len(specs) == 6
    assert {spec.chip for spec in specs} == {"chip1", "chip2"}
    assert len({spec.name for spec in specs}) == 6

    # Warm-up: builds both chips (M0 windows, background + watermark
    # templates) once, so both timed runs -- and the workers forked from
    # this process -- start from the same warm state.
    runner = ExperimentRunner()
    runner.run_many(specs, backend="serial")

    start = time.perf_counter()
    serial = runner.run_many(specs, backend="serial")
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = runner.run_many(specs, backend="process", max_workers=WORKERS)
    parallel_s = time.perf_counter() - start

    # Identical numbers cell by cell: the backend is an execution detail.
    assert parallel.names == serial.names
    for serial_cell, parallel_cell in zip(serial, parallel):
        assert parallel_cell.report == serial_cell.report, serial_cell.name
        assert parallel_cell.scalars == serial_cell.scalars, serial_cell.name
        assert set(parallel_cell.arrays) == set(serial_cell.arrays)
        for key in serial_cell.arrays:
            assert np.array_equal(
                parallel_cell.arrays[key], serial_cell.arrays[key]
            ), f"{serial_cell.name}/{key}"

    # elapsed_s is the caller's wall clock, not the sum of cell timings:
    # with overlapping workers the per-cell sum exceeds the observed
    # duration once the pool actually parallelises.
    worker_sum_s = sum(cell.provenance.elapsed_s for cell in parallel)

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    lines = [
        f"grid: {len(specs)} Fig. 6 cells (2 chips x 3 seeds), "
        f"{NUM_CYCLES} cycles x {REPETITIONS} repetitions",
        f"serial backend:                {serial_s:.2f} s",
        f"process backend ({WORKERS} workers):   {parallel_s:.2f} s "
        f"(cells sum to {worker_sum_s:.2f} s across workers)",
        f"speedup: {speedup:.2f}x (floor {MIN_SPEEDUP}x, relaxed={RELAXED}, "
        f"cpus={available_cpus()})",
    ]
    report("Parallel sweep: process pool vs serial backend", "\n".join(lines))
    record_benchmark(
        "parallel_sweep",
        {
            "num_cycles": NUM_CYCLES,
            "cells": len(specs),
            "workers": WORKERS,
            "repetitions": REPETITIONS,
            "serial_s": round(serial_s, 4),
            "process_s": round(parallel_s, 4),
            "speedup": round(speedup, 2),
            "reports_identical": True,
            "relaxed": RELAXED,
            "cpus": available_cpus(),
        },
    )

    if not RELAXED:
        assert speedup >= MIN_SPEEDUP, (
            f"process backend ({parallel_s:.2f} s) should beat the serial "
            f"backend ({serial_s:.2f} s) by at least {MIN_SPEEDUP}x, "
            f"got {speedup:.2f}x"
        )
    else:
        # Report-only mode still bounds the damage: even when workers
        # time-slice a single loaded CPU, pool + wire overhead must not
        # blow the sweep up by more than a small factor.
        assert parallel_s <= serial_s * 3.0, "process backend far slower than serial"
