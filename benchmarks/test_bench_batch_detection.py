"""Benchmark: batched CPA campaign vs the per-trial detection loop.

The batched engine folds the whole trial matrix by phase and evaluates all
rotation correlations with one stack of rFFTs; before it landed, every
Monte-Carlo trial paid a full Python round trip through per-trace folding
(`np.arange` + modulo + `np.bincount` per trial).  This benchmark pins the
speedup at the campaign scale named in the engine's acceptance criteria --
period 255, 100,000 cycles, 50 trials -- and checks that the batched path
reaches the *same detection decisions bit for bit* as looping the live
single-trace detector over the rows.
"""

import os
import time

import numpy as np
import pytest

from record import record_benchmark

from repro.core.lfsr import LFSR
from repro.detection.batch import BatchCPADetector
from repro.detection.cpa import CPADetector

PERIOD_WIDTH = 8  # 2**8 - 1 = 255 rotations
NUM_CYCLES = 100_000
NUM_TRIALS = 50
MIN_SPEEDUP = 5.0
# Shared CI runners can be throttled enough to make any wall-clock ratio
# flaky; REPRO_BENCH_RELAXED=1 keeps the benchmark report-only there while
# local / dedicated runs still enforce the floor.
RELAXED = os.environ.get("REPRO_BENCH_RELAXED") == "1"


def _per_trial_reference(sequence: np.ndarray, trace_matrix: np.ndarray, detector: CPADetector):
    """The detection loop as it ran before the batched engine.

    One fold (`np.arange` + modulo + `np.bincount`) and one correlation
    spectrum per trial -- the exact algorithm the single-trace detector used
    when campaigns looped over `CPADetector.detect`.
    """
    period = len(sequence)
    x = np.asarray(sequence, dtype=np.float64)
    fft_x = np.fft.rfft(x)
    results = []
    for measured in trace_matrix:
        n = len(measured)
        phases = np.arange(n) % period
        folded = np.bincount(phases, weights=measured, minlength=period)
        counts = np.bincount(phases, minlength=period).astype(np.float64)
        sum_y = float(measured.sum())
        sum_yy = float(measured @ measured)
        var_y = n * sum_yy - sum_y * sum_y
        s_xy = np.fft.irfft(np.conj(np.fft.rfft(folded)) * fft_x, n=period)
        s_x = np.fft.irfft(np.conj(np.fft.rfft(counts)) * fft_x, n=period)
        numerator = n * s_xy - s_x * sum_y
        var_x = n * s_x - s_x * s_x  # 0/1 sequence: S_xx == S_x
        denominator = np.sqrt(np.clip(var_x, 0.0, None)) * np.sqrt(max(var_y, 0.0))
        correlations = np.zeros(period, dtype=np.float64)
        valid = denominator > 0
        correlations[valid] = numerator[valid] / denominator[valid]
        results.append(detector.evaluate(correlations))
    return results


def _trial_matrix(sequence: np.ndarray, seed: int = 2024) -> np.ndarray:
    rng = np.random.default_rng(seed)
    period = len(sequence)
    offsets = rng.integers(0, period, size=NUM_TRIALS)
    phase_index = (offsets[:, None] + np.arange(NUM_CYCLES)[None, :]) % period
    return (
        5e-3
        + sequence[phase_index] * 1.5e-3
        + rng.normal(0.0, 20e-3, size=(NUM_TRIALS, NUM_CYCLES))
    )


def test_bench_batch_detection_speedup(benchmark, report):
    sequence = LFSR(width=PERIOD_WIDTH, seed=0x2D).sequence().astype(np.float64)
    trace_matrix = _trial_matrix(sequence)
    single = CPADetector()
    batched = BatchCPADetector()

    # Warm-up both paths (allocator, FFT plan caches).
    reference = _per_trial_reference(sequence, trace_matrix[:2], single)
    batched.detect_many(sequence, trace_matrix[:2])

    loop_times, batch_times = [], []
    for _ in range(3):
        start = time.perf_counter()
        reference = _per_trial_reference(sequence, trace_matrix, single)
        loop_times.append(time.perf_counter() - start)

        start = time.perf_counter()
        batch = batched.detect_many(sequence, trace_matrix)
        batch_times.append(time.perf_counter() - start)

    loop_s = min(loop_times)
    batch_s = min(batch_times)
    speedup = loop_s / batch_s

    # Identical decisions, three ways: batched vs the pre-engine reference
    # loop (same counts) and vs looping the live detector (bit-identical).
    reference_detected = np.array([r.detected for r in reference])
    live = [single.detect(sequence, row) for row in trace_matrix]
    assert batch.detection_count == int(np.count_nonzero(reference_detected))
    for index, result in enumerate(live):
        assert bool(batch.detected[index]) == result.detected
        assert int(batch.peak_rotations[index]) == result.peak_rotation
        assert np.array_equal(batch.correlations[index], result.correlations)

    record_benchmark(
        "batch_detection",
        {
            "trials": NUM_TRIALS,
            "num_cycles": NUM_CYCLES,
            "period": len(sequence),
            "per_trial_loop_s": loop_s,
            "batched_detect_many_s": batch_s,
            "speedup": speedup,
            "min_speedup_floor": MIN_SPEEDUP,
            "decisions_identical": True,
            "relaxed": RELAXED,
        },
    )
    report(
        f"Batched CPA detection ({NUM_TRIALS} trials x {NUM_CYCLES:,} cycles, period "
        f"{len(sequence)})",
        "\n".join(
            [
                f"per-trial loop (pre-engine algorithm): {loop_s * 1e3:8.1f} ms",
                f"batched detect_many:                   {batch_s * 1e3:8.1f} ms",
                f"speedup:                               {speedup:8.1f}x (floor {MIN_SPEEDUP}x)",
                f"detections (batched == loop):          {batch.detection_count}"
                f" == {int(np.count_nonzero(reference_detected))}",
            ]
        ),
    )
    if not RELAXED:
        assert speedup >= MIN_SPEEDUP, (
            f"batched campaign only {speedup:.1f}x faster than the per-trial loop "
            f"(expected >= {MIN_SPEEDUP}x)"
        )

    # Register the batched path with the benchmark harness.
    benchmark.pedantic(
        batched.detect_many, args=(sequence, trace_matrix), rounds=3, iterations=1
    )


def test_bench_batched_campaign_memory_chunking(report):
    """Chunked campaign (bounded memory) reaches identical detection counts."""
    from repro.detection.campaign import run_detection_probability_campaign

    sequence = LFSR(width=PERIOD_WIDTH, seed=0x2D).sequence()
    kwargs = dict(
        watermark_amplitude_w=1.5e-3,
        noise_sigma_w=20e-3,
        cycle_counts=(NUM_CYCLES,),
        trials_per_point=20,
        seed=7,
    )
    full = run_detection_probability_campaign(sequence, **kwargs)
    chunked = run_detection_probability_campaign(
        sequence, max_trials_per_chunk=4, chunk_cycles=16_384, **kwargs
    )
    assert [p.detections for p in full.points] == [p.detections for p in chunked.points]
    report(
        "Batched campaign chunk invariance",
        f"detections full={full.points[0].detections} "
        f"chunked={chunked.points[0].detections} (20 trials, {NUM_CYCLES:,} cycles)",
    )
