"""Benchmark: registry-driven sweep vs independent legacy drivers.

Acceptance pin for the scenario/pipeline API: running four scenarios on one
chip through ``ExperimentRunner.run_many`` (one runner, shared chip
instances, shared M0-window / background-template caches) must complete
faster than the same four scenarios run as independent legacy drivers,
where each driver starts cold (caches cleared, as separate processes
would).  The reports must be identical in both modes -- the sweep buys
time, not different numbers.
"""

import os
import time

from record import record_benchmark

from repro.core.config import MeasurementConfig
from repro.experiments import run_fig3
from repro.experiments.fig5 import run_fig5_panel
from repro.experiments.fig6 import run_fig6_chip
from repro.pipeline import DEFAULT_REGISTRY, ExperimentRunner, RunOptions
from repro.soc import chip as chip_module
from repro.soc import cpu as cpu_module

NUM_CYCLES = 60_000
REPETITIONS = 10
MIN_SPEEDUP = 1.2

RELAXED = os.environ.get("REPRO_BENCH_RELAXED") == "1"


def _clear_module_caches() -> None:
    cpu_module.clear_m0_window_cache()
    chip_module.clear_background_template_cache()


def _options() -> RunOptions:
    return RunOptions(quick=True, cycles=NUM_CYCLES, repetitions=REPETITIONS)


def _sweep_specs():
    options = _options()
    return [
        DEFAULT_REGISTRY.build("fig5/chip1-active", options),
        DEFAULT_REGISTRY.build("fig5/chip1-inactive", options),
        DEFAULT_REGISTRY.build("fig6/chip1", options),
        DEFAULT_REGISTRY.build("fig3", options),
    ]


def _run_legacy_drivers():
    """The same four scenarios as stand-alone drivers, each starting cold."""
    config = DEFAULT_REGISTRY.build("fig5", _options()).experiment_config
    reports = []
    _clear_module_caches()
    panel = run_fig5_panel("chip1", True, config=config, seed=100)
    reports.append(f"[{panel.label}] {panel.cpa.summary()}")
    _clear_module_caches()
    # Seed 150 is what the composite Fig. 5 driver hands its chip-I control
    # panel (active seed + 50), i.e. the same cell the sweep runs.
    panel = run_fig5_panel("chip1", False, config=config, seed=150)
    reports.append(f"[{panel.label}] {panel.cpa.summary()}")
    _clear_module_caches()
    chip_result = run_fig6_chip(
        "chip1", repetitions=REPETITIONS, config=config, base_seed=1_000
    )
    reports.append(f"detection rate = {chip_result.detection_rate * 100:.0f}%")
    _clear_module_caches()
    fig3 = run_fig3(config=config, seed=7)
    reports.append(fig3.to_text())
    return reports


def test_bench_pipeline_sweep_beats_independent_drivers(report):
    specs = _sweep_specs()
    assert len(specs) >= 4
    assert all(spec.chip in (None, "chip1") for spec in specs)

    start = time.perf_counter()
    legacy_reports = _run_legacy_drivers()
    legacy_s = time.perf_counter() - start

    _clear_module_caches()
    runner = ExperimentRunner()
    start = time.perf_counter()
    # serial pinned: this benchmark measures the shared-cache serial path.
    sweep = runner.run_many(specs, backend="serial")
    sweep_s = time.perf_counter() - start

    # Same numbers, just faster: the sweep's panel/campaign outcomes must
    # match what the independent drivers computed.
    assert sweep.results[0].report == legacy_reports[0]
    assert sweep.results[1].report == legacy_reports[1]
    detection_rate = sweep.results[2].scalars["detection_rate"]
    assert f"detection rate = {detection_rate * 100:.0f}%" == legacy_reports[2]
    assert sweep.results[3].report == legacy_reports[3]

    speedup = legacy_s / sweep_s if sweep_s > 0 else float("inf")
    chip_stats = runner.chip_cache_stats()
    window_stats = cpu_module.m0_window_cache_stats()
    lines = [
        f"independent legacy drivers (cold each): {legacy_s:.2f} s",
        f"registry sweep via run_many:            {sweep_s:.2f} s",
        f"speedup: {speedup:.2f}x (floor {MIN_SPEEDUP}x, relaxed={RELAXED})",
        f"runner chip cache: {chip_stats}",
        f"M0 window cache:   {window_stats}",
    ]
    report("Scenario sweep: shared pipeline caches vs independent drivers", "\n".join(lines))
    record_benchmark(
        "pipeline_sweep",
        {
            "num_cycles": NUM_CYCLES,
            "scenarios": len(specs),
            "legacy_s": round(legacy_s, 4),
            "sweep_s": round(sweep_s, 4),
            "speedup": round(speedup, 2),
            "relaxed": RELAXED,
        },
    )

    # The sweep shares one chip per configuration; the M0 window must have
    # been simulated once, not once per scenario.
    assert window_stats["misses"] <= 2
    if not RELAXED:
        assert speedup >= MIN_SPEEDUP, (
            f"registry sweep ({sweep_s:.2f} s) should beat independent "
            f"drivers ({legacy_s:.2f} s) by at least {MIN_SPEEDUP}x, got {speedup:.2f}x"
        )
    else:
        assert sweep_s <= legacy_s * 1.5, "sweep should not be slower than drivers"
