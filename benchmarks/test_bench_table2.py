"""Benchmark: regenerate Table II (load-circuit implementation costs)."""

import pytest

from repro.experiments import run_table2


def test_bench_table2_overhead(benchmark, report, expectations):
    result = benchmark.pedantic(run_table2, rounds=5, iterations=1)

    expect = expectations["table2"]
    lines = [result.to_text(), "", "paper vs measured (registers / overhead reduction):"]
    for row in result.table:
        paper_registers = expect["load_registers"][row.load_power_w]
        paper_reduction = expect["overhead_reduction"][row.load_power_w]
        lines.append(
            f"  {row.load_power_w * 1e3:5.2f} mW: paper {paper_registers:>5} regs / "
            f"{paper_reduction * 100:.1f}%, measured {row.load_registers:>5} regs / "
            f"{row.overhead_reduction * 100:.1f}%"
        )
    report("Table II: load circuit implementation costs", "\n".join(lines))

    for row in result.table:
        assert row.load_registers == expect["load_registers"][row.load_power_w]
        assert row.overhead_reduction == pytest.approx(
            expect["overhead_reduction"][row.load_power_w], abs=5e-3
        )
    assert result.headline_reduction == pytest.approx(expectations["headline_area_reduction"], abs=1e-3)
    assert result.per_register_clock_power_w == pytest.approx(1.476e-6, rel=1e-6)
    assert result.per_register_data_power_w == pytest.approx(1.126e-6, rel=1e-6)
