"""Benchmark: incremental repro-lint cache, warm vs cold over src/repro.

Acceptance pin for the v2 incremental cache: re-linting the unchanged
tree with a warm ``--cache-dir`` must beat the cold pass by at least 3x
-- a warm run replaces parse + per-module rules + summary extraction
with a stat check and a JSON read per file, leaving only the cheap
cross-module pass live.

Timings are in-process ``lint_paths`` calls (the same number the CLI
prints to stderr); subprocess wall clock would mostly measure
interpreter startup.  Warm findings must be identical to cold ones --
a cache that changes the report is worse than no cache.
"""

import os
import time
from pathlib import Path

from record import record_benchmark

from repro.analysis.cache import LintCache, rules_signature
from repro.analysis.engine import lint_paths
from repro.analysis.rules import ALL_RULES

MIN_SPEEDUP = 3.0

RELAXED = os.environ.get("REPRO_BENCH_RELAXED") == "1"

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def test_bench_warm_lint_beats_cold(tmp_path, report):
    signature = rules_signature(ALL_RULES)

    start = time.perf_counter()
    cold_findings, files_checked = lint_paths(
        [str(SRC)], cache=LintCache(tmp_path / "cache", signature)
    )
    cold_s = time.perf_counter() - start
    assert files_checked > 50

    warm_cache = LintCache(tmp_path / "cache", signature)
    start = time.perf_counter()
    warm_findings, _ = lint_paths([str(SRC)], cache=warm_cache)
    warm_s = time.perf_counter() - start

    assert warm_cache.misses == 0
    assert warm_cache.hits == files_checked
    assert [f.to_json_dict() for f in warm_findings] == [
        f.to_json_dict() for f in cold_findings
    ]

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")

    entry = record_benchmark(
        "repro_lint_src",
        {
            "files_checked": files_checked,
            "cold_lint_s": cold_s,
            "warm_lint_s": warm_s,
            "speedup_warm": speedup,
            "findings_identical": True,
            "min_speedup_floor": MIN_SPEEDUP,
            "relaxed": RELAXED,
        },
    )

    report(
        "repro-lint incremental cache: warm vs cold over src/repro",
        "\n".join(
            [
                f"files checked:      {files_checked}",
                f"cold (empty cache): {cold_s * 1e3:8.1f} ms",
                f"warm (all hits):    {warm_s * 1e3:8.1f} ms",
                f"speedup:            {speedup:8.1f}x (floor {MIN_SPEEDUP}x)",
                f"recorded:           {entry['commit']}",
            ]
        ),
    )

    if not RELAXED:
        assert speedup >= MIN_SPEEDUP, (
            f"warm lint only {speedup:.1f}x faster than cold "
            f"(floor {MIN_SPEEDUP}x)"
        )
