"""Benchmark: supervision-layer overhead on a fault-free sweep.

Acceptance pin for the fault-tolerance layer (PR 7): running a sweep
under full supervision -- per-cell timeout armed, retry policy active,
graceful-shutdown handlers installed -- must cost less than 5% wall clock
over the same sweep with supervision disabled, because a fault-free cell
takes exactly one attempt and the supervisor only ever arms/disarms a
timer and checks a policy object around it.

Measured on the serial backend: its supervision path (SIGALRM per cell)
runs in the benchmark process itself, so the comparison isolates the
supervision overhead from process-pool scheduling noise.
"""

import os
import time

from record import record_benchmark

from repro.pipeline import ExperimentRunner, RunOptions, SpecGrid

NUM_CYCLES = 150_000
REPETITIONS = 100
MAX_OVERHEAD = 0.05
ROUNDS = 3

RELAXED = os.environ.get("REPRO_BENCH_RELAXED") == "1"


def _grid_specs():
    """The PR 6 store-benchmark grid: six Fig. 6 campaign cells."""
    options = RunOptions(quick=True, cycles=NUM_CYCLES, repetitions=REPETITIONS)
    return SpecGrid("fig6/chip1", options).build(
        chips=["chip1", "chip2"], seeds=[1_000, 2_000, 3_000]
    )


def _best_of(rounds, run):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        sweep = run()
        best = min(best, time.perf_counter() - start)
        assert sweep.ok
    return best


def test_bench_supervision_overhead_under_five_percent(report):
    specs = _grid_specs()
    runner = ExperimentRunner()
    # Warm-up: build both chips (M0 windows, templates) so both measured
    # passes see identical warm caches.
    runner.run_many(specs, backend="serial")

    plain_s = _best_of(
        ROUNDS, lambda: runner.run_many(specs, backend="serial")
    )
    supervised_s = _best_of(
        ROUNDS,
        lambda: runner.run_many(
            specs, backend="serial", timeout=300.0, retry=2
        ),
    )

    overhead = supervised_s / plain_s - 1.0 if plain_s > 0 else 0.0
    lines = [
        f"grid: {len(specs)} Fig. 6 cells (2 chips x 3 seeds), "
        f"{NUM_CYCLES} cycles x {REPETITIONS} repetitions, best of {ROUNDS}",
        f"plain sweep (no supervision):      {plain_s:.3f} s",
        f"supervised (timeout=300, retries=2): {supervised_s:.3f} s",
        f"overhead: {overhead * 100:+.1f}% "
        f"(ceiling {MAX_OVERHEAD * 100:.0f}%, relaxed={RELAXED})",
    ]
    report("Fault-tolerant sweep: supervision overhead", "\n".join(lines))
    record_benchmark(
        "fault_tolerant_sweep",
        {
            "num_cycles": NUM_CYCLES,
            "cells": len(specs),
            "repetitions": REPETITIONS,
            "rounds": ROUNDS,
            "plain_s": round(plain_s, 4),
            "supervised_s": round(supervised_s, 4),
            "overhead_pct": round(overhead * 100, 2),
            "relaxed": RELAXED,
        },
    )

    if not RELAXED:
        assert overhead < MAX_OVERHEAD, (
            f"supervision should cost <{MAX_OVERHEAD * 100:.0f}% on a "
            f"fault-free sweep; measured {overhead * 100:+.1f}% "
            f"({plain_s:.3f} s -> {supervised_s:.3f} s)"
        )
