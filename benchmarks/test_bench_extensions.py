"""Benchmarks for the extension studies built on top of the paper.

These are not figures from the paper; they exercise the extra analyses the
library provides: watermark sizing via detection-probability curves, masking
and starvation attacks, and multi-vendor auditing.
"""

import numpy as np
import pytest

from repro.analysis.masking import run_noise_masking_study, run_starvation_study
from repro.core.config import ExperimentConfig
from repro.core.lfsr import LFSR
from repro.core.multi import MultiWatermarkSystem
from repro.detection.campaign import run_detection_probability_campaign
from repro.measurement.acquisition import AcquisitionCampaign
from repro.power.estimator import PowerEstimator
from repro.power.trace import PowerTrace
from repro.soc.chip import build_chip_one


def test_bench_detection_probability_curve(benchmark, report):
    sequence = LFSR(width=12, seed=0x5A5).sequence()

    def campaign():
        return run_detection_probability_campaign(
            sequence,
            watermark_amplitude_w=1.5e-3,
            noise_sigma_w=43e-3,
            cycle_counts=(50_000, 100_000, 200_000, 300_000, 500_000),
            trials_per_point=10,
            seed=17,
        )

    curve = benchmark.pedantic(campaign, rounds=1, iterations=1)
    report("Extension: detection probability vs acquisition length", curve.to_text())

    probabilities = [p.detection_probability for p in curve.points]
    assert probabilities[-1] == 1.0
    assert curve.is_monotonic()
    # The paper's 300,000-cycle operating point must already be reliable.
    point_300k = next(p for p in curve.points if p.num_cycles == 300_000)
    assert point_300k.detection_probability >= 0.9


def test_bench_masking_attack(benchmark, report):
    sequence = LFSR(width=12, seed=0x5A5).sequence()

    def studies():
        noise = run_noise_masking_study(
            sequence,
            watermark_amplitude_w=1.5e-3,
            base_noise_sigma_w=43e-3,
            masking_noise_levels_w=(0.0, 50e-3, 100e-3, 200e-3, 400e-3),
            num_cycles=300_000,
            seed=23,
        )
        starvation = run_starvation_study(
            sequence,
            watermark_amplitude_w=1.5e-3,
            base_noise_sigma_w=43e-3,
            enable_duties=(1.0, 0.5, 0.25, 0.1, 0.02),
            num_cycles=300_000,
            seed=29,
        )
        return noise, starvation

    noise_study, starvation_study = benchmark.pedantic(studies, rounds=1, iterations=1)
    report(
        "Extension: masking and starvation attacks",
        noise_study.to_text() + "\n\n" + starvation_study.to_text(),
    )

    # The unmasked watermark is detected; defeating it by masking requires
    # injecting switching noise far larger than the watermark itself.
    assert noise_study.points[0].detected
    defeated = noise_study.detection_defeated_at()
    assert defeated is not None and defeated.masking_noise_w >= 50e-3
    # Starving the modulated clock gate eventually hides the watermark too.
    assert starvation_study.points[0].detected
    assert not starvation_study.points[-1].detected


def test_bench_operating_point_study(benchmark, report):
    from repro.analysis.operating_point import run_operating_point_study

    study = benchmark.pedantic(run_operating_point_study, rounds=1, iterations=1)
    report("Extension: DVFS operating-point study", study.to_text())

    nominal = study.corner(1.2, 10e6)
    low_voltage = study.corner(0.8, 10e6)
    # The paper's corner is comfortably inside the 300,000-cycle budget;
    # voltage scaling shrinks the watermark quadratically and pushes the
    # required acquisition length up.
    assert nominal.required_cycles < 300_000
    assert low_voltage.required_cycles > nominal.required_cycles


def test_bench_multi_vendor_audit(benchmark, report):
    config = ExperimentConfig.paper_defaults()
    estimator = PowerEstimator.at_nominal()
    num_cycles = 150_000

    def audit():
        system = MultiWatermarkSystem.with_distinct_lfsr_widths(
            ["cpu_vendor", "dsp_vendor", "crypto_vendor"], widths=[12, 11, 10]
        )
        chip = build_chip_one(watermark=None, m0_window_cycles=8192)
        background = chip.background_power(num_cycles, seed=31)
        watermarks = system.combined_power_trace(
            estimator, num_cycles, active_vendors=["cpu_vendor", "dsp_vendor"],
            phase_offsets={"cpu_vendor": 3100, "dsp_vendor": 450},
        )
        total = PowerTrace(
            name="die", clock=background.clock,
            power_w=background.power_w + watermarks.power_w,
        )
        measured = AcquisitionCampaign(config.measurement).measure(total, seed=31)
        return system, system.audit(measured.values, config.detection)

    system, results = benchmark.pedantic(audit, rounds=1, iterations=1)
    report(
        "Extension: multi-vendor audit",
        "\n".join(f"  {vendor:<14} {cpa.summary()}" for vendor, cpa in results.items()),
    )

    assert results["cpu_vendor"].detected
    assert results["dsp_vendor"].detected
    assert not results["crypto_vendor"].detected
