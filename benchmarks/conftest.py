"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at the
paper's full experimental scale (300,000 cycles per correlation, 100
repetitions for the box plots) and prints a paper-vs-measured comparison.
Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.core.config import ExperimentConfig
from repro.experiments.common import paper_expectations


@pytest.fixture(scope="session")
def report():
    """A titled report printer (output visible with ``pytest -s``)."""

    def _report(title: str, body: str) -> None:
        bar = "=" * 78
        print(f"\n{bar}\n{title}\n{bar}\n{body}\n")

    return _report


@pytest.fixture(scope="session")
def paper_config() -> ExperimentConfig:
    """The full-scale configuration matching the paper's experiments."""
    return ExperimentConfig.paper_defaults()


@pytest.fixture(scope="session")
def expectations() -> dict:
    """Published values the reproduction is compared against."""
    return paper_expectations()
