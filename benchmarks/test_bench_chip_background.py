"""Benchmark: chip-level background-power template cache.

Before the chip-level cache landed, every ``ChipModel.total_power`` call
re-simulated the Cortex-M0 window cycle by cycle in Python (the last
O(cycles) loop on the generation side) and re-drew the peripheral/A5 block
activity, even though Fig. 5/6 panels and ``measure_many`` campaigns
request the exact same background over and over.  With the cache, the
window is simulated once per (program, window) across *all* chip
instances, and the per-cycle background template is reused per
(chip configuration, seed, acquisition length).

This benchmark pins the acceptance floor (>= 10x warm-cache speedup on a
100k-cycle ``total_power``) and proves the cache changes nothing: warm,
cold and cache-bypassing traces are bit-identical, and the warm path runs
without any per-cycle Python loop (the window cache reports hits only).
Timings are persisted to BENCH.json (see record.py).
"""

import os
import time

import numpy as np

from record import record_benchmark

from repro.core.architectures import ClockModulationWatermark
from repro.core.config import WatermarkConfig
from repro.soc import chip as chip_module
from repro.soc import cpu as cpu_module
from repro.soc.chip import build_chip_one

NUM_CYCLES = 100_000
MIN_SPEEDUP = 10.0

# Shared CI runners can be throttled enough to make any wall-clock ratio
# flaky; REPRO_BENCH_RELAXED=1 keeps the benchmark report-only there while
# local / dedicated runs still enforce the floor.
RELAXED = os.environ.get("REPRO_BENCH_RELAXED") == "1"


def test_bench_chip_background_cache(report):
    cpu_module.clear_m0_window_cache()
    chip_module.clear_background_template_cache()
    watermark = ClockModulationWatermark.from_config(WatermarkConfig())
    chip = build_chip_one(watermark=watermark)

    # Cold: pays the full M0 window simulation (16,384 Python-stepped
    # cycles), the background block-activity draws and the watermark
    # template build.
    start = time.perf_counter()
    cold = chip.total_power(NUM_CYCLES, seed=11)
    cold_s = time.perf_counter() - start

    # Warm: the background template and the watermark period template are
    # both cached; only the watermark gather and one array add remain.
    warm_times = []
    for _ in range(3):
        start = time.perf_counter()
        warm = chip.total_power(NUM_CYCLES, seed=11)
        warm_times.append(time.perf_counter() - start)
    warm_s = min(warm_times)
    speedup = cold_s / warm_s

    # Equivalence: the cache must change nothing, bit for bit -- warm hits
    # equal the cold trace and a full cache-bypassing recomputation.
    assert np.array_equal(cold.power_w, warm.power_w)
    stats_before = cpu_module.m0_window_cache_stats()
    bypass = chip.total_power(NUM_CYCLES, seed=11, use_cache=False)
    assert np.array_equal(cold.power_w, bypass.power_w)

    # A second chip instance with the same program shares the simulated
    # window: its background costs no per-cycle Python loop either.
    sibling = build_chip_one(watermark=None)
    start = time.perf_counter()
    sibling.background_power(NUM_CYCLES, seed=12)
    sibling_s = time.perf_counter() - start
    stats_after = cpu_module.m0_window_cache_stats()
    assert stats_after["misses"] == stats_before["misses"], (
        "the sibling chip re-simulated the M0 window instead of hitting "
        "the shared cache"
    )

    record_benchmark(
        "chip_background_template_cache",
        {
            "num_cycles": NUM_CYCLES,
            "total_power_cold_s": cold_s,
            "total_power_warm_s": warm_s,
            "sibling_background_shared_window_s": sibling_s,
            "speedup_warm": speedup,
            "min_speedup_floor": MIN_SPEEDUP,
            "traces_bit_identical": True,
            "window_cache": cpu_module.m0_window_cache_stats(),
            "template_cache": chip_module.background_template_cache_stats(),
            "relaxed": RELAXED,
        },
    )
    report(
        f"Chip background template cache ({NUM_CYCLES:,} cycles)",
        "\n".join(
            [
                f"total_power cold (window sim + draws): {cold_s * 1e3:9.1f} ms",
                f"total_power warm (cached template):    {warm_s * 1e3:9.2f} ms",
                f"sibling background (shared window):    {sibling_s * 1e3:9.1f} ms",
                f"speedup warm:                          {speedup:7.1f}x (floor {MIN_SPEEDUP}x)",
                f"traces bit-identical:                  True",
            ]
        ),
    )
    if not RELAXED:
        assert speedup >= MIN_SPEEDUP, (
            f"warm-cache total_power only {speedup:.1f}x faster than cold "
            f"(expected >= {MIN_SPEEDUP}x)"
        )
