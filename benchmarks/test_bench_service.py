"""Benchmark: warm (cache-hit) ``/verify`` vs cold end-to-end latency.

Acceptance pin for the serving layer: a ``/verify`` of a scenario already
in the service's result store -- full HTTP round trip, PoW ticket check,
transcript signing, ledger append included -- must beat the cold request
(same scenario, store empty) by at least 10x.  The warm path trades the
whole pipeline execution for a store read, so the remaining cost is
protocol overhead; if the speedup collapses, the serving layer started
recomputing or the store lookup regressed.

Both requests run over a real localhost server through the stdlib
client, exactly like production traffic.
"""

import json
import os
import threading
import time

from record import record_benchmark

from repro.service.client import ServiceClient
from repro.service.server import ServiceConfig, build_server

SCENARIO = "fig5/chip1-active"
OVERRIDES = {"quick": True}
DIFFICULTY = 8
MIN_SPEEDUP = 10.0

RELAXED = os.environ.get("REPRO_BENCH_RELAXED") == "1"


def test_bench_warm_verify_beats_cold(tmp_path, report):
    config = ServiceConfig(
        port=0, data_dir=tmp_path / "service-data", difficulty=DIFFICULTY
    )
    server = build_server(config)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        client = ServiceClient(
            server.url, client_id="bench@local", difficulty=DIFFICULTY
        )

        start = time.perf_counter()
        cold = client.verify(scenario=SCENARIO, overrides=OVERRIDES)
        cold_s = time.perf_counter() - start
        assert cold["ok"] and cold["cache_hit"] is False

        start = time.perf_counter()
        warm = client.verify(scenario=SCENARIO, overrides=OVERRIDES)
        warm_s = time.perf_counter() - start
        assert warm["ok"] and warm["cache_hit"] is True

        # The warm response is the same signed detection, byte for byte.
        assert warm["signature"] == cold["signature"]
        assert json.dumps(warm["transcript"], sort_keys=True) == json.dumps(
            cold["transcript"], sort_keys=True
        )
        stats = server.service.store.stats()
        assert stats.writes == 1, "the warm request must recompute nothing"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    lines = [
        f"scenario: {SCENARIO} (quick), difficulty {DIFFICULTY} bits",
        f"cold /verify (store empty): {cold_s:.3f} s (pipeline executed)",
        f"warm /verify (store hit):   {warm_s * 1e3:.1f} ms (zero recompute)",
        f"speedup: {speedup:.1f}x (floor {MIN_SPEEDUP}x, relaxed={RELAXED})",
    ]
    report("Detection service: warm vs cold /verify", "\n".join(lines))
    record_benchmark(
        "service_verify",
        {
            "scenario": SCENARIO,
            "difficulty_bits": DIFFICULTY,
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "speedup": round(speedup, 1),
            "transcripts_identical": True,
            "relaxed": RELAXED,
        },
    )

    if not RELAXED:
        assert speedup >= MIN_SPEEDUP, (
            f"warm /verify ({warm_s:.4f} s) should beat the cold request "
            f"({cold_s:.3f} s) by at least {MIN_SPEEDUP}x, got {speedup:.1f}x"
        )
