"""Benchmark: regenerate Fig. 2 (functional simulation of both architectures)."""

from repro.experiments import run_fig2


def test_bench_fig2_functional_simulation(benchmark, report):
    result = benchmark.pedantic(run_fig2, kwargs={"num_cycles": 64}, rounds=3, iterations=1)
    report("Fig. 2: functional simulation of the watermark architectures", result.to_text())

    # Shape checks mirroring the paper's observation: both schemes are idle
    # while WMARK is low, and the clock-modulation scheme produces more
    # switching per register while WMARK is high (clock buffers toggle on
    # both clock edges).
    assert result.idle_when_wmark_low
    assert (
        result.clock_modulation_toggles_per_active_register
        > result.baseline_toggles_per_active_register
    )
