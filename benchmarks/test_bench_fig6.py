"""Benchmark: regenerate Fig. 6 (box plots over 100 repeated measurements)."""

import pytest

from repro.experiments.fig6 import run_fig6_chip


@pytest.mark.parametrize("chip_name", ["chip1", "chip2"])
def test_bench_fig6_repeatability(benchmark, report, paper_config, expectations, chip_name):
    repetitions = expectations["fig6"]["repetitions"]
    result = benchmark.pedantic(
        run_fig6_chip,
        kwargs={"chip_name": chip_name, "repetitions": repetitions, "config": paper_config},
        rounds=1,
        iterations=1,
    )
    peak = result.peak_box
    off_peak = result.off_peak_box
    report(
        f"Fig. 6: correlation statistics over {repetitions} repetitions ({chip_name})",
        "\n".join(
            [
                f"peak rotation: {result.statistics.peak_rotation}",
                f"peak box:     median={peak.median:.4f} q1={peak.q1:.4f} q3={peak.q3:.4f} "
                f"whiskers=[{peak.whisker_low:.4f}, {peak.whisker_high:.4f}] "
                f"outliers={len(peak.outliers)}",
                f"off-peak box: median={off_peak.median:.4f} "
                f"whiskers=[{off_peak.whisker_low:.4f}, {off_peak.whisker_high:.4f}]",
                f"detection rate: {result.detection_rate * 100:.0f}%",
                f"peak box separated from off-peak distribution: {result.peak_separated}",
            ]
        ),
    )

    # The paper detects the watermark in every one of the 100 repetitions on
    # both chips, with the in-phase box clearly above the out-of-phase boxes.
    assert result.detection_rate == expectations["fig6"]["detection_rate"]
    assert result.peak_separated
    assert abs(off_peak.median) < 0.001
    assert peak.median > off_peak.whisker_high
