"""Benchmark: regenerate Fig. 5 (CPA spread spectra, chips I and II).

Full paper scale: 300,000 clock cycles per correlation, 12-bit
maximum-length watermark sequence (4,095 rotations), chip I (Cortex-M0-class
SoC running the Dhrystone-like workload) and chip II (plus the idle
dual-core A5-class subsystem), each with the watermark active and disabled.
"""

import pytest

from repro.experiments.fig5 import run_fig5, run_fig5_panel


@pytest.mark.parametrize(
    "chip_name, watermark_active",
    [("chip1", True), ("chip1", False), ("chip2", True), ("chip2", False)],
    ids=["chip1_active", "chip1_inactive", "chip2_active", "chip2_inactive"],
)
def test_bench_fig5_panel(benchmark, report, paper_config, expectations, chip_name, watermark_active):
    panel = benchmark.pedantic(
        run_fig5_panel,
        kwargs={"chip_name": chip_name, "watermark_active": watermark_active, "config": paper_config},
        rounds=1,
        iterations=1,
    )
    report(
        f"Fig. 5 panel: {panel.label}",
        panel.cpa.summary() + "\n\n" + panel.spectrum.render_ascii(width=72, height=10),
    )

    fig5_expect = expectations["fig5"]
    if watermark_active:
        low, high = fig5_expect[f"{chip_name}_peak_rho_range"]
        assert panel.cpa.detected
        assert low < panel.cpa.peak_correlation < high
        assert panel.spectrum.has_single_resolvable_peak()
    else:
        assert not panel.cpa.detected
        assert abs(panel.cpa.peak_correlation) < fig5_expect["noise_floor_abs_max"]


def test_bench_fig5_all_panels(benchmark, report, paper_config):
    result = benchmark.pedantic(run_fig5, kwargs={"config": paper_config}, rounds=1, iterations=1)
    report("Fig. 5: all four panels", result.to_text())

    assert result.all_active_panels_detected
    assert result.no_inactive_panel_detected
    # Chip II has far more background noise (idle dual-core A5 + caches), so
    # its peak is lower than chip I's -- the ordering visible in the paper.
    chip1 = result.panel("chip1", True).cpa.peak_correlation
    chip2 = result.panel("chip2", True).cpa.peak_correlation
    assert chip2 < chip1
