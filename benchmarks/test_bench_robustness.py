"""Benchmark: Section VI robustness comparison (removal attacks)."""

from repro.experiments import run_robustness


def test_bench_robustness_removal_attacks(benchmark, report):
    result = benchmark.pedantic(run_robustness, rounds=3, iterations=1)
    report("Section VI: robustness against removal attacks", result.to_text())

    # The paper's claims: the stand-alone load-circuit watermark is easily
    # located and removed without harming the design, while the
    # clock-modulation watermark is not identifiable as a stand-alone block
    # and its removal impairs the host system.
    assert result.baseline_removed_by_blind_attack
    assert result.baseline_removal_harmless
    assert result.clock_modulation_survives_blind_attack
    assert result.clock_modulation_removal_breaks_system
    assert result.improved_robustness_demonstrated
