"""Benchmark: vectorized trace synthesis vs the per-cycle simulator path.

Before the synthesis engine landed, generating a watermarked power trace
meant stepping every watermark sub-circuit once per clock cycle in Python;
at the paper's acquisition lengths (100k-300k cycles) that per-cycle tax
dominated the whole pipeline once detection became batched.  The fast path
runs the cycle-accurate loop once per sequence period (4,095 cycles for
the paper's 12-bit LFSR), turns it into a per-cycle power template and
extends it to the acquisition length with a modular-index gather.

This benchmark pins the speedup floor named in the PR acceptance criteria
(>= 10x at >= 100,000 cycles) and -- more importantly -- proves the fast
path changes *nothing*: the synthesized trace equals the per-cycle
simulated trace bit for bit, and the full measure-then-detect chain reaches
identical CPA decisions on both.  Timings are persisted to BENCH.json
(see record.py) and uploaded as a CI artifact.
"""

import os
import time

import numpy as np
import pytest

from record import record_benchmark

from repro.core.architectures import ClockModulationWatermark
from repro.core.config import DetectionConfig, MeasurementConfig, WatermarkConfig
from repro.detection.batch import BatchCPADetector
from repro.detection.cpa import CPADetector
from repro.measurement.acquisition import AcquisitionCampaign
from repro.power.estimator import PowerEstimator
from repro.power.synthesis import TraceSynthesizer
from repro.rtl.activity import ActivityTrace

NUM_CYCLES = 100_000
MIN_SPEEDUP = 10.0


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
# Shared CI runners can be throttled enough to make any wall-clock ratio
# flaky; REPRO_BENCH_RELAXED=1 keeps the benchmark report-only there while
# local / dedicated runs still enforce the floor.
RELAXED = os.environ.get("REPRO_BENCH_RELAXED") == "1"


def _stepped_watermark_power(architecture, estimator, num_cycles):
    """The per-cycle simulator path: one Python step per clock cycle."""
    architecture.reset()
    wgc_records = []
    load_records = []
    for _ in range(num_cycles):
        activity = architecture.step()
        wgc_records.append(activity["wgc"])
        load_records.append(activity["load"])
    architecture.reset()
    traces = {
        "wgc": ActivityTrace.from_records(f"{architecture.name}/wgc", wgc_records),
        "load": ActivityTrace.from_records(f"{architecture.name}/load", load_records),
    }
    static = estimator.leakage_of(architecture.cell_inventory())
    return estimator.combined_power_trace(
        traces,
        cell_types={key: "dff" for key in traces},
        static_w=static,
        name=architecture.name,
    )


def test_bench_synthesis_speedup(report):
    estimator = PowerEstimator.at_nominal()
    config = WatermarkConfig()  # the paper's test-chip configuration

    # Per-cycle reference, timed once (it is the slow side by construction).
    reference_arch = ClockModulationWatermark.from_config(config)
    start = time.perf_counter()
    reference = _stepped_watermark_power(reference_arch, estimator, NUM_CYCLES)
    reference_s = time.perf_counter() - start

    # Synthesized path, cold: every round pays the full template build (one
    # cycle-accurate period) plus the modular-index extension.
    cold_times = []
    for _ in range(3):
        architecture = ClockModulationWatermark.from_config(config)
        start = time.perf_counter()
        synthesizer = TraceSynthesizer.for_watermark(architecture, estimator)
        synthesized = synthesizer.synthesize_power(NUM_CYCLES)
        cold_times.append(time.perf_counter() - start)
    cold_s = min(cold_times)

    # Warm: the periodic template is cached on the architecture, so repeated
    # acquisitions (campaigns, repetitions) only pay the gather.
    warm_times = []
    for _ in range(3):
        start = time.perf_counter()
        synthesized = synthesizer.synthesize_power(NUM_CYCLES)
        warm_times.append(time.perf_counter() - start)
    warm_s = min(warm_times)

    speedup_cold = reference_s / cold_s
    speedup_warm = reference_s / warm_s

    # Equivalence: the fast path must change nothing, bit for bit.
    assert np.array_equal(synthesized.power_w, reference.power_w)

    # End-to-end: measure both traces with the same seed and detect; the
    # decisions (and the whole correlation spectra) must be identical.
    campaign = AcquisitionCampaign(MeasurementConfig())
    detector = CPADetector(DetectionConfig())
    sequence = reference_arch.sequence()
    measured_ref = campaign.measure(reference, seed=77)
    measured_syn = campaign.measure(synthesized, seed=77)
    cpa_ref = detector.detect(sequence, measured_ref.values)
    cpa_syn = detector.detect(sequence, measured_syn.values)
    assert cpa_ref.detected == cpa_syn.detected
    assert cpa_ref.peak_rotation == cpa_syn.peak_rotation
    assert np.array_equal(cpa_ref.correlations, cpa_syn.correlations)

    record_benchmark(
        "synthesis_watermark_trace",
        {
            "num_cycles": NUM_CYCLES,
            "sequence_period": reference_arch.sequence_period,
            "per_cycle_simulator_s": reference_s,
            "synthesized_cold_s": cold_s,
            "synthesized_warm_s": warm_s,
            "speedup_cold": speedup_cold,
            "speedup_warm": speedup_warm,
            "min_speedup_floor": MIN_SPEEDUP,
            "traces_bit_identical": True,
            "detection_decisions_identical": True,
            "relaxed": RELAXED,
        },
    )
    report(
        f"Vectorized trace synthesis ({NUM_CYCLES:,} cycles, period "
        f"{reference_arch.sequence_period})",
        "\n".join(
            [
                f"per-cycle simulator path:        {reference_s * 1e3:9.1f} ms",
                f"synthesized (cold, incl. template): {cold_s * 1e3:6.1f} ms",
                f"synthesized (warm template):     {warm_s * 1e3:9.2f} ms",
                f"speedup cold/warm:               {speedup_cold:7.1f}x / {speedup_warm:.0f}x "
                f"(floor {MIN_SPEEDUP}x)",
                f"traces bit-identical:            True",
                f"detection decisions identical:   True (peak rotation "
                f"{cpa_syn.peak_rotation})",
            ]
        ),
    )
    if not RELAXED:
        assert speedup_cold >= MIN_SPEEDUP, (
            f"synthesis only {speedup_cold:.1f}x faster than the per-cycle "
            f"simulator path (expected >= {MIN_SPEEDUP}x)"
        )


def test_bench_trial_matrix_synthesis(report):
    """Trial-matrix synthesis: batched gather vs the per-trial slice loop."""
    from repro.core.lfsr import LFSR

    sequence = LFSR(width=12, seed=0x5A5).sequence().astype(np.float64)
    period = len(sequence)
    trials = 40
    num_cycles = NUM_CYCLES
    amplitude, base, sigma = 1.5e-3, 5e-3, 20e-3

    def per_trial_loop(seed):
        rng = np.random.default_rng(seed)
        tiled = np.tile(sequence, int(np.ceil((num_cycles + period) / period)))
        matrix = np.empty((trials, num_cycles))
        for row in range(trials):
            offset = int(rng.integers(0, period))
            signal = base + tiled[offset : offset + num_cycles] * amplitude
            matrix[row] = signal + rng.normal(0.0, sigma, num_cycles)
        return matrix

    synthesizer = TraceSynthesizer.from_sequence(
        sequence, watermark_amplitude_w=amplitude, noise_sigma_w=sigma, base_power_w=base
    )

    # Warm both paths (allocator, page faults), then best of three.  The
    # Gaussian noise draw is inherent to both sides and dominates; the
    # vectorised win is in the signal construction, which the strided
    # window adds collapse to a few full-matrix passes.
    per_trial_loop(1)
    synthesizer.synthesize_trials(trials, num_cycles, np.random.default_rng(1))
    loop_s = min(
        _timed(lambda: per_trial_loop(2024)) for _ in range(3)
    )
    batch_s = min(
        _timed(
            lambda: synthesizer.synthesize_trials(
                trials, num_cycles, np.random.default_rng(2024)
            )
        )
        for _ in range(3)
    )

    legacy = per_trial_loop(2024)
    batched = synthesizer.synthesize_trials(trials, num_cycles, np.random.default_rng(2024))
    assert np.array_equal(batched, legacy)
    detector = BatchCPADetector()
    decisions = detector.detect_many(sequence, batched)

    record_benchmark(
        "synthesis_trial_matrix",
        {
            "trials": trials,
            "num_cycles": num_cycles,
            "per_trial_loop_s": loop_s,
            "batched_synthesis_s": batch_s,
            "speedup": loop_s / batch_s,
            "matrices_bit_identical": True,
            "detections": int(decisions.detection_count),
        },
    )
    report(
        f"Trial-matrix synthesis ({trials} trials x {num_cycles:,} cycles)",
        "\n".join(
            [
                f"per-trial slice loop:  {loop_s * 1e3:8.1f} ms",
                f"batched synthesis:     {batch_s * 1e3:8.1f} ms",
                f"speedup:               {loop_s / batch_s:8.2f}x (noise-draw bound)",
                f"matrices bit-identical: True; detections {decisions.detection_count}/{trials}",
            ]
        ),
    )
