"""Benchmark: warm result store vs cold execution of the same sweep.

Acceptance pin for the memoization layer: a six-cell Fig. 6 campaign grid
run through ``ExperimentRunner.run_many(store=..., resume=True)`` against
a store that already holds every cell must beat the cold run (same store,
initially empty) by at least 5x wall clock -- the store trades a sha256
lookup plus a JSON+npz read for the full Monte-Carlo campaign.

Served cells must be bit-identical to the computed ones (reports,
scalars, array bytes), and the warm pass must be pure hits: zero cells
executed, zero new entries written.
"""

import hashlib
import os
import time

import numpy as np
from record import record_benchmark

from repro.pipeline import ExperimentRunner, ResultStore, RunOptions, SpecGrid

NUM_CYCLES = 150_000
REPETITIONS = 100
MIN_SPEEDUP = 5.0

RELAXED = os.environ.get("REPRO_BENCH_RELAXED") == "1"


def _grid_specs():
    """Six campaign cells: {chip1, chip2} x three seeds, 100 reps each."""
    options = RunOptions(quick=True, cycles=NUM_CYCLES, repetitions=REPETITIONS)
    return SpecGrid("fig6/chip1", options).build(
        chips=["chip1", "chip2"], seeds=[1_000, 2_000, 3_000]
    )


def _digest(array: np.ndarray) -> str:
    return hashlib.sha256(
        f"{array.shape}|{array.dtype}|".encode() + array.tobytes()
    ).hexdigest()


def test_bench_warm_store_beats_cold_sweep(tmp_path, report):
    specs = _grid_specs()
    assert len(specs) == 6

    # Warm-up: builds both chips (M0 windows, templates) so the cold pass
    # measures per-cell campaign compute, not one-off template builds --
    # the same baseline the parallel-sweep benchmark uses.
    runner = ExperimentRunner()
    runner.run_many(specs, backend="serial")

    store = ResultStore(tmp_path / "store")

    start = time.perf_counter()
    cold = runner.run_many(specs, backend="serial", store=store, resume=True)
    cold_s = time.perf_counter() - start
    assert cold.ok
    stats = store.stats()
    assert stats.hits == 0 and stats.writes == len(specs)

    start = time.perf_counter()
    warm = runner.run_many(specs, backend="serial", store=store, resume=True)
    warm_s = time.perf_counter() - start
    assert warm.ok
    stats = store.stats()
    assert stats.hits == len(specs) and stats.writes == len(specs)
    assert stats.entries == len(specs)

    # Served cells are bit-identical to computed ones; only the in-memory
    # payload is dropped, exactly as after ScenarioResult.load.
    assert warm.names == cold.names
    for computed, served in zip(cold, warm):
        assert served.report == computed.report, computed.name
        assert served.scalars == computed.scalars, computed.name
        assert set(served.arrays) == set(computed.arrays)
        for key in computed.arrays:
            assert _digest(served.arrays[key]) == _digest(
                computed.arrays[key]
            ), f"{computed.name}/{key}"
        assert served.payload is None

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    lines = [
        f"grid: {len(specs)} Fig. 6 cells (2 chips x 3 seeds), "
        f"{NUM_CYCLES} cycles x {REPETITIONS} repetitions",
        f"cold sweep (store empty):  {cold_s:.2f} s ({len(specs)} cells executed)",
        f"warm sweep (store full):   {warm_s:.4f} s ({stats.hits} hits, 0 executed)",
        f"speedup: {speedup:.1f}x (floor {MIN_SPEEDUP}x, relaxed={RELAXED})",
    ]
    report("Result store: warm hits vs cold execution", "\n".join(lines))
    record_benchmark(
        "result_store",
        {
            "num_cycles": NUM_CYCLES,
            "cells": len(specs),
            "repetitions": REPETITIONS,
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "speedup": round(speedup, 1),
            "hits": stats.hits,
            "results_identical": True,
            "relaxed": RELAXED,
        },
    )

    if not RELAXED:
        assert speedup >= MIN_SPEEDUP, (
            f"warm store ({warm_s:.4f} s) should beat the cold sweep "
            f"({cold_s:.2f} s) by at least {MIN_SPEEDUP}x, got {speedup:.1f}x"
        )
