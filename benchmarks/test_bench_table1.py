"""Benchmark: regenerate Table I (power of the placed-and-routed load circuit)."""

import pytest

from repro.experiments import run_table1


def test_bench_table1_load_circuit_power(benchmark, report, expectations):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)

    expect = expectations["table1"]
    lines = [result.to_text(), "", "paper vs measured (dynamic power):"]
    for row in result.rows:
        paper_mw = expect["dynamic_power_mw"][row.switching_registers]
        lines.append(
            f"  {row.switching_registers:>5} switching registers: "
            f"paper {paper_mw:.2f} mW, measured {row.dynamic_w * 1e3:.2f} mW"
        )
    report("Table I: power consumption of the placed-and-routed load circuit", "\n".join(lines))

    # Shape: dynamic power grows monotonically with the number of switching
    # registers, the load circuit dominates the watermark's dynamic power,
    # and leakage stays negligible -- with values close to the paper's.
    assert result.dynamic_power_monotonic()
    for row in result.rows:
        paper_mw = expect["dynamic_power_mw"][row.switching_registers]
        assert row.dynamic_w * 1e3 == pytest.approx(paper_mw, rel=0.15)
        assert row.static_w * 1e6 == pytest.approx(
            expect["static_power_uw"][row.switching_registers], rel=0.25
        )
        assert row.share_of_watermark_dynamic == pytest.approx(
            expect["share_of_watermark_dynamic"][row.switching_registers], abs=0.02
        )
