"""Unit tests for the benchmark recorder and its trend check (record.py).

These are plain fast tests (no paper-scale benchmarking); they live next
to record.py because the benchmarks directory is its import root.
"""

import json

import pytest

import record


def _write(path, benchmarks, schema=record.SCHEMA_VERSION):
    path.write_text(json.dumps({"schema": schema, "benchmarks": benchmarks}))


class TestRecordBenchmark:
    def test_writes_commit_and_environment_stamps(self, tmp_path):
        path = tmp_path / "BENCH.json"
        entry = record.record_benchmark("demo", {"elapsed_s": 1.0}, path=str(path))
        assert entry["commit"]
        assert entry["environment"]["python"]
        payload = json.loads(path.read_text())
        assert payload["schema"] == record.SCHEMA_VERSION
        assert payload["benchmarks"]["demo"]["elapsed_s"] == 1.0

    def test_merges_entries_by_name(self, tmp_path):
        path = tmp_path / "BENCH.json"
        record.record_benchmark("a", {"elapsed_s": 1.0}, path=str(path))
        record.record_benchmark("b", {"elapsed_s": 2.0}, path=str(path))
        record.record_benchmark("a", {"elapsed_s": 0.5}, path=str(path))
        payload = json.loads(path.read_text())
        assert set(payload["benchmarks"]) == {"a", "b"}
        assert payload["benchmarks"]["a"]["elapsed_s"] == 0.5

    def test_seeds_from_legacy_pr2_artifact(self, tmp_path):
        legacy = tmp_path / "BENCH_PR2.json"
        _write(legacy, {"old_bench": {"elapsed_s": 3.0}}, schema=1)
        path = tmp_path / "BENCH.json"
        record.record_benchmark("new_bench", {"elapsed_s": 1.0}, path=str(path))
        payload = json.loads(path.read_text())
        assert set(payload["benchmarks"]) == {"old_bench", "new_bench"}
        assert payload["schema"] == record.SCHEMA_VERSION

    def test_rejects_empty_name(self, tmp_path):
        with pytest.raises(ValueError):
            record.record_benchmark("", {}, path=str(tmp_path / "x.json"))


class TestTrendCheck:
    def _env(self):
        return record._environment()

    def test_flags_large_slowdown(self, tmp_path):
        base, cur = tmp_path / "base.json", tmp_path / "cur.json"
        env = self._env()
        _write(base, {"bench": {"run_s": 1.0, "environment": env}})
        _write(cur, {"bench": {"run_s": 3.0, "environment": env}})
        outcome = record.check_trend(str(base), str(cur), threshold=2.0)
        assert len(outcome["regressions"]) == 1
        assert "3.00x slower" in outcome["regressions"][0]

    def test_accepts_slowdown_below_threshold(self, tmp_path):
        base, cur = tmp_path / "base.json", tmp_path / "cur.json"
        env = self._env()
        _write(base, {"bench": {"run_s": 1.0, "environment": env}})
        _write(cur, {"bench": {"run_s": 1.8, "environment": env}})
        outcome = record.check_trend(str(base), str(cur), threshold=2.0)
        assert outcome["regressions"] == []

    @pytest.mark.parametrize(
        "field,value",
        [
            ("machine", "some-other-arch"),
            ("platform", "SomeOS-1.0-other-host"),
            ("python", "0.0.0"),
            ("numpy", "0.0.0"),
        ],
    )
    def test_skips_cross_host_baselines(self, tmp_path, field, value):
        base, cur = tmp_path / "base.json", tmp_path / "cur.json"
        env = self._env()
        other = dict(env, **{field: value})
        _write(base, {"bench": {"run_s": 1.0, "environment": other}})
        _write(cur, {"bench": {"run_s": 100.0, "environment": env}})
        outcome = record.check_trend(str(base), str(cur), threshold=2.0)
        assert outcome["regressions"] == []
        assert outcome["skipped"]

    def test_non_timing_keys_ignored(self, tmp_path):
        base, cur = tmp_path / "base.json", tmp_path / "cur.json"
        env = self._env()
        _write(base, {"bench": {"speedup": 100.0, "trials": 5, "environment": env}})
        _write(cur, {"bench": {"speedup": 1.0, "trials": 50, "environment": env}})
        outcome = record.check_trend(str(base), str(cur), threshold=2.0)
        assert outcome["regressions"] == []

    def test_missing_baseline_is_not_a_failure(self, tmp_path):
        cur = tmp_path / "cur.json"
        _write(cur, {"bench": {"run_s": 1.0, "environment": self._env()}})
        outcome = record.check_trend(str(tmp_path / "nope.json"), str(cur))
        assert outcome["regressions"] == []
        assert outcome["skipped"]

    def test_missing_current_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            record.check_trend(str(tmp_path / "b.json"), str(tmp_path / "missing.json"))

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            record.compare_benchmarks({"benchmarks": {}}, {"benchmarks": {}}, threshold=1.0)

    def test_cli_exit_codes(self, tmp_path, capsys):
        base, cur = tmp_path / "base.json", tmp_path / "cur.json"
        env = self._env()
        _write(base, {"bench": {"run_s": 1.0, "environment": env}})
        _write(cur, {"bench": {"run_s": 5.0, "environment": env}})
        assert record.main(["--check-trend", "--baseline", str(base), "--current", str(cur)]) == 1
        _write(cur, {"bench": {"run_s": 1.1, "environment": env}})
        assert record.main(["--check-trend", "--baseline", str(base), "--current", str(cur)]) == 0
        capsys.readouterr()
