"""Benchmark: regenerate Fig. 3 (watermark embedded in total device power)."""

from repro.experiments import run_fig3


def test_bench_fig3_power_embedding(benchmark, report):
    result = benchmark.pedantic(run_fig3, kwargs={"num_cycles": 4096}, rounds=1, iterations=1)
    report("Fig. 3: watermark power embedded in total device power", result.to_text())

    # The watermark modulation must be a small fraction of the device total
    # power and invisible without an analytical detection technique.
    assert result.relative_amplitude < 0.5
    assert result.deeply_embedded
    assert result.watermark_power.average_power_w < result.system_power.average_power_w
