"""Machine-readable benchmark recording.

The benchmark suite prints human-readable paper-vs-measured reports; this
helper additionally persists the performance-relevant numbers to a JSON
file (``BENCH_PR2.json`` by default, override with the ``REPRO_BENCH_JSON``
environment variable) so CI can upload them as an artifact and the perf
trajectory of the synthesis and detection engines is tracked release over
release instead of living only in scrollback.

Usage from a benchmark::

    from record import record_benchmark

    record_benchmark(
        "synthesis_watermark_trace",
        {"num_cycles": 100_000, "reference_s": 4.2, "synthesized_s": 0.2},
    )

Entries are merged by name, so re-running a benchmark updates its entry in
place and independent benchmarks can write to the same file.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Dict, Optional

#: Environment variable overriding the output path.
RESULTS_ENV = "REPRO_BENCH_JSON"

#: Default output file (relative to the pytest invocation directory).
DEFAULT_RESULTS_FILE = "BENCH_PR2.json"

#: Schema version of the emitted JSON document.
SCHEMA_VERSION = 1


def results_path() -> str:
    """Path of the benchmark results file."""
    return os.environ.get(RESULTS_ENV, DEFAULT_RESULTS_FILE)


def _environment() -> Dict[str, str]:
    import numpy

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def _load(path: str) -> Dict:
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if isinstance(payload, dict) and isinstance(payload.get("benchmarks"), dict):
                return payload
        except (OSError, ValueError):
            pass  # a corrupt results file is replaced, not fatal
    return {
        "schema": SCHEMA_VERSION,
        "benchmarks": {},
    }


def record_benchmark(name: str, metrics: Dict, path: Optional[str] = None) -> Dict:
    """Merge one benchmark entry into the results file and return the entry.

    ``metrics`` is any JSON-serialisable mapping (timings in seconds,
    speedups, problem sizes, pass/fail flags).  Each entry carries its own
    ``environment`` stamp, so merging runs from different interpreters
    into one file never mis-attributes earlier timings.  The write is
    atomic (temp file + rename) so a crashing benchmark never truncates
    earlier results.
    """
    if not name:
        raise ValueError("benchmark name must be non-empty")
    path = path or results_path()
    payload = _load(path)
    entry = dict(metrics)
    entry["recorded_unix"] = round(time.time(), 3)
    entry["environment"] = _environment()
    payload["benchmarks"][name] = entry
    temp_path = f"{path}.tmp"
    with open(temp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(temp_path, path)
    return entry
