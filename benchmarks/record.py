"""Machine-readable benchmark recording and trend checking.

The benchmark suite prints human-readable paper-vs-measured reports; this
helper additionally persists the performance-relevant numbers to a JSON
file (``BENCH.json`` by default, override with the ``REPRO_BENCH_JSON``
environment variable) so CI can upload them as an artifact and the perf
trajectory of the synthesis and detection engines is tracked release over
release instead of living only in scrollback.

The results file is PR-agnostic: each entry carries its own environment
and git-commit stamp, so one artifact accumulates timings across PRs.  A
pre-rename ``BENCH_PR2.json`` found next to a missing ``BENCH.json`` is
read as the starting point, so historic entries survive the rename.

Usage from a benchmark::

    from record import record_benchmark

    record_benchmark(
        "synthesis_watermark_trace",
        {"num_cycles": 100_000, "reference_s": 4.2, "synthesized_s": 0.2},
    )

Entries are merged by name, so re-running a benchmark updates its entry in
place and independent benchmarks can write to the same file.

Trend checking (the CI regression gate)::

    python benchmarks/record.py --check-trend --baseline BENCH.json \
        --current bench-current.json

compares every timing metric (keys ending in ``_s``) of the current run
against the baseline artifact and fails (exit code 1) when any bench got
more than ``--threshold`` (default 2.0) times slower.  Entries whose
baseline was recorded on a different machine are skipped with a warning --
cross-machine wall-clock comparisons would gate CI on hardware, not code.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from typing import Dict, List, Optional

#: Environment variable overriding the output path.
RESULTS_ENV = "REPRO_BENCH_JSON"

#: Default output file (relative to the pytest invocation directory).
DEFAULT_RESULTS_FILE = "BENCH.json"

#: Pre-rename artifacts read as a starting point when the default is absent.
LEGACY_RESULTS_FILES = ("BENCH_PR2.json",)

#: Environment variable overriding the recorded commit id.
COMMIT_ENV = "REPRO_BENCH_COMMIT"

#: Schema version of the emitted JSON document.
SCHEMA_VERSION = 2

#: Default slowdown factor beyond which the trend check fails.
DEFAULT_TREND_THRESHOLD = 2.0


def results_path() -> str:
    """Path of the benchmark results file."""
    return os.environ.get(RESULTS_ENV, DEFAULT_RESULTS_FILE)


_COMMIT_CACHE: Dict[str, str] = {}


def current_commit() -> str:
    """The git commit the benchmarks run against (``unknown`` outside git).

    ``REPRO_BENCH_COMMIT`` overrides the lookup (useful in CI, where the
    checkout may be shallow or detached).
    """
    override = os.environ.get(COMMIT_ENV)
    if override:
        return override
    if "head" not in _COMMIT_CACHE:
        try:
            head = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True,
                text=True,
                timeout=10,
                cwd=os.path.dirname(os.path.abspath(__file__)),
                check=False,
            ).stdout.strip()
        except (OSError, subprocess.SubprocessError):
            head = ""
        _COMMIT_CACHE["head"] = head or "unknown"
    return _COMMIT_CACHE["head"]


def _environment() -> Dict[str, str]:
    import numpy

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def _read_payload(path: str) -> Optional[Dict]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None  # a corrupt results file is replaced, not fatal
    if isinstance(payload, dict) and isinstance(payload.get("benchmarks"), dict):
        return payload
    return None


def _load(path: str) -> Dict:
    payload = _read_payload(path) if os.path.exists(path) else None
    if payload is None and os.path.basename(path) == DEFAULT_RESULTS_FILE:
        # Seed a fresh PR-agnostic file from a pre-rename artifact so the
        # recorded history survives the BENCH_PR2.json -> BENCH.json move.
        directory = os.path.dirname(path)
        for legacy in LEGACY_RESULTS_FILES:
            legacy_path = os.path.join(directory, legacy) if directory else legacy
            if os.path.exists(legacy_path):
                payload = _read_payload(legacy_path)
                if payload is not None:
                    break
    if payload is None:
        payload = {"benchmarks": {}}
    payload["schema"] = SCHEMA_VERSION
    return payload


def record_benchmark(name: str, metrics: Dict, path: Optional[str] = None) -> Dict:
    """Merge one benchmark entry into the results file and return the entry.

    ``metrics`` is any JSON-serialisable mapping (timings in seconds,
    speedups, problem sizes, pass/fail flags).  Each entry carries its own
    ``environment`` and ``commit`` stamp, so merging runs from different
    interpreters or revisions into one file never mis-attributes earlier
    timings.  The write is atomic (temp file + rename) so a crashing
    benchmark never truncates earlier results.
    """
    if not name:
        raise ValueError("benchmark name must be non-empty")
    path = path or results_path()
    payload = _load(path)
    entry = dict(metrics)
    entry["recorded_unix"] = round(time.time(), 3)
    entry["environment"] = _environment()
    entry["commit"] = current_commit()
    payload["benchmarks"][name] = entry
    temp_path = f"{path}.tmp"
    with open(temp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(temp_path, path)
    return entry


# -- trend checking -----------------------------------------------------------


def compare_benchmarks(
    baseline: Dict,
    current: Dict,
    threshold: float = DEFAULT_TREND_THRESHOLD,
) -> Dict[str, List[str]]:
    """Compare two results payloads; returns regressions and skip notes.

    A regression is any shared benchmark whose shared timing metric (a key
    ending in ``_s`` with a positive numeric baseline) got more than
    ``threshold`` times slower.  Entries recorded on a different machine
    or Python/numpy stack are skipped (reported under ``"skipped"``):
    wall-clock ratios across hardware measure the runner, not the code.
    """
    if threshold <= 1.0:
        raise ValueError("threshold must exceed 1.0 (it is a slowdown factor)")
    regressions: List[str] = []
    skipped: List[str] = []
    base_entries = baseline.get("benchmarks", {})
    current_entries = current.get("benchmarks", {})
    for name in sorted(set(base_entries) & set(current_entries)):
        base, new = base_entries[name], current_entries[name]
        base_env = base.get("environment", {})
        new_env = new.get("environment", {})
        if base_env and new_env:
            # "platform" is the full host string (OS/kernel/libc), which is
            # the closest thing to a host identity _environment() records;
            # "machine" alone is just the CPU architecture and would let
            # two different hosts with matching versions hard-fail the
            # gate on hardware speed.
            for field in ("machine", "platform", "python", "numpy"):
                if base_env.get(field) != new_env.get(field):
                    skipped.append(
                        f"{name}: baseline {field} "
                        f"{base_env.get(field)!r} != {new_env.get(field)!r}"
                    )
                    base = None
                    break
        if base is None:
            continue
        for key, base_value in base_entries[name].items():
            if not key.endswith("_s"):
                continue
            new_value = new.get(key)
            if not isinstance(base_value, (int, float)) or not isinstance(
                new_value, (int, float)
            ):
                continue
            if base_value <= 0:
                continue
            ratio = new_value / base_value
            if ratio > threshold:
                regressions.append(
                    f"{name}.{key}: {base_value:.4f}s -> {new_value:.4f}s "
                    f"({ratio:.2f}x slower, threshold {threshold:.2f}x)"
                )
    return {"regressions": regressions, "skipped": skipped}


def check_trend(
    baseline_path: str,
    current_path: Optional[str] = None,
    threshold: float = DEFAULT_TREND_THRESHOLD,
) -> Dict[str, List[str]]:
    """Load two artifacts and compare them (see :func:`compare_benchmarks`).

    A missing baseline yields no regressions (first run of a fresh repo);
    a missing *current* file is an error -- the benchmarks were supposed
    to have just written it.
    """
    current_path = current_path or results_path()
    current = _read_payload(current_path)
    if current is None:
        raise FileNotFoundError(f"current benchmark results not readable: {current_path}")
    baseline = _read_payload(baseline_path) if os.path.exists(baseline_path) else None
    if baseline is None:
        return {"regressions": [], "skipped": [f"no baseline at {baseline_path}"]}
    return compare_benchmarks(baseline, current, threshold=threshold)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: ``python benchmarks/record.py --check-trend [...]``."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check-trend", action="store_true", help="run the regression gate")
    parser.add_argument(
        "--baseline",
        default=DEFAULT_RESULTS_FILE,
        help="baseline artifact (default: committed BENCH.json)",
    )
    parser.add_argument(
        "--current",
        default=None,
        help="freshly written results (default: the REPRO_BENCH_JSON target)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_TREND_THRESHOLD", DEFAULT_TREND_THRESHOLD)),
        help="slowdown factor that fails the check (default 2.0)",
    )
    args = parser.parse_args(argv)
    if not args.check_trend:
        parser.error("nothing to do (pass --check-trend)")
    outcome = check_trend(args.baseline, args.current, threshold=args.threshold)
    for note in outcome["skipped"]:
        print(f"[trend] skipped: {note}")
    if outcome["regressions"]:
        for line in outcome["regressions"]:
            print(f"[trend] REGRESSION: {line}")
        return 1
    print("[trend] no benchmark regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
