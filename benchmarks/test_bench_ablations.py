"""Ablation benchmarks for the design choices called out in DESIGN.md.

Not figures from the paper, but studies that probe the knobs the paper's
design space exposes: detector implementation, modulated sub-module size,
background activity level, and acquisition length.
"""

import numpy as np
import pytest

from repro.core.architectures import ClockModulationWatermark
from repro.core.config import ExperimentConfig, MeasurementConfig, WatermarkConfig
from repro.detection.cpa import CPADetector, rotation_correlations
from repro.measurement.acquisition import AcquisitionCampaign
from repro.power.estimator import PowerEstimator
from repro.soc.chip import build_chip_one
from repro.soc.workloads import dhrystone_like_program, idle_loop_program


# ---------------------------------------------------------------------------
# Ablation 1: FFT-folded CPA vs naive rotation correlation
# ---------------------------------------------------------------------------


def _cpa_inputs(num_cycles=40_000, width=10, seed=0):
    rng = np.random.default_rng(seed)
    config = WatermarkConfig(lfsr_width=width, lfsr_seed=0x1F5 & ((1 << width) - 1))
    watermark = ClockModulationWatermark.from_config(config)
    sequence = watermark.sequence()
    tiled = np.tile(sequence, int(np.ceil(num_cycles / len(sequence))))[:num_cycles]
    measured = 5e-3 + 1.5e-3 * tiled + rng.normal(0, 40e-3, num_cycles)
    return sequence, measured


@pytest.mark.parametrize("method", ["fft", "naive"])
def test_bench_ablation_cpa_method(benchmark, report, method):
    sequence, measured = _cpa_inputs()
    correlations = benchmark(rotation_correlations, sequence, measured, method)
    report(
        f"Ablation: rotation correlation via {method}",
        f"rotations={len(correlations)}, cycles={len(measured)}, "
        f"peak rho={float(np.max(correlations)):.4f} at {int(np.argmax(correlations))}",
    )
    assert len(correlations) == len(sequence)


def test_bench_ablation_cpa_methods_agree(benchmark, report):
    sequence, measured = _cpa_inputs(num_cycles=20_000, width=8)

    def both():
        return (
            rotation_correlations(sequence, measured, method="fft"),
            rotation_correlations(sequence, measured, method="naive"),
        )

    fft, naive = benchmark.pedantic(both, rounds=1, iterations=1)
    report(
        "Ablation: FFT-folded CPA vs naive CPA",
        f"max |difference| = {float(np.max(np.abs(fft - naive))):.2e} (must be numerical noise)",
    )
    assert np.allclose(fft, naive, atol=1e-10)


# ---------------------------------------------------------------------------
# Ablation 2: modulated sub-module size vs correlation peak
# ---------------------------------------------------------------------------


def test_bench_ablation_modulated_block_size(benchmark, report):
    config = ExperimentConfig(measurement=MeasurementConfig(num_cycles=100_000))
    estimator = PowerEstimator.at_nominal()
    campaign = AcquisitionCampaign(config.measurement)
    detector = CPADetector(config.detection)

    def sweep():
        rows = []
        for registers in (256, 512, 1024, 2048, 4096):
            watermark = ClockModulationWatermark.reusing_ip_block(modulated_registers=registers)
            chip = build_chip_one(watermark=watermark, m0_window_cycles=4096)
            power = chip.total_power(config.measurement.num_cycles, seed=registers)
            measured = campaign.measure(power, seed=registers + 1)
            cpa = detector.detect(chip.watermark_sequence(), measured.values)
            rows.append((registers, cpa.peak_correlation, cpa.detected))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"  {registers:>5} modulated registers: peak rho={rho:.4f} detected={detected}" for registers, rho, detected in rows]
    report("Ablation: modulated sub-module size vs correlation peak", "\n".join(lines))

    peaks = [rho for _, rho, _ in rows]
    assert peaks == sorted(peaks)  # more modulated registers -> stronger peak
    assert rows[-1][2]  # the largest block is comfortably detectable


# ---------------------------------------------------------------------------
# Ablation 3: background workload vs detectability
# ---------------------------------------------------------------------------


def test_bench_ablation_background_workload(benchmark, report):
    config = ExperimentConfig(measurement=MeasurementConfig(num_cycles=100_000))
    campaign = AcquisitionCampaign(config.measurement)
    detector = CPADetector(config.detection)

    def sweep():
        results = {}
        for label, program in (("idle", idle_loop_program()), ("dhrystone", dhrystone_like_program())):
            watermark = ClockModulationWatermark.from_config(config.watermark)
            chip = build_chip_one(watermark=watermark, program=program, m0_window_cycles=4096)
            power = chip.total_power(config.measurement.num_cycles, seed=5)
            measured = campaign.measure(power, seed=6)
            results[label] = detector.detect(chip.watermark_sequence(), measured.values)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "Ablation: background workload vs detectability",
        "\n".join(f"  {label:<10} {cpa.summary()}" for label, cpa in results.items()),
    )
    assert all(cpa.detected for cpa in results.values())


# ---------------------------------------------------------------------------
# Ablation 4: acquisition length vs detection confidence
# ---------------------------------------------------------------------------


def test_bench_ablation_acquisition_length(benchmark, report):
    detector = CPADetector()

    def sweep():
        watermark = ClockModulationWatermark.from_config(WatermarkConfig())
        chip = build_chip_one(watermark=watermark, m0_window_cycles=4096)
        rows = []
        for num_cycles in (50_000, 100_000, 200_000, 300_000):
            campaign = AcquisitionCampaign(MeasurementConfig(num_cycles=num_cycles))
            power = chip.total_power(num_cycles, seed=21)
            measured = campaign.measure(power, seed=22)
            cpa = detector.detect(chip.watermark_sequence(), measured.values)
            rows.append((num_cycles, cpa.z_score, cpa.detected))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "Ablation: acquisition length vs detection confidence",
        "\n".join(f"  {cycles:>7} cycles: z={z:5.1f} detected={detected}" for cycles, z, detected in rows),
    )
    z_scores = [z for _, z, _ in rows]
    assert z_scores[-1] > z_scores[0]
    assert rows[-1][2]  # the paper's 300,000-cycle acquisition detects reliably
