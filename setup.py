"""Setup shim.

The environment this reproduction targets has no network access and no
``wheel`` package, so PEP 517 editable installs (which build a wheel) are
not available.  Keeping a classic ``setup.py`` lets ``pip install -e .``
fall back to the legacy ``setup.py develop`` path; all project metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
