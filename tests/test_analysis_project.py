"""repro-lint v2: symbol table / call graph units + the concurrency rule pack.

Per the house style each rule gets a violating fixture (asserting rule id
*and* line), a clean fixture, and a pragma'd fixture; the project layer
itself (summaries, import-aware resolution, reachability) is unit-tested
first since every rule stands on it.
"""

import textwrap
from pathlib import Path

import pytest

from repro.analysis.engine import (
    LintModule,
    lint_source,
    lint_sources,
    unsuppressed,
)
from repro.analysis.project import (
    MODULE_BODY,
    LintProject,
    ModuleSummary,
    summarize_module,
)
from repro.analysis.rules import RULE_INDEX


def snippet(text: str) -> str:
    return textwrap.dedent(text).lstrip("\n")


def summarize(text: str, path: str) -> ModuleSummary:
    return summarize_module(LintModule.from_source(snippet(text), path))


def violations(findings, rule_id: str):
    return [f for f in unsuppressed(findings) if f.rule_id == rule_id]


# -- ModuleSummary extraction ----------------------------------------------------


class TestSummaryExtraction:
    def test_lock_attrs_and_held_locks(self):
        summary = summarize(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def put(self, item):
                    with self._lock:
                        self._items.append(item)

                def drain(self):
                    self._items.clear()
            """,
            "src/repro/box.py",
        )
        box = summary.classes["Box"]
        assert set(box.lock_attrs) == {"_lock"}
        modes = {
            (access.function, access.mode, bool(access.locks))
            for access in box.accesses
            if access.attr == "_items"
        }
        assert ("Box.put", "rmw", True) in modes
        assert ("Box.drain", "rmw", False) in modes
        init = [a for a in box.accesses if a.function == "Box.__init__"]
        assert all(a.in_init for a in init)

    def test_thread_fork_and_rng_sites(self):
        summary = summarize(
            """
            import multiprocessing
            import os
            import threading
            from numpy.random import default_rng

            def serve():
                threading.Thread(target=work).start()

            def work(seed):
                rng = default_rng(seed + 1)
                os.fork()
                multiprocessing.Process(target=work).start()
            """,
            "src/repro/svc.py",
        )
        assert summary.starts_threads
        assert summary.functions["serve"].starts_thread
        work = summary.functions["work"]
        assert [api for _, api in work.fork_calls] == [
            "os.fork",
            "multiprocessing.Process",
        ]
        assert [src for _, src in work.rng_calls] == ["seed + 1"]

    def test_threading_server_base_marks_module(self):
        summary = summarize(
            """
            from http.server import ThreadingHTTPServer

            class Server(ThreadingHTTPServer):
                pass
            """,
            "src/repro/srv.py",
        )
        assert summary.starts_threads

    def test_json_round_trip_is_lossless(self):
        import json

        summary = summarize(
            """
            import threading

            _LOCK = threading.Lock()
            _TABLE = {}

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cache = {}

                def get(self, key):
                    with self._lock:
                        value = self._cache.get(key)
                        if value is None:
                            value = key * 2
                            self._cache[key] = value
                        return value
            """,
            "src/repro/box.py",
        )
        wire = json.loads(json.dumps(summary.to_json_dict()))
        restored = ModuleSummary.from_json_dict(wire)
        assert restored.classes["Box"].lock_attrs == summary.classes["Box"].lock_attrs
        assert restored.global_locks == summary.global_locks
        assert len(restored.cache_ops) == len(summary.cache_ops)
        assert restored.to_json_dict() == json.loads(
            json.dumps(summary.to_json_dict())
        )


# -- call graph ------------------------------------------------------------------


class TestCallGraph:
    def _project(self):
        sources = {
            "src/repro/pipeline/stages.py": snippet(
                """
                from repro.detection import det

                def run_cell(spec):
                    return det.detect(spec)
                """
            ),
            "src/repro/detection/det.py": snippet(
                """
                from repro.measurement.meas import acquire

                class Detector:
                    def go(self):
                        return self.helper()

                    def helper(self):
                        return acquire(1)

                def detect(spec):
                    return Detector().go()
                """
            ),
            "src/repro/measurement/meas.py": snippet(
                """
                def acquire(seed):
                    return seed
                """
            ),
        }
        summaries = [
            summarize_module(LintModule.from_source(source, path))
            for path, source in sources.items()
        ]
        return LintProject(summaries)

    def test_resolution_through_imports_self_and_constructors(self):
        project = self._project()
        cell = "pipeline/stages.py::run_cell"
        assert "detection/det.py::detect" in project.callees(cell)
        go = project.callees("detection/det.py::Detector.go")
        assert "detection/det.py::Detector.helper" in go
        helper = project.callees("detection/det.py::Detector.helper")
        assert "measurement/meas.py::acquire" in helper
        detect = project.callees("detection/det.py::detect")
        assert "detection/det.py::Detector.__init__" not in detect  # no __init__
        assert "detection/det.py::Detector.go" in detect

    def test_reachability_closure_includes_module_bodies(self):
        project = self._project()
        reached = project.reachable_from(["pipeline/stages.py::run_cell"])
        assert "measurement/meas.py::acquire" in reached
        # importing a reached module ran its body
        assert f"detection/det.py::{MODULE_BODY}" in reached

    def test_unreachable_function_stays_out(self):
        project = self._project()
        reached = project.reachable_from(["measurement/meas.py::acquire"])
        assert "detection/det.py::detect" not in reached


# -- CONC001 ---------------------------------------------------------------------


class TestCONC001:
    def test_off_lock_rmw_and_read_are_flagged(self):
        findings = lint_source(
            snippet(
                """
                import threading

                class Counter:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._total = 0

                    def add(self, n):
                        with self._lock:
                            self._total += n

                    def bump(self):
                        self._total += 1

                    def peek(self):
                        return self._total
                """
            ),
            "src/repro/counter.py",
        )
        found = violations(findings, "CONC001")
        assert [f.line for f in found] == [13, 16]
        assert "bump" in found[0].message and "_lock" in found[0].message

    def test_fully_locked_class_is_clean(self):
        findings = lint_source(
            snippet(
                """
                import threading

                class Counter:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._total = 0
                        self.limit = 10

                    def add(self, n):
                        with self._lock:
                            self._total += n

                    def capacity(self):
                        return self.limit
                """
            ),
            "src/repro/counter.py",
        )
        # ``limit`` is never mutated after __init__: config, not state.
        assert violations(findings, "CONC001") == []

    def test_module_global_discipline(self):
        findings = lint_source(
            snippet(
                """
                import threading

                _LOCK = threading.Lock()
                _STATE = {}

                def set_item(key, value):
                    with _LOCK:
                        _STATE[key] = value

                def drop(key):
                    del _STATE[key]
                """
            ),
            "src/repro/registry_mod.py",
        )
        found = violations(findings, "CONC001")
        assert [f.line for f in found] == [11]
        assert "_STATE" in found[0].message

    def test_pragma_suppresses_with_reason(self):
        findings = lint_source(
            snippet(
                """
                import threading

                class Counter:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._total = 0

                    def add(self, n):
                        with self._lock:
                            self._total += n

                    def racy_peek(self):
                        # repro-lint: allow[CONC001] monitoring read; staleness is fine
                        return self._total
                """
            ),
            "src/repro/counter.py",
        )
        assert violations(findings, "CONC001") == []
        assert any(f.rule_id == "CONC001" and f.suppressed for f in findings)


# -- CONC002 ---------------------------------------------------------------------


_FORKER = """
import os

def run():
    spawn()

def spawn():
    os.fork()
"""

_THREADER = """
import threading
from repro import work

def serve():
    threading.Thread(target=work.run).start()
"""


class TestCONC002:
    def test_fork_reachable_from_thread_module_is_flagged(self):
        findings = lint_sources(
            {
                "src/repro/svc.py": snippet(_THREADER),
                "src/repro/work.py": snippet(_FORKER),
            }
        )
        found = violations(findings, "CONC002")
        assert len(found) == 1
        assert found[0].path == "src/repro/work.py"
        assert found[0].line == 7
        assert "svc.py" in found[0].message

    def test_sanctioned_supervisor_is_exempt(self):
        findings = lint_sources(
            {
                "src/repro/svc.py": snippet(_THREADER.replace("repro import work", "repro.pipeline import backends").replace("work.run", "backends.run")),
                "src/repro/pipeline/backends.py": snippet(_FORKER),
            }
        )
        assert violations(findings, "CONC002") == []

    def test_fork_without_thread_reachability_is_clean(self):
        findings = lint_sources(
            {
                "src/repro/svc.py": snippet(
                    """
                    import threading

                    def serve():
                        threading.Thread(target=print).start()
                    """
                ),
                "src/repro/work.py": snippet(_FORKER),
            }
        )
        assert violations(findings, "CONC002") == []

    def test_pragma_suppresses(self):
        findings = lint_sources(
            {
                "src/repro/svc.py": snippet(_THREADER),
                "src/repro/work.py": snippet(_FORKER).replace(
                    "    os.fork()",
                    "    # repro-lint: allow[CONC002] pre-thread daemonization path\n"
                    "    os.fork()",
                ),
            }
        )
        assert violations(findings, "CONC002") == []


# -- CONC003 ---------------------------------------------------------------------


_MEMO_CLASS = """
import threading

class Service:
    def __init__(self):
        self._lock = threading.Lock()
        self._cache = {}

    def lookup(self, key):
        with self._lock:
            value = self._cache.get(key)
            if value is None:
                value = key * 2
                self._cache[key] = value
            return value
"""


class TestCONC003:
    def test_bare_dict_memoization_in_service_is_flagged(self):
        findings = lint_source(snippet(_MEMO_CLASS), "src/repro/service/widget.py")
        found = violations(findings, "CONC003")
        assert [f.line for f in found] == [13]
        assert "LRUCache" in found[0].message

    def test_membership_guard_variant_is_flagged(self):
        findings = lint_source(
            snippet(
                """
                _MEMO = {}

                def lookup(key):
                    if key not in _MEMO:
                        _MEMO[key] = key * 2
                    return _MEMO[key]
                """
            ),
            "src/repro/pipeline/helper.py",
        )
        found = violations(findings, "CONC003")
        assert [f.line for f in found] == [5]

    def test_out_of_scope_module_is_clean(self):
        findings = lint_source(snippet(_MEMO_CLASS), "src/repro/soc/widget.py")
        assert violations(findings, "CONC003") == []

    def test_state_table_without_missing_key_guard_is_clean(self):
        # TokenBucket-style unconditional read-update-store is state,
        # not memoization.
        findings = lint_source(
            snippet(
                """
                import threading

                class Bucket:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._levels = {}

                    def consume(self, who, now):
                        with self._lock:
                            level, last = self._levels.get(who, (1.0, now))
                            self._levels[who] = (level - 0.1, now)
                """
            ),
            "src/repro/service/bucket.py",
        )
        assert violations(findings, "CONC003") == []

    def test_sanctioned_lrucache_implementation_is_exempt(self):
        source = snippet(_MEMO_CLASS).replace("class Service:", "class LRUCache:")
        findings = lint_source(source, "src/repro/caching.py")
        assert violations(findings, "CONC003") == []
        # ...but a second bare-dict class in caching.py is not exempt
        findings = lint_source(source.replace("LRUCache", "SideCache"),
                               "src/repro/caching.py")
        assert len(violations(findings, "CONC003")) == 1

    def test_pragma_suppresses(self):
        source = snippet(_MEMO_CLASS).replace(
            "                self._cache[key] = value",
            "                # repro-lint: allow[CONC003] bounded by caller\n"
            "                self._cache[key] = value",
        )
        findings = lint_source(source, "src/repro/service/widget.py")
        assert violations(findings, "CONC003") == []


# -- RNG002 ----------------------------------------------------------------------


def _rng_sources(second_seed: str = "seed"):
    return {
        "src/repro/pipeline/stages.py": snippet(
            """
            from repro.detection import det
            from repro.measurement import meas

            def run_cell(spec):
                meas.acquire(spec.seed)
                det.detect(spec.seed)
            """
        ),
        "src/repro/measurement/meas.py": snippet(
            """
            from numpy.random import default_rng

            def acquire(seed):
                return default_rng(seed)
            """
        ),
        "src/repro/detection/det.py": snippet(
            f"""
            from numpy.random import default_rng

            def detect(seed):
                return default_rng({second_seed})
            """
        ),
    }


class TestRNG002:
    def test_identical_seed_expressions_in_one_cell_collide(self):
        findings = lint_sources(_rng_sources())
        found = violations(findings, "RNG002")
        assert {(f.path, f.line) for f in found} == {
            ("src/repro/measurement/meas.py", 4),
            ("src/repro/detection/det.py", 4),
        }
        assert "detection/det.py:4" in [
            f.message for f in found if f.path.endswith("meas.py")
        ][0]

    def test_distinct_seed_expressions_are_clean(self):
        findings = lint_sources(_rng_sources(second_seed="seed + 1"))
        assert violations(findings, "RNG002") == []

    def test_unreachable_site_does_not_collide(self):
        sources = _rng_sources()
        sources["src/repro/pipeline/stages.py"] = snippet(
            """
            from repro.measurement import meas

            def run_cell(spec):
                meas.acquire(spec.seed)
            """
        )
        findings = lint_sources(sources)
        assert violations(findings, "RNG002") == []

    def test_pragma_suppresses(self):
        sources = _rng_sources()
        sources["src/repro/detection/det.py"] = sources[
            "src/repro/detection/det.py"
        ].replace(
            "    return default_rng(seed)",
            "    # repro-lint: allow[RNG002] upstream derives distinct seeds\n"
            "    return default_rng(seed)",
        )
        found = violations(lint_sources(sources), "RNG002")
        # only the unpragma'd partner still reports
        assert {f.path for f in found} == {"src/repro/measurement/meas.py"}


# -- DEAD001 ---------------------------------------------------------------------


class TestDEAD001:
    def test_stale_pragma_is_flagged(self):
        findings = lint_source(
            snippet(
                """
                # repro-lint: allow[DET001] stale: the call below was removed
                x = 1
                """
            ),
            "src/repro/mod.py",
        )
        found = violations(findings, "DEAD001")
        assert [f.line for f in found] == [2]
        assert "DET001" in found[0].message

    def test_live_pragma_is_not_stale(self):
        findings = lint_source(
            snippet(
                """
                import time

                # repro-lint: allow[DET001] wall-clock needed for the log banner
                t = time.time()
                """
            ),
            "src/repro/mod.py",
        )
        assert violations(findings, "DEAD001") == []
        assert any(f.rule_id == "DET001" and f.suppressed for f in findings)

    def test_pragma_for_inactive_rule_is_not_judged(self):
        findings = lint_source(
            snippet(
                """
                # repro-lint: allow[DET001] only judged when DET001 runs
                x = 1
                """
            ),
            "src/repro/mod.py",
            rules=[RULE_INDEX["RNG001"], RULE_INDEX["DEAD001"]],
        )
        assert violations(findings, "DEAD001") == []

    def test_malformed_pragmas_stay_lint001_not_dead001(self):
        findings = lint_source(
            snippet(
                """
                x = 1  # repro-lint: allow[DET001]
                """
            ),
            "src/repro/mod.py",
        )
        assert violations(findings, "DEAD001") == []
        assert [f.rule_id for f in unsuppressed(findings)] == ["LINT001"]


# -- seeded fixtures (the CI liveness guards) ------------------------------------

_SEEDED = Path(__file__).resolve().parent / "fixtures" / "lint_seeded" / "repro"


class TestSeededFixtures:
    """Each new rule's CI smoke fixture must exist and still trigger.

    CI lints these files and requires a nonzero exit; this test pins the
    same facts in tier-1, so deleting or 'fixing' a fixture fails both.
    """

    @pytest.mark.parametrize(
        "relative, rule_id",
        [
            ("counter_conc001.py", "CONC001"),
            ("forker_conc002.py", "CONC002"),
            ("service/memo_conc003.py", "CONC003"),
            ("pipeline/stages.py", "RNG002"),
            ("stale_dead001.py", "DEAD001"),
        ],
    )
    def test_fixture_triggers_its_rule(self, relative, rule_id):
        path = _SEEDED / relative
        assert path.exists(), f"CI smoke fixture missing: {path}"
        findings = lint_source(path.read_text(), str(path))
        assert rule_id in {f.rule_id for f in unsuppressed(findings)}
