"""Tests for the Table I, Table II and Section VI experiment drivers."""

import pytest

from repro.experiments import (
    paper_expectations,
    run_robustness,
    run_table1,
    run_table2,
)


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table1()

    def test_four_rows(self, result):
        assert [row.switching_registers for row in result.rows] == [0, 256, 512, 1024]

    def test_dynamic_power_close_to_paper(self, result):
        expectations = paper_expectations()["table1"]["dynamic_power_mw"]
        for row in result.rows:
            expected_mw = expectations[row.switching_registers]
            assert row.dynamic_w * 1e3 == pytest.approx(expected_mw, rel=0.15)

    def test_dynamic_power_monotonic(self, result):
        assert result.dynamic_power_monotonic()

    def test_static_power_negligible(self, result):
        for row in result.rows:
            assert row.static_w < 1e-6
            assert row.static_w / row.total_w < 0.01

    def test_clock_power_dominates_data_power(self, result):
        # Going from 0 to 1,024 switching registers adds data power for all
        # 1,024 registers; that increase must stay below the clock-only row,
        # i.e. per-register clock power > per-register data power.
        clock_only = result.row(0).dynamic_w
        full = result.row(1024).dynamic_w
        assert full - clock_only < clock_only

    def test_share_of_watermark_dynamic_high(self, result):
        expectations = paper_expectations()["table1"]["share_of_watermark_dynamic"]
        for row in result.rows:
            assert row.share_of_watermark_dynamic == pytest.approx(
                expectations[row.switching_registers], abs=0.02
            )

    def test_row_lookup_and_rendering(self, result):
        assert result.row(512).switching_registers == 512
        with pytest.raises(KeyError):
            result.row(999)
        text = result.to_text()
        assert "No Data Switching" in text
        assert "1024 Switching Registers" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table2()

    def test_register_counts_match_paper_exactly(self, result):
        expectations = paper_expectations()["table2"]["load_registers"]
        for row in result.table:
            assert row.load_registers == expectations[row.load_power_w]

    def test_overhead_reductions_match_paper(self, result):
        expectations = paper_expectations()["table2"]["overhead_reduction"]
        for row in result.table:
            assert row.overhead_reduction == pytest.approx(expectations[row.load_power_w], abs=5e-3)

    def test_headline_value(self, result):
        assert result.headline_reduction == pytest.approx(0.98, abs=1e-3)

    def test_sizing_coefficients_come_from_power_model(self, result):
        assert result.per_register_clock_power_w == pytest.approx(1.476e-6, rel=1e-6)
        assert result.per_register_data_power_w == pytest.approx(1.126e-6, rel=1e-6)

    def test_monotonic(self, result):
        assert result.reduction_monotonic()

    def test_rendering(self, result):
        text = result.to_text()
        assert "98.0%" in text
        assert "1.476" in text


class TestRobustnessExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_robustness()

    def test_baseline_easily_removed(self, result):
        assert result.baseline_removed_by_blind_attack
        assert result.baseline_removal_harmless

    def test_clock_modulation_robust(self, result):
        assert result.clock_modulation_survives_blind_attack
        assert result.clock_modulation_removal_breaks_system

    def test_overall_claim(self, result):
        assert result.improved_robustness_demonstrated
        assert "improved robustness demonstrated: True" in result.to_text()

    def test_invalid_gate_count_rejected(self):
        with pytest.raises(ValueError):
            run_robustness(modulated_gates=0)
