"""Unit tests for repro.detection.metrics."""

import numpy as np
import pytest

from repro.detection.metrics import (
    DetectionCampaignResult,
    detection_probability,
    estimate_required_cycles,
    expected_correlation,
    watermark_snr,
)


class TestSNRAndExpectedCorrelation:
    def test_snr(self):
        assert watermark_snr(1e-3, 40e-3) == pytest.approx(0.025)
        assert watermark_snr(1e-3, 0.0) == float("inf")
        assert watermark_snr(0.0, 0.0) == 0.0

    def test_snr_validation(self):
        with pytest.raises(ValueError):
            watermark_snr(-1.0, 1.0)

    def test_expected_correlation_formula(self):
        # a = 2, sigma = 1, duty 0.5 -> signal std 1 -> rho = 1/sqrt(2)
        assert expected_correlation(2.0, 1.0) == pytest.approx(1 / np.sqrt(2))

    def test_expected_correlation_small_signal_limit(self):
        rho = expected_correlation(1.5e-3, 44e-3)
        assert rho == pytest.approx(0.5 * 1.5e-3 / 44e-3, rel=0.01)

    def test_expected_correlation_validation(self):
        with pytest.raises(ValueError):
            expected_correlation(1.0, 1.0, duty=0.0)

    def test_expected_correlation_matches_simulation(self):
        rng = np.random.default_rng(0)
        duty = 0.5
        wmark = (rng.random(200_000) < duty).astype(float)
        y = 2.0 * wmark + rng.normal(0, 5.0, len(wmark))
        simulated = np.corrcoef(wmark, y)[0, 1]
        assert expected_correlation(2.0, 5.0, duty) == pytest.approx(simulated, abs=0.01)


class TestRequiredCycles:
    def test_paper_operating_point_is_feasible(self):
        # With the calibrated rho ~ 0.017 the paper's 300,000 cycles suffice.
        required = estimate_required_cycles(0.017, num_rotations=4095)
        assert required < 300_000

    def test_smaller_correlation_needs_more_cycles(self):
        assert estimate_required_cycles(0.005, 4095) > estimate_required_cycles(0.02, 4095)

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_required_cycles(0.0, 4095)
        with pytest.raises(ValueError):
            estimate_required_cycles(0.5, 1)
        with pytest.raises(ValueError):
            estimate_required_cycles(0.5, 4095, confidence_sigma=0.0)


class TestCampaignResult:
    def test_rates(self):
        result = DetectionCampaignResult(
            label="chip1",
            detections=[True, True, False, True],
            peak_correlations=[0.02, 0.018, 0.004, 0.021],
        )
        assert result.repetitions == 4
        assert result.detection_rate == pytest.approx(0.75)
        assert result.mean_peak_correlation == pytest.approx(np.mean([0.02, 0.018, 0.004, 0.021]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DetectionCampaignResult("x", [True], [0.1, 0.2])

    def test_detection_probability_helper(self):
        assert detection_probability([True, False, True, True]) == pytest.approx(0.75)
        assert detection_probability([]) == 0.0
