"""Unit tests for repro.detection.statistics."""

import numpy as np
import pytest

from repro.detection.statistics import (
    BoxPlotStats,
    RepetitionStatistics,
    detection_z_score,
    peak_to_second_peak_ratio,
)


def make_runs(num_runs=20, period=255, peak_rotation=40, peak_value=0.02, noise=0.002, seed=0):
    rng = np.random.default_rng(seed)
    runs = []
    for _ in range(num_runs):
        run = rng.normal(0, noise, period)
        run[peak_rotation] = peak_value + rng.normal(0, noise)
        runs.append(run)
    return runs


class TestScores:
    def test_detection_z_score(self):
        correlations = np.zeros(100)
        correlations[10] = 0.5
        assert detection_z_score(correlations) == float("inf")

    def test_detection_z_score_with_noise(self):
        rng = np.random.default_rng(0)
        correlations = rng.normal(0, 0.01, 1000)
        correlations[5] = 0.1
        assert detection_z_score(correlations) > 5

    def test_z_score_needs_three_values(self):
        with pytest.raises(ValueError):
            detection_z_score(np.array([0.1, 0.2]))

    def test_peak_to_second_peak_ratio(self):
        correlations = np.array([0.01, 0.05, -0.02, 0.002])
        assert peak_to_second_peak_ratio(correlations) == pytest.approx(2.5)

    def test_ratio_with_zero_second(self):
        assert peak_to_second_peak_ratio(np.array([0.5, 0.0, 0.0])) == float("inf")


class TestBoxPlotStats:
    def test_from_samples(self):
        stats = BoxPlotStats.from_samples(np.linspace(0, 1, 101))
        assert stats.median == pytest.approx(0.5)
        assert stats.q1 == pytest.approx(0.25)
        assert stats.q3 == pytest.approx(0.75)
        assert stats.interquartile_range == pytest.approx(0.5)

    def test_whiskers_cover_95_percent(self):
        rng = np.random.default_rng(0)
        stats = BoxPlotStats.from_samples(rng.normal(0, 1, 10_000))
        assert stats.whisker_low == pytest.approx(-1.96, abs=0.1)
        assert stats.whisker_high == pytest.approx(1.96, abs=0.1)

    def test_outliers_identified(self):
        samples = list(np.zeros(99)) + [100.0]
        stats = BoxPlotStats.from_samples(samples)
        assert 100.0 in stats.outliers

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BoxPlotStats.from_samples([])


class TestRepetitionStatistics:
    def test_peak_rotation_identified(self):
        stats = RepetitionStatistics.from_correlation_runs("chip", make_runs())
        assert stats.peak_rotation == 40
        assert stats.repetitions == 20

    def test_peak_and_off_peak_separated(self):
        stats = RepetitionStatistics.from_correlation_runs("chip", make_runs())
        assert stats.separation() > 0
        assert stats.peak_box().median > stats.off_peak_box().median

    def test_detection_rate_with_flags(self):
        runs = make_runs(num_runs=10)
        stats = RepetitionStatistics.from_correlation_runs(
            "chip", runs, detected_flags=[True] * 8 + [False] * 2
        )
        assert stats.detection_rate == pytest.approx(0.8)

    def test_detection_rate_computed_from_z_scores(self):
        stats = RepetitionStatistics.from_correlation_runs("chip", make_runs(peak_value=0.05))
        assert stats.detection_rate == 1.0

    def test_requires_runs(self):
        with pytest.raises(ValueError):
            RepetitionStatistics.from_correlation_runs("chip", [])

    def test_no_separation_for_noise_only_runs(self):
        rng = np.random.default_rng(3)
        runs = [rng.normal(0, 0.002, 255) for _ in range(10)]
        stats = RepetitionStatistics.from_correlation_runs("chip", runs)
        assert stats.separation() < 0.002
