"""Equivalence and property tests for the batched CPA detection engine.

The batched engine must be interchangeable with the single-trace detector:

* ``naive`` vs ``fft`` vs batched correlations agree to 1e-9 across random
  periods, trace lengths, duties and zero-variance edge cases;
* a batch of one is *bit-identical* to ``CPADetector.detect`` (the single
  path delegates to the batched engine, and the suite locks that in);
* chunking knobs never change detection decisions.
"""

import numpy as np
import pytest

from repro.core.config import DetectionConfig
from repro.detection.batch import (
    BatchCPADetector,
    BatchCPAResult,
    batch_rotation_correlations,
    fold_by_phase,
)
from repro.detection.cpa import CPADetector, rotation_correlations

_RESULT_FIELDS = (
    "peak_rotation",
    "peak_correlation",
    "noise_floor_std",
    "second_peak_correlation",
    "z_score",
    "detected",
    "threshold",
)


def synthesize(rng, period, num_cycles, duty=1.0, amplitude=1.0, noise=2.0):
    """A random 0/1 sequence embedded at a random rotation in Gaussian noise."""
    sequence = (rng.random(period) < 0.5).astype(np.float64)
    if sequence.sum() == 0:
        sequence[0] = 1.0  # keep at least one active phase
    offset = int(rng.integers(0, period))
    tiled = np.tile(sequence, int(np.ceil((num_cycles + period) / period)))
    watermark = tiled[offset : offset + num_cycles].copy()
    if duty < 1.0:
        watermark *= rng.random(num_cycles) < duty
    measured = 5.0 + amplitude * watermark + rng.normal(0.0, noise, num_cycles)
    return sequence, measured


class TestCorrelationEquivalence:
    """naive == fft == batched to 1e-9 across the randomized design space."""

    @pytest.mark.parametrize("period", [3, 5, 17, 63, 101, 255, 257])
    def test_methods_agree_across_lengths(self, period):
        rng = np.random.default_rng(period)
        for multiplier in (1.0, 2.5, 20.0):
            num_cycles = max(period, int(period * multiplier))
            sequence, measured = synthesize(rng, period, num_cycles)
            naive = rotation_correlations(sequence, measured, method="naive")
            fft = rotation_correlations(sequence, measured, method="fft")
            batched = batch_rotation_correlations(sequence, measured[None, :])[0]
            assert np.allclose(naive, fft, atol=1e-9)
            assert np.allclose(naive, batched, atol=1e-9)

    @pytest.mark.parametrize("duty", [1.0, 0.5, 0.1])
    @pytest.mark.parametrize("period", [31, 127])
    def test_methods_agree_across_duties(self, period, duty):
        rng = np.random.default_rng(int(duty * 100) + period)
        sequence, measured = synthesize(rng, period, 12 * period, duty=duty)
        naive = rotation_correlations(sequence, measured, method="naive")
        batched = batch_rotation_correlations(sequence, measured[None, :])[0]
        assert np.allclose(naive, batched, atol=1e-9)

    def test_batched_naive_method_matches_batched_fft(self):
        rng = np.random.default_rng(7)
        sequence, _ = synthesize(rng, 31, 31)
        matrix = np.stack([synthesize(rng, 31, 400)[1][:400] for _ in range(4)])
        naive = batch_rotation_correlations(sequence, matrix, method="naive")
        fft = batch_rotation_correlations(sequence, matrix, method="fft")
        assert np.allclose(naive, fft, atol=1e-9)

    def test_zero_variance_trace_gives_zero_correlations(self):
        sequence = np.array([1.0, 0.0, 1.0, 0.0, 0.0])
        flat = np.full((2, 50), 3.25)
        assert np.all(batch_rotation_correlations(sequence, flat) == 0.0)

    def test_zero_variance_sequence_gives_zero_correlations(self):
        rng = np.random.default_rng(11)
        sequence = np.ones(7)
        matrix = rng.normal(size=(3, 100))
        assert np.all(batch_rotation_correlations(sequence, matrix) == 0.0)

    def test_mixed_zero_variance_rows(self):
        rng = np.random.default_rng(12)
        sequence, noisy = synthesize(rng, 15, 300, noise=0.5)
        matrix = np.stack([noisy, np.zeros(300)])
        batched = batch_rotation_correlations(sequence, matrix)
        assert np.allclose(
            batched[0], rotation_correlations(sequence, noisy, method="naive"), atol=1e-9
        )
        assert np.all(batched[1] == 0.0)

    def test_clean_tiled_signal_gives_unity_peak_per_row(self):
        rng = np.random.default_rng(13)
        sequence = (rng.random(16) < 0.5).astype(float)
        sequence[0] = 1.0
        matrix = np.stack([np.roll(np.tile(sequence, 8), -r) for r in (0, 3, 9)])
        batched = batch_rotation_correlations(sequence, matrix)
        for row, rotation in zip(batched, (0, 3, 9)):
            assert row[rotation] == pytest.approx(1.0)

    def test_per_trial_sequence_matrix(self):
        rng = np.random.default_rng(14)
        period, num_cycles = 31, 620
        rows, sequences = [], []
        for _ in range(3):
            sequence, measured = synthesize(rng, period, num_cycles)
            sequences.append(sequence)
            rows.append(measured)
        batched = batch_rotation_correlations(np.stack(sequences), np.stack(rows))
        for i in range(3):
            expected = rotation_correlations(sequences[i], rows[i], method="naive")
            assert np.allclose(batched[i], expected, atol=1e-9)

    def test_non_binary_sequences(self):
        rng = np.random.default_rng(15)
        sequence = rng.normal(size=63)
        matrix = np.stack(
            [np.tile(sequence, 10) + rng.normal(0, 0.1, 630) for _ in range(2)]
        )
        batched = batch_rotation_correlations(sequence, matrix)
        for i in range(2):
            expected = rotation_correlations(sequence, matrix[i], method="naive")
            assert np.allclose(batched[i], expected, atol=1e-9)


class TestBatchOfOneExactness:
    """A batch of one must equal CPADetector.detect bit for bit."""

    @pytest.mark.parametrize("period,num_cycles", [(31, 1000), (255, 10_003), (63, 63)])
    def test_detect_many_rows_equal_single_detections(self, period, num_cycles):
        rng = np.random.default_rng(period + num_cycles)
        sequence, _ = synthesize(rng, period, period)
        matrix = np.stack(
            [synthesize(rng, period, num_cycles, noise=n)[1] for n in (0.5, 2.0, 8.0)]
        )
        detector = CPADetector()
        batch = BatchCPADetector().detect_many(sequence, matrix)
        for i in range(matrix.shape[0]):
            single = detector.detect(sequence, matrix[i])
            row = batch.result(i)
            assert np.array_equal(single.correlations, row.correlations)
            for name in _RESULT_FIELDS:
                assert getattr(single, name) == getattr(row, name), name

    def test_row_chunking_is_bit_identical(self):
        rng = np.random.default_rng(20)
        sequence, _ = synthesize(rng, 63, 63)
        matrix = np.stack([synthesize(rng, 63, 2017)[1] for _ in range(7)])
        detector = BatchCPADetector()
        full = detector.detect_many(sequence, matrix)
        chunked = detector.detect_many(sequence, matrix, max_trials_per_chunk=2)
        assert np.array_equal(full.correlations, chunked.correlations)
        assert np.array_equal(full.detected, chunked.detected)
        assert np.array_equal(full.z_scores, chunked.z_scores)

    def test_cycle_chunking_agrees_to_tolerance(self):
        rng = np.random.default_rng(21)
        sequence, _ = synthesize(rng, 63, 63)
        matrix = np.stack([synthesize(rng, 63, 5000)[1] for _ in range(4)])
        detector = BatchCPADetector()
        full = detector.detect_many(sequence, matrix)
        chunked = detector.detect_many(sequence, matrix, chunk_cycles=700)
        assert np.allclose(full.correlations, chunked.correlations, atol=1e-12)
        assert np.array_equal(full.detected, chunked.detected)

    def test_evaluate_many_matches_single_evaluate(self):
        rng = np.random.default_rng(22)
        spectra = rng.normal(0, 0.05, size=(5, 31))
        spectra[1, 7] = 0.9  # a clear detection row
        spectra[2] = 0.0  # all-zero row
        batch = BatchCPADetector().evaluate_many(spectra)
        detector = CPADetector()
        for i in range(5):
            single = detector.evaluate(spectra[i])
            row = batch.result(i)
            for name in _RESULT_FIELDS:
                assert getattr(single, name) == getattr(row, name), name

    def test_naive_config_detector_matches_single(self):
        rng = np.random.default_rng(23)
        config = DetectionConfig(use_fft=False)
        sequence, measured = synthesize(rng, 17, 500)
        single = CPADetector(config).detect(sequence, measured)
        batch = BatchCPADetector(config).detect_many(sequence, measured[None, :])
        assert np.array_equal(single.correlations, batch.result(0).correlations)
        assert single.detected == bool(batch.detected[0])


class TestEvaluateManyDecisions:
    def test_zero_noise_floor_gives_infinite_z(self):
        spectra = np.zeros((1, 5))
        spectra[0, 2] = 0.8
        batch = BatchCPADetector().evaluate_many(spectra)
        assert np.isinf(batch.z_scores[0])
        assert bool(batch.detected[0])

    def test_all_zero_spectrum_not_detected(self):
        batch = BatchCPADetector().evaluate_many(np.zeros((1, 5)))
        assert batch.z_scores[0] == 0.0
        assert not bool(batch.detected[0])

    def test_negative_peak_not_detected(self):
        spectra = np.zeros((1, 7))
        spectra[0, 3] = -0.9
        batch = BatchCPADetector().evaluate_many(spectra)
        assert not bool(batch.detected[0])

    def test_second_peak_blocks_uniqueness(self):
        spectra = np.zeros((1, 9))
        spectra[0, 2] = 0.9
        spectra[0, 6] = 0.89
        batch = BatchCPADetector().evaluate_many(spectra)
        assert not bool(batch.detected[0])


class TestBatchCPAResult:
    @pytest.fixture(scope="class")
    def batch(self):
        rng = np.random.default_rng(30)
        sequence, _ = synthesize(rng, 31, 31)
        matrix = np.stack(
            [synthesize(rng, 31, 1500, noise=n)[1] for n in (0.2, 0.2, 50.0, 50.0)]
        )
        return BatchCPADetector().detect_many(sequence, matrix)

    def test_shape_accessors(self, batch):
        assert batch.num_trials == len(batch) == 4
        assert batch.num_rotations == 31

    def test_detection_counters(self, batch):
        assert batch.detection_count == int(np.count_nonzero(batch.detected))
        assert batch.detection_rate == batch.detection_count / 4

    def test_iteration_yields_scalar_results(self, batch):
        results = list(batch)
        assert len(results) == 4
        assert all(r.num_rotations == 31 for r in results)

    def test_summary_text(self, batch):
        text = batch.summary()
        assert "trials detected" in text
        assert "mean peak rho" in text

    def test_concatenate_roundtrip(self, batch):
        left = BatchCPADetector().evaluate_many(batch.correlations[:2])
        right = BatchCPADetector().evaluate_many(batch.correlations[2:])
        merged = BatchCPAResult.concatenate([left, right])
        assert np.array_equal(merged.correlations, batch.correlations)
        assert np.array_equal(merged.detected, batch.detected)

    def test_concatenate_rejects_empty_and_mixed_thresholds(self, batch):
        with pytest.raises(ValueError):
            BatchCPAResult.concatenate([])
        other = BatchCPADetector(DetectionConfig(detection_threshold=9.0)).evaluate_many(
            batch.correlations
        )
        with pytest.raises(ValueError):
            BatchCPAResult.concatenate([batch, other])


class TestFoldByPhase:
    def test_fold_matches_bincount(self):
        rng = np.random.default_rng(40)
        matrix = rng.normal(size=(3, 1234))
        period = 17
        folded, counts = fold_by_phase(matrix, period)
        phases = np.arange(1234) % period
        for i in range(3):
            expected = np.bincount(phases, weights=matrix[i], minlength=period)
            assert np.allclose(folded[i], expected, atol=1e-12)
        assert np.array_equal(counts, np.bincount(phases, minlength=period).astype(float))

    def test_chunked_fold_matches_unchunked(self):
        rng = np.random.default_rng(41)
        matrix = rng.normal(size=(2, 999))
        full, counts_full = fold_by_phase(matrix, 13)
        chunked, counts_chunked = fold_by_phase(matrix, 13, chunk_cycles=100)
        assert np.allclose(full, chunked, atol=1e-12)
        assert np.array_equal(counts_full, counts_chunked)


class TestValidation:
    def test_rejects_3d_matrix(self):
        with pytest.raises(ValueError):
            batch_rotation_correlations(np.ones(5), np.zeros((2, 3, 4)))

    def test_rejects_short_sequence(self):
        with pytest.raises(ValueError):
            batch_rotation_correlations(np.ones(1), np.zeros((2, 10)))

    def test_rejects_short_traces(self):
        with pytest.raises(ValueError):
            batch_rotation_correlations(np.ones(8), np.zeros((2, 5)))

    def test_rejects_sequence_row_mismatch(self):
        with pytest.raises(ValueError):
            batch_rotation_correlations(np.ones((3, 8)), np.zeros((2, 16)))

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            batch_rotation_correlations(np.ones(4), np.zeros((1, 8)), method="magic")

    def test_rejects_empty_trace_matrix(self):
        with pytest.raises(ValueError, match="at least one trial"):
            BatchCPADetector().detect_many(np.ones(5), np.empty((0, 100)))

    def test_rejects_bad_chunk_sizes(self):
        detector = BatchCPADetector()
        matrix = np.zeros((2, 10))
        with pytest.raises(ValueError):
            detector.detect_many(np.ones(4), matrix, max_trials_per_chunk=0)
        with pytest.raises(ValueError):
            fold_by_phase(matrix, 4, chunk_cycles=0)

    def test_evaluate_many_needs_three_rotations(self):
        with pytest.raises(ValueError):
            BatchCPADetector().evaluate_many(np.zeros((1, 2)))
