"""Unit tests for repro.measurement.shunt."""

import numpy as np
import pytest

from repro.measurement.shunt import ShuntResistor


class TestShuntResistor:
    def test_paper_value_default(self):
        assert ShuntResistor().resistance_ohm == pytest.approx(0.270)

    def test_voltage_from_current(self):
        shunt = ShuntResistor(resistance_ohm=0.27)
        voltage = shunt.voltage_from_current(np.array([10e-3]))
        assert voltage[0] == pytest.approx(2.7e-3)

    def test_current_roundtrip(self):
        shunt = ShuntResistor(resistance_ohm=0.27)
        current = np.array([1e-3, 5e-3])
        recovered = shunt.current_from_voltage(shunt.voltage_from_current(current))
        assert np.allclose(recovered, current)

    def test_power_from_voltage(self):
        shunt = ShuntResistor(resistance_ohm=0.27)
        power = shunt.power_from_voltage(np.array([2.7e-3]), supply_voltage_v=1.2)
        assert power[0] == pytest.approx(12e-3)

    def test_invalid_supply_rejected(self):
        with pytest.raises(ValueError):
            ShuntResistor().power_from_voltage(np.array([1e-3]), supply_voltage_v=0.0)

    def test_dissipation(self):
        assert ShuntResistor(resistance_ohm=0.27).dissipation_w(10e-3) == pytest.approx(27e-6)

    def test_invalid_resistance_rejected(self):
        with pytest.raises(ValueError):
            ShuntResistor(resistance_ohm=0.0)

    def test_invalid_tolerance_rejected(self):
        with pytest.raises(ValueError):
            ShuntResistor(tolerance=1.0)
