"""Unit tests for repro.core.embedding."""

import pytest

from repro.core.config import ArchitectureKind, WatermarkConfig
from repro.core.embedding import embed_baseline, embed_clock_modulation
from repro.soc.structure import build_soc_structure, clock_gate_paths


@pytest.fixture
def host():
    return build_soc_structure(name="soc")


@pytest.fixture
def config():
    return WatermarkConfig(lfsr_width=8, lfsr_seed=0x2D, load_registers=64)


class TestEmbedBaseline:
    def test_adds_wgc_and_load_modules(self, host, config):
        embedded = embed_baseline(host, config)
        assert "wm_wgc" in host.children
        assert "wm_load" in host.children
        assert embedded.architecture is ArchitectureKind.BASELINE_LOAD_CIRCUIT

    def test_watermark_instances_marked(self, host, config):
        embedded = embed_baseline(host, config)
        netlist = embedded.netlist()
        watermark_registers = netlist.registers_by_role("watermark")
        assert watermark_registers >= config.load_registers + config.lfsr_width

    def test_load_forms_isolated_cluster(self, host, config):
        embedded = embed_baseline(host, config)
        netlist = embedded.netlist()
        clusters = netlist.weakly_connected_clusters()
        watermark = set(embedded.watermark_instances)
        assert any(cluster == watermark for cluster in clusters)

    def test_instance_paths_exist_in_netlist(self, host, config):
        embedded = embed_baseline(host, config)
        netlist = embedded.netlist()
        for path in embedded.watermark_instances:
            assert path in netlist


class TestEmbedClockModulation:
    def test_requires_targets(self, host, config):
        with pytest.raises(ValueError):
            embed_clock_modulation(host, [], config)

    def test_rejects_non_clock_gate_targets(self, host, config):
        with pytest.raises(ValueError):
            embed_clock_modulation(host, ["bus_matrix"], config)

    def test_rejects_unknown_targets(self, host, config):
        with pytest.raises(KeyError):
            embed_clock_modulation(host, ["cpu_core/icg99"], config)

    def test_wgc_drives_target_gates(self, host, config):
        gates = clock_gate_paths(host)[:3]
        embedded = embed_clock_modulation(host, gates, config)
        netlist = embedded.netlist()
        wmark_out = [p for p in embedded.wgc_instances if p.endswith("wmark_out")][0]
        for gate_path in embedded.modulated_gate_paths:
            assert wmark_out in netlist.fan_in(gate_path)

    def test_no_load_instances(self, host, config):
        gates = clock_gate_paths(host)[:1]
        embedded = embed_clock_modulation(host, gates, config)
        assert embedded.load_instances == []
        assert embedded.architecture is ArchitectureKind.CLOCK_MODULATION

    def test_watermark_is_entangled_with_functional_cluster(self, host, config):
        gates = clock_gate_paths(host)[:2]
        embedded = embed_clock_modulation(host, gates, config)
        netlist = embedded.netlist()
        clusters = netlist.weakly_connected_clusters()
        watermark = set(embedded.watermark_instances)
        # No cluster consists of only watermark logic: the WGC shares a
        # cluster with the functional design it modulates.
        assert not any(cluster <= watermark for cluster in clusters)
