"""Unit tests for repro.soc.chip."""

import numpy as np
import pytest

from repro.core.architectures import ClockModulationWatermark
from repro.core.config import WatermarkConfig
from repro.soc.chip import ChipDescription, ChipModel, build_chip_one, build_chip_two


@pytest.fixture(scope="module")
def small_watermark():
    config = WatermarkConfig(lfsr_width=8, lfsr_seed=0x2D, num_words=8, word_width=16)
    return ClockModulationWatermark.from_config(config)


@pytest.fixture(scope="module")
def chip1(small_watermark):
    return build_chip_one(watermark=small_watermark, m0_window_cycles=1024)


@pytest.fixture(scope="module")
def chip2(small_watermark):
    return build_chip_two(watermark=small_watermark, m0_window_cycles=1024)


class TestChipDescription:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChipDescription(name="x", has_a5_subsystem=False, m0_window_cycles=0)
        with pytest.raises(ValueError):
            ChipDescription(name="x", has_a5_subsystem=False, sram_bytes=0)


class TestChipComposition:
    def test_chip1_has_no_a5(self, chip1):
        assert chip1.a5_subsystem is None
        assert chip1.name == "chip1"

    def test_chip2_has_a5(self, chip2):
        assert chip2.a5_subsystem is not None
        assert chip2.name == "chip2"

    def test_chip2_has_more_registers(self, chip1, chip2):
        assert chip2.system_register_count() > chip1.system_register_count()

    def test_watermark_sequence_exposed(self, chip1):
        assert len(chip1.watermark_sequence()) == 255

    def test_chip_without_watermark_raises(self):
        chip = build_chip_one(watermark=None, m0_window_cycles=512)
        with pytest.raises(ValueError):
            chip.watermark_power(100)
        with pytest.raises(ValueError):
            chip.watermark_sequence()


class TestActivityAndPower:
    def test_m0_activity_window_tiling(self, chip1):
        trace = chip1.m0_activity(3000, seed=1)
        assert len(trace) == 3000
        assert trace.total_toggles.min() > 0

    def test_background_activity_contributors(self, chip1, chip2):
        traces1 = chip1.background_activity(500)
        traces2 = chip2.background_activity(500)
        assert set(traces1) == {"m0", "peripherals"}
        assert set(traces2) == {"m0", "peripherals", "a5"}

    def test_background_power_chip2_higher(self, chip1, chip2):
        p1 = chip1.background_power(500, seed=3)
        p2 = chip2.background_power(500, seed=3)
        assert p2.average_power_w > p1.average_power_w

    def test_total_power_with_watermark_is_higher(self, chip1):
        with_wm = chip1.total_power(500, watermark_active=True, seed=4)
        without = chip1.total_power(500, watermark_active=False, seed=4)
        assert with_wm.average_power_w > without.average_power_w

    def test_watermark_phase_offset_rolls_modulation(self, chip1):
        period = len(chip1.watermark_sequence())
        base = chip1.total_power(2 * period, watermark_active=True, seed=5, watermark_phase_offset=0)
        shifted = chip1.total_power(2 * period, watermark_active=True, seed=5, watermark_phase_offset=10)
        background = chip1.total_power(2 * period, watermark_active=False, seed=5)
        wm_base = base.power_w - background.power_w
        wm_shifted = shifted.power_w - background.power_w
        assert np.allclose(np.roll(wm_base, -10)[:period], wm_shifted[:period], atol=1e-12)

    def test_background_power_reproducible_for_same_seed(self, chip1):
        a = chip1.background_power(400, seed=11)
        b = chip1.background_power(400, seed=11)
        assert np.array_equal(a.power_w, b.power_w)

    def test_background_power_realistic_magnitude(self, chip1):
        power = chip1.background_power(500, seed=2)
        # A 65 nm microcontroller SoC at 10 MHz: single-digit milliwatts.
        assert 0.5e-3 < power.average_power_w < 20e-3

    def test_background_static_uses_full_cell_inventory(self, chip1):
        # Regression: static leakage used to be computed from
        # {"dff": system_register_count()} only, undercounting the comb and
        # SRAM cells that system_cell_inventory() itself reports (and that
        # the watermark architectures and Table I include via
        # leakage_of(cell_inventory())).
        background = chip1.background_power(64, seed=9, use_cache=False)
        traces = chip1.background_activity(64, seed=9)
        dynamic = np.zeros(64)
        for trace in traces.values():
            dynamic += chip1.estimator.dynamic_model.power_per_cycle("dff", trace)
        static = background.power_w - dynamic
        expected = chip1.estimator.leakage_of(chip1.system_cell_inventory())
        assert np.allclose(static, expected, rtol=1e-9, atol=0)
        dff_only = chip1.estimator.leakage_of({"dff": chip1.system_register_count()})
        assert expected > dff_only


class TestM0ActivityGather:
    """The modular-index gather must reproduce the np.roll tiling exactly."""

    def test_fixed_seed_yields_identical_trace_as_legacy_tiling(self):
        chip = build_chip_one(m0_window_cycles=256)
        num_cycles = 1500
        seed = 97

        # Pre-vectorisation reference: simulate the window, then tile it
        # with one np.roll per repetition, drawing shifts from the same
        # seeded generator.
        window = min(num_cycles, chip.description.m0_window_cycles)
        chip.cpu.reset()
        chip.bus.reset()
        if chip.program.data_words:
            chip.memory.load_words(chip.program.data_words)
        window_trace = chip.cpu.run_cycles(window)
        rng = np.random.default_rng(seed)
        arrays = {
            "clock_toggles": window_trace.clock_toggles,
            "data_toggles": window_trace.data_toggles,
            "comb_toggles": window_trace.comb_toggles,
        }
        tiled = {key: [] for key in arrays}
        produced = 0
        while produced < num_cycles:
            shift = int(rng.integers(0, window))
            for key, values in arrays.items():
                tiled[key].append(np.roll(values, shift))
            produced += window
        expected = {key: np.concatenate(parts)[:num_cycles] for key, parts in tiled.items()}

        actual = chip.m0_activity(num_cycles, seed=seed)
        assert np.array_equal(actual.clock_toggles, expected["clock_toggles"])
        assert np.array_equal(actual.data_toggles, expected["data_toggles"])
        assert np.array_equal(actual.comb_toggles, expected["comb_toggles"])

    def test_short_acquisition_returns_unshifted_window(self):
        chip = build_chip_one(m0_window_cycles=256)
        trace = chip.m0_activity(100, seed=1)
        assert len(trace) == 100

    def test_gathered_trace_reproducible(self):
        chip = build_chip_one(m0_window_cycles=128)
        a = chip.m0_activity(1000, seed=5)
        b = chip.m0_activity(1000, seed=5)
        assert np.array_equal(a.total_toggles, b.total_toggles)
