"""Unit tests for repro.analysis.operating_point."""

import pytest

from repro.analysis.operating_point import run_operating_point_study


class TestOperatingPointStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_operating_point_study(
            corners=((1.2, 10e6), (1.0, 10e6), (0.8, 10e6), (1.2, 50e6))
        )

    def test_all_corners_present(self, study):
        assert len(study.corners) == 4
        nominal = study.corner(1.2, 10e6)
        assert nominal.watermark_amplitude_w == pytest.approx(1.6e-3, rel=0.1)

    def test_lower_voltage_reduces_amplitude_quadratically(self, study):
        nominal = study.corner(1.2, 10e6)
        low = study.corner(0.8, 10e6)
        assert low.watermark_amplitude_w == pytest.approx(
            nominal.watermark_amplitude_w * (0.8 / 1.2) ** 2, rel=0.01
        )

    def test_lower_voltage_needs_more_cycles(self, study):
        assert study.corner(0.8, 10e6).required_cycles > study.corner(1.2, 10e6).required_cycles

    def test_higher_frequency_increases_power(self, study):
        fast = study.corner(1.2, 50e6)
        nominal = study.corner(1.2, 10e6)
        assert fast.watermark_amplitude_w == pytest.approx(5 * nominal.watermark_amplitude_w, rel=0.01)
        # Higher frequency also shortens the wall-clock time per cycle.
        assert fast.required_time_s < nominal.required_time_s

    def test_nominal_corner_matches_paper_budget(self, study):
        assert study.corner(1.2, 10e6).required_cycles < 300_000

    def test_unknown_corner_lookup(self, study):
        with pytest.raises(KeyError):
            study.corner(0.5, 1e6)

    def test_text_rendering(self, study):
        text = study.to_text()
        assert "cycles needed" in text
        assert "mW" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            run_operating_point_study(corners=((0.0, 10e6),))
        with pytest.raises(ValueError):
            run_operating_point_study(noise_sigma_at_nominal_w=0.0)
