"""Unit tests for repro.core.multi (multiple watermarks on one die)."""

import numpy as np
import pytest

from repro.core.architectures import ClockModulationWatermark
from repro.core.config import WatermarkConfig
from repro.core.multi import MultiWatermarkSystem, VendorWatermark
from repro.measurement.acquisition import AcquisitionCampaign
from repro.core.config import MeasurementConfig
from repro.power.estimator import PowerEstimator


@pytest.fixture(scope="module")
def estimator():
    return PowerEstimator.at_nominal()


@pytest.fixture(scope="module")
def system():
    return MultiWatermarkSystem.with_distinct_lfsr_widths(
        ["vendor_a", "vendor_b"], widths=[11, 10], modulated_registers=1024
    )


class TestConstruction:
    def test_requires_vendors(self):
        with pytest.raises(ValueError):
            MultiWatermarkSystem([])

    def test_duplicate_vendor_names_rejected(self):
        wm = ClockModulationWatermark.from_config(WatermarkConfig(lfsr_width=10))
        with pytest.raises(ValueError):
            MultiWatermarkSystem(
                [VendorWatermark("x", wm), VendorWatermark("x", wm)]
            )

    def test_identical_sequences_rejected(self):
        # Same width and taps, different seeds: only a rotation apart, so CPA
        # could not attribute a detection to a specific vendor.
        a = ClockModulationWatermark.from_config(WatermarkConfig(lfsr_width=10, lfsr_seed=1))
        b = ClockModulationWatermark.from_config(WatermarkConfig(lfsr_width=10, lfsr_seed=7))
        with pytest.raises(ValueError):
            MultiWatermarkSystem([VendorWatermark("a", a), VendorWatermark("b", b)])

    def test_distinct_widths_accepted(self, system):
        assert len(system) == 2
        assert system.vendor("vendor_a").watermark.sequence_period == 2047
        assert system.vendor("vendor_b").watermark.sequence_period == 1023

    def test_unknown_vendor_lookup(self, system):
        with pytest.raises(KeyError):
            system.vendor("nobody")

    def test_width_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MultiWatermarkSystem.with_distinct_lfsr_widths(["a", "b"], widths=[10])


class TestPowerAndAudit:
    def test_combined_power_includes_all_vendors(self, system, estimator):
        combined = system.combined_power_trace(estimator, 4096)
        single = system.vendors[0].watermark.power_trace(estimator, 4096)
        assert combined.average_power_w > single.average_power_w

    def test_inactive_selection(self, system, estimator):
        none_active = system.combined_power_trace(estimator, 1024, active_vendors=[])
        assert none_active.average_power_w == 0.0

    def test_unknown_active_vendor_rejected(self, system, estimator):
        with pytest.raises(KeyError):
            system.combined_power_trace(estimator, 1024, active_vendors=["ghost"])

    def test_audit_identifies_present_vendors(self, system, estimator):
        num_cycles = 60_000
        watermarks = system.combined_power_trace(
            estimator, num_cycles, phase_offsets={"vendor_a": 321, "vendor_b": 77}
        )
        rng = np.random.default_rng(5)
        measured = 5e-3 + watermarks.power_w + rng.normal(0, 20e-3, num_cycles)
        detected = system.detected_vendors(measured)
        assert set(detected) == {"vendor_a", "vendor_b"}

    def test_audit_rejects_absent_vendor(self, system, estimator):
        num_cycles = 60_000
        only_a = system.combined_power_trace(estimator, num_cycles, active_vendors=["vendor_a"])
        rng = np.random.default_rng(6)
        measured = 5e-3 + only_a.power_w + rng.normal(0, 20e-3, num_cycles)
        results = system.audit(measured)
        assert results["vendor_a"].detected
        assert not results["vendor_b"].detected

    def test_audit_through_measurement_chain(self, system, estimator):
        config = MeasurementConfig(
            num_cycles=60_000, transient_noise_floor_w=0.015, transient_noise_fraction=0.0
        )
        watermarks = system.combined_power_trace(estimator, config.num_cycles)
        background = 5e-3 + watermarks.power_w
        from repro.power.trace import PowerTrace

        chip_power = PowerTrace("multi", estimator.operating_point.clock, background)
        measured = AcquisitionCampaign(config).measure(chip_power, seed=9)
        detected = system.detected_vendors(measured.values)
        assert set(detected) == {"vendor_a", "vendor_b"}
