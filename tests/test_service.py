"""Detection service: protocol units, ledger integrity, live-server e2e.

The live tests run a real :class:`~repro.service.server.ServiceServer` on
an ephemeral localhost port and drive it through
:class:`~repro.service.client.ServiceClient` -- the same path the CI
smoke job and the example script use.  Scenarios are limited to the
millisecond-fast ``table2``/``fig2`` kinds so the whole module stays
quick.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.cli import main
from repro.pipeline.artifacts import ScenarioResult
from repro.pipeline.runner import ExperimentRunner
from repro.service.client import ServiceClient, ServiceHTTPError, result_from
from repro.service.ledger import GENESIS_DIGEST, Ledger
from repro.service.protocol import (
    PROTOCOL_VERSION,
    VERIFY_ENDPOINT,
    ServiceError,
    TokenBucket,
    body_hash,
    check_ticket,
    leading_zero_bits,
    mine_nonce,
    ticket_digest,
    validate_request,
)
from repro.service.server import ServiceConfig, build_server
from repro.service.transcripts import (
    build_verify_transcript,
    load_or_create_secret,
    seed_commitment,
    sign_transcript,
    verify_signature,
)

# ---------------------------------------------------------------------------
# protocol: PoW tickets
# ---------------------------------------------------------------------------


def test_leading_zero_bits():
    assert leading_zero_bits("f" + "0" * 63) == 0
    assert leading_zero_bits("8" + "0" * 63) == 0
    assert leading_zero_bits("7" + "f" * 63) == 1
    assert leading_zero_bits("1" + "f" * 63) == 3
    assert leading_zero_bits("0f" + "0" * 62) == 4
    assert leading_zero_bits("00" + "f" * 62) == 8
    assert leading_zero_bits("0" * 64) == 256


def test_body_hash_excludes_ticket_fields():
    base = {"client_id": "a", "scenario": "fig2"}
    with_ticket = dict(base, nonce=1234, difficulty=8)
    assert body_hash(base) == body_hash(with_ticket)
    assert body_hash(base) != body_hash(dict(base, scenario="fig3"))


def test_mine_and_check_ticket_roundtrip():
    body = {"client_id": "alice", "scenario": "table2"}
    nonce = mine_nonce("alice", VERIFY_ENDPOINT, body, difficulty=8)
    body["nonce"] = nonce
    digest = check_ticket("alice", VERIFY_ENDPOINT, body, difficulty=8)
    assert leading_zero_bits(digest) >= 8
    # Deterministic: the same body always mines the same nonce.
    assert nonce == mine_nonce("alice", VERIFY_ENDPOINT, body, difficulty=8)


def test_check_ticket_rejects_missing_and_weak_nonces():
    body = {"client_id": "alice", "scenario": "table2"}
    with pytest.raises(ServiceError) as excinfo:
        check_ticket("alice", VERIFY_ENDPOINT, body, difficulty=8)
    assert excinfo.value.status == 403
    assert excinfo.value.code == "bad_ticket"
    nonce = mine_nonce("alice", VERIFY_ENDPOINT, body, difficulty=8)
    # A ticket mined by one client is not valid for another.
    body["nonce"] = nonce
    digest = ticket_digest("mallory", VERIFY_ENDPOINT, body_hash(body), nonce)
    if leading_zero_bits(digest) < 8:
        with pytest.raises(ServiceError):
            check_ticket("mallory", VERIFY_ENDPOINT, body, difficulty=8)


def test_check_ticket_difficulty_zero_disables_gate():
    digest = check_ticket("anon", VERIFY_ENDPOINT, {"scenario": "fig2"}, 0)
    assert len(digest) == 64


# ---------------------------------------------------------------------------
# protocol: request validation and rate metering
# ---------------------------------------------------------------------------


def _valid_payload(**extra):
    payload = {"client_id": "tester", "scenario": "fig2"}
    payload.update(extra)
    return payload


def test_validate_request_accepts_valid_payload():
    assert validate_request(_valid_payload(), VERIFY_ENDPOINT)["scenario"] == "fig2"


@pytest.mark.parametrize(
    "payload, status, code",
    [
        ("not a dict", 400, "bad_request"),
        (_valid_payload(protocol_version=99), 426, "unsupported_protocol"),
        (_valid_payload(surprise=1), 400, "bad_request"),
        ({"scenario": "fig2"}, 400, "bad_request"),  # no client_id
        (_valid_payload(client_id="bad id!"), 400, "bad_request"),
        (_valid_payload(client_id="x" * 65), 400, "bad_request"),
        ({"client_id": "t"}, 400, "bad_request"),  # neither scenario nor spec
        (
            {"client_id": "t", "scenario": "fig2", "spec": {}},
            400,
            "bad_request",
        ),  # both
        (_valid_payload(overrides={"nope": 1}), 400, "bad_request"),
        (_valid_payload(overrides=[1, 2]), 400, "bad_request"),
    ],
)
def test_validate_request_rejections(payload, status, code):
    with pytest.raises(ServiceError) as excinfo:
        validate_request(payload, VERIFY_ENDPOINT)
    assert excinfo.value.status == status
    assert excinfo.value.code == code


def test_token_bucket_meters_and_refills():
    clock = {"now": 0.0}
    bucket = TokenBucket(capacity=2, refill_per_s=1.0, clock=lambda: clock["now"])
    assert bucket.consume("alice")
    assert bucket.consume("alice")
    assert not bucket.consume("alice")  # burst exhausted
    assert bucket.consume("bob")  # per-client buckets
    clock["now"] = 1.0
    assert bucket.consume("alice")  # one token refilled
    assert not bucket.consume("alice")
    with pytest.raises(ServiceError) as excinfo:
        bucket.check("alice")
    assert excinfo.value.status == 429
    assert excinfo.value.code == "rate_limited"


# ---------------------------------------------------------------------------
# ledger: hash chain, tamper and truncation detection
# ---------------------------------------------------------------------------


def test_ledger_chains_and_verifies(tmp_path):
    ledger = Ledger(tmp_path / "ops.jsonl")
    anchors = [ledger.append({"op": index}) for index in range(3)]
    assert [anchor.index for anchor in anchors] == [0, 1, 2]
    assert ledger.count == 3
    assert ledger.tip_digest == anchors[-1].digest
    records = ledger.records()
    assert records[0]["prev"] == GENESIS_DIGEST
    assert records[1]["prev"] == records[0]["digest"]
    assert ledger.verify() == []


def test_ledger_reopen_continues_the_chain(tmp_path):
    path = tmp_path / "ops.jsonl"
    Ledger(path).append({"op": 0})
    reopened = Ledger(path)
    assert reopened.count == 1
    reopened.append({"op": 1})
    assert reopened.verify() == []


def test_ledger_detects_tampered_payload(tmp_path):
    path = tmp_path / "ops.jsonl"
    ledger = Ledger(path)
    for index in range(3):
        ledger.append({"op": index})
    lines = path.read_text().splitlines()
    record = json.loads(lines[1])
    record["payload"]["op"] = 999  # edit without re-hashing
    lines[1] = json.dumps(record, sort_keys=True)
    path.write_text("\n".join(lines) + "\n")
    problems = Ledger(path).verify()
    assert any("digest mismatch" in problem for problem in problems)


def test_ledger_detects_deleted_interior_record(tmp_path):
    path = tmp_path / "ops.jsonl"
    ledger = Ledger(path)
    for index in range(3):
        ledger.append({"op": index})
    lines = path.read_text().splitlines()
    del lines[1]
    path.write_text("\n".join(lines) + "\n")
    problems = Ledger(path).verify()
    assert any("chain break" in problem for problem in problems)
    assert any("index does not match" in problem for problem in problems)


def test_ledger_detects_tail_truncation(tmp_path):
    path = tmp_path / "ops.jsonl"
    ledger = Ledger(path)
    for index in range(3):
        ledger.append({"op": index})
    lines = path.read_text().splitlines()
    # Drop the newest record: the chain alone cannot see this, the head
    # sidecar can.
    path.write_text("\n".join(lines[:-1]) + "\n")
    problems = Ledger(path).verify()
    assert any("truncation" in problem for problem in problems)


def test_ledger_reports_torn_trailing_write(tmp_path):
    path = tmp_path / "ops.jsonl"
    ledger = Ledger(path)
    ledger.append({"op": 0})
    with open(path, "a") as handle:
        handle.write('{"index": 1, "prev": "tr')  # torn mid-write
    problems = Ledger(path).verify()
    assert any("unparseable" in problem for problem in problems)


def test_ledger_missing_head_is_flagged(tmp_path):
    path = tmp_path / "ops.jsonl"
    ledger = Ledger(path)
    ledger.append({"op": 0})
    ledger.head_path.unlink()
    problems = Ledger(path).verify()
    assert any("head sidecar missing" in problem for problem in problems)


def test_empty_ledger_verifies_clean(tmp_path):
    assert Ledger(tmp_path / "ops.jsonl").verify() == []


# ---------------------------------------------------------------------------
# transcripts: secrets, signing, commitments
# ---------------------------------------------------------------------------


def test_load_or_create_secret_persists_and_protects(tmp_path):
    path = tmp_path / "keys" / "hmac.key"
    first = load_or_create_secret(path)
    assert len(first) == 32
    assert path.stat().st_mode & 0o777 == 0o600
    assert load_or_create_secret(path) == first  # stable across loads
    short = tmp_path / "short.key"
    short.write_bytes(b"tiny")
    with pytest.raises(ValueError, match="truncated"):
        load_or_create_secret(short)


def test_sign_and_verify_transcript_signature():
    transcript = {"type": "verify", "statistic": 12.5, "decision": True}
    key = b"k" * 32
    signature = sign_transcript(transcript, key)
    assert verify_signature(transcript, signature, key)
    assert not verify_signature(dict(transcript, decision=False), signature, key)
    assert not verify_signature(transcript, signature, b"x" * 32)
    # Key ordering does not matter: the signature covers canonical JSON.
    reordered = {"decision": True, "statistic": 12.5, "type": "verify"}
    assert verify_signature(reordered, signature, key)


def test_seed_commitment_hides_the_seed():
    salt = b"s" * 32
    commitment = seed_commitment(0x5A5, salt)
    assert commitment == seed_commitment(0x5A5, salt)  # deterministic
    assert commitment != seed_commitment(0x5A6, salt)
    assert commitment != seed_commitment(0x5A5, b"t" * 32)
    assert "1445" not in commitment[:8] or True  # hex digest, no raw seed
    assert len(commitment) == 64


def test_verify_transcript_built_from_wire_form_alone():
    """A transcript re-derives (and re-verifies) from array-stripped wire JSON."""
    result = ExperimentRunner().run("fig2")
    assert result.arrays
    wire = result.to_wire()
    stripped = ScenarioResult.from_wire({"json": wire["json"], "npz": None})
    assert not stripped.arrays
    key = b"k" * 32
    original = build_verify_transcript(result)
    rebuilt = build_verify_transcript(stripped)
    assert rebuilt == original
    assert verify_signature(rebuilt, sign_transcript(original, key), key)


# ---------------------------------------------------------------------------
# bugfix: wire round-trip with stripped arrays
# ---------------------------------------------------------------------------


def test_wire_roundtrip_with_arrays_is_bit_exact():
    result = ExperimentRunner().run("fig2")
    rebuilt = ScenarioResult.from_wire(result.to_wire())
    assert not rebuilt.arrays_stripped
    assert set(rebuilt.arrays) == set(result.arrays)
    assert rebuilt.to_wire()["json"] == result.to_wire()["json"]


def test_wire_roundtrip_survives_stripped_arrays():
    result = ExperimentRunner().run("fig2")
    wire = result.to_wire()
    stripped = ScenarioResult.from_wire({"json": wire["json"], "npz": None})
    assert stripped.arrays_stripped
    assert not stripped.arrays
    # The array *metadata* survives: re-serializing reproduces the wire
    # JSON byte-for-byte even though the data itself is gone.
    assert stripped.to_wire()["json"] == wire["json"]
    assert stripped.to_wire()["npz"] is None
    # And a second hop keeps reporting the loss.
    twice = ScenarioResult.from_wire(stripped.to_wire())
    assert twice.arrays_stripped
    assert twice.to_wire()["json"] == wire["json"]


def test_result_without_arrays_never_reports_stripped():
    result = ExperimentRunner().run("table1")
    rebuilt = ScenarioResult.from_wire(
        {"json": result.to_wire()["json"], "npz": None}
    )
    if result.arrays:
        assert rebuilt.arrays_stripped
    else:
        assert not rebuilt.arrays_stripped


# ---------------------------------------------------------------------------
# live server end-to-end
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def live_server(tmp_path_factory):
    """One real HTTP server for the whole module (ephemeral port)."""
    data_dir = tmp_path_factory.mktemp("service-data")
    config = ServiceConfig(port=0, data_dir=data_dir, difficulty=8, workers=8)
    server = build_server(config)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


@pytest.fixture()
def client(live_server):
    return ServiceClient(live_server.url, client_id="pytest@local")


def test_healthz_reports_protocol_and_difficulty(client):
    health = client.healthz()
    assert health["status"] == "ok"
    assert health["protocol_version"] == PROTOCOL_VERSION
    assert health["difficulty"] == 8
    assert "table2" in health["scenarios"]


def test_verify_second_request_is_a_pure_store_hit(live_server, client):
    store = live_server.service.store
    writes_before = store.stats().writes
    first = client.verify(scenario="table2", overrides={"seed": 4242})
    second = client.verify(scenario="table2", overrides={"seed": 4242})
    assert first["cache_hit"] is False
    assert second["cache_hit"] is True
    # One compute, one write -- the second request recomputed nothing.
    assert store.stats().writes == writes_before + 1
    # Byte-identical signed transcripts.
    assert json.dumps(first["transcript"], sort_keys=True) == json.dumps(
        second["transcript"], sort_keys=True
    )
    assert first["signature"] == second["signature"]
    assert first["result_json"] == second["result_json"]


def test_concurrent_identical_verifies_coalesce(live_server):
    store = live_server.service.store
    writes_before = store.stats().writes

    def post(index: int):
        worker = ServiceClient(
            live_server.url, client_id=f"worker{index}@local", difficulty=8
        )
        return worker.verify(scenario="table2", overrides={"seed": 990011})

    with ThreadPoolExecutor(max_workers=6) as pool:
        responses = list(pool.map(post, range(6)))
    # Exactly one computation hit the store; everyone else was served
    # from it, byte-identically.
    assert store.stats().writes == writes_before + 1
    transcripts = {
        json.dumps(response["transcript"], sort_keys=True)
        for response in responses
    }
    assert len(transcripts) == 1
    assert len({response["signature"] for response in responses}) == 1
    assert sum(1 for response in responses if not response["cache_hit"]) == 1


def test_verify_signature_checks_offline(live_server, client):
    response = client.verify(scenario="table2")
    key_path = live_server.service.config.resolved_data_dir() / "hmac.key"
    assert ServiceClient.verify_transcript(response, key_path)
    assert ServiceClient.verify_transcript(response, live_server.service.signing_key)
    forged = dict(response, transcript=dict(response["transcript"], decision=False))
    assert not ServiceClient.verify_transcript(forged, key_path)


def test_verify_transcript_contents(client):
    response = client.verify(scenario="table2")
    transcript = response["transcript"]
    assert transcript["type"] == "verify"
    assert transcript["scenario"] == "table2"
    assert transcript["spec_hash"]
    assert transcript["schema_versions"]["protocol"] == PROTOCOL_VERSION
    assert "detection_params" in transcript
    assert transcript["provenance"]["attempts"] >= 1
    result = result_from(response)
    assert result.ok
    assert result.spec.spec_hash() == transcript["spec_hash"]


def test_verify_accepts_full_spec_document(client):
    spec = ExperimentRunner().resolve("table2").to_json_dict()
    response = client.verify(spec=spec)
    assert response["ok"] is True
    assert response["transcript"]["kind"] == "table2"


def test_verify_overrides_change_the_spec_hash(client):
    base = client.verify(scenario="table2")
    seeded = client.verify(scenario="table2", overrides={"seed": 777})
    assert base["transcript"]["spec_hash"] != seeded["transcript"]["spec_hash"]


def test_issue_redacts_the_seed_and_logs_a_commitment(live_server, client):
    response = client.issue(scenario="table2")
    assert "lfsr_seed" in response["watermark"]  # requester gets the secret
    assert "lfsr_seed" not in response["transcript"]["watermark"]
    assert len(response["commitment"]) == 64
    raw_seed = str(response["watermark"]["lfsr_seed"])
    ledger_text = live_server.service.ledger.path.read_text()
    for line in ledger_text.splitlines():
        record = json.loads(line)
        if record["payload"].get("type") == "issue":
            assert "lfsr_seed" not in record["payload"]["watermark"]
    assert f'"lfsr_seed": {raw_seed}' not in ledger_text


def test_bad_pow_ticket_is_rejected(live_server):
    cheat = ServiceClient(live_server.url, client_id="cheat@local", difficulty=0)
    # difficulty=0 means the client sends no nonce, but the server wants 8 bits.
    with pytest.raises(ServiceHTTPError) as excinfo:
        cheat.verify(scenario="table2")
    assert excinfo.value.status == 403
    assert excinfo.value.code == "bad_ticket"


def test_unknown_scenario_is_a_404(client):
    with pytest.raises(ServiceHTTPError) as excinfo:
        client.verify(scenario="not-a-scenario")
    assert excinfo.value.status == 404
    assert excinfo.value.code == "unknown_scenario"


def test_unknown_route_and_wrong_method(client):
    with pytest.raises(ServiceHTTPError) as excinfo:
        client._get("/nope")
    assert excinfo.value.status == 404
    with pytest.raises(ServiceHTTPError) as excinfo:
        client._get(VERIFY_ENDPOINT)
    assert excinfo.value.status == 405


def test_malformed_json_body_is_a_400(client):
    with pytest.raises(ServiceHTTPError) as excinfo:
        client._request("POST", VERIFY_ENDPOINT, b"{not json")
    assert excinfo.value.status == 400


def test_oversized_body_is_a_413(live_server):
    big = ServiceClient(live_server.url, client_id="big@local")
    payload = b"x" * (live_server.service.config.max_body_bytes + 1)
    with pytest.raises(ServiceHTTPError) as excinfo:
        big._request("POST", VERIFY_ENDPOINT, payload)
    assert excinfo.value.status == 413


def test_metrics_track_requests_and_cache(client):
    client.verify(scenario="table2")
    metrics = client.metrics()
    assert metrics["requests"]["total"] >= 1
    assert metrics["requests"]["by_endpoint"][VERIFY_ENDPOINT] >= 1
    cache = metrics["cache"]
    assert cache["hits"] + cache["misses"] >= 1
    assert 0.0 <= cache["hit_rate"] <= 1.0
    assert metrics["latency_ms"]["count"] >= 1
    assert metrics["latency_ms"]["p50"] <= metrics["latency_ms"]["p99"]
    assert metrics["ledger"]["records"] >= 1


def test_rate_limit_returns_429(tmp_path):
    config = ServiceConfig(
        port=0,
        data_dir=tmp_path,
        difficulty=0,
        rate_capacity=2,
        rate_refill_per_s=0.0,
    )
    server = build_server(config)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        greedy = ServiceClient(server.url, client_id="greedy@local", difficulty=0)
        greedy.verify(scenario="table2")
        greedy.verify(scenario="table2")
        with pytest.raises(ServiceHTTPError) as excinfo:
            greedy.verify(scenario="table2")
        assert excinfo.value.status == 429
        assert excinfo.value.code == "rate_limited"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


# ---------------------------------------------------------------------------
# CLI: serve ledger verify
# ---------------------------------------------------------------------------


def test_cli_serve_ledger_verify(tmp_path, capsys):
    data_dir = tmp_path / "service-data"
    ledger = Ledger(data_dir / "ledger.jsonl")
    for index in range(3):
        ledger.append({"op": index})
    assert main(["serve", "ledger", "verify", "--data-dir", str(data_dir)]) == 0
    assert "0 problem(s)" in capsys.readouterr().out
    # Tamper with a record: the CLI must catch it and exit nonzero.
    lines = ledger.path.read_text().splitlines()
    record = json.loads(lines[1])
    record["payload"]["op"] = 999
    lines[1] = json.dumps(record, sort_keys=True)
    ledger.path.write_text("\n".join(lines) + "\n")
    assert main(["serve", "ledger", "verify", "--data-dir", str(data_dir)]) == 1
    out = capsys.readouterr().out
    assert "PROBLEM" in out and "digest mismatch" in out


def test_cli_serve_rejects_unknown_maintenance(tmp_path):
    with pytest.raises(SystemExit):
        main(["serve", "ledger", "burn", "--data-dir", str(tmp_path)])
