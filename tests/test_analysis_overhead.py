"""Unit tests for repro.analysis.overhead (Table II arithmetic)."""

import pytest

from repro.analysis.overhead import (
    OverheadTable,
    TABLE_II_LOAD_POWERS_W,
    area_overhead_reduction,
    load_circuit_overhead_table,
)


class TestAreaOverheadReduction:
    @pytest.mark.parametrize(
        "registers, expected",
        [(96, 0.889), (192, 0.941), (384, 0.970), (576, 0.980), (1921, 0.994), (3843, 0.997)],
    )
    def test_paper_values(self, registers, expected):
        assert area_overhead_reduction(registers) == pytest.approx(expected, abs=5e-4)

    def test_zero_load_registers(self):
        assert area_overhead_reduction(0) == 0.0

    def test_invalid_wgc_register_count(self):
        with pytest.raises(ValueError):
            area_overhead_reduction(100, wgc_registers=0)


class TestOverheadTable:
    def test_paper_rows(self):
        table = load_circuit_overhead_table()
        assert len(table) == len(TABLE_II_LOAD_POWERS_W)
        row = table.row_for_power(1.5e-3)
        assert row.load_registers == 576
        assert row.overhead_reduction == pytest.approx(0.98, abs=1e-3)

    def test_register_counts_match_paper(self):
        table = load_circuit_overhead_table()
        assert [row.load_registers for row in table] == [96, 192, 384, 576, 1921, 3843]

    def test_reduction_monotonically_increases(self):
        reductions = [row.overhead_reduction for row in load_circuit_overhead_table()]
        assert reductions == sorted(reductions)

    def test_row_lookup_missing_power(self):
        with pytest.raises(KeyError):
            load_circuit_overhead_table().row_for_power(123.0)

    def test_text_rendering(self):
        text = load_circuit_overhead_table().to_text()
        assert "98.0%" in text
        assert "576" in text

    def test_row_as_dict(self):
        row = load_circuit_overhead_table().rows[0]
        assert set(row.as_dict()) == {"load_power_w", "load_registers", "overhead_reduction"}

    def test_custom_wgc_size(self):
        table = load_circuit_overhead_table(wgc_registers=32)
        assert table.row_for_power(1.5e-3).overhead_reduction < 0.98
