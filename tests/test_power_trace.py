"""Unit tests for repro.power.trace."""

import numpy as np
import pytest

from repro.power.trace import CurrentTrace, PowerTrace
from repro.rtl.signals import Clock


@pytest.fixture
def clock() -> Clock:
    return Clock("clk", 10e6)


class TestPowerTrace:
    def test_basic_statistics(self, clock):
        trace = PowerTrace("t", clock, np.array([1e-3, 3e-3]), voltage_v=1.2)
        assert trace.average_power_w == pytest.approx(2e-3)
        assert trace.peak_power_w == pytest.approx(3e-3)
        assert trace.num_cycles == 2
        assert trace.duration_s == pytest.approx(200e-9)

    def test_energy(self, clock):
        trace = PowerTrace("t", clock, np.array([2e-3, 2e-3]))
        assert trace.energy_j == pytest.approx(4e-3 * 100e-9)

    def test_negative_power_rejected(self, clock):
        with pytest.raises(ValueError):
            PowerTrace("t", clock, np.array([-1e-3]))

    def test_two_dimensional_rejected(self, clock):
        with pytest.raises(ValueError):
            PowerTrace("t", clock, np.zeros((2, 2)))

    def test_add_traces(self, clock):
        a = PowerTrace("a", clock, np.array([1e-3, 1e-3]))
        b = PowerTrace("b", clock, np.array([2e-3, 0.0]))
        total = a.add(b)
        assert list(total.power_w) == [3e-3, 1e-3]

    def test_add_length_mismatch_rejected(self, clock):
        a = PowerTrace("a", clock, np.array([1e-3]))
        b = PowerTrace("b", clock, np.array([1e-3, 2e-3]))
        with pytest.raises(ValueError):
            a.add(b)

    def test_add_voltage_mismatch_rejected(self, clock):
        a = PowerTrace("a", clock, np.array([1e-3]), voltage_v=1.2)
        b = PowerTrace("b", clock, np.array([1e-3]), voltage_v=1.0)
        with pytest.raises(ValueError):
            a.add(b)

    def test_scale(self, clock):
        trace = PowerTrace("t", clock, np.array([2e-3]))
        assert trace.scale(0.5).power_w[0] == pytest.approx(1e-3)
        with pytest.raises(ValueError):
            trace.scale(-1.0)

    def test_slice_and_tile(self, clock):
        trace = PowerTrace("t", clock, np.array([1e-3, 2e-3, 3e-3]))
        assert list(trace.slice(1, 3).power_w) == [2e-3, 3e-3]
        tiled = trace.tile(7)
        assert len(tiled) == 7
        assert tiled.power_w[3] == pytest.approx(1e-3)

    def test_to_current_roundtrip(self, clock):
        trace = PowerTrace("t", clock, np.array([1.2e-3]), voltage_v=1.2)
        current = trace.to_current()
        assert current.current_a[0] == pytest.approx(1e-3)
        back = current.to_power()
        assert back.power_w[0] == pytest.approx(1.2e-3)

    def test_empty_trace_statistics(self, clock):
        trace = PowerTrace("t", clock, np.array([]))
        assert trace.average_power_w == 0.0
        assert trace.peak_power_w == 0.0


class TestCurrentTrace:
    def test_average_current(self, clock):
        trace = CurrentTrace("i", clock, np.array([1e-3, 3e-3]))
        assert trace.average_current_a == pytest.approx(2e-3)

    def test_invalid_shape_rejected(self, clock):
        with pytest.raises(ValueError):
            CurrentTrace("i", clock, np.zeros((2, 2)))
