"""Unit tests for repro.soc.assembler."""

import pytest

from repro.soc.assembler import Assembler, AssemblyError
from repro.soc.isa import Condition, Opcode


@pytest.fixture
def assembler() -> Assembler:
    return Assembler()


class TestBasicAssembly:
    def test_simple_program(self, assembler):
        program = assembler.assemble(
            """
            main:
                mov r0, #1
                add r1, r0, #2
                halt
            """,
            entry_label="main",
        )
        assert len(program) == 3
        assert program.entry_point == 0
        assert program.instructions[0].opcode is Opcode.MOV

    def test_comments_and_blank_lines_ignored(self, assembler):
        program = assembler.assemble("; comment only\n\nmov r0, #1  ; trailing\n// c++ style\n")
        assert len(program) == 1

    def test_labels_resolve_to_instruction_indices(self, assembler):
        program = assembler.assemble(
            """
            start:
                mov r0, #0
            loop:
                add r0, r0, #1
                b loop
            """
        )
        assert program.label_address("start") == 0
        assert program.label_address("loop") == 1

    def test_unknown_label_lookup_raises(self, assembler):
        program = assembler.assemble("nop")
        with pytest.raises(KeyError):
            program.label_address("nowhere")

    def test_flag_setting_suffix_stripped(self, assembler):
        program = assembler.assemble("movs r0, #1\nadds r0, r0, #1\nsubs r0, r0, #1")
        assert [i.opcode for i in program.instructions] == [Opcode.MOV, Opcode.ADD, Opcode.SUB]

    def test_conditional_branches(self, assembler):
        program = assembler.assemble(
            """
            loop:
                cmp r0, #0
                beq loop
                bne loop
                bge loop
                blt loop
            """
        )
        conditions = [i.condition for i in program.instructions[1:]]
        assert conditions == [Condition.EQ, Condition.NE, Condition.GE, Condition.LT]

    def test_memory_operands(self, assembler):
        program = assembler.assemble("ldr r1, [r2, #8]\nstr r1, [r2]\nldrb r3, [r4, #1]")
        load = program.instructions[0]
        assert load.opcode is Opcode.LDR
        assert load.operands[1].value == (2, 8)
        assert program.instructions[1].operands[1].value == (2, 0)
        assert program.instructions[2].opcode is Opcode.LDRB

    def test_push_pop_register_lists(self, assembler):
        program = assembler.assemble("push {r4, r5, lr}\npop {r4, r5, pc}")
        assert program.instructions[0].operands[0].value == (4, 5, 14)
        assert program.instructions[1].operands[0].value == (4, 5, 15)

    def test_hex_immediates(self, assembler):
        program = assembler.assemble("mov r0, #0xFF")
        assert program.instructions[0].operands[1].value == 0xFF

    def test_data_words(self, assembler):
        program = assembler.assemble(".word 1, 2, 0x10")
        assert list(program.data_words.values()) == [1, 2, 0x10]


class TestAssemblyErrors:
    def test_unknown_mnemonic(self, assembler):
        with pytest.raises(AssemblyError):
            assembler.assemble("frobnicate r0, r1")

    def test_duplicate_label(self, assembler):
        with pytest.raises(AssemblyError):
            assembler.assemble("a:\n nop\na:\n nop")

    def test_bad_immediate(self, assembler):
        with pytest.raises(AssemblyError):
            assembler.assemble("mov r0, #banana")

    def test_bad_register_in_memory_operand(self, assembler):
        with pytest.raises(AssemblyError):
            assembler.assemble("ldr r0, [q9]")

    def test_empty_register_list(self, assembler):
        with pytest.raises(AssemblyError):
            assembler.assemble("push {}")

    def test_push_without_braces(self, assembler):
        with pytest.raises(AssemblyError):
            assembler.assemble("push r4")

    def test_error_reports_line_number(self, assembler):
        with pytest.raises(AssemblyError) as excinfo:
            assembler.assemble("nop\nbogus r1")
        assert excinfo.value.line_number == 2
