"""Legacy entry points pinned bit-identical to their pre-pipeline output.

``tests/data/pipeline_golden.json`` was captured by running the pre-refactor
drivers (``tests/data/capture_pipeline_golden.py``) at fixed seeds and quick
scales.  Every legacy ``run_*`` entry point now delegates to the scenario
pipeline; these tests prove the delegation changed nothing: reports match
character for character and arrays match bit for bit.
"""

import hashlib
import json
import pathlib

import numpy as np
import pytest

from repro.core.config import ExperimentConfig
from repro.core.spec import ScenarioSpec
from repro.experiments import (
    run_fig2,
    run_fig3,
    run_fig5,
    run_fig6,
    run_robustness,
    run_table1,
    run_table2,
)
from repro.pipeline import ExperimentRunner

GOLDEN = json.loads(
    (pathlib.Path(__file__).parent / "data" / "pipeline_golden.json").read_text()
)


def digest(array: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


def fast_config() -> ExperimentConfig:
    return ExperimentConfig.fast(30_000)


class TestFastExperimentsMatchGolden:
    def test_fig2(self):
        result = run_fig2()
        assert result.to_text() == GOLDEN["fig2"]["report"]
        assert digest(result.wmark) == GOLDEN["fig2"]["arrays"]["wmark"]
        assert (
            digest(result.baseline_toggles)
            == GOLDEN["fig2"]["arrays"]["baseline_toggles"]
        )
        assert (
            digest(result.clock_modulation_toggles)
            == GOLDEN["fig2"]["arrays"]["clock_modulation_toggles"]
        )

    def test_fig3(self):
        result = run_fig3(num_cycles=2_048, seed=7)
        assert result.to_text() == GOLDEN["fig3"]["report"]
        assert (
            digest(result.measured_total_power)
            == GOLDEN["fig3"]["arrays"]["measured_total_power"]
        )

    def test_table1(self):
        assert run_table1().to_text() == GOLDEN["table1"]["report"]

    def test_table2(self):
        assert run_table2().to_text() == GOLDEN["table2"]["report"]

    def test_robustness(self):
        assert run_robustness().to_text() == GOLDEN["robustness"]["report"]


class TestAcquisitionExperimentsMatchGolden:
    """Fig. 5 / Fig. 6 at the captured quick scale (30k cycles, 4k window)."""

    def test_fig5_report_and_spectra(self):
        result = run_fig5(config=fast_config(), seed=100, m0_window_cycles=4_096)
        assert result.to_text() == GOLDEN["fig5"]["report"]
        assert set(result.panels) == set(GOLDEN["fig5"]["arrays"])
        for key, panel in result.panels.items():
            assert digest(panel.cpa.correlations) == GOLDEN["fig5"]["arrays"][key], key

    def test_fig6_report(self):
        result = run_fig6(
            repetitions=6, config=fast_config(), base_seed=1_000, m0_window_cycles=4_096
        )
        assert result.to_text() == GOLDEN["fig6"]["report"]


class TestRunnerAndShimAgree:
    """The registry/runner path and the legacy shim produce identical output."""

    def test_fig5_runner_equals_shim(self):
        config = fast_config()
        spec = ScenarioSpec(
            kind="fig5",
            name="fig5",
            measurement=config.measurement,
            seed=100,
            m0_window_cycles=4_096,
        )
        via_runner = ExperimentRunner().run(spec)
        assert via_runner.report == GOLDEN["fig5"]["report"]
        for key in GOLDEN["fig5"]["arrays"]:
            assert (
                digest(via_runner.arrays[f"{key}/correlations"])
                == GOLDEN["fig5"]["arrays"][key]
            )

    def test_table_runner_equals_shim(self):
        runner = ExperimentRunner()
        assert runner.run("table1").report == GOLDEN["table1"]["report"]
        assert runner.run("table2").report == GOLDEN["table2"]["report"]
        assert runner.run("robustness").report == GOLDEN["robustness"]["report"]

    def test_custom_estimator_path_still_works(self):
        from repro.power.estimator import PowerEstimator

        direct = run_table1(estimator=PowerEstimator.at_nominal())
        assert direct.to_text() == GOLDEN["table1"]["report"]
