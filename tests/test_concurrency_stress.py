"""Threaded stress tests pinning this PR's concurrency fixes.

repro-lint's CONC001/CONC003 rules surfaced two real races in the
service layer; each fix gets a targeted stress test so a regression
fails loudly rather than flaking once a month:

* ``Ledger.count``/``tip_digest`` read ``_count``/``_tip`` off-lock
  (CONC001) -- now locked property reads, hammered here against
  concurrent appends;
* ``DetectionService._inflight`` was an unbounded bare dict guarded by
  a second lock (CONC003) -- now a bounded ``caching.LRUCache``,
  hammered here for coalescing and boundedness.
"""

import threading

import pytest

from repro.service.ledger import Ledger
from repro.service.server import _INFLIGHT_LOCKS, DetectionService, ServiceConfig


def _run_threads(workers):
    barrier = threading.Barrier(len(workers))
    errors = []

    def wrap(fn):
        def run():
            try:
                barrier.wait()
                fn()
            except Exception as error:  # pragma: no cover - fail loudly
                errors.append(error)

        return run

    threads = [threading.Thread(target=wrap(fn)) for fn in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []


class TestLedgerLockDiscipline:
    N_WRITERS = 4
    APPENDS_EACH = 25

    def test_concurrent_appends_with_racing_readers(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        stop = threading.Event()
        seen = []

        def writer(index):
            def run():
                for i in range(self.APPENDS_EACH):
                    ledger.append({"writer": index, "i": i})

            return run

        def reader():
            last = 0
            while not stop.is_set():
                count = ledger.count
                tip = ledger.tip_digest
                # monotone under the lock: no torn/backwards reads
                assert count >= last
                assert isinstance(tip, str) and tip
                last = count
            seen.append(last)

        writers = [writer(i) for i in range(self.N_WRITERS)]

        reader_threads = [threading.Thread(target=reader) for _ in range(2)]
        for thread in reader_threads:
            thread.start()
        try:
            _run_threads(writers)
        finally:
            stop.set()
            for thread in reader_threads:
                thread.join()

        assert ledger.count == self.N_WRITERS * self.APPENDS_EACH
        assert ledger.verify() == []
        # a fresh open recovers the same tip the properties reported
        reopened = Ledger(tmp_path / "ledger.jsonl")
        assert reopened.count == ledger.count
        assert reopened.tip_digest == ledger.tip_digest


class TestInflightLockTable:
    def _service(self, tmp_path):
        config = ServiceConfig(port=0, data_dir=tmp_path / "svc", difficulty=0)
        return DetectionService(config)

    def test_same_key_coalesces_to_one_lock_across_threads(self, tmp_path):
        service = self._service(tmp_path)
        locks = []
        guard = threading.Lock()

        def fetch():
            lock = service._inflight_lock("spec-digest-1")
            with guard:
                locks.append(lock)

        _run_threads([fetch] * 16)
        assert len(locks) == 16
        assert len({id(lock) for lock in locks}) == 1

    def test_lock_table_stays_bounded_under_distinct_keys(self, tmp_path):
        service = self._service(tmp_path)

        def churn(start):
            def run():
                for i in range(start, start + 4 * _INFLIGHT_LOCKS):
                    service._inflight_lock(f"key-{start}-{i}")

            return run

        _run_threads([churn(i * 10_000) for i in range(4)])
        assert len(service._inflight) <= _INFLIGHT_LOCKS

    def test_evicted_key_still_serializes_new_waiters(self, tmp_path):
        # eviction mid-wait is safe by design: the loser recomputes a
        # fresh lock and the store write underneath is first-wins.  The
        # re-fetched lock must again coalesce for everyone.
        service = self._service(tmp_path)
        first = service._inflight_lock("hot-key")
        for i in range(2 * _INFLIGHT_LOCKS):  # evict hot-key
            service._inflight_lock(f"filler-{i}")
        locks = []
        guard = threading.Lock()

        def refetch():
            lock = service._inflight_lock("hot-key")
            with guard:
                locks.append(lock)

        _run_threads([refetch] * 8)
        assert len({id(lock) for lock in locks}) == 1
        assert locks[0] is not first
