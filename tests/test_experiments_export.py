"""Unit tests for repro.experiments.export."""

import csv
import json

import pytest

from repro.core.config import (
    DetectionConfig,
    ExperimentConfig,
    MeasurementConfig,
    WatermarkConfig,
)
from repro.experiments import run_fig2, run_table1, run_table2
from repro.experiments.export import (
    export_fig2_csv,
    export_fig5_csv,
    export_fig6_csv,
    export_summary_json,
    export_table1_csv,
    export_table2_csv,
)
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6


@pytest.fixture(scope="module")
def tiny_config() -> ExperimentConfig:
    return ExperimentConfig(
        watermark=WatermarkConfig(lfsr_width=8, lfsr_seed=0x2D),
        measurement=MeasurementConfig(
            num_cycles=20_000, transient_noise_floor_w=0.01, transient_noise_fraction=0.2
        ),
        detection=DetectionConfig(),
    )


def _read_csv(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


class TestCsvExports:
    def test_fig2_export(self, tmp_path):
        result = run_fig2(num_cycles=32)
        path = export_fig2_csv(result, tmp_path / "fig2.csv")
        rows = _read_csv(path)
        assert rows[0] == ["cycle", "wmark", "load_circuit_toggles", "clock_modulation_toggles"]
        assert len(rows) == 33

    def test_fig5_export(self, tmp_path, tiny_config):
        result = run_fig5(config=tiny_config, m0_window_cycles=1024)
        path = export_fig5_csv(result, tmp_path / "fig5.csv")
        rows = _read_csv(path)
        assert rows[0] == ["chip", "watermark_active", "rotation", "correlation"]
        # 4 panels x 255 rotations.
        assert len(rows) == 1 + 4 * 255

    def test_fig6_export(self, tmp_path, tiny_config):
        result = run_fig6(repetitions=3, config=tiny_config, m0_window_cycles=1024)
        path = export_fig6_csv(result, tmp_path / "fig6.csv")
        rows = _read_csv(path)
        kinds = {row[1] for row in rows[1:]}
        assert kinds == {"peak", "off_peak"}

    def test_table1_export(self, tmp_path):
        path = export_table1_csv(run_table1(), tmp_path / "table1.csv")
        rows = _read_csv(path)
        assert len(rows) == 5
        assert rows[1][0] == "0"

    def test_table2_export(self, tmp_path):
        path = export_table2_csv(run_table2(), tmp_path / "table2.csv")
        rows = _read_csv(path)
        assert len(rows) == 7
        assert rows[4][1] == "576"


class TestJsonExport:
    def test_summary_json(self, tmp_path):
        path = export_summary_json({"table2": {"headline_reduction": 0.98}}, tmp_path / "summary.json")
        data = json.loads(path.read_text())
        assert data["table2"]["headline_reduction"] == 0.98
