"""Tests for the Fig. 2 and Fig. 3 experiment drivers."""

import numpy as np
import pytest

from repro.core.config import ExperimentConfig, MeasurementConfig
from repro.experiments import run_fig2, run_fig3


class TestFig2:
    def test_waveform_lengths(self):
        result = run_fig2(num_cycles=64)
        assert result.num_cycles == 64
        assert len(result.wmark) == 64
        assert len(result.baseline_toggles) == 64
        assert len(result.clock_modulation_toggles) == 64

    def test_both_architectures_idle_when_wmark_low(self):
        assert run_fig2().idle_when_wmark_low

    def test_clock_modulation_switches_more_per_register(self):
        result = run_fig2()
        assert (
            result.clock_modulation_toggles_per_active_register
            > result.baseline_toggles_per_active_register
        )

    def test_wmark_drives_both_loads(self):
        result = run_fig2(num_cycles=60)
        high = result.wmark.astype(bool)
        assert np.all(result.baseline_toggles[high] > 0)
        assert np.all(result.clock_modulation_toggles[high] > 0)

    def test_text_rendering(self):
        text = run_fig2().to_text()
        assert "WMARK" in text
        assert "clock modulation" in text

    def test_invalid_cycles_rejected(self):
        with pytest.raises(ValueError):
            run_fig2(num_cycles=0)


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        config = ExperimentConfig(measurement=MeasurementConfig(num_cycles=2048))
        return run_fig3(num_cycles=2048, config=config)

    def test_total_is_sum_of_components(self, result):
        assert np.allclose(
            result.total_power.power_w,
            result.system_power.power_w + result.watermark_power.power_w,
        )

    def test_watermark_much_smaller_than_system(self, result):
        assert result.watermark_power.average_power_w < result.system_power.average_power_w

    def test_modulation_amplitude_matches_load_power(self, result):
        # The modulation amplitude is the clock-modulated bank's active power
        # (paper: ~1.5 mW) plus a small enable-logic contribution.
        assert 1.3e-3 < result.watermark_amplitude_w < 1.9e-3

    def test_deeply_embedded(self, result):
        assert result.deeply_embedded
        assert result.relative_amplitude < 0.5

    def test_text_rendering(self, result):
        text = result.to_text()
        assert "watermark power signal" in text
        assert "deeply embedded" in text
