"""Unit tests for repro.soc.multicore."""

import numpy as np
import pytest

from repro.soc.multicore import BackgroundIPBlocks, IdleBlockParameters, IdleDualCoreA5Like


class TestIdleBlockParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            IdleBlockParameters("x", register_count=0, ungated_fraction=0.2, mean_data_activity=1, data_activity_std=1)
        with pytest.raises(ValueError):
            IdleBlockParameters("x", register_count=10, ungated_fraction=1.5, mean_data_activity=1, data_activity_std=1)
        with pytest.raises(ValueError):
            IdleBlockParameters("x", register_count=10, ungated_fraction=0.5, mean_data_activity=-1, data_activity_std=1)


class TestIdleDualCoreA5Like:
    def test_register_count_scale(self):
        a5 = IdleDualCoreA5Like()
        # Dual-core plus caches: must dwarf a Cortex-M0-class core (~1k registers).
        assert a5.register_count > 20_000
        assert a5.clocked_registers < a5.register_count

    def test_activity_trace_shape_and_determinism(self):
        a5 = IdleDualCoreA5Like()
        first = a5.activity_trace(500, seed=3)
        second = a5.activity_trace(500, seed=3)
        assert len(first) == 500
        assert np.array_equal(first.data_toggles, second.data_toggles)

    def test_different_seeds_differ(self):
        a5 = IdleDualCoreA5Like()
        assert not np.array_equal(
            a5.activity_trace(500, seed=1).data_toggles,
            a5.activity_trace(500, seed=2).data_toggles,
        )

    def test_clock_component_is_constant(self):
        a5 = IdleDualCoreA5Like()
        trace = a5.activity_trace(100, seed=0)
        assert np.all(trace.clock_toggles == trace.clock_toggles[0])
        assert trace.clock_toggles[0] == 2 * a5.clocked_registers

    def test_invalid_cycle_count_rejected(self):
        with pytest.raises(ValueError):
            IdleDualCoreA5Like().activity_trace(0)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            IdleDualCoreA5Like(registers_per_core=0)


class TestBackgroundIPBlocks:
    def test_smaller_than_a5(self):
        peripherals = BackgroundIPBlocks()
        a5 = IdleDualCoreA5Like()
        assert peripherals.clocked_registers < a5.clocked_registers

    def test_activity_nonnegative(self):
        trace = BackgroundIPBlocks().activity_trace(1000, seed=5)
        assert trace.data_toggles.min() >= 0
        assert trace.comb_toggles.min() >= 0
