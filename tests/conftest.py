"""Shared fixtures for the test suite.

Long experiments (Fig. 5/6 scale) are exercised through reduced-length
configurations so the whole suite stays fast; the full-length runs are the
job of the benchmark harness.
"""

from __future__ import annotations

import pytest

from repro.core.config import (
    DetectionConfig,
    ExperimentConfig,
    MeasurementConfig,
    WatermarkConfig,
)
from repro.power.estimator import PowerEstimator
from repro.rtl.signals import Clock


@pytest.fixture(scope="session")
def nominal_estimator() -> PowerEstimator:
    """Power estimator at the paper's nominal operating point (10 MHz, 1.2 V)."""
    return PowerEstimator.at_nominal()


@pytest.fixture(scope="session")
def nominal_clock() -> Clock:
    """The 10 MHz system clock of the test chips."""
    return Clock("clk", 10e6)


@pytest.fixture(scope="session")
def fast_measurement_config() -> MeasurementConfig:
    """A reduced-length acquisition for quick end-to-end tests."""
    return MeasurementConfig(num_cycles=40_000, seed=7)


@pytest.fixture(scope="session")
def fast_experiment_config(fast_measurement_config) -> ExperimentConfig:
    """Reduced-length experiment configuration."""
    return ExperimentConfig(measurement=fast_measurement_config)


@pytest.fixture(scope="session")
def small_watermark_config() -> WatermarkConfig:
    """A small watermark (short sequence, small bank) for fast unit tests."""
    return WatermarkConfig(lfsr_width=6, lfsr_seed=0x15, num_words=4, word_width=8, load_registers=32)
