"""Pipeline runner, experiment registry and chip registry behaviour."""

import numpy as np
import pytest

from repro.core.config import QUICK_CYCLES, MeasurementConfig
from repro.core.spec import ScenarioSpec
from repro.pipeline import (
    DEFAULT_REGISTRY,
    ExperimentRegistry,
    ExperimentRunner,
    Pipeline,
    RegistryEntry,
    RunOptions,
    registered_kinds,
)
from repro.soc.registry import (
    available_chips,
    available_workloads,
    build_registered_chip,
    canonical_chip_name,
    chip_entry,
)


class TestChipRegistry:
    def test_canonical_names(self):
        assert available_chips() == ("chip1", "chip2")

    @pytest.mark.parametrize(
        "alias, canonical",
        [
            ("chip1", "chip1"),
            ("chipI", "chip1"),
            ("chip_one", "chip1"),
            ("1", "chip1"),
            ("chip2", "chip2"),
            ("chipII", "chip2"),
            ("chip_two", "chip2"),
            ("2", "chip2"),
        ],
    )
    def test_aliases_resolve(self, alias, canonical):
        assert canonical_chip_name(alias) == canonical

    def test_unknown_name_lists_valid_spellings(self):
        with pytest.raises(ValueError) as excinfo:
            canonical_chip_name("chip3")
        message = str(excinfo.value)
        assert "chip1" in message and "chip2" in message and "chipII" in message

    def test_build_through_registry(self):
        chip = build_registered_chip("chipII", m0_window_cycles=1_024)
        assert chip.name == "chip2"
        assert chip.a5_subsystem is not None

    def test_entry_metadata(self):
        assert "A5" in chip_entry("chip2").description

    def test_workloads_registered(self):
        assert available_workloads() == ("checksum", "dhrystone", "idle", "memcopy")


class TestExperimentRegistry:
    def test_every_paper_experiment_registered(self):
        names = DEFAULT_REGISTRY.names()
        for name in ("fig2", "fig3", "fig5", "fig6", "table1", "table2", "robustness"):
            assert name in names
        for chip in ("chip1", "chip2"):
            assert f"fig6/{chip}" in names
            assert f"fig5/{chip}-active" in names
            assert f"fig5/{chip}-inactive" in names

    def test_every_registered_spec_resolves_to_stages(self):
        for entry in DEFAULT_REGISTRY.entries():
            spec = entry.build(RunOptions(quick=True))
            pipeline = Pipeline.from_spec(spec)
            assert pipeline.stage_names, entry.name
            assert spec.kind in registered_kinds()

    def test_quick_options_shape_the_spec(self):
        spec = DEFAULT_REGISTRY.build("fig5", RunOptions(quick=True))
        assert spec.measurement == MeasurementConfig.quick()
        assert spec.measurement.num_cycles == QUICK_CYCLES
        spec = DEFAULT_REGISTRY.build("fig5", RunOptions(cycles=12_000))
        assert spec.measurement.num_cycles == 12_000

    def test_seed_option_overrides_default(self):
        assert DEFAULT_REGISTRY.build("fig5", RunOptions(seed=7)).seed == 7
        assert DEFAULT_REGISTRY.build("fig5").seed == 100

    def test_repetitions_option(self):
        assert DEFAULT_REGISTRY.build("fig6").repetitions == 100
        assert DEFAULT_REGISTRY.build("fig6", RunOptions(quick=True)).repetitions == 20
        assert DEFAULT_REGISTRY.build("fig6", RunOptions(repetitions=5)).repetitions == 5

    def test_unknown_name_lists_registered(self):
        with pytest.raises(KeyError, match="fig5"):
            DEFAULT_REGISTRY.get("fig99")

    def test_duplicate_registration_rejected(self):
        registry = ExperimentRegistry()
        entry = RegistryEntry(
            name="x", title="t", paper_ref="r", factory=lambda o: None
        )
        registry.register(entry)
        with pytest.raises(ValueError, match="already registered"):
            registry.register(entry)


class TestPipeline:
    def test_fig5_panel_stage_graph(self):
        spec = ScenarioSpec(kind="fig5_panel", chip="chip1")
        assert Pipeline.from_spec(spec).stage_names == ("chip", "acquisition", "detection")

    def test_fig3_stage_graph(self):
        spec = ScenarioSpec(kind="fig3", chip="chip1")
        assert Pipeline.from_spec(spec).stage_names == ("chip", "power", "acquisition")

    def test_fig6_chip_stage_graph(self):
        spec = ScenarioSpec(kind="fig6_chip", chip="chip1")
        assert Pipeline.from_spec(spec).stage_names == ("chip", "campaign", "statistics")


class TestExperimentRunner:
    def test_run_by_name_produces_typed_result(self):
        result = ExperimentRunner().run("fig2")
        assert result.name == "fig2"
        assert result.scalars["idle_when_wmark_low"] is True
        assert result.arrays["wmark"].shape == (64,)
        assert result.report.startswith("Fig. 2 reproduction")
        assert result.provenance.spec_hash == result.spec.spec_hash()
        assert result.provenance.elapsed_s > 0

    def test_run_spec_json_file(self, tmp_path):
        path = ScenarioSpec(kind="fig2", name="from-file", seed=9).save(
            tmp_path / "spec.json"
        )
        result = ExperimentRunner().run(str(path))
        assert result.name == "from-file"

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            ExperimentRunner().run("not-a-scenario")

    def test_chip_requires_chip_kind(self):
        with pytest.raises(ValueError, match="requires a chip"):
            ExperimentRunner().chip_for(ScenarioSpec(kind="table2"))

    def test_run_many_shares_chips_across_scenarios(self):
        config = MeasurementConfig.quick(6_000)
        runner = ExperimentRunner()
        specs = [
            ScenarioSpec(
                kind="fig5_panel",
                name=f"panel-{active}",
                chip="chip1",
                measurement=config,
                watermark_active=active,
                seed=11,
                m0_window_cycles=1_024,
            )
            for active in (True, False)
        ]
        # backend="serial" pinned: the assertion below inspects the chip
        # cache of *this* process's runner, which "auto" may bypass.
        sweep = runner.run_many(specs, backend="serial")
        assert sweep.names == ["panel-True", "panel-False"]
        stats = runner.chip_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 1

    def test_run_many_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one scenario"):
            ExperimentRunner().run_many([])

    def test_alias_chip_names_behave_like_canonical(self):
        from repro.core.config import ExperimentConfig
        from repro.experiments.fig5 import run_fig5_panel

        config = ExperimentConfig(measurement=MeasurementConfig.quick(6_000))
        canonical = run_fig5_panel(
            "chip1", True, config=config, seed=11, m0_window_cycles=1_024
        )
        alias = run_fig5_panel(
            "chipI", True, config=config, seed=11, m0_window_cycles=1_024
        )
        assert alias.chip_name == "chip1"
        assert np.array_equal(alias.cpa.correlations, canonical.cpa.correlations)

    def test_workload_selects_program(self):
        runner = ExperimentRunner()
        dhrystone = runner.chip_for(
            ScenarioSpec(kind="fig3", chip="chip1", m0_window_cycles=512)
        )
        memcopy = runner.chip_for(
            ScenarioSpec(
                kind="fig3", chip="chip1", workload="memcopy", m0_window_cycles=512
            )
        )
        assert memcopy is not dhrystone
        assert memcopy.program is not dhrystone.program
        background_a = dhrystone.background_power(1_024, seed=3).power_w
        background_b = memcopy.background_power(1_024, seed=3).power_w
        assert not np.array_equal(background_a, background_b)


class TestRegistryScenarioExecution:
    def test_quick_masking_scenario_end_to_end(self):
        spec = DEFAULT_REGISTRY.build(
            "masking-noise", RunOptions(quick=True, cycles=20_000)
        )
        result = ExperimentRunner().run(spec)
        assert len(result.arrays["masking_noise_w"]) == 5
        assert result.scalars["still_detected_everywhere"] in (True, False)
        assert result.payload.num_cycles == 20_000

    def test_quick_detection_probability_scenario(self):
        spec = DEFAULT_REGISTRY.build(
            "detection-probability", RunOptions(quick=True)
        )
        result = ExperimentRunner().run(spec)
        assert list(result.arrays["cycles"]) == [5_000, 20_000, 80_000]
        assert result.arrays["detection_probability"].min() >= 0.0
        assert result.arrays["detection_probability"].max() <= 1.0


class TestArtifactSaveHygiene:
    """Overwriting an artifact must not leave a stale sibling ``.npz``."""

    def _results(self):
        from repro.pipeline import Provenance, ScenarioResult

        spec = ScenarioSpec(kind="fig2", name="hygiene", seed=1)
        provenance = Provenance(spec_hash=spec.spec_hash())
        with_arrays = ScenarioResult(
            spec=spec,
            provenance=provenance,
            arrays={"data": np.arange(8)},
            report="with arrays",
        )
        without_arrays = ScenarioResult(
            spec=spec, provenance=provenance, report="no arrays"
        )
        return with_arrays, without_arrays

    def test_scenario_overwrite_removes_stale_npz(self, tmp_path):
        from repro.pipeline import ScenarioResult

        with_arrays, without_arrays = self._results()
        with_arrays.save(tmp_path / "res")
        assert (tmp_path / "res.npz").exists()
        without_arrays.save(tmp_path / "res")
        assert not (tmp_path / "res.npz").exists()
        reloaded = ScenarioResult.load(tmp_path / "res")
        assert reloaded.arrays == {} and reloaded.report == "no arrays"

    def test_sweep_overwrite_removes_stale_npz(self, tmp_path):
        from repro.pipeline import SweepResult

        with_arrays, without_arrays = self._results()
        SweepResult(results=[with_arrays]).save(tmp_path / "sweep")
        assert (tmp_path / "sweep.npz").exists()
        SweepResult(results=[without_arrays]).save(tmp_path / "sweep")
        assert not (tmp_path / "sweep.npz").exists()
        assert SweepResult.load(tmp_path / "sweep")[0].arrays == {}

    def test_overwrite_with_arrays_refreshes_npz(self, tmp_path):
        from repro.pipeline import ScenarioResult

        with_arrays, _ = self._results()
        with_arrays.save(tmp_path / "res")
        refreshed = ScenarioResult(
            spec=with_arrays.spec,
            provenance=with_arrays.provenance,
            arrays={"data": np.arange(3)},
            report="refreshed",
        )
        refreshed.save(tmp_path / "res")
        assert np.array_equal(
            ScenarioResult.load(tmp_path / "res").arrays["data"], np.arange(3)
        )


class TestFailedCellRoundTrip:
    """``error``/``ok``/FAILED counts survive save/load and the wire format."""

    def _failed(self):
        from repro.pipeline.backends import failed_result

        return failed_result(
            ScenarioSpec(kind="fig2", name="bad", seed=1), "Traceback: boom"
        )

    def test_scenario_save_load_preserves_error(self, tmp_path):
        from repro.pipeline import ScenarioResult

        failed = self._failed()
        loaded = ScenarioResult.load(failed.save(tmp_path / "bad"))
        assert loaded.error == failed.error
        assert not loaded.ok
        assert loaded.report == failed.report

    def test_wire_round_trip_preserves_error(self):
        from repro.pipeline import ScenarioResult

        failed = self._failed()
        rebuilt = ScenarioResult.from_wire(failed.to_wire())
        assert rebuilt.error == failed.error and not rebuilt.ok

    def test_sweep_save_load_preserves_failed_count(self, tmp_path):
        from repro.pipeline import SweepResult

        ok = ExperimentRunner().run(ScenarioSpec(kind="fig2", name="ok", seed=9))
        sweep = SweepResult(results=[ok, self._failed()], elapsed_s=1.0)
        loaded = SweepResult.load(sweep.save(tmp_path / "sweep"))
        assert [cell.ok for cell in loaded] == [True, False]
        assert loaded.failures[0].error == "Traceback: boom"
        assert "(1 FAILED)" in loaded.to_text()
        assert loaded.to_text().count("FAILED") == sweep.to_text().count("FAILED")
