"""Unit tests for repro.analysis.attacks and robustness."""

import pytest

from repro.analysis.attacks import RemovalAttack, find_standalone_clusters
from repro.analysis.robustness import assess_robustness
from repro.core.config import ArchitectureKind, WatermarkConfig
from repro.core.embedding import embed_baseline, embed_clock_modulation
from repro.soc.structure import build_soc_structure, clock_gate_paths


@pytest.fixture
def config() -> WatermarkConfig:
    return WatermarkConfig(lfsr_width=8, lfsr_seed=0x1D, load_registers=128)


@pytest.fixture
def baseline_netlist(config):
    host = build_soc_structure(name="soc_b")
    embedded = embed_baseline(host, config)
    return embedded, embedded.netlist()


@pytest.fixture
def clock_mod_netlist(config):
    host = build_soc_structure(name="soc_c")
    gates = clock_gate_paths(host)[:4]
    embedded = embed_clock_modulation(host, gates, config)
    return embedded, embedded.netlist()


class TestStandaloneClusterSearch:
    def test_baseline_watermark_is_shortlisted(self, baseline_netlist):
        embedded, netlist = baseline_netlist
        clusters = find_standalone_clusters(netlist)
        assert len(clusters) >= 1
        shortlisted = set().union(*(c.instances for c in clusters))
        assert set(embedded.watermark_instances) <= shortlisted

    def test_clock_modulation_watermark_not_shortlisted(self, clock_mod_netlist):
        embedded, netlist = clock_mod_netlist
        clusters = find_standalone_clusters(netlist)
        shortlisted = set().union(*(c.instances for c in clusters)) if clusters else set()
        assert not (set(embedded.watermark_instances) & shortlisted)

    def test_invalid_fraction_rejected(self, baseline_netlist):
        _, netlist = baseline_netlist
        with pytest.raises(ValueError):
            find_standalone_clusters(netlist, max_fraction_of_design=0.0)


class TestRemovalAttack:
    def test_blind_attack_removes_baseline_watermark(self, baseline_netlist):
        embedded, netlist = baseline_netlist
        outcome = RemovalAttack().execute(netlist)
        assert outcome.watermark_fully_removed
        assert outcome.recall == 1.0
        assert outcome.precision == 1.0
        assert not outcome.system_impaired

    def test_blind_attack_misses_clock_modulation_watermark(self, clock_mod_netlist):
        _, netlist = clock_mod_netlist
        outcome = RemovalAttack().execute(netlist)
        assert not outcome.watermark_found
        assert outcome.recall == 0.0

    def test_informed_removal_of_clock_modulation_breaks_system(self, clock_mod_netlist):
        embedded, netlist = clock_mod_netlist
        outcome = RemovalAttack().execute_informed(netlist, embedded.watermark_instances)
        assert outcome.watermark_fully_removed
        assert outcome.system_impaired
        assert len(outcome.broken_functional_instances) >= len(embedded.modulated_gate_paths)

    def test_informed_removal_of_baseline_is_harmless(self, baseline_netlist):
        embedded, netlist = baseline_netlist
        outcome = RemovalAttack().execute_informed(netlist, embedded.watermark_instances)
        assert outcome.watermark_fully_removed
        assert not outcome.system_impaired

    def test_informed_attack_unknown_instances_rejected(self, baseline_netlist):
        _, netlist = baseline_netlist
        with pytest.raises(KeyError):
            RemovalAttack().execute_informed(netlist, ["ghost/instance"])

    def test_outcome_metrics_on_empty_attack(self, clock_mod_netlist):
        _, netlist = clock_mod_netlist
        outcome = RemovalAttack().execute(netlist)
        assert outcome.precision == 0.0
        assert outcome.collateral_damage == 0


class TestRobustnessAssessment:
    def test_baseline_not_robust(self, config):
        host = build_soc_structure(name="soc_rb")
        embedded = embed_baseline(host, config)
        assessment = assess_robustness(embedded)
        assert assessment.architecture == ArchitectureKind.BASELINE_LOAD_CIRCUIT.value
        assert not assessment.robust

    def test_clock_modulation_robust(self, config):
        host = build_soc_structure(name="soc_rc")
        gates = clock_gate_paths(host)[:4]
        embedded = embed_clock_modulation(host, gates, config)
        assessment = assess_robustness(embedded)
        assert assessment.survives_blind_attack
        assert assessment.removal_breaks_system
        assert assessment.robust
        assert "robust: True" in assessment.summary()


class TestMaskingAttackSweeps:
    @pytest.fixture(scope="class")
    def sequence(self):
        from repro.core.lfsr import LFSR

        return LFSR(width=10, seed=0x155).sequence()

    def test_noise_injection_sweep(self, sequence):
        from repro.analysis.attacks import MaskingAttack

        attack = MaskingAttack(
            masking_noise_levels_w=(0.0, 500e-3),
            trials_per_point=3,
            num_cycles=60_000,
        )
        study = attack.sweep_noise_injection(
            sequence, watermark_amplitude_w=1.5e-3, base_noise_sigma_w=30e-3, seed=1
        )
        assert [p.masking_noise_w for p in study.points] == [0.0, 0.5]
        assert all(p.trials == 3 for p in study.points)
        assert study.points[0].detected
        assert not study.points[-1].detected

    def test_starvation_sweep(self, sequence):
        from repro.analysis.attacks import MaskingAttack

        attack = MaskingAttack(enable_duties=(1.0, 0.02), num_cycles=60_000)
        study = attack.sweep_starvation(
            sequence, watermark_amplitude_w=1.5e-3, base_noise_sigma_w=30e-3, seed=2
        )
        assert study.points[0].detected
        assert not study.points[-1].detected


class TestDetectionRobustness:
    def test_assessment_properties_and_summary(self):
        from repro.analysis.attacks import MaskingAttack
        from repro.analysis.robustness import assess_detection_robustness
        from repro.core.lfsr import LFSR

        sequence = LFSR(width=10, seed=0x155).sequence()
        attack = MaskingAttack(
            masking_noise_levels_w=(0.0, 500e-3),
            enable_duties=(1.0, 0.02),
            trials_per_point=2,
            num_cycles=60_000,
        )
        assessment = assess_detection_robustness(
            sequence,
            watermark_amplitude_w=1.5e-3,
            base_noise_sigma_w=30e-3,
            attack=attack,
            seed=3,
        )
        assert not assessment.survives_noise_injection
        assert not assessment.survives_starvation
        assert assessment.masking_noise_to_defeat_w == pytest.approx(0.5)
        assert assessment.starvation_duty_to_defeat == pytest.approx(0.02)
        summary = assessment.summary()
        assert "noise injection" in summary
        assert "starvation" in summary

    def test_default_attack_constructed(self):
        from repro.analysis.robustness import assess_detection_robustness
        from repro.core.lfsr import LFSR

        sequence = LFSR(width=8, seed=0x2D).sequence()
        assessment = assess_detection_robustness(
            sequence,
            watermark_amplitude_w=2e-3,
            base_noise_sigma_w=20e-3,
            num_cycles=20_000,
            trials_per_point=2,
            seed=4,
        )
        assert len(assessment.noise_study.points) == 5
        assert len(assessment.starvation_study.points) == 5
