"""Unit tests for repro.analysis.attacks and robustness."""

import pytest

from repro.analysis.attacks import RemovalAttack, find_standalone_clusters
from repro.analysis.robustness import assess_robustness
from repro.core.config import ArchitectureKind, WatermarkConfig
from repro.core.embedding import embed_baseline, embed_clock_modulation
from repro.soc.structure import build_soc_structure, clock_gate_paths


@pytest.fixture
def config() -> WatermarkConfig:
    return WatermarkConfig(lfsr_width=8, lfsr_seed=0x1D, load_registers=128)


@pytest.fixture
def baseline_netlist(config):
    host = build_soc_structure(name="soc_b")
    embedded = embed_baseline(host, config)
    return embedded, embedded.netlist()


@pytest.fixture
def clock_mod_netlist(config):
    host = build_soc_structure(name="soc_c")
    gates = clock_gate_paths(host)[:4]
    embedded = embed_clock_modulation(host, gates, config)
    return embedded, embedded.netlist()


class TestStandaloneClusterSearch:
    def test_baseline_watermark_is_shortlisted(self, baseline_netlist):
        embedded, netlist = baseline_netlist
        clusters = find_standalone_clusters(netlist)
        assert len(clusters) >= 1
        shortlisted = set().union(*(c.instances for c in clusters))
        assert set(embedded.watermark_instances) <= shortlisted

    def test_clock_modulation_watermark_not_shortlisted(self, clock_mod_netlist):
        embedded, netlist = clock_mod_netlist
        clusters = find_standalone_clusters(netlist)
        shortlisted = set().union(*(c.instances for c in clusters)) if clusters else set()
        assert not (set(embedded.watermark_instances) & shortlisted)

    def test_invalid_fraction_rejected(self, baseline_netlist):
        _, netlist = baseline_netlist
        with pytest.raises(ValueError):
            find_standalone_clusters(netlist, max_fraction_of_design=0.0)


class TestRemovalAttack:
    def test_blind_attack_removes_baseline_watermark(self, baseline_netlist):
        embedded, netlist = baseline_netlist
        outcome = RemovalAttack().execute(netlist)
        assert outcome.watermark_fully_removed
        assert outcome.recall == 1.0
        assert outcome.precision == 1.0
        assert not outcome.system_impaired

    def test_blind_attack_misses_clock_modulation_watermark(self, clock_mod_netlist):
        _, netlist = clock_mod_netlist
        outcome = RemovalAttack().execute(netlist)
        assert not outcome.watermark_found
        assert outcome.recall == 0.0

    def test_informed_removal_of_clock_modulation_breaks_system(self, clock_mod_netlist):
        embedded, netlist = clock_mod_netlist
        outcome = RemovalAttack().execute_informed(netlist, embedded.watermark_instances)
        assert outcome.watermark_fully_removed
        assert outcome.system_impaired
        assert len(outcome.broken_functional_instances) >= len(embedded.modulated_gate_paths)

    def test_informed_removal_of_baseline_is_harmless(self, baseline_netlist):
        embedded, netlist = baseline_netlist
        outcome = RemovalAttack().execute_informed(netlist, embedded.watermark_instances)
        assert outcome.watermark_fully_removed
        assert not outcome.system_impaired

    def test_informed_attack_unknown_instances_rejected(self, baseline_netlist):
        _, netlist = baseline_netlist
        with pytest.raises(KeyError):
            RemovalAttack().execute_informed(netlist, ["ghost/instance"])

    def test_outcome_metrics_on_empty_attack(self, clock_mod_netlist):
        _, netlist = clock_mod_netlist
        outcome = RemovalAttack().execute(netlist)
        assert outcome.precision == 0.0
        assert outcome.collateral_damage == 0


class TestRobustnessAssessment:
    def test_baseline_not_robust(self, config):
        host = build_soc_structure(name="soc_rb")
        embedded = embed_baseline(host, config)
        assessment = assess_robustness(embedded)
        assert assessment.architecture == ArchitectureKind.BASELINE_LOAD_CIRCUIT.value
        assert not assessment.robust

    def test_clock_modulation_robust(self, config):
        host = build_soc_structure(name="soc_rc")
        gates = clock_gate_paths(host)[:4]
        embedded = embed_clock_modulation(host, gates, config)
        assessment = assess_robustness(embedded)
        assert assessment.survives_blind_attack
        assert assessment.removal_breaks_system
        assert assessment.robust
        assert "robust: True" in assessment.summary()
