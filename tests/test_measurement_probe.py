"""Unit tests for repro.measurement.probe."""

import numpy as np
import pytest

from repro.measurement.probe import DifferentialProbe


class TestDifferentialProbe:
    def test_gain_applied(self):
        probe = DifferentialProbe(gain=2.0, noise_rms_v=0.0, bandwidth_hz=1e12)
        out = probe.apply(np.ones(16), sampling_frequency_hz=500e6)
        assert np.allclose(out, 2.0)

    def test_noise_added_when_rng_given(self):
        probe = DifferentialProbe(noise_rms_v=1e-3, bandwidth_hz=1e12)
        rng = np.random.default_rng(0)
        out = probe.apply(np.zeros(4096), sampling_frequency_hz=500e6, rng=rng)
        assert out.std() == pytest.approx(1e-3, rel=0.1)

    def test_no_noise_without_rng(self):
        probe = DifferentialProbe(noise_rms_v=1e-3, bandwidth_hz=1e12)
        out = probe.apply(np.zeros(64), sampling_frequency_hz=500e6)
        assert np.all(out == 0)

    def test_band_limiting_attenuates_fast_signal(self):
        probe = DifferentialProbe(bandwidth_hz=10e6, noise_rms_v=0.0)
        fs = 500e6
        t = np.arange(4096) / fs
        fast = np.sin(2 * np.pi * 200e6 * t)
        out = probe.apply(fast, sampling_frequency_hz=fs)
        assert np.std(out[500:]) < 0.2 * np.std(fast)

    def test_band_limiting_preserves_slow_signal(self):
        probe = DifferentialProbe(bandwidth_hz=120e6, noise_rms_v=0.0)
        fs = 500e6
        t = np.arange(4096) / fs
        slow = np.sin(2 * np.pi * 1e6 * t)
        out = probe.apply(slow, sampling_frequency_hz=fs)
        assert np.std(out[500:]) > 0.9 * np.std(slow)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DifferentialProbe(gain=0.0)
        with pytest.raises(ValueError):
            DifferentialProbe(bandwidth_hz=0.0)
        with pytest.raises(ValueError):
            DifferentialProbe(noise_rms_v=-1.0)
        with pytest.raises(ValueError):
            DifferentialProbe().apply(np.zeros(4), sampling_frequency_hz=0.0)
