"""Unit tests for repro.soc.bus."""

import pytest

from repro.soc.bus import SystemBus
from repro.soc.memory import Memory

BASE = 0x2000_0000


@pytest.fixture
def bus() -> SystemBus:
    bus = SystemBus()
    bus.attach(Memory(size_bytes=4096, base_address=BASE))
    return bus


class TestRouting:
    def test_access_routed_to_slave(self, bus):
        bus.access(BASE, write=True, value=0xCAFE)
        value, _, _ = bus.access(BASE, write=False)
        assert value == 0xCAFE

    def test_unmapped_address_rejected(self, bus):
        with pytest.raises(IndexError):
            bus.access(0x4000_0000, write=False)

    def test_overlapping_regions_rejected(self, bus):
        with pytest.raises(ValueError):
            bus.attach(Memory(size_bytes=1024, base_address=BASE + 512))

    def test_multiple_regions(self, bus):
        bus.attach(Memory(size_bytes=1024, base_address=0x1000_0000))
        bus.access(0x1000_0000, write=True, value=7)
        value, _, _ = bus.access(0x1000_0000, write=False)
        assert value == 7


class TestActivityAndTiming:
    def test_wait_states_reported(self):
        bus = SystemBus(wait_states=2)
        bus.attach(Memory(size_bytes=1024, base_address=BASE))
        _, _, wait = bus.access(BASE, write=False)
        assert wait == 2

    def test_negative_wait_states_rejected(self):
        with pytest.raises(ValueError):
            SystemBus(wait_states=-1)

    def test_transfer_statistics(self, bus):
        bus.access(BASE, write=True, value=1)
        bus.access(BASE + 4, write=False)
        assert bus.transfer_count == 2
        assert len(bus.transfers) == 2
        assert bus.transfers[0].write is True

    def test_activity_reflects_data_change(self, bus):
        _, small, _ = bus.access(BASE, write=True, value=0)
        _, large, _ = bus.access(BASE + 0x400, write=True, value=0xFFFFFFFF)
        assert large.total_toggles > small.total_toggles

    def test_reset(self, bus):
        bus.access(BASE, write=True, value=1)
        bus.reset()
        assert bus.transfer_count == 0
        assert bus.transfers == []
        value, _, _ = bus.access(BASE, write=False)
        assert value == 0
