"""Unit tests for repro.measurement.acquisition."""

import numpy as np
import pytest

from repro.core.config import MeasurementConfig
from repro.measurement.acquisition import AcquisitionCampaign, MeasuredTrace
from repro.power.trace import PowerTrace
from repro.rtl.signals import Clock


@pytest.fixture
def clock() -> Clock:
    return Clock("clk", 10e6)


@pytest.fixture
def campaign() -> AcquisitionCampaign:
    return AcquisitionCampaign(MeasurementConfig(num_cycles=2000))


def make_power_trace(clock, num_cycles=2000, amplitude=1.5e-3, base=4e-3) -> PowerTrace:
    wmark = (np.arange(num_cycles) % 63 < 32).astype(float)
    return PowerTrace("test", clock, base + amplitude * wmark)


class TestMeasuredTrace:
    def test_statistics(self, clock):
        trace = MeasuredTrace("m", np.array([1.0, 3.0]), MeasurementConfig())
        assert trace.mean_power_w == pytest.approx(2.0)
        assert trace.std_power_w == pytest.approx(1.0)
        assert trace.num_cycles == 2

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            MeasuredTrace("m", np.zeros((2, 2)), MeasurementConfig())


class TestFastPath:
    def test_preserves_length_and_mean(self, campaign, clock):
        power = make_power_trace(clock)
        measured = campaign.measure(power, seed=1)
        assert len(measured) == len(power)
        assert measured.mean_power_w == pytest.approx(power.average_power_w, abs=5e-3)

    def test_reproducible_with_seed(self, campaign, clock):
        power = make_power_trace(clock)
        a = campaign.measure(power, seed=3)
        b = campaign.measure(power, seed=3)
        assert np.array_equal(a.values, b.values)

    def test_noise_level_matches_model(self, campaign, clock):
        power = PowerTrace("const", clock, np.full(50_000, 5e-3))
        measured = campaign.measure(power, seed=0)
        expected_sigma = campaign.per_cycle_noise_sigma(5e-3, 1e-3)
        assert measured.std_power_w == pytest.approx(expected_sigma, rel=0.05)


class TestDetailedPath:
    def test_detailed_measurement_runs(self, clock):
        config = MeasurementConfig(num_cycles=200)
        campaign = AcquisitionCampaign(config)
        power = make_power_trace(clock, num_cycles=200)
        measured = campaign.measure(power, seed=2, detailed=True)
        assert measured.detailed
        assert len(measured) == 200

    def test_detailed_and_fast_statistically_consistent(self, clock):
        config = MeasurementConfig(num_cycles=3000)
        campaign = AcquisitionCampaign(config)
        power = PowerTrace("const", clock, np.full(3000, 5e-3))
        fast = campaign.measure(power, seed=4)
        detailed = campaign.measure(power, seed=4, detailed=True)
        # Both paths see the same underlying signal; their means agree within
        # the statistical uncertainty of a 3,000-cycle average and their noise
        # levels are of the same order.
        sigma_of_mean = fast.std_power_w / np.sqrt(len(fast))
        assert detailed.mean_power_w == pytest.approx(fast.mean_power_w, abs=4 * sigma_of_mean)
        assert detailed.std_power_w == pytest.approx(fast.std_power_w, rel=0.35)

    def test_pulse_shape_mean_one(self):
        shape = AcquisitionCampaign._pulse_shape(50)
        assert shape.mean() == pytest.approx(1.0)
        assert shape.max() > 1.0

    def test_pulse_shape_invalid(self):
        with pytest.raises(ValueError):
            AcquisitionCampaign._pulse_shape(0)


class TestCampaigns:
    def test_repeat_measurements(self, campaign, clock):
        power = make_power_trace(clock)
        repetitions = campaign.repeat_measurements(power, repetitions=5, base_seed=10)
        assert len(repetitions) == 5
        # Different noise realisations per repetition.
        assert not np.array_equal(repetitions[0].values, repetitions[1].values)

    def test_repetitions_must_be_positive(self, campaign, clock):
        with pytest.raises(ValueError):
            campaign.repeat_measurements(make_power_trace(clock), repetitions=0)


class TestMeasureMany:
    def test_rows_bit_identical_to_per_seed_measure(self, campaign, clock):
        power = make_power_trace(clock)
        seeds = [3, 4, 5]
        matrix = campaign.measure_many(power, seeds=seeds)
        assert matrix.shape == (len(seeds), len(power))
        for row, seed in enumerate(seeds):
            assert np.array_equal(matrix[row], campaign.measure(power, seed=seed).values)

    def test_detailed_path_falls_back_per_row(self, campaign, clock):
        power = make_power_trace(clock)
        matrix = campaign.measure_many(power, seeds=[7, 8], detailed=True)
        for row, seed in enumerate([7, 8]):
            assert np.array_equal(
                matrix[row], campaign.measure(power, seed=seed, detailed=True).values
            )

    def test_requires_at_least_one_seed(self, campaign, clock):
        with pytest.raises(ValueError):
            campaign.measure_many(make_power_trace(clock), seeds=[])


class TestMeasureChip:
    """Chip-level entry points routed through the cached background templates."""

    @pytest.fixture(scope="class")
    def chip(self):
        from repro.core.architectures import ClockModulationWatermark
        from repro.core.config import WatermarkConfig
        from repro.soc.chip import build_chip_one

        watermark = ClockModulationWatermark.from_config(
            WatermarkConfig(lfsr_width=8, lfsr_seed=0x2D)
        )
        return build_chip_one(watermark=watermark, m0_window_cycles=512)

    def test_measure_chip_equals_manual_chain(self, campaign, chip):
        power = chip.total_power(
            2000, watermark_active=True, seed=6, watermark_phase_offset=40
        )
        expected = campaign.measure(power, seed=9)
        measured = campaign.measure_chip(
            chip, 2000, power_seed=6, seed=9, watermark_phase_offset=40
        )
        assert np.array_equal(measured.values, expected.values)

    def test_measure_chip_many_rows_equal_measure_chip(self, campaign, chip):
        seeds = [11, 12, 13]
        matrix = campaign.measure_chip_many(
            chip, 2000, seeds=seeds, power_seed=6, watermark_phase_offset=40
        )
        assert matrix.shape == (3, 2000)
        for row, seed in enumerate(seeds):
            single = campaign.measure_chip(
                chip, 2000, power_seed=6, seed=seed, watermark_phase_offset=40
            )
            assert np.array_equal(matrix[row], single.values)

    def test_measure_chip_without_watermark(self, campaign, chip):
        active = campaign.measure_chip(chip, 1000, power_seed=2, seed=3)
        inactive = campaign.measure_chip(
            chip, 1000, watermark_active=False, power_seed=2, seed=3
        )
        assert active.values.mean() > inactive.values.mean()
