"""Unit tests for repro.analysis.masking."""

import pytest

from repro.analysis.masking import run_noise_masking_study, run_starvation_study
from repro.core.lfsr import LFSR


@pytest.fixture(scope="module")
def sequence():
    return LFSR(width=10, seed=0x155).sequence()


class TestNoiseMaskingStudy:
    @pytest.fixture(scope="class")
    def study(self, sequence):
        return run_noise_masking_study(
            sequence,
            watermark_amplitude_w=1.5e-3,
            base_noise_sigma_w=30e-3,
            masking_noise_levels_w=(0.0, 60e-3, 500e-3),
            num_cycles=120_000,
            seed=3,
        )

    def test_unmasked_watermark_detected(self, study):
        assert study.points[0].masking_noise_w == 0.0
        assert study.points[0].detected

    def test_enough_masking_defeats_detection(self, study):
        defeated = study.detection_defeated_at()
        assert defeated is not None
        assert defeated.masking_noise_w >= 60e-3
        assert not study.still_detected_everywhere()

    def test_peak_correlation_decreases_with_masking(self, study):
        peaks = [p.peak_correlation for p in study.points]
        assert peaks[0] > peaks[-1]

    def test_masking_cost_is_large_relative_to_watermark(self, study):
        # Defeating CPA requires masking activity orders of magnitude larger
        # than the 1.5 mW watermark itself -- masking is an expensive attack.
        defeated = study.detection_defeated_at()
        assert defeated.masking_noise_w > 10 * study.watermark_amplitude_w

    def test_text_rendering(self, study):
        text = study.to_text()
        assert "masking noise" in text
        assert "detected" in text

    def test_negative_masking_rejected(self, sequence):
        with pytest.raises(ValueError):
            run_noise_masking_study(sequence, masking_noise_levels_w=(-1.0,), num_cycles=2000)


class TestStarvationStudy:
    @pytest.fixture(scope="class")
    def study(self, sequence):
        return run_starvation_study(
            sequence,
            watermark_amplitude_w=1.5e-3,
            base_noise_sigma_w=30e-3,
            enable_duties=(1.0, 0.5, 0.02),
            num_cycles=120_000,
            seed=4,
        )

    def test_full_duty_detected(self, study):
        assert study.points[0].enable_duty == 1.0
        assert study.points[0].detected

    def test_heavy_starvation_defeats_detection(self, study):
        assert not study.points[-1].detected

    def test_peak_scales_with_duty(self, study):
        peaks = [p.peak_correlation for p in study.points]
        assert peaks[0] > peaks[1] > peaks[2]

    def test_invalid_duty_rejected(self, sequence):
        with pytest.raises(ValueError):
            run_starvation_study(sequence, enable_duties=(1.5,), num_cycles=2000)


class TestMonteCarloMasking:
    def test_multiple_trials_per_point(self, sequence):
        study = run_noise_masking_study(
            sequence,
            watermark_amplitude_w=1.5e-3,
            base_noise_sigma_w=30e-3,
            masking_noise_levels_w=(0.0, 500e-3),
            num_cycles=60_000,
            seed=5,
            trials_per_point=4,
        )
        for point in study.points:
            assert point.trials == 4
            assert 0 <= point.detections <= 4
            assert point.detection_probability == point.detections / 4
        assert study.points[0].detection_probability == 1.0
        assert study.points[-1].detection_probability < 1.0

    def test_single_trial_point_probability(self, sequence):
        study = run_starvation_study(
            sequence,
            watermark_amplitude_w=1.5e-3,
            base_noise_sigma_w=30e-3,
            enable_duties=(1.0,),
            num_cycles=60_000,
            seed=6,
        )
        point = study.points[0]
        assert point.trials == 1
        assert point.detection_probability in (0.0, 1.0)
        assert point.detection_probability == float(point.detected)

    def test_invalid_trials_rejected(self, sequence):
        with pytest.raises(ValueError):
            run_noise_masking_study(sequence, num_cycles=2000, trials_per_point=0)
        with pytest.raises(ValueError):
            run_starvation_study(sequence, num_cycles=2000, trials_per_point=-1)

    def test_chunking_does_not_change_outcomes(self, sequence):
        kwargs = dict(
            watermark_amplitude_w=1.5e-3,
            base_noise_sigma_w=30e-3,
            masking_noise_levels_w=(0.0, 60e-3, 500e-3),
            num_cycles=30_000,
            seed=8,
            trials_per_point=3,
        )
        full = run_noise_masking_study(sequence, **kwargs)
        chunked = run_noise_masking_study(sequence, max_trials_per_chunk=2, **kwargs)
        for a, b in zip(full.points, chunked.points):
            assert a.detections == b.detections
            assert a.detected == b.detected
            assert a.peak_correlation == pytest.approx(b.peak_correlation, rel=1e-12)

    def test_invalid_chunk_rejected(self, sequence):
        with pytest.raises(ValueError):
            run_starvation_study(sequence, num_cycles=2000, max_trials_per_chunk=0)

    def test_text_rendering_includes_probability(self, sequence):
        study = run_noise_masking_study(
            sequence,
            masking_noise_levels_w=(0.0,),
            num_cycles=2_048,
            trials_per_point=2,
        )
        assert "P(detect)" in study.to_text()
