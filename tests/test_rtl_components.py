"""Unit tests for repro.rtl.components."""

import pytest

from repro.rtl.components import (
    CLOCK_EDGES_PER_CYCLE,
    ClockBuffer,
    ClockGate,
    CombinationalBlock,
    Register,
    RegisterBank,
    ShiftRegister,
)


class TestRegister:
    def test_clock_gated_register_is_idle(self):
        register = Register("r", width=8)
        activity = register.step(clock_enabled=False, next_value=0xFF)
        assert activity.total_toggles == 0
        assert register.value == 0

    def test_enabled_register_burns_clock_power_even_when_holding(self):
        register = Register("r", width=8, reset_value=0x3C)
        activity = register.step(clock_enabled=True, next_value=None)
        assert activity.clock_toggles == CLOCK_EDGES_PER_CYCLE * 8
        assert activity.data_toggles == 0
        assert register.value == 0x3C

    def test_data_toggles_equal_hamming_distance(self):
        register = Register("r", width=8, reset_value=0x00)
        activity = register.step(clock_enabled=True, next_value=0x0F)
        assert activity.data_toggles == 4

    def test_value_masked_to_width(self):
        register = Register("r", width=4)
        register.step(clock_enabled=True, next_value=0xFF)
        assert register.value == 0xF

    def test_register_counts(self):
        register = Register("r", width=16)
        assert register.register_count == 16
        assert register.cell_count == 16

    def test_reset(self):
        register = Register("r", width=4, reset_value=0x5)
        register.step(clock_enabled=True, next_value=0xA)
        register.reset()
        assert register.value == 0x5

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            Register("r", width=0)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Register("", width=1)


class TestShiftRegister:
    def test_alternating_initialisation(self):
        sr = ShiftRegister("sr", width=8)
        assert sr.value == 0b10101010

    def test_shift_flips_every_bit(self):
        sr = ShiftRegister("sr", width=8)
        activity = sr.shift(enable=True)
        assert activity.data_toggles == 8
        assert activity.clock_toggles == CLOCK_EDGES_PER_CYCLE * 8

    def test_disabled_shift_is_idle(self):
        sr = ShiftRegister("sr", width=8)
        before = sr.value
        activity = sr.shift(enable=False)
        assert activity.total_toggles == 0
        assert sr.value == before

    def test_circular_shift_returns_after_two_steps(self):
        sr = ShiftRegister("sr", width=8)
        initial = sr.value
        sr.shift(enable=True)
        sr.shift(enable=True)
        assert sr.value == initial


class TestClockGate:
    def test_enabled_gate_propagates_clock(self):
        gate = ClockGate("icg")
        activity = gate.step(enable=True)
        assert activity.clock_toggles == CLOCK_EDGES_PER_CYCLE
        assert gate.clock_out(True) is True

    def test_disabled_gate_stops_clock(self):
        gate = ClockGate("icg")
        activity = gate.step(enable=False)
        assert activity.clock_toggles == 0
        assert gate.clock_out(False) is False

    def test_enable_change_costs_latch_toggle(self):
        gate = ClockGate("icg")
        first = gate.step(enable=True)
        second = gate.step(enable=True)
        assert first.comb_toggles == 1
        assert second.comb_toggles == 0

    def test_reset(self):
        gate = ClockGate("icg")
        gate.step(enable=True)
        gate.reset()
        assert gate.enabled is False


class TestClockBuffer:
    def test_active_branch_toggles_twice(self):
        buffer = ClockBuffer("buf", fanout=4)
        assert buffer.step(branch_active=True).clock_toggles == CLOCK_EDGES_PER_CYCLE

    def test_inactive_branch_idle(self):
        buffer = ClockBuffer("buf")
        assert buffer.step(branch_active=False).total_toggles == 0

    def test_invalid_fanout_rejected(self):
        with pytest.raises(ValueError):
            ClockBuffer("buf", fanout=0)


class TestCombinationalBlock:
    def test_activity_factor_estimate(self):
        block = CombinationalBlock("comb", gate_count=100, activity_factor=0.25)
        assert block.step().comb_toggles == 25

    def test_explicit_toggle_count_overrides(self):
        block = CombinationalBlock("comb", gate_count=100)
        assert block.step(toggles=7).comb_toggles == 7

    def test_inactive_block_idle(self):
        block = CombinationalBlock("comb", gate_count=100)
        assert block.step(active=False).total_toggles == 0

    def test_invalid_activity_factor_rejected(self):
        with pytest.raises(ValueError):
            CombinationalBlock("comb", gate_count=4, activity_factor=1.5)


class TestRegisterBank:
    def test_paper_geometry(self):
        bank = RegisterBank("bank", num_words=32, word_width=32)
        assert bank.total_registers == 1024
        assert len(bank.clock_gates) == 32

    def test_disabled_bank_is_idle(self):
        bank = RegisterBank("bank", num_words=4, word_width=8)
        assert bank.step(enable=False).total_toggles == 0

    def test_enabled_bank_clock_power(self):
        bank = RegisterBank("bank", num_words=4, word_width=8, switching_registers=0)
        activity = bank.step(enable=True)
        assert activity.clock_toggles >= CLOCK_EDGES_PER_CYCLE * 32
        assert activity.data_toggles == 0

    def test_switching_registers_add_data_toggles(self):
        bank = RegisterBank("bank", num_words=4, word_width=8, switching_registers=16)
        activity = bank.step(enable=True)
        assert activity.data_toggles == 16

    def test_switching_register_bound_validated(self):
        with pytest.raises(ValueError):
            RegisterBank("bank", num_words=2, word_width=8, switching_registers=17)

    def test_reset_restores_contents(self):
        bank = RegisterBank("bank", num_words=2, word_width=8, switching_registers=16)
        bank.step(enable=True)
        bank.reset()
        assert all(word.value == 0 for word in bank.words)
