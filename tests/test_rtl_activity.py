"""Unit tests for repro.rtl.activity."""

import numpy as np
import pytest

from repro.rtl.activity import ActivityAccumulator, ActivityRecord, ActivityTrace, ZERO_ACTIVITY


class TestActivityRecord:
    def test_addition(self):
        total = ActivityRecord(1, 2, 3) + ActivityRecord(4, 5, 6)
        assert total == ActivityRecord(5, 7, 9)

    def test_total_toggles(self):
        assert ActivityRecord(1, 2, 3).total_toggles == 6

    def test_idle_detection(self):
        assert ZERO_ACTIVITY.is_idle()
        assert not ActivityRecord(clock_toggles=1).is_idle()


class TestActivityTrace:
    def test_from_records_roundtrip(self):
        records = [ActivityRecord(2, 1, 0), ActivityRecord(0, 0, 0), ActivityRecord(4, 2, 1)]
        trace = ActivityTrace.from_records("t", records)
        assert len(trace) == 3
        assert trace[0] == records[0]
        assert list(trace) == records

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ActivityTrace("t", clock_toggles=np.array([1, 2]), data_toggles=np.array([1]), comb_toggles=np.array([1, 2]))

    def test_zeros(self):
        trace = ActivityTrace.zeros("t", 10)
        assert len(trace) == 10
        assert int(trace.total_toggles.sum()) == 0

    def test_total_toggles_vector(self):
        trace = ActivityTrace.from_records("t", [ActivityRecord(1, 1, 1), ActivityRecord(2, 0, 0)])
        assert list(trace.total_toggles) == [3, 2]

    def test_add_requires_equal_length(self):
        a = ActivityTrace.zeros("a", 4)
        b = ActivityTrace.zeros("b", 5)
        with pytest.raises(ValueError):
            a.add(b)

    def test_add_elementwise(self):
        a = ActivityTrace.from_records("a", [ActivityRecord(1, 0, 0)] * 3)
        b = ActivityTrace.from_records("b", [ActivityRecord(0, 2, 0)] * 3)
        combined = a.add(b)
        assert combined[1] == ActivityRecord(1, 2, 0)

    def test_tile_extends_to_length(self):
        trace = ActivityTrace.from_records("t", [ActivityRecord(1, 0, 0), ActivityRecord(2, 0, 0)])
        tiled = trace.tile(5)
        assert len(tiled) == 5
        assert list(tiled.clock_toggles) == [1, 2, 1, 2, 1]

    def test_tile_empty_rejected(self):
        with pytest.raises(ValueError):
            ActivityTrace.zeros("t", 0).tile(4)

    def test_slice(self):
        trace = ActivityTrace.from_records("t", [ActivityRecord(i, 0, 0) for i in range(6)])
        sliced = trace.slice(2, 4)
        assert list(sliced.clock_toggles) == [2, 3]

    def test_mean_record(self):
        trace = ActivityTrace.from_records("t", [ActivityRecord(2, 4, 6), ActivityRecord(4, 6, 8)])
        mean = trace.mean_record()
        assert mean == ActivityRecord(3, 5, 7)

    def test_mean_record_empty(self):
        assert ActivityTrace.zeros("t", 0).mean_record() == ZERO_ACTIVITY


class TestActivityAccumulator:
    def test_records_are_padded_per_cycle(self):
        accumulator = ActivityAccumulator()
        accumulator.record("a", ActivityRecord(1, 0, 0))
        accumulator.end_cycle()
        accumulator.record("a", ActivityRecord(2, 0, 0))
        accumulator.record("b", ActivityRecord(0, 3, 0))
        accumulator.end_cycle()
        traces = accumulator.finalize()
        assert len(traces["a"]) == 2
        assert len(traces["b"]) == 2
        assert traces["b"][0].total_toggles == 0
        assert traces["b"][1].data_toggles == 3

    def test_component_names_sorted(self):
        accumulator = ActivityAccumulator()
        accumulator.record("z", ZERO_ACTIVITY)
        accumulator.record("a", ZERO_ACTIVITY)
        accumulator.end_cycle()
        assert accumulator.component_names() == ["a", "z"]

    def test_num_cycles(self):
        accumulator = ActivityAccumulator()
        accumulator.record("a", ZERO_ACTIVITY)
        accumulator.end_cycle()
        accumulator.end_cycle()
        assert accumulator.num_cycles == 2
