"""Equivalence suite for the vectorized trace-synthesis engine.

Every fast path in :mod:`repro.power.synthesis` must be *bit-identical* to
the per-cycle golden reference it replaces: the cycle-accurate step loop
for power traces, and the per-trial Python row loop for trial matrices.
End-to-end, the synthesized traces must produce the same CPA detection
decisions as the simulated ones.
"""

import numpy as np
import pytest

from repro.core.architectures import BaselineWatermark, ClockModulationWatermark
from repro.core.clock_modulation import ClockModulatedBank
from repro.core.config import DetectionConfig, WatermarkConfig
from repro.core.lfsr import LFSR
from repro.core.load_circuit import LoadCircuit
from repro.core.wgc import WatermarkGenerationCircuit
from repro.detection.batch import BatchCPADetector
from repro.detection.cpa import CPADetector
from repro.power.estimator import PowerEstimator
from repro.power.synthesis import (
    PeriodicPowerTemplate,
    TraceSynthesizer,
    gather_periodic_rows,
    periodic_extend,
)
from repro.rtl.activity import ActivityTrace


def _small_clock_modulation() -> ClockModulationWatermark:
    """A small (period-63) clock-modulation watermark for stepped references."""
    return ClockModulationWatermark(
        wgc=WatermarkGenerationCircuit.minimal(width=6, seed=1),
        modulated_block=ClockModulatedBank(num_words=4, word_width=8),
    )


def _small_baseline() -> BaselineWatermark:
    return BaselineWatermark(
        wgc=WatermarkGenerationCircuit.minimal(width=6, seed=1),
        load=LoadCircuit(num_registers=24),
    )


def _stepped_power(architecture, estimator, num_cycles):
    """Golden reference: step the architecture every cycle, then estimate."""
    architecture.reset()
    wgc_records = []
    load_records = []
    for _ in range(num_cycles):
        activity = architecture.step()
        wgc_records.append(activity["wgc"])
        load_records.append(activity["load"])
    architecture.reset()
    traces = {
        "wgc": ActivityTrace.from_records(f"{architecture.name}/wgc", wgc_records),
        "load": ActivityTrace.from_records(f"{architecture.name}/load", load_records),
    }
    static = estimator.leakage_of(architecture.cell_inventory())
    return estimator.combined_power_trace(
        traces,
        cell_types={key: "dff" for key in traces},
        static_w=static,
        name=architecture.name,
    )


class TestPeriodicExtend:
    def test_matches_tile_then_roll(self):
        rng = np.random.default_rng(0)
        template = rng.random(37)
        for num_cycles in (1, 36, 37, 74, 100):
            for offset in (0, 1, 17, 36, 40, -5):
                reps = int(np.ceil(num_cycles / len(template)))
                expected = np.roll(np.tile(template, reps)[:num_cycles], -offset)
                actual = periodic_extend(template, num_cycles, offset)
                assert np.array_equal(actual, expected), (num_cycles, offset)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            periodic_extend(np.array([]), 10)
        with pytest.raises(ValueError):
            periodic_extend(np.ones(4), 0)


class TestGatherPeriodicRows:
    def test_matches_per_row_slicing(self):
        rng = np.random.default_rng(1)
        template = rng.random(31)
        period = len(template)
        num_cycles = 113
        offsets = rng.integers(0, period, size=9)
        tiled = np.tile(template, int(np.ceil((num_cycles + period) / period)))
        expected = np.stack([tiled[o : o + num_cycles] for o in offsets])
        assert np.array_equal(gather_periodic_rows(template, offsets, num_cycles), expected)

    def test_out_buffer(self):
        template = np.arange(5, dtype=np.float64)
        out = np.empty((3, 7))
        result = gather_periodic_rows(template, [0, 2, 4], 7, out=out)
        assert result is out
        assert np.array_equal(out[1], np.array([2, 3, 4, 0, 1, 2, 3], dtype=np.float64))

    def test_rejects_empty_template(self):
        with pytest.raises(ValueError):
            gather_periodic_rows(np.array([]), [0], 4)


class TestWatermarkPowerEquivalence:
    """Synthesized watermark power == stepping the circuit cycle by cycle."""

    @pytest.mark.parametrize("build", [_small_clock_modulation, _small_baseline])
    def test_bit_identical_over_multiple_periods(self, build):
        estimator = PowerEstimator.at_nominal()
        architecture = build()
        num_cycles = 3 * architecture.sequence_period + 11
        reference = _stepped_power(build(), estimator, num_cycles)
        synthesized = TraceSynthesizer.for_watermark(architecture, estimator).synthesize_power(
            num_cycles
        )
        assert np.array_equal(synthesized.power_w, reference.power_w)

    def test_power_trace_uses_template_and_matches_reference(self):
        estimator = PowerEstimator.at_nominal()
        architecture = _small_clock_modulation()
        num_cycles = 2 * architecture.sequence_period + 5
        reference = _stepped_power(_small_clock_modulation(), estimator, num_cycles)
        trace = architecture.power_trace(estimator, num_cycles)
        assert np.array_equal(trace.power_w, reference.power_w)

    def test_phase_offset_matches_roll(self):
        estimator = PowerEstimator.at_nominal()
        architecture = _small_clock_modulation()
        num_cycles = 150
        plain = architecture.power_trace(estimator, num_cycles)
        rolled = architecture.power_trace(estimator, num_cycles, phase_offset=23)
        assert np.array_equal(rolled.power_w, np.roll(plain.power_w, -23))

    def test_periodic_activity_cached_once(self):
        architecture = _small_clock_modulation()
        first = architecture.periodic_activity()
        assert architecture._periodic_activity_cache is not None
        second = architecture.periodic_activity()
        assert np.array_equal(second["wgc"].total_toggles, first["wgc"].total_toggles)
        fresh = architecture.periodic_activity(use_cache=False)
        assert np.array_equal(fresh["wgc"].total_toggles, first["wgc"].total_toggles)

    def test_periodic_activity_cache_immune_to_caller_mutation(self):
        architecture = _small_clock_modulation()
        estimator = PowerEstimator.at_nominal()
        before = architecture.power_trace(estimator, 100)
        traces = architecture.periodic_activity()
        traces["load"].data_toggles += 1_000  # caller scribbles on its copy
        after = architecture.power_trace(estimator, 100)
        assert np.array_equal(before.power_w, after.power_w)

    def test_paper_scale_template_short_window(self):
        # The full test-chip configuration (period 4,095) stays bit-exact
        # over a window that crosses the period boundary.
        estimator = PowerEstimator.at_nominal()
        config = WatermarkConfig()
        architecture = ClockModulationWatermark.from_config(config)
        period = architecture.sequence_period
        num_cycles = period + 64
        reference = _stepped_power(
            ClockModulationWatermark.from_config(config), estimator, num_cycles
        )
        synthesized = architecture.power_trace(estimator, num_cycles)
        assert np.array_equal(synthesized.power_w, reference.power_w)


class TestSynthesizeTrials:
    @pytest.fixture(scope="class")
    def sequence(self):
        return LFSR(width=7, seed=0x41).sequence().astype(np.float64)

    def test_matches_per_trial_loop(self, sequence):
        period = len(sequence)
        num_cycles = 1500
        amplitude, base, sigma = 1.5e-3, 5e-3, 15e-3
        trials = 8

        rng = np.random.default_rng(3)
        tiled = np.tile(sequence, int(np.ceil((num_cycles + period) / period)))
        expected = np.empty((trials, num_cycles))
        for row in range(trials):
            offset = int(rng.integers(0, period))
            signal = base + tiled[offset : offset + num_cycles] * amplitude
            expected[row] = signal + rng.normal(0.0, sigma, num_cycles)

        synthesizer = TraceSynthesizer.from_sequence(
            sequence, watermark_amplitude_w=amplitude, noise_sigma_w=sigma, base_power_w=base
        )
        actual = synthesizer.synthesize_trials(trials, num_cycles, np.random.default_rng(3))
        assert np.array_equal(actual, expected)

    def test_starvation_and_per_row_sigmas_match_loop(self, sequence):
        period = len(sequence)
        num_cycles = 900
        amplitude, base = 1.5e-3, 5e-3
        specs = [(10e-3, 1.0), (20e-3, 0.4), (30e-3, 0.02)]

        rng = np.random.default_rng(11)
        tiled = np.tile(sequence, int(np.ceil((num_cycles + period) / period)))
        expected = np.empty((len(specs), num_cycles))
        for row, (sigma, duty) in enumerate(specs):
            offset = int(rng.integers(0, period))
            watermark = tiled[offset : offset + num_cycles]
            if duty < 1.0:
                gate = rng.random(num_cycles) < duty
                watermark = watermark * gate
            expected[row] = base + watermark * amplitude + rng.normal(0.0, sigma, num_cycles)

        synthesizer = TraceSynthesizer.from_sequence(
            sequence, watermark_amplitude_w=amplitude, noise_sigma_w=0.0, base_power_w=base
        )
        actual = synthesizer.synthesize_trials(
            len(specs),
            num_cycles,
            np.random.default_rng(11),
            noise_sigmas=[sigma for sigma, _ in specs],
            enable_duties=[duty for _, duty in specs],
        )
        assert np.array_equal(actual, expected)

    def test_validation(self, sequence):
        synthesizer = TraceSynthesizer.from_sequence(sequence, 1e-3, 1e-3)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            synthesizer.synthesize_trials(0, 100, rng)
        with pytest.raises(ValueError):
            synthesizer.synthesize_trials(2, 0, rng)
        with pytest.raises(ValueError):
            synthesizer.synthesize_trials(2, 100, rng, noise_sigmas=[1e-3])
        with pytest.raises(ValueError):
            TraceSynthesizer.from_sequence(sequence, -1.0, 0.0)

    def test_no_template_guard(self, sequence):
        synthesizer = TraceSynthesizer.from_sequence(sequence, 1e-3, 1e-3)
        with pytest.raises(ValueError):
            synthesizer.synthesize_power(100)


class TestFastGaussianPath:
    """The chunked standard_normal path and the dtype knob."""

    @pytest.fixture(scope="class")
    def sequence(self):
        return LFSR(width=7, seed=0x41).sequence().astype(np.float64)

    @pytest.fixture(scope="class")
    def synthesizer(self, sequence):
        return TraceSynthesizer.from_sequence(
            sequence, watermark_amplitude_w=1.5e-3, noise_sigma_w=15e-3, base_power_w=5e-3
        )

    def test_compat_mode_bit_identical_to_per_row_stream(self, sequence, synthesizer):
        """compat_draw_order=True must reproduce today's per-row rng.normal stream."""
        trials, num_cycles = 6, 1200
        period = len(sequence)
        rng = np.random.default_rng(17)
        tiled = np.tile(sequence, int(np.ceil((num_cycles + period) / period)))
        expected = np.empty((trials, num_cycles))
        for row in range(trials):
            offset = int(rng.integers(0, period))
            signal = 5e-3 + tiled[offset : offset + num_cycles] * 1.5e-3
            expected[row] = signal + rng.normal(0.0, 15e-3, num_cycles)
        actual = synthesizer.synthesize_trials(
            trials, num_cycles, np.random.default_rng(17), compat_draw_order=True
        )
        assert np.array_equal(actual, expected)

    def test_fast_path_matches_explicit_chunked_reference(self, sequence, synthesizer):
        """The fast path's documented draw order: offsets, gates, noise matrix."""
        trials, num_cycles = 5, 800
        period = len(sequence)
        rng = np.random.default_rng(23)
        offsets = rng.integers(0, period, size=trials)
        noise = rng.standard_normal(trials * num_cycles).reshape(trials, num_cycles)
        tiled = np.tile(sequence, int(np.ceil((num_cycles + period) / period)))
        expected = np.empty((trials, num_cycles))
        for row in range(trials):
            signal = 5e-3 + tiled[offsets[row] : offsets[row] + num_cycles] * 1.5e-3
            expected[row] = noise[row] * 15e-3 + signal
        actual = synthesizer.synthesize_trials(
            trials, num_cycles, np.random.default_rng(23), compat_draw_order=False
        )
        assert np.array_equal(actual, expected)

    def test_fast_path_deterministic_per_seed(self, synthesizer):
        a = synthesizer.synthesize_trials(
            4, 600, np.random.default_rng(5), compat_draw_order=False
        )
        b = synthesizer.synthesize_trials(
            4, 600, np.random.default_rng(5), compat_draw_order=False
        )
        assert np.array_equal(a, b)

    def test_fast_path_supports_starvation_gates(self, sequence, synthesizer):
        trials, num_cycles = 4, 700
        duties = [1.0, 0.5, 0.02, 1.0]
        matrix = synthesizer.synthesize_trials(
            trials,
            num_cycles,
            np.random.default_rng(31),
            enable_duties=duties,
            compat_draw_order=False,
        )
        assert matrix.shape == (trials, num_cycles)
        assert np.all(np.isfinite(matrix))

    def test_float32_dtype_knob(self, synthesizer):
        matrix = synthesizer.synthesize_trials(
            3, 500, np.random.default_rng(7), compat_draw_order=False, dtype=np.float32
        )
        assert matrix.dtype == np.float32
        assert matrix.shape == (3, 500)
        # The rows still carry the measurement model statistics.
        assert abs(float(matrix.mean()) - 5e-3 - 1.5e-3 * float(np.mean(
            synthesizer.sequence
        ))) < 5e-3

    def test_float32_out_buffer_filled_in_place(self, synthesizer):
        out = np.empty((3, 400), dtype=np.float32)
        result = synthesizer.synthesize_trials(
            3,
            400,
            np.random.default_rng(9),
            out=out,
            compat_draw_order=False,
            dtype=np.float32,
        )
        assert result is out
        assert np.all(np.isfinite(out))

    def test_invalid_dtype_rejected(self, synthesizer):
        with pytest.raises(ValueError):
            synthesizer.synthesize_trials(
                2, 100, np.random.default_rng(0), dtype=np.int32
            )

    def test_float32_and_float64_reach_identical_decisions(self, sequence):
        """Seeded campaign: the dtype knob must not flip detection decisions."""
        synthesizer = TraceSynthesizer.from_sequence(
            sequence, watermark_amplitude_w=1.5e-3, noise_sigma_w=4e-3, base_power_w=5e-3
        )
        trials, num_cycles = 12, 4000
        detector = BatchCPADetector(DetectionConfig())
        f64 = synthesizer.synthesize_trials(
            trials, num_cycles, np.random.default_rng(41), compat_draw_order=False
        )
        f32 = synthesizer.synthesize_trials(
            trials,
            num_cycles,
            np.random.default_rng(41),
            compat_draw_order=False,
            dtype=np.float32,
        )
        decisions64 = detector.detect_many(sequence, f64)
        decisions32 = detector.detect_many(sequence, f32.astype(np.float64))
        assert np.array_equal(decisions64.detected, decisions32.detected)
        assert np.array_equal(decisions64.peak_rotations, decisions32.peak_rotations)


class TestEndToEndDecisions:
    def test_synthesized_trials_reach_identical_detection_decisions(self):
        sequence = LFSR(width=7, seed=0x41).sequence().astype(np.float64)
        num_cycles = 4000
        trials = 10
        synthesizer = TraceSynthesizer.from_sequence(
            sequence, watermark_amplitude_w=1.5e-3, noise_sigma_w=12e-3
        )
        matrix = synthesizer.synthesize_trials(trials, num_cycles, np.random.default_rng(5))

        config = DetectionConfig()
        batch = BatchCPADetector(config).detect_many(sequence, matrix)
        single = CPADetector(config)
        for row in range(trials):
            result = single.detect(sequence, matrix[row])
            assert bool(batch.detected[row]) == result.detected
            assert int(batch.peak_rotations[row]) == result.peak_rotation
            assert np.array_equal(batch.correlations[row], result.correlations)

    def test_detect_trials_pipes_into_batch_detector(self):
        sequence = LFSR(width=7, seed=0x41).sequence().astype(np.float64)
        synthesizer = TraceSynthesizer.from_sequence(
            sequence, watermark_amplitude_w=1.5e-3, noise_sigma_w=2e-3
        )
        detector = BatchCPADetector()
        batch = synthesizer.detect_trials(
            detector, trials=6, num_cycles=3000, rng=np.random.default_rng(9)
        )
        assert len(batch.detected) == 6
        assert batch.detection_count == 6  # strong watermark, low noise

    def test_simulated_and_synthesized_power_detect_identically(self):
        """The whole chain: power -> measurement -> CPA, both generation paths."""
        from repro.core.config import MeasurementConfig
        from repro.measurement.acquisition import AcquisitionCampaign

        estimator = PowerEstimator.at_nominal()
        architecture = _small_clock_modulation()
        num_cycles = 5 * architecture.sequence_period
        reference = _stepped_power(_small_clock_modulation(), estimator, num_cycles)
        synthesized = TraceSynthesizer.for_watermark(architecture, estimator).synthesize_power(
            num_cycles
        )
        campaign = AcquisitionCampaign(MeasurementConfig())
        detector = CPADetector(DetectionConfig())
        sequence = architecture.sequence()
        measured_ref = campaign.measure(reference, seed=21)
        measured_syn = campaign.measure(synthesized, seed=21)
        # Identical power in -> identical noise draw -> identical CPA result.
        assert np.array_equal(measured_ref.values, measured_syn.values)
        cpa_ref = detector.detect(sequence, measured_ref.values)
        cpa_syn = detector.detect(sequence, measured_syn.values)
        assert cpa_ref.detected == cpa_syn.detected
        assert cpa_ref.peak_rotation == cpa_syn.peak_rotation
        assert np.array_equal(cpa_ref.correlations, cpa_syn.correlations)


class TestPeriodicPowerTemplate:
    def test_from_power_trace_roundtrip(self):
        estimator = PowerEstimator.at_nominal()
        architecture = _small_baseline()
        template = architecture.power_template(estimator)
        assert template.period == architecture.sequence_period
        extended = template.extend(2 * template.period + 3)
        assert len(extended) == 2 * template.period + 3
        assert np.array_equal(extended.power_w[: template.period], template.power_w)

    def test_rejects_empty_or_2d(self):
        from repro.rtl.signals import Clock

        clock = Clock("clk", 10e6)
        with pytest.raises(ValueError):
            PeriodicPowerTemplate(name="t", clock=clock, power_w=np.array([]))
        with pytest.raises(ValueError):
            PeriodicPowerTemplate(name="t", clock=clock, power_w=np.ones((2, 2)))
