"""Unit tests for repro.soc.cpu (instruction semantics, timing, activity)."""

import pytest

from repro.soc.assembler import Assembler
from repro.soc.bus import SystemBus
from repro.soc.cpu import CortexM0Like, CPUActivityModel, CPUError
from repro.soc.memory import Memory

BASE = 0x2000_0000


def make_cpu(source: str) -> CortexM0Like:
    program = Assembler().assemble(source, entry_label="main" if "main:" in source else None)
    bus = SystemBus()
    bus.attach(Memory(size_bytes=64 * 1024, base_address=BASE))
    return CortexM0Like(program, bus)


def run(source: str, max_cycles: int = 2000) -> CortexM0Like:
    cpu = make_cpu(source)
    cpu.run_until_halt(max_cycles=max_cycles)
    return cpu


class TestArithmeticAndLogic:
    def test_mov_and_add(self):
        cpu = run("main:\n mov r0, #5\n add r1, r0, #7\n halt")
        assert cpu.register(1) == 12

    def test_sub_and_flags(self):
        cpu = run("main:\n mov r0, #5\n sub r1, r0, #5\n halt")
        assert cpu.register(1) == 0
        assert cpu.flags["z"] is True

    def test_mul(self):
        cpu = run("main:\n mov r0, #6\n mov r1, #7\n mul r2, r0, r1\n halt")
        assert cpu.register(2) == 42

    def test_logic_operations(self):
        cpu = run(
            "main:\n mov r0, #0xF0\n mov r1, #0x3C\n and r2, r0, r1\n orr r3, r0, r1\n eor r4, r0, r1\n halt"
        )
        assert cpu.register(2) == 0x30
        assert cpu.register(3) == 0xFC
        assert cpu.register(4) == 0xCC

    def test_shifts(self):
        cpu = run("main:\n mov r0, #1\n lsl r1, r0, #4\n lsr r2, r1, #2\n halt")
        assert cpu.register(1) == 16
        assert cpu.register(2) == 4

    def test_asr_preserves_sign(self):
        cpu = run("main:\n mov r0, #0\n sub r0, r0, #8\n asr r1, r0, #1\n halt")
        assert cpu.register(1) == 0xFFFFFFFC

    def test_mvn(self):
        cpu = run("main:\n mov r0, #0\n mvn r1, r0\n halt")
        assert cpu.register(1) == 0xFFFFFFFF

    def test_wraparound_arithmetic(self):
        cpu = run("main:\n mov r0, #0\n sub r0, r0, #1\n add r0, r0, #2\n halt")
        assert cpu.register(0) == 1


class TestControlFlow:
    def test_loop_with_conditional_branch(self):
        cpu = run(
            """
            main:
                mov r0, #0
                mov r1, #5
            loop:
                add r0, r0, #1
                sub r1, r1, #1
                cmp r1, #0
                bne loop
                halt
            """
        )
        assert cpu.register(0) == 5

    def test_signed_comparison_branches(self):
        cpu = run(
            """
            main:
                mov r0, #0
                sub r0, r0, #3     ; r0 = -3
                cmp r0, #1
                blt negative
                mov r1, #0
                halt
            negative:
                mov r1, #1
                halt
            """
        )
        assert cpu.register(1) == 1

    def test_bl_and_bx_return(self):
        cpu = run(
            """
            main:
                mov r0, #10
                bl double
                halt
            double:
                add r0, r0, r0
                bx lr
            """
        )
        assert cpu.register(0) == 20

    def test_call_with_push_pop(self):
        cpu = run(
            """
            main:
                mov r0, #3
                bl helper
                halt
            helper:
                push {r4, lr}
                mov r4, #4
                add r0, r0, r4
                pop {r4, pc}
            """
        )
        assert cpu.register(0) == 7

    def test_taken_branch_costs_more_cycles(self):
        taken = run("main:\n mov r0, #0\n cmp r0, #0\n beq target\n halt\ntarget:\n halt")
        not_taken = run("main:\n mov r0, #0\n cmp r0, #1\n beq target\n halt\ntarget:\n halt")
        assert taken.stats.taken_branches == 1
        assert not_taken.stats.taken_branches == 0

    def test_invalid_pc_raises(self):
        cpu = make_cpu("nop")
        cpu.step_cycle()
        with pytest.raises(CPUError):
            cpu.step_cycle()  # falls off the end of the program


class TestMemoryInstructions:
    def test_store_and_load_word(self):
        cpu = run(
            """
            main:
                mov r2, #0x20
                lsl r2, r2, #24
                mov r0, #0x5A
                str r0, [r2, #16]
                ldr r1, [r2, #16]
                halt
            """
        )
        assert cpu.register(1) == 0x5A

    def test_byte_access(self):
        cpu = run(
            """
            main:
                mov r2, #0x20
                lsl r2, r2, #24
                mov r0, #0xAB
                strb r0, [r2, #3]
                ldrb r1, [r2, #3]
                halt
            """
        )
        assert cpu.register(1) == 0xAB

    def test_memory_access_counted(self):
        cpu = run(
            "main:\n mov r2, #0x20\n lsl r2, r2, #24\n mov r0, #1\n str r0, [r2]\n ldr r1, [r2]\n halt"
        )
        assert cpu.stats.memory_accesses == 2


class TestTimingAndActivity:
    def test_cpi_above_one(self):
        cpu = run(
            """
            main:
                mov r0, #20
            loop:
                sub r0, r0, #1
                cmp r0, #0
                bne loop
                halt
            """
        )
        assert cpu.stats.cpi > 1.0

    def test_halted_cpu_reports_idle_activity(self):
        cpu = run("main:\n halt")
        idle = cpu.step_cycle()
        assert idle.clock_toggles == 2 * cpu.activity.always_clocked_registers
        assert idle.data_toggles == 0

    def test_halted_cycles_do_not_inflate_cycle_count(self):
        # Regression: post-halt idle stepping used to increment
        # ``stats.cycles`` and therefore inflate CPI for ``run_until_halt``
        # callers that keep stepping (e.g. fixed-length activity windows).
        cpu = run("main:\n mov r0, #1\n add r0, r0, #2\n halt")
        executed_cycles = cpu.stats.cycles
        executed_instructions = cpu.stats.instructions
        cpi_at_halt = cpu.stats.cpi
        assert cpu.stats.halted_cycles == 0
        for _ in range(25):
            cpu.step_cycle()
        assert cpu.stats.cycles == executed_cycles
        assert cpu.stats.instructions == executed_instructions
        assert cpu.stats.halted_cycles == 25
        assert cpu.stats.total_cycles == executed_cycles + 25
        assert cpu.stats.cpi == cpi_at_halt

    def test_run_cycles_on_halted_core_counts_only_idle(self):
        cpu = run("main:\n halt")
        executed = cpu.stats.cycles
        trace = cpu.run_cycles(40)
        assert len(trace) == 40
        assert cpu.stats.cycles == executed
        assert cpu.stats.halted_cycles == 40

    def test_activity_trace_length(self):
        cpu = make_cpu("main:\n mov r0, #1\n b main")
        trace = cpu.run_cycles(200)
        assert len(trace) == 200
        assert trace.total_toggles.min() > 0

    def test_activity_varies_cycle_to_cycle(self):
        cpu = make_cpu(
            """
            main:
                mov r2, #0x20
                lsl r2, r2, #24
            loop:
                ldr r0, [r2]
                add r0, r0, #1
                str r0, [r2]
                b loop
            """
        )
        trace = cpu.run_cycles(300)
        assert trace.total_toggles.std() > 0

    def test_reset_restores_architectural_state(self):
        cpu = run("main:\n mov r0, #9\n halt")
        cpu.reset()
        assert cpu.register(0) == 0
        assert not cpu.halted
        assert cpu.stats.cycles == 0

    def test_activity_model_totals(self):
        model = CPUActivityModel()
        assert model.total_registers == (
            model.always_clocked_registers + model.pipeline_registers + model.regfile_registers
        )

    def test_run_cycles_requires_positive(self):
        cpu = make_cpu("nop")
        with pytest.raises(ValueError):
            cpu.run_cycles(0)
