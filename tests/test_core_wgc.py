"""Unit tests for repro.core.wgc."""

import numpy as np
import pytest

from repro.core.lfsr import LFSR
from repro.core.wgc import WatermarkGenerationCircuit


class TestConstruction:
    def test_minimal_wgc_register_count(self):
        wgc = WatermarkGenerationCircuit.minimal(width=12)
        assert wgc.register_count == 12
        assert wgc.period == 4095

    def test_test_chip_wgc_has_two_generators(self):
        wgc = WatermarkGenerationCircuit.test_chip()
        assert len(wgc.generators) == 2
        # Two 32-bit generators plus always-clocked configuration registers.
        assert wgc.register_count > 64

    def test_needs_at_least_one_generator(self):
        with pytest.raises(ValueError):
            WatermarkGenerationCircuit(generators=[])

    def test_active_index_validated(self):
        with pytest.raises(ValueError):
            WatermarkGenerationCircuit(generators=[LFSR(width=4)], active_index=3)

    def test_cell_inventory(self):
        wgc = WatermarkGenerationCircuit.minimal(width=12)
        inventory = wgc.cell_inventory()
        assert inventory["dff"] == 12
        assert inventory["comb"] >= 1


class TestBehaviour:
    def test_wmark_follows_active_generator(self):
        wgc = WatermarkGenerationCircuit.minimal(width=12, seed=0x5A5)
        reference = LFSR(width=12, seed=0x5A5)
        for _ in range(50):
            wmark, _ = wgc.step()
            expected, _ = reference.step()
            assert wmark == expected

    def test_sequence_matches_stepped_output(self):
        wgc = WatermarkGenerationCircuit.minimal(width=8, seed=0x2B)
        sequence = wgc.sequence(40)
        wgc.reset()
        observed = [wgc.wmark]
        for _ in range(39):
            bit, _ = wgc.step()
            observed.append(bit)
        assert list(sequence) == observed

    def test_gated_wgc_holds_output(self):
        wgc = WatermarkGenerationCircuit.minimal(width=8)
        before = wgc.wmark
        wmark, activity = wgc.step(clock_enabled=False)
        assert wmark == before
        assert activity.total_toggles == 0

    def test_step_activity_includes_config_registers(self):
        wgc = WatermarkGenerationCircuit.test_chip(active_width=12)
        _, activity = wgc.step()
        # Active LFSR (12 regs) plus always-clocked configuration registers.
        assert activity.clock_toggles > 24

    def test_reset_restores_sequence_start(self):
        wgc = WatermarkGenerationCircuit.minimal(width=8, seed=0x11)
        first_run = [wgc.step()[0] for _ in range(10)]
        wgc.reset()
        second_run = [wgc.step()[0] for _ in range(10)]
        assert first_run == second_run

    def test_sequence_period_duty(self):
        wgc = WatermarkGenerationCircuit.test_chip(active_width=12)
        sequence = wgc.sequence()
        assert len(sequence) == 4095
        assert int(sequence.sum()) == 2048


class TestTestChipPowerStructure:
    def test_active_register_count_larger_than_minimal(self):
        minimal = WatermarkGenerationCircuit.minimal(width=12)
        test_chip = WatermarkGenerationCircuit.test_chip(active_width=12)
        assert test_chip.active_register_count > minimal.active_register_count

    def test_wgc_dynamic_power_band(self, nominal_estimator):
        # The test-chip WGC must be small enough for the bank to dominate
        # (Table I: the load circuit is 95.6%-98% of watermark dynamic power).
        wgc = WatermarkGenerationCircuit.test_chip(active_width=12)
        records = []
        for _ in range(200):
            _, activity = wgc.step()
            records.append(activity)
        from repro.rtl.activity import ActivityTrace

        trace = ActivityTrace.from_records("wgc", records)
        power = nominal_estimator.dynamic_model.average_power("dff", trace)
        assert 30e-6 < power < 120e-6
