"""Cache-correctness suite for the chip-level background subsystem.

Pins the contract of the two module-level caches introduced with the
chip-level background-synthesis work:

* the shared M0 window cache (:mod:`repro.soc.cpu`) -- one cycle-accurate
  window simulation per (program identity, window length), shared across
  chip instances, invalidated when the program or memory image differs;
* the background-power template cache (:mod:`repro.soc.chip`) -- one
  per-cycle background template per (chip configuration, seed,
  acquisition length).

Every fast path must be bit-identical to the cache-bypassing computation.
"""

import numpy as np
import pytest

from repro.core.architectures import ClockModulationWatermark
from repro.core.config import WatermarkConfig
from repro.soc import chip as chip_module
from repro.soc import cpu as cpu_module
from repro.soc.assembler import Assembler
from repro.soc.chip import build_chip_one, build_chip_two
from repro.soc.cpu import program_fingerprint
from repro.soc.workloads import dhrystone_like_program, idle_loop_program


@pytest.fixture(autouse=True)
def fresh_caches():
    """Each test starts from empty module-level caches."""
    cpu_module.clear_m0_window_cache()
    chip_module.clear_background_template_cache()
    yield
    cpu_module.clear_m0_window_cache()
    chip_module.clear_background_template_cache()


def _trace_equal(a, b) -> bool:
    return (
        np.array_equal(a.clock_toggles, b.clock_toggles)
        and np.array_equal(a.data_toggles, b.data_toggles)
        and np.array_equal(a.comb_toggles, b.comb_toggles)
    )


class TestProgramFingerprint:
    def test_identical_programs_share_fingerprint(self):
        assert program_fingerprint(dhrystone_like_program()) == program_fingerprint(
            dhrystone_like_program()
        )

    def test_different_programs_differ(self):
        assert program_fingerprint(dhrystone_like_program()) != program_fingerprint(
            idle_loop_program()
        )

    def test_memory_image_is_part_of_the_identity(self):
        source = "main:\n ldr r0, [r1]\n b main\n.word 1, 2, 3"
        a = Assembler().assemble(source, entry_label="main")
        b = Assembler().assemble(source, entry_label="main")
        assert program_fingerprint(a) == program_fingerprint(b)
        b.data_words = {address: word + 1 for address, word in b.data_words.items()}
        assert program_fingerprint(a) != program_fingerprint(b)


class TestM0WindowCache:
    def test_cached_trace_bit_identical_to_uncached(self):
        chip = build_chip_one(m0_window_cycles=512)
        cached = chip.m0_activity(2000, seed=13)
        uncached = chip.m0_activity(2000, seed=13, use_cache=False)
        assert _trace_equal(cached, uncached)

    def test_window_simulated_once_across_instances(self):
        first = build_chip_one(m0_window_cycles=512)
        second = build_chip_one(m0_window_cycles=512)
        first.m0_activity(1500, seed=1)
        stats = cpu_module.m0_window_cache_stats()
        assert stats["misses"] == 1
        second.m0_activity(1500, seed=2)
        second.m0_activity(3000, seed=3)
        stats = cpu_module.m0_window_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 2

    def test_different_program_misses(self):
        dhrystone = build_chip_one(m0_window_cycles=512)
        idle = build_chip_one(program=idle_loop_program(), m0_window_cycles=512)
        dhrystone.m0_activity(600, seed=1)
        idle.m0_activity(600, seed=1)
        assert cpu_module.m0_window_cache_stats()["misses"] == 2

    def test_different_window_misses(self):
        chip_small = build_chip_one(m0_window_cycles=256)
        chip_large = build_chip_one(m0_window_cycles=512)
        chip_small.m0_activity(600, seed=1)
        chip_large.m0_activity(600, seed=1)
        assert cpu_module.m0_window_cache_stats()["misses"] == 2

    def test_short_acquisition_window_also_cached(self):
        chip = build_chip_one(m0_window_cycles=4096)
        a = chip.m0_activity(100, seed=1)
        b = chip.m0_activity(100, seed=1)
        assert _trace_equal(a, b)
        assert cpu_module.m0_window_cache_stats() == {
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "entries": 1,
        }

    def test_cached_arrays_are_read_only(self):
        chip = build_chip_one(m0_window_cycles=256)
        trace = chip.m0_activity(256, seed=1)
        with pytest.raises(ValueError):
            trace.clock_toggles[0] = 0

    def test_clear_resets_cache_and_counters(self):
        chip = build_chip_one(m0_window_cycles=256)
        chip.m0_activity(300, seed=1)
        cpu_module.clear_m0_window_cache()
        assert cpu_module.m0_window_cache_stats() == {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "entries": 0,
        }

    def test_lru_bound_evicts_oldest(self, monkeypatch):
        monkeypatch.setattr(cpu_module, "M0_WINDOW_CACHE_MAX_ENTRIES", 2)
        chip = build_chip_one(m0_window_cycles=64)
        for cycles in (16, 32, 64):
            chip.m0_activity(cycles, seed=1)
        stats = cpu_module.m0_window_cache_stats()
        assert stats["entries"] == 2
        assert stats["evictions"] == 1


class TestBackgroundTemplateCache:
    @pytest.fixture()
    def chip(self):
        watermark = ClockModulationWatermark.from_config(
            WatermarkConfig(lfsr_width=8, lfsr_seed=0x2D)
        )
        return build_chip_one(watermark=watermark, m0_window_cycles=512)

    def test_cached_power_bit_identical_to_uncached(self, chip):
        warm = chip.background_power(4000, seed=21)
        again = chip.background_power(4000, seed=21)
        reference = chip.background_power(4000, seed=21, use_cache=False)
        assert np.array_equal(warm.power_w, reference.power_w)
        assert np.array_equal(again.power_w, reference.power_w)
        stats = chip_module.background_template_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1

    def test_total_power_bit_identical_through_cache(self, chip):
        cold = chip.total_power(4000, seed=5, watermark_phase_offset=17)
        warm = chip.total_power(4000, seed=5, watermark_phase_offset=17)
        reference = chip.total_power(
            4000, seed=5, watermark_phase_offset=17, use_cache=False
        )
        assert np.array_equal(cold.power_w, reference.power_w)
        assert np.array_equal(warm.power_w, reference.power_w)

    def test_different_seed_misses(self, chip):
        chip.background_power(1000, seed=1)
        chip.background_power(1000, seed=2)
        assert chip_module.background_template_cache_stats()["misses"] == 2

    def test_different_num_cycles_misses(self, chip):
        # Each acquisition length is its own cache class: the block
        # activity draws are length-dependent, so a truncated longer
        # template would not be bit-identical to a direct shorter draw.
        chip.background_power(1000, seed=1)
        chip.background_power(2000, seed=1)
        assert chip_module.background_template_cache_stats()["misses"] == 2

    def test_different_chip_configuration_misses(self, chip):
        chip.background_power(1000, seed=1)
        chip2 = build_chip_two(m0_window_cycles=512)
        chip2.background_power(1000, seed=1)
        assert chip_module.background_template_cache_stats()["misses"] == 2

    def test_different_program_misses(self, chip):
        chip.background_power(1000, seed=1)
        other = build_chip_one(program=idle_loop_program(), m0_window_cycles=512)
        other.background_power(1000, seed=1)
        assert chip_module.background_template_cache_stats()["misses"] == 2

    def test_same_named_but_recalibrated_library_misses(self, chip):
        # Regression: the template key must identify the cell library by
        # value, not by name -- a recalibrated library that keeps the
        # default name must never be served the default library's template.
        from dataclasses import replace

        from repro.power.estimator import PowerEstimator
        from repro.power.library import CellLibrary, TSMC65LP_LIKE

        chip.background_power(1000, seed=1)
        hotter = CellLibrary(
            name=TSMC65LP_LIKE.name,  # deliberately the same name
            voltage_v=TSMC65LP_LIKE.voltage_v,
            cells={
                cell_type: replace(cell, leakage_w=cell.leakage_w * 10)
                for cell_type, cell in TSMC65LP_LIKE.cells.items()
            },
        )
        estimator = PowerEstimator(
            chip.estimator.operating_point, library=hotter
        )
        other = build_chip_one(m0_window_cycles=512)
        other.estimator = estimator
        trace = other.background_power(1000, seed=1)
        assert chip_module.background_template_cache_stats()["misses"] == 2
        reference = chip.background_power(1000, seed=1, use_cache=False)
        assert trace.power_w.mean() > reference.power_w.mean()

    def test_shared_across_equivalent_instances(self, chip):
        chip.background_power(1000, seed=1)
        sibling = build_chip_one(m0_window_cycles=512)  # watermark is irrelevant
        sibling.background_power(1000, seed=1)
        stats = chip_module.background_template_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1

    def test_default_seed_resolves_to_chip_seed(self):
        a = build_chip_one(m0_window_cycles=256, seed=77)
        b = build_chip_one(m0_window_cycles=256, seed=77)
        explicit = a.background_power(500)
        implicit = b.background_power(500, seed=77)
        assert np.array_equal(explicit.power_w, implicit.power_w)
        assert chip_module.background_template_cache_stats()["hits"] == 1

    def test_cached_template_is_read_only(self, chip):
        power = chip.background_power(500, seed=3)
        with pytest.raises(ValueError):
            power.power_w[0] = 0.0

    def test_lru_bound_evicts_oldest(self, chip, monkeypatch):
        monkeypatch.setattr(chip_module, "BACKGROUND_TEMPLATE_CACHE_MAX_ENTRIES", 2)
        for seed in (1, 2, 3):
            chip.background_power(200, seed=seed)
        stats = chip_module.background_template_cache_stats()
        assert stats["entries"] == 2
        assert stats["evictions"] == 1

    def test_clear_resets_cache_and_counters(self, chip):
        chip.background_power(200, seed=1)
        chip_module.clear_background_template_cache()
        assert chip_module.background_template_cache_stats() == {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "entries": 0,
        }


class TestWarmPathHasNoPerCycleLoop:
    def test_warm_total_power_never_steps_the_core(self, monkeypatch):
        watermark = ClockModulationWatermark.from_config(
            WatermarkConfig(lfsr_width=8, lfsr_seed=0x2D)
        )
        chip = build_chip_one(watermark=watermark, m0_window_cycles=512)
        chip.total_power(3000, seed=4)  # cold: simulates and caches

        def boom(self):  # pragma: no cover - the assertion is that it never runs
            raise AssertionError("warm path stepped the core cycle by cycle")

        monkeypatch.setattr(cpu_module.CortexM0Like, "step_cycle", boom)
        warm = chip.total_power(3000, seed=4)
        assert len(warm) == 3000
