"""repro-lint rule suite: per-rule fixtures plus the src/ self-check.

Every rule gets (at least) one minimal violating snippet -- asserting the
rule ID and the exact line -- and one clean or pragma'd snippet.  The
self-check then pins the acceptance criterion directly: the shipped
``src/`` tree has zero unsuppressed violations and every suppression
carries a reason.
"""

import dataclasses
import importlib.util
import json
import pathlib
import textwrap

import numpy as np
import pytest

from repro.analysis.engine import (
    META_RULE_ID,
    Finding,
    lint_paths,
    lint_source,
    render_json,
    render_text,
    unsuppressed,
)
from repro.analysis.rules import (
    ALL_RULES,
    RULE_INDEX,
    SchemaManifestRule,
    schema_manifest_path,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def snippet(text: str) -> str:
    return textwrap.dedent(text).lstrip("\n")


def rule_ids(findings, include_suppressed: bool = False):
    return [
        f.rule_id
        for f in findings
        if include_suppressed or not f.suppressed
    ]


def the_finding(findings, rule_id: str) -> Finding:
    matches = [f for f in findings if f.rule_id == rule_id]
    assert len(matches) == 1, f"expected exactly one {rule_id}, got {matches}"
    return matches[0]


# -- RNG001 ----------------------------------------------------------------------


class TestRNG001:
    def test_global_numpy_randomness_is_flagged_with_line(self):
        findings = lint_source(
            snippet(
                """
                import numpy as np
                np.random.seed(0)
                x = np.random.normal(0.0, 1.0, 10)
                """
            ),
            "src/repro/power/noise.py",
        )
        assert rule_ids(findings) == ["RNG001", "RNG001"]
        assert [f.line for f in findings] == [2, 3]

    def test_stdlib_random_calls_and_imports_are_flagged(self):
        findings = lint_source(
            snippet(
                """
                import random
                value = random.random()
                """
            ),
            "src/repro/x.py",
        )
        assert rule_ids(findings) == ["RNG001", "RNG001"]

    def test_from_imports_of_global_state_are_flagged(self):
        findings = lint_source(
            "from random import shuffle\n", "src/repro/x.py"
        )
        assert rule_ids(findings) == ["RNG001"]
        findings = lint_source(
            "from numpy.random import normal\n", "src/repro/x.py"
        )
        assert rule_ids(findings) == ["RNG001"]

    def test_seeded_generator_draws_are_clean(self):
        findings = lint_source(
            snippet(
                """
                import numpy as np
                from numpy.random import default_rng
                rng = np.random.default_rng(7)
                x = rng.normal(0.0, 1.0, 10)
                y = np.random.Generator(np.random.PCG64(7)).integers(0, 4)
                """
            ),
            "src/repro/power/noise.py",
        )
        assert unsuppressed(findings) == []


# -- DET001 ----------------------------------------------------------------------


class TestDET001:
    def test_wall_clock_and_entropy_calls_are_flagged(self):
        findings = lint_source(
            snippet(
                """
                import datetime
                import os
                import time
                import uuid
                a = time.time()
                b = datetime.datetime.now()
                c = os.urandom(8)
                d = uuid.uuid4()
                """
            ),
            "src/repro/x.py",
        )
        assert rule_ids(findings) == ["DET001"] * 4
        assert [f.line for f in findings] == [5, 6, 7, 8]

    def test_monotonic_and_perf_counter_are_clean(self):
        findings = lint_source(
            snippet(
                """
                import time
                a = time.monotonic()
                b = time.perf_counter()
                time.sleep(0.01)
                """
            ),
            "src/repro/x.py",
        )
        assert unsuppressed(findings) == []

    def test_smuggling_from_import_is_flagged(self):
        findings = lint_source(
            "from time import time\n", "src/repro/x.py"
        )
        assert rule_ids(findings) == ["DET001"]

    def test_inline_pragma_suppresses_with_reason(self):
        findings = lint_source(
            snippet(
                """
                import time
                stamp = time.time()  # repro-lint: allow[DET001] provenance stamp
                """
            ),
            "src/repro/x.py",
        )
        assert unsuppressed(findings) == []
        suppressed = the_finding(findings, "DET001")
        assert suppressed.suppressed
        assert suppressed.suppression_reason == "provenance stamp"
        assert suppressed.line == 2


# -- HOT001 ----------------------------------------------------------------------

HOT_LOOP = snippet(
    """
    def fold(matrix, trials):
        total = 0.0
        for t in range(trials):
            total += matrix[t].sum()
        return total
    """
)


class TestHOT001:
    def test_trial_loop_in_hot_module_is_flagged(self):
        findings = lint_source(HOT_LOOP, "src/repro/detection/fold.py")
        assert rule_ids(findings) == ["HOT001"]
        assert the_finding(findings, "HOT001").line == 3

    def test_same_loop_outside_hot_modules_is_clean(self):
        assert lint_source(HOT_LOOP, "src/repro/experiments/fold.py") == []

    def test_soc_chip_and_cpu_are_hot(self):
        for path in ("src/repro/soc/chip.py", "src/repro/soc/cpu.py"):
            assert rule_ids(lint_source(HOT_LOOP, path)) == ["HOT001"]

    def test_while_loop_over_cycles_is_flagged(self):
        findings = lint_source(
            snippet(
                """
                def run(num_cycles):
                    cycle = 0
                    while cycle < num_cycles:
                        cycle += 1
                """
            ),
            "src/repro/power/sim.py",
        )
        assert rule_ids(findings) == ["HOT001"]
        assert the_finding(findings, "HOT001").line == 3

    def test_comprehension_over_trials_is_flagged(self):
        findings = lint_source(
            "def f(trials):\n    return [t * t for t in range(trials)]\n",
            "src/repro/detection/x.py",
        )
        assert rule_ids(findings) == ["HOT001"]

    def test_standalone_pragma_suppresses_next_line(self):
        findings = lint_source(
            snippet(
                """
                def fold(matrix, trials):
                    total = 0.0
                    # repro-lint: allow[HOT001] golden reference path
                    for t in range(trials):
                        total += matrix[t].sum()
                    return total
                """
            ),
            "src/repro/detection/fold.py",
        )
        assert unsuppressed(findings) == []
        assert the_finding(findings, "HOT001").suppression_reason == (
            "golden reference path"
        )

    def test_loops_over_other_ranges_are_clean(self):
        findings = lint_source(
            "def f(items):\n    return [x + 1 for x in items]\n",
            "src/repro/detection/x.py",
        )
        assert findings == []


# -- CACHE001 --------------------------------------------------------------------


class TestCACHE001:
    def test_unfrozen_compute_function_is_flagged(self):
        findings = lint_source(
            snippet(
                """
                def serve(cache, key):
                    def build():
                        return make_array()
                    return cache.get_or_compute(key, build)
                """
            ),
            "src/repro/soc/windows.py",
        )
        assert rule_ids(findings) == ["CACHE001"]
        assert the_finding(findings, "CACHE001").line == 4

    def test_freezing_compute_function_is_clean(self):
        findings = lint_source(
            snippet(
                """
                def serve(cache, key):
                    def build():
                        array = make_array()
                        array.flags.writeable = False
                        return array
                    return cache.get_or_compute(key, build)
                """
            ),
            "src/repro/soc/windows.py",
        )
        assert findings == []

    def test_lambda_delegating_to_freezer_is_clean(self):
        findings = lint_source(
            snippet(
                """
                def frozen_copy(array):
                    out = array.copy()
                    out.setflags(write=False)
                    return out

                def serve(cache, key, simulate):
                    return cache.get_or_compute(key, lambda: frozen_copy(simulate()))
                """
            ),
            "src/repro/soc/windows.py",
        )
        assert findings == []

    def test_transitive_freeze_through_local_helper_is_clean(self):
        findings = lint_source(
            snippet(
                """
                def freeze(array):
                    array.flags.writeable = False
                    return array

                def build():
                    return freeze(make_array())

                def serve(cache, key):
                    return cache.get_or_compute(key, build)
                """
            ),
            "src/repro/soc/windows.py",
        )
        assert findings == []

    def test_unresolvable_compute_is_flagged_and_pragma_escapes(self):
        source = snippet(
            """
            def serve(cache, key, builder):
                return cache.get_or_compute(key, builder.make)
            """
        )
        findings = lint_source(source, "src/repro/soc/windows.py")
        assert rule_ids(findings) == ["CACHE001"]
        pragma = source.replace(
            "    return cache.get_or_compute",
            "    # repro-lint: allow[CACHE001] serves objects, not arrays\n"
            "    return cache.get_or_compute",
        )
        assert unsuppressed(lint_source(pragma, "src/repro/soc/windows.py")) == []

    def test_rethawing_an_array_is_flagged(self):
        findings = lint_source(
            snippet(
                """
                def thaw(array):
                    array.flags.writeable = True
                    return array

                def thaw2(array):
                    array.setflags(write=True)
                    return array
                """
            ),
            "src/repro/soc/windows.py",
        )
        assert rule_ids(findings) == ["CACHE001", "CACHE001"]
        assert sorted(f.line for f in findings) == [2, 6]


# -- EXC001 ----------------------------------------------------------------------


class TestEXC001:
    def test_bare_except_in_pipeline_is_flagged(self):
        findings = lint_source(
            snippet(
                """
                def f():
                    try:
                        work()
                    except:
                        pass
                """
            ),
            "src/repro/pipeline/x.py",
        )
        assert rule_ids(findings) == ["EXC001"]
        assert the_finding(findings, "EXC001").line == 4

    def test_except_base_exception_is_always_flagged(self):
        findings = lint_source(
            snippet(
                """
                def f():
                    try:
                        work()
                    except BaseException:
                        raise
                """
            ),
            "src/repro/pipeline/x.py",
        )
        assert rule_ids(findings) == ["EXC001"]

    def test_broad_except_exception_without_reraise_is_flagged(self):
        findings = lint_source(
            snippet(
                """
                def f():
                    try:
                        work()
                    except Exception:
                        log()
                """
            ),
            "src/repro/pipeline/x.py",
        )
        assert rule_ids(findings) == ["EXC001"]
        assert the_finding(findings, "EXC001").line == 4

    def test_broad_except_with_bare_reraise_is_clean(self):
        findings = lint_source(
            snippet(
                """
                def f():
                    try:
                        work()
                    except Exception:
                        log()
                        raise
                """
            ),
            "src/repro/pipeline/x.py",
        )
        assert findings == []

    def test_sibling_control_flow_handler_exempts_broad_catch(self):
        findings = lint_source(
            snippet(
                """
                def f():
                    try:
                        work()
                    except (faults.CellTimeout, faults.SweepInterrupted):
                        raise
                    except Exception:
                        record()
                """
            ),
            "src/repro/pipeline/x.py",
        )
        assert findings == []

    def test_narrow_catches_are_clean(self):
        findings = lint_source(
            snippet(
                """
                def f():
                    try:
                        work()
                    except (KeyError, ValueError):
                        record()
                """
            ),
            "src/repro/pipeline/x.py",
        )
        assert findings == []

    def test_rule_is_scoped_to_pipeline(self):
        findings = lint_source(
            snippet(
                """
                def f():
                    try:
                        work()
                    except Exception:
                        pass
                """
            ),
            "src/repro/experiments/x.py",
        )
        assert findings == []

    def test_service_request_handlers_are_in_scope(self):
        source = snippet(
            """
            def handle():
                try:
                    dispatch()
                except Exception:
                    respond_500()
            """
        )
        findings = lint_source(source, "src/repro/service/server.py")
        assert rule_ids(findings) == ["EXC001"]
        # The sanctioned handler shape: supervision control flow is
        # re-raised by an explicit sibling before the broad catch.
        safe = snippet(
            """
            def handle():
                try:
                    dispatch()
                except (CellTimeout, SweepInterrupted):
                    raise
                except Exception:
                    respond_500()
            """
        )
        assert lint_source(safe, "src/repro/service/server.py") == []


# -- SCHEMA001 -------------------------------------------------------------------

SPEC_MANIFEST = {
    "spec_schema_version": 1,
    "ScenarioSpec": ["kind", "name", "seed"],
}

SPEC_SOURCE = snippet(
    """
    SPEC_SCHEMA_VERSION = 1

    @dataclass(frozen=True)
    class ScenarioSpec:
        kind: str
        name: str = ""
        seed: int = 0
    """
)


class TestSCHEMA001:
    def rule(self, manifest):
        return [SchemaManifestRule(manifest=manifest)]

    def test_matching_fields_and_version_are_clean(self):
        findings = lint_source(
            SPEC_SOURCE, "src/repro/core/spec.py", rules=self.rule(SPEC_MANIFEST)
        )
        assert findings == []

    def test_field_drift_without_bump_is_flagged(self):
        drifted = SPEC_SOURCE.replace("    seed: int = 0", "    seed: int = 0\n    extra: int = 1")
        findings = lint_source(
            drifted, "src/repro/core/spec.py", rules=self.rule(SPEC_MANIFEST)
        )
        finding = the_finding(findings, "SCHEMA001")
        assert "ScenarioSpec" in finding.message
        assert "extra" in finding.message
        assert "SPEC_SCHEMA_VERSION" in finding.message
        assert finding.line == 4  # the class statement

    def test_version_mismatch_with_manifest_is_flagged(self):
        findings = lint_source(
            SPEC_SOURCE.replace(
                "SPEC_SCHEMA_VERSION = 1", "SPEC_SCHEMA_VERSION = 2"
            ),
            "src/repro/core/spec.py",
            rules=self.rule(SPEC_MANIFEST),
        )
        finding = the_finding(findings, "SCHEMA001")
        assert finding.line == 1

    def test_rule_is_scoped_to_schema_modules(self):
        findings = lint_source(
            SPEC_SOURCE, "src/repro/core/other.py", rules=self.rule(SPEC_MANIFEST)
        )
        assert findings == []

    def test_shipped_manifest_matches_the_real_dataclasses(self):
        from repro.core.spec import SPEC_SCHEMA_VERSION, ScenarioSpec
        from repro.pipeline.artifacts import (
            ARTIFACT_SCHEMA_VERSION,
            Provenance,
            ScenarioResult,
        )

        manifest = json.loads(schema_manifest_path().read_text())
        assert manifest["spec_schema_version"] == SPEC_SCHEMA_VERSION
        assert manifest["artifact_schema_version"] == ARTIFACT_SCHEMA_VERSION
        for cls in (ScenarioSpec, ScenarioResult, Provenance):
            names = [f.name for f in dataclasses.fields(cls)]
            assert manifest[cls.__name__] == names, cls.__name__

    def test_shipped_spec_and_artifacts_modules_pass(self):
        for module in ("core/spec.py", "pipeline/artifacts.py"):
            path = SRC / "repro" / module
            findings = lint_source(
                path.read_text(),
                str(path),
                rules=[SchemaManifestRule()],
            )
            assert unsuppressed(findings) == [], module


# -- FROZEN001 -------------------------------------------------------------------


class TestFROZEN001:
    def test_unfrozen_dataclass_is_flagged(self):
        findings = lint_source(
            snippet(
                """
                @dataclass
                class MeasurementConfig:
                    trials: int = 16
                """
            ),
            "src/repro/core/config.py",
        )
        finding = the_finding(findings, "FROZEN001")
        assert finding.line == 2
        assert "MeasurementConfig" in finding.message

    def test_mutable_defaults_are_flagged(self):
        findings = lint_source(
            snippet(
                """
                @dataclass(frozen=True)
                class DetectionConfig:
                    taps: list = []
                    weights: dict = {}
                    template: np.ndarray = np.zeros(4)
                """
            ),
            "src/repro/core/config.py",
        )
        assert rule_ids(findings) == ["FROZEN001"] * 3
        assert [f.line for f in findings] == [3, 4, 5]

    def test_frozen_with_default_factory_is_clean(self):
        findings = lint_source(
            snippet(
                """
                @dataclass(frozen=True)
                class DetectionConfig:
                    trials: int = 16
                    taps: Tuple[int, ...] = (3, 1)
                    weights: Dict[str, float] = field(default_factory=dict)
                """
            ),
            "src/repro/core/config.py",
        )
        assert findings == []

    def test_rule_is_scoped_to_config_modules(self):
        findings = lint_source(
            "@dataclass\nclass Loose:\n    x: int = 0\n",
            "src/repro/pipeline/x.py",
        )
        assert findings == []


# -- LINT001 (pragma meta-rule) --------------------------------------------------


class TestLINT001:
    def test_reasonless_pragma_is_a_finding_and_does_not_suppress(self):
        findings = lint_source(
            snippet(
                """
                import time
                stamp = time.time()  # repro-lint: allow[DET001]
                """
            ),
            "src/repro/x.py",
        )
        ids = sorted(rule_ids(findings))
        assert ids == ["DET001", "LINT001"]

    def test_unknown_rule_id_is_a_finding(self):
        findings = lint_source(
            "x = 1  # repro-lint: allow[NOPE-99] because\n",
            "src/repro/x.py",
        )
        assert rule_ids(findings) == [META_RULE_ID]

    def test_malformed_pragma_is_a_finding(self):
        findings = lint_source(
            "x = 1  # repro-lint: silence everything\n",
            "src/repro/x.py",
        )
        assert rule_ids(findings) == [META_RULE_ID]

    def test_lint001_itself_cannot_be_suppressed(self):
        findings = lint_source(
            "x = 1  # repro-lint: allow[LINT001] nice try\n",
            "src/repro/x.py",
        )
        assert rule_ids(findings) == [META_RULE_ID]

    def test_unparseable_file_is_a_finding(self):
        findings = lint_source("def broken(:\n", "src/repro/x.py")
        assert rule_ids(findings) == [META_RULE_ID]
        assert "does not parse" in findings[0].message


# -- reporters & CLI -------------------------------------------------------------


class TestReporting:
    def test_text_report_format(self):
        findings = lint_source("import time\nt = time.time()\n", "src/repro/x.py")
        text = render_text(findings, files_checked=1)
        assert "src/repro/x.py:2: DET001" in text
        assert "1 violation(s), 0 suppressed across 1 file(s)" in text

    def test_json_report_shape(self):
        findings = lint_source("import time\nt = time.time()\n", "src/repro/x.py")
        payload = json.loads(render_json(findings, files_checked=1))
        assert payload["tool"] == "repro-lint"
        assert payload["summary"] == {
            "files": 1, "violations": 1, "suppressed": 0,
        }
        (entry,) = payload["findings"]
        assert entry["rule"] == "DET001"
        assert entry["line"] == 2
        assert entry["suppressed"] is False

    def test_cli_flags_violations_with_exit_1(self, tmp_path, capsys):
        from repro.analysis.__main__ import main

        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        assert main([str(bad)]) == 1
        assert "DET001" in capsys.readouterr().out

    def test_cli_clean_file_exits_0_json(self, tmp_path, capsys):
        from repro.analysis.__main__ import main

        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert main([str(good), "--format=json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["violations"] == 0

    def test_cli_usage_errors_exit_2(self, tmp_path, capsys):
        from repro.analysis.__main__ import main

        assert main([]) == 2
        assert main([str(tmp_path / "missing.py")]) == 2
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert main([str(good), "--rules", "BOGUS"]) == 2

    def test_cli_rule_selection_and_listing(self, tmp_path, capsys):
        from repro.analysis.__main__ import main

        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        assert main([str(bad), "--rules", "RNG001"]) == 0
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.rule_id in out


# -- the self-check: the shipped tree is clean -----------------------------------


class TestSrcTreeSelfCheck:
    @staticmethod
    def _gated_findings():
        """The tree's findings as the CI gate sees them: baseline applied."""
        from repro.analysis.baseline import apply_baseline, default_baseline_path
        from repro.analysis.engine import iter_python_files

        findings, files_checked = lint_paths([str(SRC)])
        linted = [str(path) for path in iter_python_files([str(SRC)])]
        findings = apply_baseline(
            findings, default_baseline_path(), linted_paths=linted
        )
        return findings, files_checked

    def test_src_has_zero_unsuppressed_violations(self):
        findings, files_checked = self._gated_findings()
        assert files_checked > 50  # the whole tree, not a subset
        problems = unsuppressed(findings)
        assert problems == [], render_text(findings, files_checked)

    def test_every_suppression_carries_a_reason(self):
        findings, _ = self._gated_findings()
        suppressed = [f for f in findings if f.suppressed]
        assert suppressed, "expected the documented pragma sites to exist"
        for finding in suppressed:
            assert finding.suppression_reason, finding

    def test_baseline_entries_are_all_justified_rng002(self):
        # The committed baseline exists to absorb the pinned seed-stream
        # findings, nothing else: every entry is RNG002 with a reason.
        from repro.analysis.baseline import default_baseline_path, load_baseline

        entries, problems = load_baseline(default_baseline_path())
        assert problems == []
        assert entries, "expected the committed RNG002 baseline"
        for entry in entries:
            assert entry["rule"] == "RNG002"
            assert str(entry["justification"]).strip()

    def test_src_concurrency_rules_are_live_on_the_tree(self):
        # Without the baseline the pinned RNG002 collisions must surface:
        # proof the project pass actually runs over src/, not a no-op.
        findings, _ = lint_paths([str(SRC)])
        assert "RNG002" in {f.rule_id for f in unsuppressed(findings)}

    def test_rule_inventory_is_complete(self):
        assert sorted(RULE_INDEX) == [
            "CACHE001",
            "CONC001",
            "CONC002",
            "CONC003",
            "DEAD001",
            "DET001",
            "EXC001",
            "FROZEN001",
            "HOT001",
            "RNG001",
            "RNG002",
            "SCHEMA001",
        ]
        for rule in ALL_RULES:
            assert rule.title and rule.rationale


# -- satellite fixes -------------------------------------------------------------


class TestSatelliteFixes:
    def test_provenance_clock_is_the_single_patch_point(self, monkeypatch):
        from repro.pipeline import artifacts

        monkeypatch.setattr(
            artifacts, "provenance_clock", lambda: "2026-01-01T00:00:00+00:00"
        )
        prov = artifacts.Provenance(spec_hash="abc")
        assert prov.created_at == "2026-01-01T00:00:00+00:00"

    def test_provenance_clock_returns_utc_iso8601(self):
        from repro.pipeline.artifacts import provenance_clock

        stamp = provenance_clock()
        assert stamp.endswith("+00:00")

    def test_periodic_template_is_served_read_only(self):
        from repro.power.synthesis import PeriodicPowerTemplate
        from repro.rtl.signals import Clock

        template = PeriodicPowerTemplate(
            name="t", clock=Clock(name="clk", frequency_hz=1e6), power_w=np.ones(8)
        )
        assert not template.power_w.flags.writeable
        with pytest.raises(ValueError):
            template.power_w[0] = 2.0

    def test_freezing_does_not_alias_the_caller_array(self):
        from repro.power.synthesis import PeriodicPowerTemplate
        from repro.rtl.signals import Clock

        mine = np.ones(8)
        PeriodicPowerTemplate(
            name="t", clock=Clock(name="clk", frequency_hz=1e6), power_w=mine
        )
        assert mine.flags.writeable  # the template froze its own copy
        mine[0] = 5.0  # and my array still works

    def test_store_rebuild_errors_exclude_exception(self):
        from repro.pipeline.store import _REBUILD_ERRORS

        assert Exception not in _REBUILD_ERRORS
        assert BaseException not in _REBUILD_ERRORS
        assert ValueError in _REBUILD_ERRORS


# -- mypy (CI installs it; the container image does not ship it) -----------------


@pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None,
    reason="mypy not installed in this environment (CI installs it)",
)
def test_mypy_passes_on_the_typed_core():
    from mypy import api

    stdout, stderr, status = api.run(
        ["--config-file", str(REPO_ROOT / "mypy.ini")]
    )
    assert status == 0, f"mypy failed:\n{stdout}\n{stderr}"
