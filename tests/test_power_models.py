"""Unit tests for repro.power.models."""

import numpy as np
import pytest

from repro.power.library import TSMC65LP_LIKE
from repro.power.models import (
    DynamicPowerModel,
    OperatingPoint,
    StaticPowerModel,
    scale_energy_with_voltage,
)
from repro.rtl.activity import ActivityRecord, ActivityTrace
from repro.rtl.signals import Clock


@pytest.fixture
def operating_point() -> OperatingPoint:
    return OperatingPoint(clock=Clock("clk", 10e6), voltage_v=1.2)


class TestVoltageScaling:
    def test_reference_voltage_is_identity(self):
        assert scale_energy_with_voltage(1e-15, 1.2, 1.2) == pytest.approx(1e-15)

    def test_quadratic_scaling(self):
        assert scale_energy_with_voltage(1e-15, 0.6, 1.2) == pytest.approx(0.25e-15)

    def test_invalid_voltage_rejected(self):
        with pytest.raises(ValueError):
            scale_energy_with_voltage(1e-15, 0.0)


class TestOperatingPoint:
    def test_cycle_time(self, operating_point):
        assert operating_point.cycle_time_s == pytest.approx(100e-9)

    def test_invalid_voltage_rejected(self):
        with pytest.raises(ValueError):
            OperatingPoint(clock=Clock("clk", 1e6), voltage_v=-1.0)


class TestDynamicPowerModel:
    def test_single_register_clock_power_matches_paper(self, operating_point):
        model = DynamicPowerModel(TSMC65LP_LIKE, operating_point)
        energy = model.cycle_energy("dff", ActivityRecord(clock_toggles=2))
        power = energy / operating_point.cycle_time_s
        assert power == pytest.approx(1.476e-6, rel=1e-6)

    def test_single_register_data_power_matches_paper(self, operating_point):
        model = DynamicPowerModel(TSMC65LP_LIKE, operating_point)
        energy = model.cycle_energy("dff", ActivityRecord(data_toggles=1))
        power = energy / operating_point.cycle_time_s
        assert power == pytest.approx(1.126e-6, rel=1e-6)

    def test_power_scales_with_voltage(self):
        low_v = OperatingPoint(clock=Clock("clk", 10e6), voltage_v=0.6)
        model = DynamicPowerModel(TSMC65LP_LIKE, low_v)
        energy = model.cycle_energy("dff", ActivityRecord(clock_toggles=2))
        assert energy == pytest.approx(0.25 * 1.476e-13, rel=1e-6)

    def test_average_power_over_trace(self, operating_point):
        model = DynamicPowerModel(TSMC65LP_LIKE, operating_point)
        trace = ActivityTrace.from_records(
            "t", [ActivityRecord(clock_toggles=2), ActivityRecord(clock_toggles=0)]
        )
        assert model.average_power("dff", trace) == pytest.approx(1.476e-6 / 2)

    def test_average_power_of_empty_trace_is_zero(self, operating_point):
        model = DynamicPowerModel(TSMC65LP_LIKE, operating_point)
        assert model.average_power("dff", ActivityTrace.zeros("t", 0)) == 0.0

    def test_power_per_cycle_vectorised(self, operating_point):
        model = DynamicPowerModel(TSMC65LP_LIKE, operating_point)
        trace = ActivityTrace.from_records("t", [ActivityRecord(clock_toggles=2)] * 5)
        per_cycle = model.power_per_cycle("dff", trace)
        assert per_cycle.shape == (5,)
        assert np.allclose(per_cycle, 1.476e-6)


class TestStaticPowerModel:
    def test_leakage_of_inventory(self, operating_point):
        model = StaticPowerModel(TSMC65LP_LIKE, operating_point)
        leak = model.total_leakage({"dff": 1024, "icg": 32})
        assert 0.35e-6 < leak < 0.45e-6

    def test_leakage_increases_with_temperature(self, operating_point):
        cold = StaticPowerModel(TSMC65LP_LIKE, operating_point)
        hot = StaticPowerModel(
            TSMC65LP_LIKE, OperatingPoint(clock=operating_point.clock, voltage_v=1.2, temperature_c=50.0)
        )
        assert hot.cell_leakage("dff") == pytest.approx(2.0 * cold.cell_leakage("dff"))

    def test_state_dependence_is_small(self, operating_point):
        model = StaticPowerModel(TSMC65LP_LIKE, operating_point)
        idle = model.cell_leakage("dff", active_fraction=0.0)
        active = model.cell_leakage("dff", active_fraction=1.0)
        assert idle < active < idle * 1.05

    def test_invalid_active_fraction_rejected(self, operating_point):
        model = StaticPowerModel(TSMC65LP_LIKE, operating_point)
        with pytest.raises(ValueError):
            model.cell_leakage("dff", active_fraction=1.5)

    def test_negative_count_rejected(self, operating_point):
        model = StaticPowerModel(TSMC65LP_LIKE, operating_point)
        with pytest.raises(ValueError):
            model.total_leakage({"dff": -1})
