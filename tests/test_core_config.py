"""Unit tests for repro.core.config."""

import pytest

from repro.core.config import (
    ArchitectureKind,
    DetectionConfig,
    ExperimentConfig,
    MeasurementConfig,
    WatermarkConfig,
)


class TestWatermarkConfig:
    def test_paper_defaults(self):
        config = WatermarkConfig()
        assert config.architecture is ArchitectureKind.CLOCK_MODULATION
        assert config.lfsr_width == 12
        assert config.sequence_period == 4095
        assert config.bank_registers == 1024

    def test_invalid_lfsr_width(self):
        with pytest.raises(ValueError):
            WatermarkConfig(lfsr_width=1)

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            WatermarkConfig(lfsr_seed=0)

    def test_switching_registers_bound(self):
        with pytest.raises(ValueError):
            WatermarkConfig(num_words=2, word_width=8, switching_registers=17)

    def test_negative_switching_rejected(self):
        with pytest.raises(ValueError):
            WatermarkConfig(switching_registers=-1)

    def test_invalid_load_registers(self):
        with pytest.raises(ValueError):
            WatermarkConfig(load_registers=0)


class TestMeasurementConfig:
    def test_paper_defaults(self):
        config = MeasurementConfig()
        assert config.clock_frequency_hz == 10e6
        assert config.sampling_frequency_hz == 500e6
        assert config.num_cycles == 300_000
        assert config.samples_per_cycle == 50
        assert config.shunt_resistance_ohm == pytest.approx(0.270)

    def test_sampling_must_exceed_clock(self):
        with pytest.raises(ValueError):
            MeasurementConfig(clock_frequency_hz=500e6, sampling_frequency_hz=10e6)

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            MeasurementConfig(transient_noise_floor_w=-1.0)
        with pytest.raises(ValueError):
            MeasurementConfig(probe_noise_rms_v=-1e-3)

    def test_low_resolution_adc_rejected(self):
        with pytest.raises(ValueError):
            MeasurementConfig(adc_bits=2)

    def test_invalid_cycle_count(self):
        with pytest.raises(ValueError):
            MeasurementConfig(num_cycles=0)


class TestDetectionConfig:
    def test_defaults(self):
        config = DetectionConfig()
        assert config.detection_threshold == 4.0
        assert 0 < config.uniqueness_margin <= 1.0
        assert config.use_fft

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            DetectionConfig(detection_threshold=0.0)

    def test_invalid_uniqueness_margin(self):
        with pytest.raises(ValueError):
            DetectionConfig(uniqueness_margin=1.5)


class TestExperimentConfig:
    def test_paper_defaults_bundle(self):
        config = ExperimentConfig.paper_defaults()
        assert config.measurement.num_cycles == 300_000
        assert config.watermark.lfsr_width == 12

    def test_fast_configuration(self):
        config = ExperimentConfig.fast(num_cycles=10_000)
        assert config.measurement.num_cycles == 10_000
