"""Tests for the Fig. 5 and Fig. 6 experiment drivers (reduced length).

The reduced-length runs keep the suite fast; the benchmark harness runs the
full 300,000-cycle, 100-repetition campaigns.  To keep detection reliable
at the shorter trace length the tests use a shorter watermark sequence
(fewer rotations) and correspondingly lower acquisition noise.
"""

import numpy as np
import pytest

from repro.core.config import (
    DetectionConfig,
    ExperimentConfig,
    MeasurementConfig,
    WatermarkConfig,
)
from repro.experiments.fig5 import run_fig5, run_fig5_panel
from repro.experiments.fig6 import run_fig6_chip


@pytest.fixture(scope="module")
def reduced_config() -> ExperimentConfig:
    return ExperimentConfig(
        watermark=WatermarkConfig(lfsr_width=9, lfsr_seed=0x1AB),
        measurement=MeasurementConfig(
            num_cycles=60_000,
            transient_noise_floor_w=0.020,
            transient_noise_fraction=0.4,
            seed=11,
        ),
        detection=DetectionConfig(),
    )


class TestFig5Panels:
    def test_chip1_active_detected(self, reduced_config):
        panel = run_fig5_panel("chip1", True, config=reduced_config, m0_window_cycles=2048)
        assert panel.cpa.detected
        assert panel.spectrum.has_single_resolvable_peak()

    def test_chip1_inactive_not_detected(self, reduced_config):
        panel = run_fig5_panel("chip1", False, config=reduced_config, m0_window_cycles=2048)
        assert not panel.cpa.detected
        assert abs(panel.cpa.peak_correlation) < 0.02

    def test_peak_appears_at_requested_phase(self, reduced_config):
        panel = run_fig5_panel(
            "chip1", True, config=reduced_config, m0_window_cycles=2048, phase_offset=123
        )
        assert panel.cpa.peak_rotation == 123

    def test_chip2_peak_lower_than_chip1(self, reduced_config):
        chip1 = run_fig5_panel("chip1", True, config=reduced_config, m0_window_cycles=2048)
        chip2 = run_fig5_panel("chip2", True, config=reduced_config, m0_window_cycles=2048)
        assert chip2.cpa.peak_correlation < chip1.cpa.peak_correlation
        assert chip2.cpa.detected

    def test_full_figure_runner(self, reduced_config):
        result = run_fig5(config=reduced_config, m0_window_cycles=2048)
        assert len(result.panels) == 4
        assert result.all_active_panels_detected
        assert result.no_inactive_panel_detected
        assert "chip1" in result.to_text()

    def test_panel_lookup(self, reduced_config):
        result = run_fig5(config=reduced_config, m0_window_cycles=2048)
        panel = result.panel("chip2", watermark_active=False)
        assert panel.chip_name == "chip2"
        with pytest.raises(KeyError):
            result.panel("chip3", True)


class TestFig6ReducedCampaign:
    def test_repeatability_statistics(self, reduced_config):
        result = run_fig6_chip(
            "chip1", repetitions=12, config=reduced_config, m0_window_cycles=2048
        )
        assert result.statistics.repetitions == 12
        assert result.detection_rate == 1.0
        assert result.peak_separated
        assert result.peak_box.median > result.off_peak_box.median

    def test_invalid_repetitions_rejected(self, reduced_config):
        with pytest.raises(ValueError):
            run_fig6_chip("chip1", repetitions=0, config=reduced_config)
