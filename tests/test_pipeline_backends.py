"""Parallel-vs-serial sweep backends: equivalence, isolation, bugfixes.

The process backend must be a pure execution detail: for a mixed sweep at
fixed seeds it returns bit-identical scalars, array bytes and reports to
the serial backend (only the in-memory ``payload`` is dropped, exactly as
after ``ScenarioResult.load``).  Failures stay per-cell, order is the
submission order, and the satellite bugfixes (spec-file resolution,
``SweepResult.get`` ambiguity, sanitized artifact stems) are pinned here.
"""

import hashlib
import pathlib

import numpy as np
import pytest

from repro.core.config import MeasurementConfig
from repro.core.spec import ScenarioSpec
from repro.pipeline import (
    ExperimentRunner,
    Provenance,
    ScenarioResult,
    SpecGrid,
    SweepResult,
    grid,
)


def _mixed_specs():
    """Six cheap scenarios of four different kinds at fixed seeds."""
    quick = MeasurementConfig.quick(6_000)
    panel = dict(
        kind="fig5_panel",
        chip="chip1",
        measurement=quick,
        seed=11,
        m0_window_cycles=1_024,
    )
    return [
        ScenarioSpec(kind="fig2", name="fig2", seed=9),
        ScenarioSpec(kind="table1", name="table1", seed=0),
        ScenarioSpec(kind="table2", name="table2", seed=0),
        ScenarioSpec(kind="robustness", name="robustness", seed=0),
        ScenarioSpec(name="panel-active", watermark_active=True, **panel),
        ScenarioSpec(name="panel-inactive", watermark_active=False, **panel),
    ]


def _digest(array: np.ndarray) -> str:
    return hashlib.sha256(
        f"{array.shape}|{array.dtype}|".encode() + array.tobytes()
    ).hexdigest()


@pytest.fixture(scope="module")
def serial_sweep():
    return ExperimentRunner().run_many(_mixed_specs(), backend="serial")


@pytest.fixture(scope="module")
def process_sweep():
    return ExperimentRunner().run_many(
        _mixed_specs(), backend="process", max_workers=2
    )


class TestProcessSerialEquivalence:
    def test_submission_order_preserved(self, serial_sweep, process_sweep):
        expected = [spec.name for spec in _mixed_specs()]
        assert serial_sweep.names == expected
        assert process_sweep.names == expected

    def test_scalars_bit_identical(self, serial_sweep, process_sweep):
        for serial, parallel in zip(serial_sweep, process_sweep):
            assert serial.scalars == parallel.scalars, serial.name

    def test_reports_bit_identical(self, serial_sweep, process_sweep):
        for serial, parallel in zip(serial_sweep, process_sweep):
            assert serial.report == parallel.report, serial.name

    def test_array_digests_bit_identical(self, serial_sweep, process_sweep):
        for serial, parallel in zip(serial_sweep, process_sweep):
            assert set(serial.arrays) == set(parallel.arrays), serial.name
            for key in serial.arrays:
                assert _digest(serial.arrays[key]) == _digest(
                    parallel.arrays[key]
                ), f"{serial.name}/{key}"

    def test_spec_hashes_preserved_across_processes(
        self, serial_sweep, process_sweep
    ):
        for serial, parallel in zip(serial_sweep, process_sweep):
            assert serial.spec == parallel.spec
            assert serial.provenance.spec_hash == parallel.provenance.spec_hash

    def test_payload_dropped_like_load(self, serial_sweep, process_sweep):
        assert all(result.payload is not None for result in serial_sweep)
        assert all(result.payload is None for result in process_sweep)

    def test_every_cell_ok_and_wall_clock_elapsed(
        self, serial_sweep, process_sweep
    ):
        assert serial_sweep.ok and process_sweep.ok
        assert serial_sweep.elapsed_s > 0 and process_sweep.elapsed_s > 0


class TestFailureIsolation:
    #: Fails at execution (the chip stage), not at spec construction.
    BAD = ScenarioSpec(kind="fig5_panel", name="bad-cell")

    def _specs(self):
        return [
            ScenarioSpec(kind="fig2", name="first", seed=9),
            self.BAD,
            ScenarioSpec(kind="fig2", name="last", seed=9),
        ]

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_failed_cell_reports_instead_of_killing_sweep(self, backend):
        sweep = ExperimentRunner().run_many(
            self._specs(), backend=backend, max_workers=2
        )
        assert sweep.names == ["first", "bad-cell", "last"]
        assert [result.ok for result in sweep] == [True, False, True]
        failed = sweep.get("bad-cell")
        assert "requires a chip" in failed.error
        assert failed.report.startswith("scenario bad-cell FAILED:")
        assert failed.scalars == {} and failed.arrays == {}
        assert "(1 FAILED)" in sweep.to_text()
        assert sweep.failures == [failed] and not sweep.ok

    def test_resolution_errors_still_raise_before_execution(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            ExperimentRunner().run_many(["fig2", "no-such-scenario"])

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            ExperimentRunner().run_many(["fig2"], backend="threads")

    def test_bad_max_workers_rejected(self):
        with pytest.raises(ValueError, match="max_workers"):
            ExperimentRunner().run_many(["fig2"], backend="process", max_workers=0)

    def test_default_worker_count_respects_cpu_affinity(self):
        from repro.pipeline.backends import available_cpus, default_max_workers

        assert default_max_workers(100) <= available_cpus()
        assert default_max_workers(1) == 1
        assert default_max_workers(0) == 1


class TestResolveSpecFiles:
    def test_existing_spec_file_without_json_suffix_loads(self, tmp_path):
        path = ScenarioSpec(kind="fig2", name="odd-ext", seed=5).save(
            tmp_path / "scenario.spec"
        )
        assert ExperimentRunner().resolve(str(path)).name == "odd-ext"

    def test_pathlib_path_accepted(self, tmp_path):
        path = ScenarioSpec(kind="fig2", name="by-path", seed=5).save(
            tmp_path / "spec.json"
        )
        assert ExperimentRunner().resolve(pathlib.Path(path)).name == "by-path"

    def test_missing_json_path_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ExperimentRunner().resolve(str(tmp_path / "missing.json"))

    def test_unknown_name_still_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            ExperimentRunner().resolve("fig99")


def _result(name: str, seed: int = 0) -> ScenarioResult:
    spec = ScenarioSpec(kind="fig2", name=name, seed=seed)
    return ScenarioResult(
        spec=spec, provenance=Provenance(spec_hash=spec.spec_hash())
    )


class TestSweepResultLookup:
    def _sweep(self) -> SweepResult:
        return SweepResult(
            results=[_result("a", 1), _result("b", 2), _result("a", 3)]
        )

    def test_unique_name_resolves(self):
        assert self._sweep().get("b").spec.seed == 2

    def test_duplicate_name_raises_instead_of_first_match(self):
        with pytest.raises(KeyError, match="ambiguous"):
            self._sweep().get("a")

    def test_seed_qualified_lookup(self):
        assert self._sweep().get("a", seed=3).spec.seed == 3

    def test_index_qualified_lookup(self):
        sweep = self._sweep()
        assert sweep.get("a", index=0).spec.seed == 1
        assert sweep.get("a", index=1).spec.seed == 3
        with pytest.raises(KeyError, match="out of range"):
            sweep.get("a", index=2)

    def test_missing_name_and_seed_raise(self):
        with pytest.raises(KeyError, match="no result named"):
            self._sweep().get("c")
        with pytest.raises(KeyError, match="seed 9"):
            self._sweep().get("a", seed=9)


class TestArtifactStem:
    def test_slash_names_sanitized(self):
        assert _result("fig5/chip-1").artifact_stem == "fig5-chip-1"
        assert "/" not in _result("a/b/c").artifact_stem

    def test_grid_cell_names_keep_axis_labels(self):
        stem = _result("fig2[chip=chip1,seed=3]").artifact_stem
        assert stem == "fig2-chip=chip1,seed=3"

    def test_save_under_directory_uses_stem(self, tmp_path):
        result = _result("fig5/chip-1")
        path = result.save(tmp_path / result.artifact_stem)
        assert path == tmp_path / "fig5-chip-1.json"
        assert path.exists()


class TestSpecGrid:
    def test_cartesian_product_counts_and_names(self):
        specs = grid("fig2", chips=None, seeds=[1, 2], lengths=[5_000, 10_000])
        assert len(specs) == 4
        assert [spec.name for spec in specs] == [
            "fig2[len=5000,seed=1]",
            "fig2[len=5000,seed=2]",
            "fig2[len=10000,seed=1]",
            "fig2[len=10000,seed=2]",
        ]
        assert len({spec.name for spec in specs}) == 4

    def test_axes_apply_to_spec_fields(self):
        spec = grid(
            "fig5/chip1-active",
            chips=["chipII"],
            noise_scales=[0.5],
            lengths=[7_000],
            seeds=[42],
        )[0]
        assert spec.chip == "chip2"  # aliases canonicalise
        assert spec.name == "fig5/chip1-active[chip=chip2,noise=0.5,len=7000,seed=42]"
        assert spec.measurement.num_cycles == 7_000
        assert spec.seed == 42

    def test_noise_scale_scales_every_noise_knob(self):
        base = ScenarioSpec(kind="fig5_panel", chip="chip1")
        scaled = SpecGrid(base).build(noise_scales=[0.5])[0]
        m, s = base.measurement, scaled.measurement
        assert s.probe_noise_rms_v == pytest.approx(m.probe_noise_rms_v * 0.5)
        assert s.transient_noise_floor_w == pytest.approx(
            m.transient_noise_floor_w * 0.5
        )
        assert s.transient_noise_fraction == pytest.approx(
            m.transient_noise_fraction * 0.5
        )

    def test_no_axes_returns_base_unchanged(self):
        base = ScenarioSpec(kind="fig2", name="base", seed=7)
        assert SpecGrid(base).build() == [base]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            grid("fig2", seeds=[])

    def test_duplicate_axis_values_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            grid("fig2", seeds=[1, 2, 1])

    def test_alias_chips_collapse_to_one_cell_and_are_rejected(self):
        # "chip1" and "chipI" are the same chip: canonicalisation happens
        # before the duplicate check, so the alias pair is an error
        # instead of two identical cells with one ambiguous name.
        with pytest.raises(ValueError, match="duplicate"):
            grid("fig2", chips=["chip1", "chipI"])

    def test_registry_base_honours_options(self):
        from repro.pipeline import RunOptions

        spec = SpecGrid("fig5/chip1-active", RunOptions(quick=True)).build(
            seeds=[5]
        )[0]
        assert spec.measurement == MeasurementConfig.quick()
        assert spec.seed == 5

    def test_grid_cells_hash_distinctly(self):
        specs = grid("fig2", seeds=[1, 2, 3])
        assert len({spec.spec_hash() for spec in specs}) == 3


class TestAutoBackend:
    """``backend="auto"`` picks process only when it can plausibly pay off."""

    def test_multi_cpu_multi_cell_chooses_process(self, monkeypatch):
        from repro.pipeline import backends

        monkeypatch.setattr(backends, "available_cpus", lambda: 4)
        assert backends.choose_backend(6) == "process"

    def test_single_cpu_chooses_serial(self, monkeypatch):
        from repro.pipeline import backends

        monkeypatch.setattr(backends, "available_cpus", lambda: 1)
        assert backends.choose_backend(100) == "serial"

    def test_tiny_grid_chooses_serial(self, monkeypatch):
        from repro.pipeline import backends

        monkeypatch.setattr(backends, "available_cpus", lambda: 8)
        assert backends.choose_backend(1) == "serial"

    def test_choice_is_logged(self, monkeypatch, caplog):
        import logging

        from repro.pipeline import backends

        monkeypatch.setattr(backends, "available_cpus", lambda: 1)
        with caplog.at_level(logging.INFO, logger="repro.pipeline.backends"):
            backends.choose_backend(3)
        assert any("backend auto" in record.message for record in caplog.records)

    def test_resolve_passes_explicit_backends_through(self):
        from repro.pipeline.backends import resolve_backend

        assert resolve_backend("serial", 10) == "serial"
        assert resolve_backend("process", 10) == "process"
        assert resolve_backend("auto", 10) in ("serial", "process")

    def test_resolve_rejects_unknown_backend(self):
        from repro.pipeline.backends import resolve_backend

        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("threads", 10)

    def test_backend_choices_exposed(self):
        from repro.pipeline import BACKEND_CHOICES, BACKENDS

        assert BACKEND_CHOICES == ("auto",) + BACKENDS

    def test_run_many_defaults_to_auto(self):
        import inspect

        signature = inspect.signature(ExperimentRunner.run_many)
        assert signature.parameters["backend"].default == "auto"
