"""Content-addressed result store: keying, integrity, resumable sweeps.

The store memoizes :class:`ScenarioResult` by (spec hash, code-version
salt).  Pinned here: hits are bit-identical to computed results, failed
cells are never memoized or served, corruption (bit flips, missing or
orphaned ``.npz``, doctored documents) is detected and degrades to a
miss, entries from another commit invalidate, concurrent writers leave a
valid entry, and a partially completed sweep resumes executing only the
missing cells on both backends.
"""

import hashlib
import json
import multiprocessing

import numpy as np
import pytest

from repro.core.spec import ScenarioSpec
from repro.pipeline import ExperimentRunner, ResultStore
from repro.pipeline.backends import failed_result
from repro.pipeline.store import code_version_salt, store_key


def _spec(seed: int, name: str = "") -> ScenarioSpec:
    return ScenarioSpec(kind="fig2", name=name or f"fig2[seed={seed}]", seed=seed)


def _digest(array: np.ndarray) -> str:
    return hashlib.sha256(
        f"{array.shape}|{array.dtype}|".encode() + array.tobytes()
    ).hexdigest()


def _assert_results_identical(computed, served):
    assert served.report == computed.report
    assert served.scalars == computed.scalars
    assert set(served.arrays) == set(computed.arrays)
    for key in computed.arrays:
        assert _digest(served.arrays[key]) == _digest(computed.arrays[key]), key
    assert served.spec == computed.spec
    assert served.provenance.spec_hash == computed.provenance.spec_hash


class TestKeying:
    def test_key_combines_spec_hash_and_salt(self, tmp_path):
        store = ResultStore(tmp_path, salt="s1")
        spec = _spec(1)
        assert store.key_for(spec) == store_key(spec.spec_hash(), "s1")

    def test_different_specs_get_different_keys(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.key_for(_spec(1)) != store.key_for(_spec(2))

    def test_different_salts_get_different_keys(self, tmp_path):
        spec = _spec(1)
        a = ResultStore(tmp_path, salt="commit-a")
        b = ResultStore(tmp_path, salt="commit-b")
        assert a.key_for(spec) != b.key_for(spec)

    def test_default_salt_names_commit_and_schema_versions(self, tmp_path):
        salt = ResultStore(tmp_path).salt
        assert salt == code_version_salt()
        assert "commit=" in salt
        assert "spec-schema=v" in salt and "artifact-schema=v" in salt


class TestPutGet:
    def test_empty_store_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get(_spec(1)) is None
        assert not store.has(_spec(1)) and _spec(1) not in store
        stats = store.stats()
        assert stats.misses == 1 and stats.hits == 0 and stats.entries == 0

    def test_hit_is_bit_identical_to_computed(self, tmp_path):
        store = ResultStore(tmp_path)
        computed = ExperimentRunner().run(_spec(1))
        assert computed.arrays  # fig2 produces arrays; the npz path is exercised
        store.put(computed)
        served = store.get(_spec(1))
        _assert_results_identical(computed, served)
        # payload dropped exactly like ScenarioResult.load
        assert computed.payload is not None and served.payload is None
        stats = store.stats()
        assert stats.hits == 1 and stats.writes == 1 and stats.entries == 1

    def test_entries_fan_out_into_two_level_shards(self, tmp_path):
        store = ResultStore(tmp_path)
        result = ExperimentRunner().run(_spec(1))
        path = store.put(result)
        key = store.key_for(_spec(1))
        assert path == tmp_path / key[:2] / f"{key}.json"
        assert (tmp_path / key[:2] / f"{key}.npz").is_file()

    def test_array_less_result_stores_without_npz(self, tmp_path):
        from repro.pipeline import Provenance, ScenarioResult

        store = ResultStore(tmp_path)
        spec = _spec(1, name="no-arrays")
        computed = ScenarioResult(
            spec=spec,
            provenance=Provenance(spec_hash=spec.spec_hash()),
            scalars={"answer": 42},
            report="scalar-only result",
        )
        assert not computed.arrays
        store.put(computed)
        key = store.key_for(computed.spec)
        assert not (tmp_path / key[:2] / f"{key}.npz").exists()
        served = store.get(computed.spec)
        assert served is not None
        _assert_results_identical(computed, served)
        assert store.verify() == []

    def test_put_refuses_failed_result(self, tmp_path):
        store = ResultStore(tmp_path)
        failed = failed_result(_spec(1, name="bad"), "Traceback: boom")
        with pytest.raises(ValueError, match="failed"):
            store.put(failed)
        assert store.stats().entries == 0

    def test_doctored_failed_entry_is_never_served(self, tmp_path):
        # put() refuses failures, but a store is plain files: an entry
        # edited to record error text must still miss on read.
        store = ResultStore(tmp_path)
        path = store.put(ExperimentRunner().run(_spec(1)))
        document = json.loads(path.read_text())
        document["artifact"]["error"] = "boom"
        path.write_text(json.dumps(document))
        assert store.get(_spec(1)) is None
        assert store.stats().corrupt == 1
        assert any("failed cell" in problem for problem in store.verify())


class TestCorruptionDetection:
    @pytest.fixture()
    def stored(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(ExperimentRunner().run(_spec(1)))
        return store

    def _npz_path(self, store):
        return store._npz_path(store.key_for(_spec(1)))

    def test_bit_flipped_npz_misses_and_is_flagged(self, stored):
        npz_path = self._npz_path(stored)
        data = bytearray(npz_path.read_bytes())
        data[-1] ^= 0xFF
        npz_path.write_bytes(bytes(data))
        assert stored.get(_spec(1)) is None
        assert stored.stats().corrupt == 1
        assert any("digest mismatch" in p for p in stored.verify())

    def test_missing_npz_misses_and_is_flagged(self, stored):
        self._npz_path(stored).unlink()
        assert stored.get(_spec(1)) is None
        assert any("missing" in p for p in stored.verify())

    def test_unreadable_document_misses(self, stored):
        json_path = stored._json_path(stored.key_for(_spec(1)))
        json_path.write_text("{not json")
        assert stored.get(_spec(1)) is None
        assert stored.verify()

    def test_orphaned_npz_is_flagged_and_collected(self, stored):
        orphan = stored.root / "ab" / ("a" * 64 + ".npz")
        orphan.parent.mkdir(exist_ok=True)
        orphan.write_bytes(b"zombie")
        assert any("orphaned" in p for p in stored.verify())
        removed, freed = stored.gc()
        assert removed == 1 and freed == len(b"zombie")
        assert not orphan.exists()
        assert stored.verify() == []

    def test_gc_removes_corrupt_entry(self, stored):
        npz_path = self._npz_path(stored)
        data = bytearray(npz_path.read_bytes())
        data[-1] ^= 0xFF
        npz_path.write_bytes(bytes(data))
        removed, _ = stored.gc()
        assert removed == 2  # entry document + its corrupt npz
        assert stored.stats().entries == 0 and stored.verify() == []


class TestCodeVersionInvalidation:
    def test_entries_from_another_commit_miss(self, tmp_path):
        old = ResultStore(tmp_path, salt=code_version_salt(commit="deadbeef"))
        old.put(ExperimentRunner().run(_spec(1)))
        current = ResultStore(tmp_path)
        assert current.get(_spec(1)) is None
        stats = current.stats()
        assert stats.entries == 0 and stats.stale == 1

    def test_gc_reclaims_stale_commit_entries_and_keeps_current(self, tmp_path):
        runner = ExperimentRunner()
        old = ResultStore(tmp_path, salt=code_version_salt(commit="deadbeef"))
        old.put(runner.run(_spec(1)))
        current = ResultStore(tmp_path)
        current.put(runner.run(_spec(2)))
        removed, freed = current.gc()
        assert removed == 2 and freed > 0  # old json + old npz
        stats = current.stats()
        assert stats.entries == 1 and stats.stale == 0
        assert current.get(_spec(2)) is not None
        assert current.get(_spec(1)) is None


class TestRunnerIntegration:
    def test_run_writes_back_and_serves_hits(self, tmp_path):
        runner = ExperimentRunner()
        store = ResultStore(tmp_path)
        computed = runner.run(_spec(3), store=store)
        served = runner.run(_spec(3), store=store)
        _assert_results_identical(computed, served)
        assert served.payload is None
        stats = store.stats()
        assert stats.writes == 1 and stats.hits == 1

    def test_run_accepts_directory_path_as_store(self, tmp_path):
        runner = ExperimentRunner()
        runner.run(_spec(3), store=tmp_path / "store")
        assert ResultStore(tmp_path / "store").stats().entries == 1

    def test_resume_false_recomputes_but_writes_back(self, tmp_path):
        runner = ExperimentRunner()
        store = ResultStore(tmp_path)
        runner.run(_spec(3), store=store)
        recomputed = runner.run(_spec(3), store=store, resume=False)
        assert recomputed.payload is not None  # executed, not served
        stats = store.stats()
        assert stats.hits == 0 and stats.writes == 2

    def test_failed_scenario_is_not_memoized_by_run(self, tmp_path):
        runner = ExperimentRunner()
        store = ResultStore(tmp_path)
        bad = ScenarioSpec(kind="fig5_panel", name="bad-cell")  # no chip
        sweep = runner.run_many([bad], backend="serial", store=store)
        assert not sweep.ok
        assert store.stats().entries == 0


@pytest.mark.parametrize("backend", ["serial", "process"])
class TestResumableSweeps:
    def _grid(self):
        return [_spec(seed) for seed in (1, 2, 3, 4)]

    def test_interrupted_sweep_resumes_missing_cells_only(
        self, tmp_path, backend
    ):
        runner = ExperimentRunner()
        uninterrupted = runner.run_many(self._grid(), backend=backend)

        # "Interrupt" after 2 of 4 cells: only the first half reached the
        # store before the sweep died.
        store = ResultStore(tmp_path)
        runner.run_many(self._grid()[:2], backend=backend, store=store)
        assert store.stats().entries == 2

        resumed = runner.run_many(self._grid(), backend=backend, store=store)
        stats = store.stats()
        assert stats.hits == 2  # first half served from disk
        assert stats.writes == 4  # second half executed and written back
        assert resumed.names == uninterrupted.names
        for computed, cell in zip(uninterrupted, resumed):
            _assert_results_identical(computed, cell)

        # A full re-run is now all hits and still bit-identical.
        repeat = runner.run_many(self._grid(), backend=backend, store=store)
        assert store.stats().hits == stats.hits + 4
        for computed, cell in zip(uninterrupted, repeat):
            _assert_results_identical(computed, cell)

    def test_failed_cells_reexecute_on_resume(self, tmp_path, backend):
        runner = ExperimentRunner()
        store = ResultStore(tmp_path)
        specs = [
            _spec(1, name="first"),
            ScenarioSpec(kind="fig5_panel", name="bad-cell"),  # no chip
            _spec(2, name="last"),
        ]
        first = runner.run_many(specs, backend=backend, store=store)
        assert [cell.ok for cell in first] == [True, False, True]
        assert store.stats().entries == 2  # the failure was not memoized

        second = runner.run_many(specs, backend=backend, store=store)
        stats = store.stats()
        assert stats.hits == 2  # both successes served
        assert [cell.ok for cell in second] == [True, False, True]
        assert "requires a chip" in second.get("bad-cell").error
        assert "(1 FAILED)" in second.to_text()


def _concurrent_put(args):
    """Worker body: compute the shared cell and write it to the store."""
    root, seed = args
    runner = ExperimentRunner()
    result = runner.run(_spec(seed, name="concurrent"), store=root, resume=False)
    return result.ok


class TestConcurrentWriters:
    def test_two_processes_storing_one_cell_leave_a_valid_entry(self, tmp_path):
        root = tmp_path / "store"
        context = multiprocessing.get_context("fork")
        with context.Pool(2) as pool:
            outcomes = pool.map(_concurrent_put, [(root, 7), (root, 7)])
        assert outcomes == [True, True]
        store = ResultStore(root)
        assert store.stats().entries == 1
        assert store.verify() == []
        served = store.get(_spec(7, name="concurrent"))
        computed = ExperimentRunner().run(_spec(7, name="concurrent"))
        _assert_results_identical(computed, served)
