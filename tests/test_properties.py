"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.lfsr import LFSR, CircularShiftRegister, max_length_period
from repro.core.load_circuit import registers_for_load_power
from repro.analysis.overhead import area_overhead_reduction
from repro.detection.cpa import pearson_correlation, rotation_correlations
from repro.power.models import scale_energy_with_voltage
from repro.rtl.activity import ActivityRecord, ActivityTrace
from repro.rtl.clock_tree import ClockTree
from repro.rtl.components import Register
from repro.rtl.signals import hamming_distance


# ---------------------------------------------------------------------------
# Sequence generators
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(width=st.integers(min_value=2, max_value=12), seed=st.integers(min_value=1, max_value=2**12 - 1))
def test_lfsr_period_divides_walk_back_to_seed(width, seed):
    """Any non-zero seed returns to itself after exactly one maximum-length period."""
    seed &= (1 << width) - 1
    if seed == 0:
        seed = 1
    lfsr = LFSR(width=width, seed=seed)
    for _ in range(max_length_period(width)):
        lfsr.step()
    assert lfsr.state == seed


@settings(max_examples=25, deadline=None)
@given(width=st.integers(min_value=2, max_value=10), seed=st.integers(min_value=1, max_value=1023))
def test_lfsr_never_reaches_zero_state(width, seed):
    seed &= (1 << width) - 1
    if seed == 0:
        seed = 1
    lfsr = LFSR(width=width, seed=seed)
    for _ in range(min(300, max_length_period(width))):
        lfsr.step()
        assert lfsr.state != 0


@settings(max_examples=20, deadline=None)
@given(
    width=st.integers(min_value=2, max_value=16),
    pattern=st.integers(min_value=0, max_value=2**16 - 1),
)
def test_circular_shift_register_preserves_bit_count(width, pattern):
    csr = CircularShiftRegister(pattern=pattern, width=width)
    initial_ones = bin(csr.state).count("1")
    for _ in range(width):
        csr.step()
        assert bin(csr.state).count("1") == initial_ones
    assert csr.state == csr.pattern


# ---------------------------------------------------------------------------
# Activity and power invariants
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    width=st.integers(min_value=1, max_value=32),
    old=st.integers(min_value=0, max_value=2**32 - 1),
    new=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_register_data_toggles_bounded_by_width(width, old, new):
    register = Register("r", width=width, reset_value=old)
    activity = register.step(clock_enabled=True, next_value=new)
    assert 0 <= activity.data_toggles <= width
    assert activity.clock_toggles == 2 * width


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=0, max_value=2**32 - 1))
def test_hamming_distance_symmetry_and_identity(a, b):
    assert hamming_distance(a, b) == hamming_distance(b, a)
    assert hamming_distance(a, a) == 0


@settings(max_examples=30, deadline=None)
@given(
    records=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=100),
            st.integers(min_value=0, max_value=100),
            st.integers(min_value=0, max_value=100),
        ),
        min_size=1,
        max_size=40,
    ),
    reps=st.integers(min_value=1, max_value=4),
)
def test_activity_trace_tile_preserves_per_cycle_values(records, reps):
    trace = ActivityTrace.from_records("t", [ActivityRecord(*r) for r in records])
    tiled = trace.tile(len(records) * reps)
    for i in range(len(tiled)):
        assert tiled[i] == trace[i % len(trace)]


@settings(max_examples=25, deadline=None)
@given(num_sinks=st.integers(min_value=1, max_value=3000), fanout=st.integers(min_value=2, max_value=32))
def test_clock_tree_toggles_monotonic_in_active_sinks(num_sinks, fanout):
    tree = ClockTree("t", num_sinks=num_sinks, max_fanout=fanout)
    previous = 0
    for active in sorted({0, 1, num_sinks // 2, num_sinks}):
        toggles = tree.toggles_per_cycle(active)
        assert toggles >= previous
        previous = toggles
    assert tree.toggles_per_cycle(num_sinks) >= 2 * num_sinks


@settings(max_examples=25, deadline=None)
@given(
    energy=st.floats(min_value=1e-18, max_value=1e-9, allow_nan=False),
    voltage=st.floats(min_value=0.5, max_value=1.3, allow_nan=False),
)
def test_voltage_scaling_is_quadratic_and_monotonic(energy, voltage):
    scaled = scale_energy_with_voltage(energy, voltage, 1.2)
    assert scaled == pytest.approx(energy * (voltage / 1.2) ** 2)
    assert (scaled <= energy) == (voltage <= 1.2)


# ---------------------------------------------------------------------------
# Sizing / overhead arithmetic
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(load_power_mw=st.floats(min_value=0.01, max_value=50.0, allow_nan=False))
def test_load_register_sizing_monotonic_and_consistent(load_power_mw):
    registers = registers_for_load_power(load_power_mw * 1e-3)
    assert registers >= 0
    more = registers_for_load_power(load_power_mw * 2e-3)
    assert more >= registers
    reduction = area_overhead_reduction(registers)
    assert 0.0 <= reduction < 1.0


@settings(max_examples=40, deadline=None)
@given(registers=st.integers(min_value=0, max_value=100_000))
def test_area_overhead_reduction_bounded(registers):
    reduction = area_overhead_reduction(registers)
    assert 0.0 <= reduction < 1.0
    # More load registers -> larger reduction from removing them.
    assert area_overhead_reduction(registers + 1) >= reduction


# ---------------------------------------------------------------------------
# CPA invariants
# ---------------------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    scale=st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
    offset=st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_pearson_correlation_invariant_to_affine_transform(scale, offset, seed):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=500)
    y = rng.normal(size=500)
    base = pearson_correlation(x, y)
    transformed = pearson_correlation(x, scale * y + offset)
    assert transformed == pytest.approx(base, abs=1e-9)


@settings(max_examples=10, deadline=None)
@given(
    width=st.integers(min_value=4, max_value=7),
    rotation=st.integers(min_value=0, max_value=200),
    seed=st.integers(min_value=0, max_value=100),
)
def test_rotation_correlation_peak_tracks_injected_rotation(width, rotation, seed):
    rng = np.random.default_rng(seed)
    sequence = LFSR(width=width, seed=1).sequence()
    period = len(sequence)
    rotation %= period
    num_cycles = period * 30
    tiled = np.tile(sequence, 31)
    signal = tiled[rotation : rotation + num_cycles].astype(float)
    measured = signal + rng.normal(0, 0.3, num_cycles)
    correlations = rotation_correlations(sequence, measured)
    assert int(np.argmax(correlations)) == rotation
    assert np.all(np.abs(correlations) <= 1.0 + 1e-9)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_rotation_correlation_fft_equals_naive(seed):
    rng = np.random.default_rng(seed)
    sequence = (rng.random(31) < 0.5).astype(float)
    if sequence.std() == 0:
        sequence[0] = 1.0 - sequence[0]
    measured = rng.normal(size=701)
    assert np.allclose(
        rotation_correlations(sequence, measured, method="fft"),
        rotation_correlations(sequence, measured, method="naive"),
        atol=1e-10,
    )
