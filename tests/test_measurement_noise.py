"""Unit tests for repro.measurement.noise."""

import numpy as np
import pytest

from repro.measurement.noise import (
    gaussian_noise,
    gaussian_noise_into,
    quantization_noise_rms,
    transient_residual_sigma,
)


class TestGaussianNoise:
    def test_statistics(self):
        rng = np.random.default_rng(0)
        noise = gaussian_noise(rng, rms=2.0, size=200_000)
        assert noise.mean() == pytest.approx(0.0, abs=0.02)
        assert noise.std() == pytest.approx(2.0, rel=0.02)

    def test_zero_rms_returns_zeros(self):
        rng = np.random.default_rng(0)
        assert np.all(gaussian_noise(rng, 0.0, 10) == 0)

    def test_invalid_arguments(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            gaussian_noise(rng, -1.0, 10)
        with pytest.raises(ValueError):
            gaussian_noise(rng, 1.0, -1)


class TestGaussianNoiseInto:
    def test_bit_identical_to_allocating_variant(self):
        expected = gaussian_noise(np.random.default_rng(42), 1.7e-3, 5000)
        out = np.empty(5000)
        result = gaussian_noise_into(np.random.default_rng(42), 1.7e-3, out)
        assert result is out
        assert np.array_equal(out, expected)

    def test_row_of_matrix_filled_in_place(self):
        matrix = np.full((3, 1000), np.nan)
        gaussian_noise_into(np.random.default_rng(1), 2.0, matrix[1])
        assert np.all(np.isnan(matrix[0]))
        assert np.all(np.isfinite(matrix[1]))
        assert np.array_equal(matrix[1], gaussian_noise(np.random.default_rng(1), 2.0, 1000))

    def test_zero_rms_zeroes_without_consuming_draws(self):
        rng = np.random.default_rng(3)
        out = np.ones(10)
        gaussian_noise_into(rng, 0.0, out)
        assert np.all(out == 0)
        # The generator state is untouched, exactly like gaussian_noise.
        assert np.array_equal(
            rng.standard_normal(4), np.random.default_rng(3).standard_normal(4)
        )

    def test_negative_rms_rejected(self):
        with pytest.raises(ValueError):
            gaussian_noise_into(np.random.default_rng(0), -1.0, np.empty(4))


class TestQuantizationNoise:
    def test_lsb_over_sqrt12(self):
        assert quantization_noise_rms(1.0, 8) == pytest.approx((1.0 / 256) / np.sqrt(12))

    def test_more_bits_less_noise(self):
        assert quantization_noise_rms(1.0, 12) < quantization_noise_rms(1.0, 8)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            quantization_noise_rms(0.0, 8)
        with pytest.raises(ValueError):
            quantization_noise_rms(1.0, 0)


class TestTransientResidual:
    def test_floor_plus_proportional(self):
        assert transient_residual_sigma(10e-3, floor_w=0.04, fraction=0.8) == pytest.approx(0.048)

    def test_zero_power_gives_floor(self):
        assert transient_residual_sigma(0.0, floor_w=0.04, fraction=0.8) == pytest.approx(0.04)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            transient_residual_sigma(-1.0, 0.04, 0.8)
        with pytest.raises(ValueError):
            transient_residual_sigma(1.0, -0.04, 0.8)
