"""Unit tests for repro.soc.structure."""

import pytest

from repro.rtl.components import ClockGate
from repro.soc.structure import (
    DEFAULT_SOC_BLOCKS,
    IPBlockSpec,
    build_ip_block,
    build_soc_structure,
    clock_gate_paths,
)


class TestIPBlockSpec:
    def test_register_count(self):
        spec = IPBlockSpec(name="x", num_words=4, word_width=16)
        assert spec.register_count == 64

    def test_validation(self):
        with pytest.raises(ValueError):
            IPBlockSpec(name="x", num_words=0)


class TestBuildIPBlock:
    def test_contains_clock_gates_and_registers(self):
        block = build_ip_block(IPBlockSpec(name="blk", num_words=8, word_width=8))
        gates = [c for c in block.components.values() if isinstance(c, ClockGate)]
        assert len(gates) == 2  # 8 words, 4 words per gate
        assert block.register_count == 64

    def test_flattenable(self):
        block = build_ip_block(IPBlockSpec(name="blk", num_words=4, word_width=8))
        netlist = block.flatten()
        assert len(netlist) == len(block.components)
        # Every register is driven by a clock gate.
        for name in netlist.component_names():
            if netlist.component(name).cell_type == "dff":
                assert any("icg" in p for p in netlist.fan_in(name))


class TestBuildSoCStructure:
    def test_default_blocks_present(self):
        soc = build_soc_structure()
        assert set(soc.children) == {spec.name for spec in DEFAULT_SOC_BLOCKS}

    def test_register_count_reasonable(self):
        soc = build_soc_structure()
        assert soc.register_count > 1000

    def test_flatten_is_connected_design(self):
        netlist = build_soc_structure().flatten()
        clusters = netlist.weakly_connected_clusters()
        assert len(clusters) == 1  # the functional SoC is one connected design

    def test_empty_block_list_rejected(self):
        with pytest.raises(ValueError):
            build_soc_structure(blocks=[])

    def test_custom_blocks(self):
        soc = build_soc_structure(blocks=[IPBlockSpec(name="only", num_words=2, word_width=8)])
        assert list(soc.children) == ["only"]


class TestClockGatePaths:
    def test_paths_resolve_to_clock_gates(self):
        soc = build_soc_structure()
        paths = clock_gate_paths(soc)
        assert len(paths) > 5
        for path in paths:
            assert isinstance(soc.find(path), ClockGate)
