"""Unit tests for repro.core.clock_modulation."""

import pytest

from repro.core.clock_modulation import ClockModulatedBank, ClockModulatedIPBlock


class TestClockModulatedBank:
    def test_paper_geometry_defaults(self):
        bank = ClockModulatedBank()
        assert bank.register_count == 1024
        assert bank.num_words == 32
        assert bank.switching_registers == 0

    def test_cell_inventory(self):
        bank = ClockModulatedBank()
        inventory = bank.cell_inventory()
        assert inventory["dff"] == 1024
        assert inventory["icg"] == 32
        assert inventory["clk_buf"] >= 1

    def test_wmark_high_produces_clock_activity(self):
        bank = ClockModulatedBank(num_words=4, word_width=8)
        activity = bank.step(wmark=1)
        assert activity.clock_toggles >= 2 * 32

    def test_wmark_low_still_clocks_the_gate_tree_only(self):
        bank = ClockModulatedBank(num_words=4, word_width=8)
        active = bank.step(wmark=1)
        idle = bank.step(wmark=0)
        # The tree above the ICGs keeps running, but the gated registers stop,
        # so the modulated (detectable) component is the difference.
        assert idle.clock_toggles < active.clock_toggles
        assert idle.data_toggles == 0

    def test_clk_ctrl_gates_the_bank(self):
        bank = ClockModulatedBank(num_words=2, word_width=8)
        gated = bank.step(wmark=1, clk_ctrl=0)
        assert gated.data_toggles == 0
        assert gated.clock_toggles < bank.step(wmark=1, clk_ctrl=1).clock_toggles

    def test_switching_registers_add_data_activity(self):
        no_switching = ClockModulatedBank(num_words=4, word_width=8, switching_registers=0)
        switching = ClockModulatedBank(num_words=4, word_width=8, switching_registers=32)
        assert switching.step(wmark=1).data_toggles == 32
        assert no_switching.step(wmark=1).data_toggles == 0

    def test_modulation_amplitude_near_paper_value(self, nominal_estimator):
        bank = ClockModulatedBank()  # 1,024 registers, no data switching
        active = bank.step(wmark=1)
        idle = bank.step(wmark=0)
        amplitude = nominal_estimator.cycle_power("dff", active) - nominal_estimator.cycle_power(
            "dff", idle
        )
        # The paper's placed-and-routed figure is 1.51 mW; the activity model
        # adds the ICG cells themselves, so allow a modest margin.
        assert 1.4e-3 < amplitude < 1.75e-3

    def test_reset(self):
        bank = ClockModulatedBank(num_words=2, word_width=8, switching_registers=16)
        bank.step(wmark=1)
        bank.reset()
        assert all(word.value == 0 for word in bank.bank.words)

    def test_expected_active_activity_close_to_step(self):
        bank = ClockModulatedBank(num_words=4, word_width=8)
        expected = bank.expected_active_activity()
        observed = bank.step(wmark=1)
        assert abs(expected.clock_toggles - observed.clock_toggles) <= 8


class TestClockModulatedIPBlock:
    def test_adds_no_registers(self):
        block = ClockModulatedIPBlock(modulated_registers=2048)
        assert block.register_count == 0

    def test_idle_when_wmark_low(self):
        block = ClockModulatedIPBlock(modulated_registers=256)
        assert block.step(wmark=0).total_toggles == 0

    def test_clock_activity_scales_with_block_size(self):
        small = ClockModulatedIPBlock(modulated_registers=128)
        large = ClockModulatedIPBlock(modulated_registers=1024)
        assert large.step(wmark=1).clock_toggles > small.step(wmark=1).clock_toggles

    def test_data_activity_factor(self):
        block = ClockModulatedIPBlock(modulated_registers=100, data_activity_factor=0.25)
        assert block.step(wmark=1).data_toggles == 25

    def test_clk_ctrl_must_also_be_high(self):
        block = ClockModulatedIPBlock(modulated_registers=64)
        assert block.step(wmark=1, clk_ctrl=0).total_toggles == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ClockModulatedIPBlock(modulated_registers=0)
        with pytest.raises(ValueError):
            ClockModulatedIPBlock(modulated_registers=8, data_activity_factor=2.0)

    def test_inventory_lists_reused_cells(self):
        block = ClockModulatedIPBlock(modulated_registers=512)
        inventory = block.cell_inventory()
        assert inventory["dff"] == 512
        assert inventory["icg"] >= 1
