"""Unit tests for repro.detection.campaign."""

import pytest

from repro.core.lfsr import LFSR
from repro.detection.campaign import (
    DetectionOperatingPoint,
    DetectionProbabilityCurve,
    run_detection_probability_campaign,
)


@pytest.fixture(scope="module")
def sequence():
    return LFSR(width=8, seed=0x2D).sequence()


class TestDetectionOperatingPoint:
    def test_probability(self):
        point = DetectionOperatingPoint(
            num_cycles=1000, trials=20, detections=15, mean_peak_correlation=0.1, mean_z_score=5.0
        )
        assert point.detection_probability == pytest.approx(0.75)

    def test_zero_trials(self):
        point = DetectionOperatingPoint(0, 0, 0, 0.0, 0.0)
        assert point.detection_probability == 0.0


class TestCampaign:
    @pytest.fixture(scope="class")
    def curve(self, sequence):
        return run_detection_probability_campaign(
            sequence,
            watermark_amplitude_w=1.5e-3,
            noise_sigma_w=20e-3,
            cycle_counts=(2_000, 10_000, 40_000),
            trials_per_point=15,
            seed=1,
        )

    def test_curve_has_all_points(self, curve):
        assert [p.num_cycles for p in curve.points] == [2_000, 10_000, 40_000]
        assert all(p.trials == 15 for p in curve.points)

    def test_probability_increases_with_cycles(self, curve):
        probabilities = [p.detection_probability for p in curve.points]
        assert probabilities[-1] > probabilities[0]
        assert probabilities[-1] == 1.0
        assert curve.is_monotonic()

    def test_analytical_estimate_consistent_with_empirical(self, curve):
        empirical = curve.empirical_required_cycles(target_probability=0.95)
        assert empirical is not None
        # The analytical estimate must land within the evaluated range and be
        # of the same order as the empirical crossover.
        assert curve.analytical_required_cycles < 200_000
        assert empirical <= 40_000

    def test_expected_rho(self, curve):
        assert 0.02 < curve.expected_rho < 0.06

    def test_text_rendering(self, curve):
        text = curve.to_text()
        assert "P(detect)" in text
        assert "analytical" in text

    def test_empirical_required_cycles_none_when_unreachable(self, sequence):
        curve = run_detection_probability_campaign(
            sequence,
            watermark_amplitude_w=0.05e-3,
            noise_sigma_w=50e-3,
            cycle_counts=(1_000,),
            trials_per_point=5,
            seed=2,
        )
        assert curve.empirical_required_cycles() is None

    def test_invalid_target_probability(self, curve):
        with pytest.raises(ValueError):
            curve.empirical_required_cycles(target_probability=0.0)


class TestValidation:
    def test_short_sequence_rejected(self):
        with pytest.raises(ValueError):
            run_detection_probability_campaign([1, 0], 1e-3, 1e-3, (100,))

    def test_negative_amplitude_rejected(self, sequence):
        with pytest.raises(ValueError):
            run_detection_probability_campaign(sequence, -1e-3, 1e-3, (1000,))

    def test_empty_cycle_counts_rejected(self, sequence):
        with pytest.raises(ValueError):
            run_detection_probability_campaign(sequence, 1e-3, 1e-3, ())

    def test_acquisition_shorter_than_period_rejected(self, sequence):
        with pytest.raises(ValueError):
            run_detection_probability_campaign(sequence, 1e-3, 1e-3, (10,))

    def test_invalid_trials_rejected(self, sequence):
        with pytest.raises(ValueError):
            run_detection_probability_campaign(sequence, 1e-3, 1e-3, (1000,), trials_per_point=0)
