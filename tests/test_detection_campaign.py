"""Unit tests for repro.detection.campaign."""

import pytest

from repro.core.lfsr import LFSR
from repro.detection.campaign import (
    DetectionOperatingPoint,
    DetectionProbabilityCurve,
    run_detection_probability_campaign,
)

# Golden values for one small operating point (7-bit LFSR, 1.5 mW watermark,
# 15 mW noise, 12 trials, seed 42).  These are the values the *pre-batching*
# per-trial implementation produced for this seed; the batched campaign
# preserves its draw order, so the curve must stay identical before and
# after the refactor.  Any change to the campaign's random stream or to the
# detection maths shows up here as a hard failure.
_GOLDEN_SEED = 42
_GOLDEN_POINTS = [
    # (num_cycles, detections, mean_peak_correlation, mean_z_score)
    (1_000, 0, 0.019332047008401163, 2.9808499351016224),
    (4_000, 4, 0.05178425731533317, 3.808953147305265),
    (16_000, 12, 0.04923244210742477, 6.217843461575629),
]


def _golden_curve():
    sequence = LFSR(width=7, seed=0x41).sequence()
    return run_detection_probability_campaign(
        sequence,
        watermark_amplitude_w=1.5e-3,
        noise_sigma_w=15e-3,
        cycle_counts=tuple(point[0] for point in _GOLDEN_POINTS),
        trials_per_point=12,
        seed=_GOLDEN_SEED,
    )


@pytest.fixture(scope="module")
def sequence():
    return LFSR(width=8, seed=0x2D).sequence()


class TestDetectionOperatingPoint:
    def test_probability(self):
        point = DetectionOperatingPoint(
            num_cycles=1000, trials=20, detections=15, mean_peak_correlation=0.1, mean_z_score=5.0
        )
        assert point.detection_probability == pytest.approx(0.75)

    def test_zero_trials(self):
        point = DetectionOperatingPoint(0, 0, 0, 0.0, 0.0)
        assert point.detection_probability == 0.0


class TestCampaign:
    @pytest.fixture(scope="class")
    def curve(self, sequence):
        return run_detection_probability_campaign(
            sequence,
            watermark_amplitude_w=1.5e-3,
            noise_sigma_w=20e-3,
            cycle_counts=(2_000, 10_000, 40_000),
            trials_per_point=15,
            seed=1,
        )

    def test_curve_has_all_points(self, curve):
        assert [p.num_cycles for p in curve.points] == [2_000, 10_000, 40_000]
        assert all(p.trials == 15 for p in curve.points)

    def test_probability_increases_with_cycles(self, curve):
        probabilities = [p.detection_probability for p in curve.points]
        assert probabilities[-1] > probabilities[0]
        assert probabilities[-1] == 1.0
        assert curve.is_monotonic()

    def test_analytical_estimate_consistent_with_empirical(self, curve):
        empirical = curve.empirical_required_cycles(target_probability=0.95)
        assert empirical is not None
        # The analytical estimate must land within the evaluated range and be
        # of the same order as the empirical crossover.
        assert curve.analytical_required_cycles < 200_000
        assert empirical <= 40_000

    def test_expected_rho(self, curve):
        assert 0.02 < curve.expected_rho < 0.06

    def test_text_rendering(self, curve):
        text = curve.to_text()
        assert "P(detect)" in text
        assert "analytical" in text

    def test_empirical_required_cycles_none_when_unreachable(self, sequence):
        curve = run_detection_probability_campaign(
            sequence,
            watermark_amplitude_w=0.05e-3,
            noise_sigma_w=50e-3,
            cycle_counts=(1_000,),
            trials_per_point=5,
            seed=2,
        )
        assert curve.empirical_required_cycles() is None

    def test_invalid_target_probability(self, curve):
        with pytest.raises(ValueError):
            curve.empirical_required_cycles(target_probability=0.0)


class TestSeedDeterminism:
    """Same seed -> identical curve, pinned against golden values."""

    def test_campaign_reproduces_golden_points(self):
        curve = _golden_curve()
        assert len(curve.points) == len(_GOLDEN_POINTS)
        for point, (cycles, detections, mean_peak, mean_z) in zip(
            curve.points, _GOLDEN_POINTS
        ):
            assert point.num_cycles == cycles
            assert point.trials == 12
            # Detection counts are exact; the float means are pinned at a
            # tolerance loose enough to survive BLAS/FFT kernel differences
            # across numpy versions and CPUs.
            assert point.detections == detections
            assert point.mean_peak_correlation == pytest.approx(mean_peak, rel=1e-9, abs=1e-12)
            assert point.mean_z_score == pytest.approx(mean_z, rel=1e-9)

    def test_two_runs_are_identical(self):
        first = _golden_curve()
        second = _golden_curve()
        for a, b in zip(first.points, second.points):
            assert a == b

    def test_chunking_does_not_change_detection_counts(self):
        sequence = LFSR(width=7, seed=0x41).sequence()
        chunked = run_detection_probability_campaign(
            sequence,
            watermark_amplitude_w=1.5e-3,
            noise_sigma_w=15e-3,
            cycle_counts=tuple(point[0] for point in _GOLDEN_POINTS),
            trials_per_point=12,
            seed=_GOLDEN_SEED,
            max_trials_per_chunk=5,
            chunk_cycles=1_024,
        )
        for point, (cycles, detections, _, _) in zip(chunked.points, _GOLDEN_POINTS):
            assert point.num_cycles == cycles
            assert point.detections == detections


class TestMonotonicityTolerance:
    def _curve_with_probabilities(self, probabilities):
        curve = DetectionProbabilityCurve(
            watermark_amplitude_w=1e-3, noise_sigma_w=10e-3, sequence_period=127
        )
        for index, probability in enumerate(probabilities):
            curve.points.append(
                DetectionOperatingPoint(
                    num_cycles=1_000 * (index + 1),
                    trials=10,
                    detections=int(round(probability * 10)),
                    mean_peak_correlation=0.0,
                    mean_z_score=0.0,
                )
            )
        return curve

    def test_default_tolerance_absorbs_small_wiggle(self):
        curve = self._curve_with_probabilities([0.5, 0.4, 0.9])
        assert curve.is_monotonic()

    def test_strict_tolerance_flags_any_dip(self):
        curve = self._curve_with_probabilities([0.5, 0.4, 0.9])
        assert not curve.is_monotonic(wiggle_tolerance=0.0)

    def test_custom_tolerance_boundary(self):
        curve = self._curve_with_probabilities([0.8, 0.5, 1.0])
        assert not curve.is_monotonic(wiggle_tolerance=0.2)
        assert curve.is_monotonic(wiggle_tolerance=0.4)

    def test_negative_tolerance_rejected(self):
        curve = self._curve_with_probabilities([0.5, 0.6])
        with pytest.raises(ValueError):
            curve.is_monotonic(wiggle_tolerance=-0.1)


class TestValidation:
    def test_short_sequence_rejected(self):
        with pytest.raises(ValueError):
            run_detection_probability_campaign([1, 0], 1e-3, 1e-3, (100,))

    def test_negative_amplitude_rejected(self, sequence):
        with pytest.raises(ValueError):
            run_detection_probability_campaign(sequence, -1e-3, 1e-3, (1000,))

    def test_empty_cycle_counts_rejected(self, sequence):
        with pytest.raises(ValueError):
            run_detection_probability_campaign(sequence, 1e-3, 1e-3, ())

    def test_acquisition_shorter_than_period_rejected(self, sequence):
        with pytest.raises(ValueError):
            run_detection_probability_campaign(sequence, 1e-3, 1e-3, (10,))

    def test_invalid_trials_rejected(self, sequence):
        with pytest.raises(ValueError):
            run_detection_probability_campaign(sequence, 1e-3, 1e-3, (1000,), trials_per_point=0)
