"""Unit tests for repro.rtl.signals."""

import pytest

from repro.rtl.signals import (
    Clock,
    LogicLevel,
    Signal,
    SignalBundle,
    hamming_distance,
    hamming_weight,
)


class TestLogicLevel:
    def test_from_bool(self):
        assert LogicLevel.from_bool(True) is LogicLevel.HIGH
        assert LogicLevel.from_bool(False) is LogicLevel.LOW

    def test_inversion(self):
        assert ~LogicLevel.HIGH is LogicLevel.LOW
        assert ~LogicLevel.LOW is LogicLevel.HIGH


class TestSignal:
    def test_initial_value_is_normalised(self):
        assert Signal("a", value=5).value == 1
        assert Signal("a", value=0).value == 0

    def test_set_returns_toggle_status(self):
        signal = Signal("a", value=0)
        assert signal.set(1) is True
        assert signal.set(1) is False
        assert signal.set(0) is True

    def test_toggle_count_accumulates(self):
        signal = Signal("a")
        for value in (1, 0, 1, 1, 0):
            signal.set(value)
        assert signal.toggle_count == 4

    def test_previous_value_tracked(self):
        signal = Signal("a", value=0)
        signal.set(1)
        assert signal.previous == 0
        assert signal.toggled()

    def test_reset_clears_statistics(self):
        signal = Signal("a")
        signal.set(1)
        signal.reset()
        assert signal.value == 0
        assert signal.toggle_count == 0


class TestClock:
    def test_period(self):
        assert Clock("clk", 10e6).period_s == pytest.approx(100e-9)

    def test_edges_per_cycle(self):
        assert Clock("clk", 10e6).edges_per_cycle == 2

    def test_cycles_for_duration(self):
        clock = Clock("clk", 10e6)
        assert clock.cycles_for_duration(30e-3) == 300_000

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError):
            Clock("clk", 0.0)

    def test_invalid_duty_cycle_rejected(self):
        with pytest.raises(ValueError):
            Clock("clk", 10e6, duty_cycle=1.5)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Clock("clk", 10e6).cycles_for_duration(-1.0)


class TestSignalBundle:
    def test_word_packing(self):
        bundle = SignalBundle("bus", width=8)
        bundle.drive(0xA5)
        assert bundle.word == 0xA5

    def test_drive_counts_toggles(self):
        bundle = SignalBundle("bus", width=8)
        assert bundle.drive(0xFF) == 8
        assert bundle.drive(0xFF) == 0
        assert bundle.drive(0x0F) == 4

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            SignalBundle("bus", width=0)

    def test_reset_sets_value(self):
        bundle = SignalBundle("bus", width=4)
        bundle.reset(0b1010)
        assert bundle.word == 0b1010
        assert len(bundle) == 4


class TestHammingHelpers:
    @pytest.mark.parametrize(
        "a, b, expected",
        [(0, 0, 0), (0b1010, 0b0101, 4), (0xFF, 0x0F, 4), (1, 0, 1)],
    )
    def test_hamming_distance(self, a, b, expected):
        assert hamming_distance(a, b) == expected

    def test_hamming_distance_with_width_mask(self):
        assert hamming_distance(0x1FF, 0x0FF, width=8) == 0

    def test_hamming_weight(self):
        assert hamming_weight(0b1011) == 3
        assert hamming_weight(0xF0F, width=8) == 4
