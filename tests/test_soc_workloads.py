"""Unit tests for repro.soc.workloads."""

import pytest

from repro.soc.bus import SystemBus
from repro.soc.cpu import CortexM0Like
from repro.soc.memory import Memory
from repro.soc.workloads import (
    checksum_program,
    dhrystone_like_program,
    idle_loop_program,
    memcopy_program,
)

BASE = 0x2000_0000


def run_program(program, cycles=3000):
    bus = SystemBus()
    bus.attach(Memory(size_bytes=64 * 1024, base_address=BASE))
    cpu = CortexM0Like(program, bus)
    trace = cpu.run_cycles(cycles)
    return cpu, trace


class TestDhrystoneLike:
    def test_assembles(self):
        program = dhrystone_like_program()
        assert len(program) > 50
        assert program.entry_point == program.label_address("main")

    def test_runs_without_halting(self):
        cpu, _ = run_program(dhrystone_like_program())
        assert not cpu.halted
        assert cpu.stats.instructions > 500

    def test_exercises_memory_and_branches(self):
        cpu, _ = run_program(dhrystone_like_program())
        assert cpu.stats.memory_accesses > 50
        assert cpu.stats.taken_branches > 50

    def test_string_copy_actually_copies(self):
        bus = SystemBus()
        memory = Memory(size_bytes=64 * 1024, base_address=BASE)
        bus.attach(memory)
        for i in range(16):
            memory.write_byte(BASE + 32 + i, 0x40 + i)
        cpu = CortexM0Like(dhrystone_like_program(), bus)
        cpu.run_cycles(2000)
        copied = [memory.read_byte(BASE + 64 + i) for i in range(16)]
        assert copied == [0x40 + i for i in range(16)]

    def test_iteration_counter_increments(self):
        cpu, _ = run_program(dhrystone_like_program(), cycles=5000)
        assert cpu.register(11) >= 2  # several benchmark iterations completed


class TestOtherWorkloads:
    def test_memcopy_runs(self):
        cpu, trace = run_program(memcopy_program())
        assert cpu.stats.memory_accesses > 100
        assert len(trace) == 3000

    def test_idle_loop_runs(self):
        cpu, _ = run_program(idle_loop_program())
        assert cpu.stats.memory_accesses == 0
        assert not cpu.halted

    def test_checksum_runs(self):
        cpu, _ = run_program(checksum_program())
        assert cpu.stats.memory_accesses > 20

    def test_activity_ordering_between_workloads(self):
        _, idle_trace = run_program(idle_loop_program())
        _, memcopy_trace = run_program(memcopy_program())
        assert memcopy_trace.total_toggles.mean() > idle_trace.total_toggles.mean()
