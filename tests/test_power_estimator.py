"""Unit tests for repro.power.estimator."""

import numpy as np
import pytest

from repro.power.estimator import PowerEstimator
from repro.rtl.activity import ActivityRecord, ActivityTrace


class TestCalibration:
    def test_per_register_clock_power(self, nominal_estimator):
        assert nominal_estimator.per_register_clock_power() == pytest.approx(1.476e-6, rel=1e-6)

    def test_per_register_data_power(self, nominal_estimator):
        assert nominal_estimator.per_register_data_power() == pytest.approx(1.126e-6, rel=1e-6)

    def test_at_nominal_constructor(self):
        estimator = PowerEstimator.at_nominal(frequency_hz=20e6)
        # Same energy per toggle, double frequency -> double power.
        assert estimator.per_register_clock_power() == pytest.approx(2 * 1.476e-6, rel=1e-6)


class TestComponentPower:
    def test_component_power_includes_leakage(self, nominal_estimator):
        trace = ActivityTrace.from_records("bank", [ActivityRecord(clock_toggles=2048)] * 4)
        power = nominal_estimator.component_power(
            "bank", "dff", trace, cell_counts={"dff": 1024, "icg": 32}
        )
        assert power.dynamic_w == pytest.approx(1024 * 1.476e-6, rel=1e-6)
        assert 0.3e-6 < power.static_w < 0.5e-6
        assert power.total_w == pytest.approx(power.dynamic_w + power.static_w)

    def test_cycle_power(self, nominal_estimator):
        value = nominal_estimator.cycle_power("dff", ActivityRecord(clock_toggles=2, data_toggles=1))
        assert value == pytest.approx((1.476 + 1.126) * 1e-6, rel=1e-6)


class TestPowerTraces:
    def test_power_trace_adds_static(self, nominal_estimator):
        trace = ActivityTrace.from_records("t", [ActivityRecord(clock_toggles=2)] * 3)
        power = nominal_estimator.power_trace(trace, static_w=1e-6)
        assert np.allclose(power.power_w, 1.476e-6 + 1e-6)

    def test_combined_power_trace(self, nominal_estimator):
        traces = {
            "a": ActivityTrace.from_records("a", [ActivityRecord(clock_toggles=2)] * 2),
            "b": ActivityTrace.from_records("b", [ActivityRecord(data_toggles=1)] * 2),
        }
        combined = nominal_estimator.combined_power_trace(traces)
        assert np.allclose(combined.power_w, (1.476 + 1.126) * 1e-6)

    def test_combined_power_trace_empty_rejected(self, nominal_estimator):
        with pytest.raises(ValueError):
            nominal_estimator.combined_power_trace({})

    def test_combined_power_trace_length_mismatch_rejected(self, nominal_estimator):
        traces = {
            "a": ActivityTrace.zeros("a", 2),
            "b": ActivityTrace.zeros("b", 3),
        }
        with pytest.raises(ValueError):
            nominal_estimator.combined_power_trace(traces)

    def test_leakage_of_inventory(self, nominal_estimator):
        assert nominal_estimator.leakage_of({"dff": 1024, "icg": 32}) == pytest.approx(4.0e-7, rel=0.2)
