# A deliberately rule-violating fixture.  CI's static-analysis job lints
# this file and asserts a NONZERO exit so the gate itself is known to be
# live (a linter that silently passes everything would make the required
# job meaningless).  Never import this module.
import random
import time

import numpy as np

np.random.seed(0)


def noisy(n):
    jitter = random.random()
    started = time.time()
    return np.random.normal(0.0, 1.0, n), jitter, started


def serve(cache, key):
    def build():
        return np.zeros(16)

    return cache.get_or_compute(key, build)
