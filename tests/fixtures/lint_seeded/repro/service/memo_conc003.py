# Seeded CONC003: bare-dict get-or-create memoization in a service/
# module (must be the locking caching.LRUCache).  CI asserts the linter
# flags this.
_MEMO = {}


def lookup(key):
    if key not in _MEMO:
        _MEMO[key] = key * 2
    return _MEMO[key]
