# Seeded DEAD001: the pragma below excuses a DET001 violation that no
# longer exists on the target line.  CI lints with --rules DET001,DEAD001
# and asserts the linter flags the stale pragma.

# repro-lint: allow[DET001] the time.time() call this excused is gone
VALUE = 1
