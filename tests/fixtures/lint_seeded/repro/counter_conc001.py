# Seeded CONC001: self._total is guarded by self._lock in add() but
# touched bare in bump() and peek().  CI asserts the linter flags this.
import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._total = 0

    def add(self, n):
        with self._lock:
            self._total += n

    def bump(self):
        self._total += 1

    def peek(self):
        return self._total
