# Seeded CONC002: this module starts threads, then fork()s outside the
# sanctioned supervisor (pipeline/backends.py).  CI asserts the linter
# flags this.
import os
import threading


def serve():
    threading.Thread(target=work).start()


def work():
    os.fork()
