# Seeded RNG002: two default_rng sites with syntactically identical seed
# expressions, both reachable from the sweep-cell roots (this file *is*
# pipeline/stages.py to the engine).  CI asserts the linter flags this.
from numpy.random import default_rng


def draw_signal(seed):
    return default_rng(seed).normal()


def draw_noise(seed):
    return default_rng(seed).normal()
