"""Spec/result serialization: lossless round-trips and stable hashes."""

import json
import subprocess
import sys

import numpy as np
import pytest

from repro.core.config import (
    DetectionConfig,
    MeasurementConfig,
    SynthesisConfig,
    WatermarkConfig,
)
from repro.core.spec import ScenarioSpec
from repro.pipeline.artifacts import Provenance, ScenarioResult, SweepResult
from repro.pipeline.runner import ExperimentRunner


def _rich_spec() -> ScenarioSpec:
    return ScenarioSpec(
        kind="fig5_panel",
        name="fig5/chip2-inactive",
        chip="chip2",
        workload="memcopy",
        watermark=WatermarkConfig(lfsr_width=10, lfsr_seed=0x155, switching_registers=256),
        measurement=MeasurementConfig.quick(12_345),
        detection=DetectionConfig(detection_threshold=5.0, uniqueness_margin=0.9),
        synthesis=SynthesisConfig(
            compat_draw_order=False, gaussian_dtype="float32", max_trials_per_chunk=16
        ),
        watermark_active=False,
        seed=42,
        phase_offset=1_234,
        repetitions=7,
        m0_window_cycles=2_048,
        params={"levels": [0.1, 0.2], "nested": {"b": 2, "a": 1}, "flag": True},
    )


class TestScenarioSpec:
    def test_json_round_trip_is_lossless(self):
        spec = _rich_spec()
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.to_json_dict() == spec.to_json_dict()
        assert restored.params_dict() == spec.params_dict()

    def test_file_round_trip(self, tmp_path):
        spec = _rich_spec()
        path = spec.save(tmp_path / "spec.json")
        assert ScenarioSpec.load(path) == spec

    def test_spec_hash_stable_across_processes(self):
        spec = _rich_spec()
        code = (
            "import sys; sys.path.insert(0, 'src')\n"
            "from repro.core.spec import ScenarioSpec\n"
            f"print(ScenarioSpec.from_json({spec.to_json()!r}).spec_hash())"
        )
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, check=True
        )
        assert out.stdout.strip() == spec.spec_hash()

    def test_spec_hash_changes_with_content(self):
        spec = _rich_spec()
        assert spec.with_overrides(seed=43).spec_hash() != spec.spec_hash()
        assert spec.with_overrides(chip="chip1").spec_hash() != spec.spec_hash()

    def test_chip_aliases_canonicalised(self):
        for alias in ("chipII", "chip_two", "2", "II"):
            assert ScenarioSpec(kind="fig3", chip=alias).chip == "chip2"
        hash_alias = ScenarioSpec(kind="fig3", chip="chipII").spec_hash()
        hash_canonical = ScenarioSpec(kind="fig3", chip="chip2").spec_hash()
        assert hash_alias == hash_canonical

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario kind"):
            ScenarioSpec(kind="fig99")

    def test_unknown_chip_rejected_with_valid_names(self):
        with pytest.raises(ValueError, match="chip1"):
            ScenarioSpec(kind="fig3", chip="chip9")

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            ScenarioSpec(kind="fig3", chip="chip1", workload="whetstone")

    def test_unknown_field_rejected_on_load(self):
        payload = _rich_spec().to_json_dict()
        payload["turbo"] = True
        with pytest.raises(ValueError, match="unknown ScenarioSpec fields"):
            ScenarioSpec.from_json_dict(payload)

    def test_params_are_frozen_and_order_insensitive(self):
        a = ScenarioSpec(kind="table2", params={"x": 1, "y": [1, 2]})
        b = ScenarioSpec(kind="table2", params={"y": [1, 2], "x": 1})
        assert a == b and a.spec_hash() == b.spec_hash()
        assert a.param("x") == 1
        assert a.param("missing", "fallback") == "fallback"

    def test_mapping_params_thaw_back_to_dicts(self):
        spec = ScenarioSpec(
            kind="table2", params={"opts": {"a": 1, "b": [2, 3], "c": {"d": 4}}}
        )
        assert spec.param("opts") == {"a": 1, "b": [2, 3], "c": {"d": 4}}
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored.param("opts")["c"]["d"] == 4
        assert restored == spec

    def test_experiment_config_round_trip(self):
        spec = _rich_spec()
        bundle = spec.experiment_config
        assert bundle.watermark == spec.watermark
        assert bundle.measurement == spec.measurement
        assert bundle.detection == spec.detection


class TestConfigSerialization:
    @pytest.mark.parametrize(
        "config",
        [
            WatermarkConfig(lfsr_width=8, lfsr_seed=0x2D, switching_registers=128),
            MeasurementConfig.quick(9_999),
            DetectionConfig(detection_threshold=6.0),
            SynthesisConfig(gaussian_dtype="float32"),
        ],
        ids=["watermark", "measurement", "detection", "synthesis"],
    )
    def test_round_trip(self, config):
        assert type(config).from_dict(config.to_dict()) == config

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown WatermarkConfig fields"):
            WatermarkConfig.from_dict({"lfsr_width": 12, "bogus": 1})

    def test_synthesis_dtype_validated(self):
        with pytest.raises(ValueError, match="gaussian_dtype"):
            SynthesisConfig(gaussian_dtype="float16")


class TestScenarioResultArtifacts:
    def test_save_load_reproduces_arrays_bit_exactly(self, tmp_path):
        rng = np.random.default_rng(0)
        result = ScenarioResult(
            spec=_rich_spec(),
            provenance=Provenance(spec_hash=_rich_spec().spec_hash()),
            scalars={"detected": True, "peak": 0.015},
            arrays={
                "f64": rng.standard_normal(257),
                "f32": rng.standard_normal(33).astype(np.float32),
                "ints": np.arange(7, dtype=np.int64),
                "flags": np.array([True, False, True]),
                "matrix": rng.standard_normal((5, 11)),
            },
            report="hello\nworld",
        )
        loaded = ScenarioResult.load(result.save(tmp_path / "artifact"))
        assert loaded.spec == result.spec
        assert loaded.scalars == result.scalars
        assert loaded.report == result.report
        assert loaded.provenance.spec_hash == result.provenance.spec_hash
        assert set(loaded.arrays) == set(result.arrays)
        for key, value in result.arrays.items():
            assert loaded.arrays[key].dtype == value.dtype
            assert np.array_equal(loaded.arrays[key], value)

    def test_executed_scenario_round_trips(self, tmp_path):
        result = ExperimentRunner().run(ScenarioSpec(kind="fig2", name="fig2", seed=9))
        loaded = ScenarioResult.load(result.save(tmp_path / "fig2"))
        assert loaded.report == result.report
        assert np.array_equal(loaded.arrays["wmark"], result.arrays["wmark"])
        assert loaded.provenance.spec_hash == result.spec.spec_hash()

    def test_provenance_stamps_commit_and_environment(self):
        provenance = Provenance(spec_hash="abc")
        assert provenance.commit  # "unknown" at worst, never empty
        assert provenance.environment["numpy"] == np.__version__
        assert provenance.created_at

    def test_json_dict_contains_array_metadata_only(self, tmp_path):
        result = ExperimentRunner().run(ScenarioSpec(kind="fig2", name="fig2", seed=9))
        payload = result.to_json_dict()
        assert payload["arrays"]["wmark"]["shape"] == [64]
        path = result.save(tmp_path / "fig2")
        on_disk = json.loads(path.read_text())
        assert on_disk["arrays_file"] == "fig2.npz"

    def test_sweep_round_trip(self, tmp_path):
        runner = ExperimentRunner()
        sweep = runner.run_many(
            [ScenarioSpec(kind="fig2", name="fig2", seed=9), "table2"]
        )
        loaded = SweepResult.load(sweep.save(tmp_path / "sweep"))
        assert loaded.names == sweep.names
        assert loaded.get("fig2").report == sweep.get("fig2").report
        for original, restored in zip(sweep, loaded):
            for key, value in original.arrays.items():
                assert np.array_equal(restored.arrays[key], value)
                assert restored.arrays[key].dtype == value.dtype


class TestGridAxisHelpers:
    def test_with_seed_and_name(self):
        base = ScenarioSpec(kind="fig2", name="base", seed=1)
        assert base.with_seed(7).seed == 7
        assert base.with_name("cell").name == "cell"
        assert base.seed == 1 and base.name == "base"  # copies, not mutation

    def test_with_chip_canonicalises(self):
        base = ScenarioSpec(kind="fig5_panel", chip="chip1")
        assert base.with_chip("chipII").chip == "chip2"

    def test_with_num_cycles_only_touches_length(self):
        base = ScenarioSpec(kind="fig5_panel", chip="chip1")
        longer = base.with_num_cycles(12_345)
        assert longer.measurement.num_cycles == 12_345
        assert longer.measurement.probe_noise_rms_v == base.measurement.probe_noise_rms_v
        with pytest.raises(ValueError, match="positive"):
            base.with_num_cycles(0)

    def test_with_noise_scale_zero_is_noiseless(self):
        quiet = ScenarioSpec(kind="fig5_panel", chip="chip1").with_noise_scale(0.0)
        assert quiet.measurement.probe_noise_rms_v == 0.0
        assert quiet.measurement.transient_noise_floor_w == 0.0
        assert quiet.measurement.transient_noise_fraction == 0.0
        with pytest.raises(ValueError, match="non-negative"):
            quiet.with_noise_scale(-1.0)

    def test_helpers_change_spec_hash(self):
        base = ScenarioSpec(kind="fig5_panel", chip="chip1", seed=1)
        assert base.with_seed(2).spec_hash() != base.spec_hash()
        assert base.with_num_cycles(9_999).spec_hash() != base.spec_hash()
