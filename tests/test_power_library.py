"""Unit tests for repro.power.library."""

import pytest

from repro.power.library import (
    CLOCK_TOGGLE_ENERGY_J,
    DATA_TOGGLE_ENERGY_J,
    PAPER_CLOCK_BUFFER_POWER_W,
    PAPER_DATA_SWITCHING_POWER_W,
    REFERENCE_FREQUENCY_HZ,
    CellCharacteristics,
    CellLibrary,
    TSMC65LP_LIKE,
)


class TestCalibrationConstants:
    def test_clock_toggle_energy_matches_paper(self):
        # Two clock transitions per cycle at 10 MHz must give 1.476 uW.
        power = CLOCK_TOGGLE_ENERGY_J * 2 * REFERENCE_FREQUENCY_HZ
        assert power == pytest.approx(PAPER_CLOCK_BUFFER_POWER_W)

    def test_data_toggle_energy_matches_paper(self):
        power = DATA_TOGGLE_ENERGY_J * REFERENCE_FREQUENCY_HZ
        assert power == pytest.approx(PAPER_DATA_SWITCHING_POWER_W)


class TestCellCharacteristics:
    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            CellCharacteristics(
                name="bad",
                clock_toggle_energy_j=-1.0,
                data_toggle_energy_j=0.0,
                comb_toggle_energy_j=0.0,
                leakage_w=0.0,
                area_um2=1.0,
            )


class TestCellLibrary:
    def test_default_library_has_expected_cells(self):
        for cell_type in ("dff", "icg", "clk_buf", "comb", "sram"):
            assert cell_type in TSMC65LP_LIKE.cells

    def test_unknown_cell_falls_back_to_comb(self):
        cell = TSMC65LP_LIKE.cell("weird_macro")
        assert cell.name == "comb"

    def test_area_lookup(self):
        assert TSMC65LP_LIKE.area_of("dff", 100) == pytest.approx(520.0)

    def test_negative_area_count_rejected(self):
        with pytest.raises(ValueError):
            TSMC65LP_LIKE.area_of("dff", -1)

    def test_empty_library_rejected(self):
        with pytest.raises(ValueError):
            CellLibrary(name="empty", voltage_v=1.2, cells={})

    def test_invalid_voltage_rejected(self):
        with pytest.raises(ValueError):
            CellLibrary(name="lib", voltage_v=0.0, cells=dict(TSMC65LP_LIKE.cells))

    def test_redundant_bank_leakage_near_paper_value(self):
        # 1,024 DFFs + 32 ICGs should leak around 0.40 uW (Table I static column).
        leak = (
            TSMC65LP_LIKE.cell("dff").leakage_w * 1024
            + TSMC65LP_LIKE.cell("icg").leakage_w * 32
        )
        assert 0.35e-6 < leak < 0.45e-6

    def test_clock_buffer_has_no_data_energy(self):
        assert TSMC65LP_LIKE.cell("clk_buf").data_toggle_energy_j == 0.0
