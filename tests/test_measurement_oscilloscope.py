"""Unit tests for repro.measurement.oscilloscope."""

import numpy as np
import pytest

from repro.measurement.oscilloscope import Oscilloscope


class TestDigitize:
    def test_quantisation_step(self):
        scope = Oscilloscope(adc_bits=8)
        digitised, full_scale, lsb = scope.digitize(np.linspace(-1, 1, 100), full_scale_v=1.0)
        assert lsb == pytest.approx(2.0 / 256)
        assert full_scale == 1.0
        # Quantisation error bounded by half an LSB.
        assert np.max(np.abs(digitised - np.linspace(-1, 1, 100))) <= lsb / 2 + 1e-12

    def test_clipping_at_full_scale(self):
        scope = Oscilloscope(adc_bits=8)
        digitised, _, _ = scope.digitize(np.array([10.0, -10.0]), full_scale_v=1.0)
        assert digitised[0] <= 1.0
        assert digitised[1] >= -1.0

    def test_auto_range_includes_headroom(self):
        scope = Oscilloscope(range_headroom=1.25)
        assert scope.vertical_full_scale(np.array([0.0, 2.0, -1.0])) == pytest.approx(2.5)

    def test_auto_range_of_zero_signal(self):
        assert Oscilloscope().vertical_full_scale(np.zeros(4)) == 1.0

    def test_higher_resolution_reduces_error(self):
        signal = np.linspace(-0.9, 0.9, 1000)
        low = Oscilloscope(adc_bits=6).digitize(signal, full_scale_v=1.0)[0]
        high = Oscilloscope(adc_bits=12).digitize(signal, full_scale_v=1.0)[0]
        assert np.abs(high - signal).max() < np.abs(low - signal).max()


class TestCapture:
    def test_per_cycle_average_shape(self):
        scope = Oscilloscope()
        samples = np.tile(np.linspace(0, 1, 50), 10)
        capture = scope.capture(samples, samples_per_cycle=50)
        assert capture.num_cycles == 10
        assert np.allclose(capture.per_cycle_average, capture.per_cycle_average[0])

    def test_partial_last_cycle_dropped(self):
        scope = Oscilloscope()
        capture = scope.capture(np.ones(130), samples_per_cycle=50)
        assert capture.num_cycles == 2

    def test_capture_shorter_than_cycle_rejected(self):
        with pytest.raises(ValueError):
            Oscilloscope().capture(np.ones(10), samples_per_cycle=50)

    def test_invalid_samples_per_cycle_rejected(self):
        with pytest.raises(ValueError):
            Oscilloscope().capture(np.ones(100), samples_per_cycle=0)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            Oscilloscope(sampling_frequency_hz=0)
        with pytest.raises(ValueError):
            Oscilloscope(adc_bits=2)
        with pytest.raises(ValueError):
            Oscilloscope(range_headroom=0.5)
