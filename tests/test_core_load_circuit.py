"""Unit tests for repro.core.load_circuit."""

import pytest

from repro.core.load_circuit import LoadCircuit, registers_for_load_power


class TestSizingRule:
    @pytest.mark.parametrize(
        "load_power_mw, expected_registers",
        [(0.25, 96), (0.5, 192), (1.0, 384), (1.5, 576), (5.0, 1921), (10.0, 3843)],
    )
    def test_table_ii_register_counts(self, load_power_mw, expected_registers):
        assert registers_for_load_power(load_power_mw * 1e-3) == expected_registers

    def test_invalid_power_rejected(self):
        with pytest.raises(ValueError):
            registers_for_load_power(0.0)


class TestLoadCircuit:
    def test_word_partitioning(self):
        load = LoadCircuit(num_registers=20, word_width=8)
        assert load.register_count == 20
        assert [w.width for w in load.words] == [8, 8, 4]

    def test_sized_for_power(self):
        load = LoadCircuit.sized_for_power(1.5e-3)
        assert load.register_count == 576

    def test_idle_when_wmark_low(self):
        load = LoadCircuit(num_registers=16)
        assert load.step(wmark=0).total_toggles == 0

    def test_full_switching_when_wmark_high(self):
        load = LoadCircuit(num_registers=16, word_width=8)
        activity = load.step(wmark=1)
        assert activity.data_toggles == 16
        assert activity.clock_toggles == 32

    def test_expected_active_activity_matches_step(self):
        load = LoadCircuit(num_registers=64, word_width=8)
        assert load.step(wmark=1) == load.expected_active_activity()

    def test_reset_restores_pattern(self):
        load = LoadCircuit(num_registers=8, word_width=8)
        load.step(wmark=1)
        load.reset()
        assert load.words[0].value == 0b10101010

    def test_cell_inventory(self):
        load = LoadCircuit(num_registers=100)
        assert load.cell_inventory() == {"dff": 100}

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LoadCircuit(num_registers=0)
        with pytest.raises(ValueError):
            LoadCircuit(num_registers=8, word_width=0)

    def test_active_power_matches_paper_per_register_figure(self, nominal_estimator):
        load = LoadCircuit(num_registers=576, word_width=8)
        activity = load.step(wmark=1)
        power = nominal_estimator.cycle_power("dff", activity)
        # 576 x (1.476 uW + 1.126 uW) ~ 1.5 mW: the Table II operating point.
        assert power == pytest.approx(576 * 2.602e-6, rel=1e-3)
