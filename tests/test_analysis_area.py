"""Unit tests for repro.analysis.area."""

import pytest

from repro.analysis.area import AreaModel
from repro.core.architectures import BaselineWatermark, ClockModulationWatermark
from repro.core.config import WatermarkConfig


@pytest.fixture
def model() -> AreaModel:
    return AreaModel()


class TestAreaBreakdown:
    def test_totals(self, model):
        breakdown = model.breakdown("x", {"dff": 100, "comb": 50})
        assert breakdown.total_cells == 150
        assert breakdown.register_count == 100
        assert breakdown.total_area_um2 == pytest.approx(100 * 5.2 + 50 * 1.44)

    def test_negative_counts_rejected(self, model):
        with pytest.raises(ValueError):
            model.breakdown("x", {"dff": -1})

    def test_unknown_cell_type_uses_comb_area(self, model):
        breakdown = model.breakdown("x", {"mystery": 10})
        assert breakdown.total_area_um2 == pytest.approx(10 * 1.44)


class TestArchitectureArea:
    def test_baseline_larger_than_minimal_clock_modulation(self, model):
        config = WatermarkConfig(load_registers=576, use_test_chip_wgc=False)
        baseline = BaselineWatermark.from_config(config)
        proposed = ClockModulationWatermark.reusing_ip_block(
            modulated_registers=4096, config=config
        )
        baseline_area = model.architecture_area(baseline).total_area_um2
        proposed_area = model.architecture_area(proposed).total_area_um2
        assert proposed_area < baseline_area
        # The paper's headline: ~98% reduction relative to the baseline.
        assert 1 - proposed_area / baseline_area > 0.5

    def test_relative_overhead(self, model):
        overhead = model.relative_overhead({"dff": 12}, {"dff": 12_000})
        assert overhead == pytest.approx(0.001)

    def test_relative_overhead_requires_system_area(self, model):
        with pytest.raises(ValueError):
            model.relative_overhead({"dff": 12}, {"dff": 0})
