"""Unit tests for repro.soc.cache."""

import pytest

from repro.soc.cache import Cache, CacheConfig


class TestCacheConfig:
    def test_default_geometry(self):
        config = CacheConfig()
        assert config.size_bytes == 16 * 1024
        assert config.num_sets * config.associativity * config.line_bytes == config.size_bytes
        assert config.num_lines == config.num_sets * config.associativity

    def test_tag_bits_positive(self):
        assert CacheConfig().tag_bits > 0

    def test_storage_bits_scale_with_size(self):
        small = CacheConfig(size_bytes=8 * 1024)
        large = CacheConfig(size_bytes=32 * 1024)
        assert large.storage_bits > small.storage_bits

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, line_bytes=32, associativity=4)
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=0)


class TestCacheBehaviour:
    def test_first_access_misses_then_hits(self):
        cache = Cache(CacheConfig(size_bytes=1024, line_bytes=32, associativity=2))
        hit, _ = cache.lookup(0x1000)
        assert not hit
        hit, _ = cache.lookup(0x1000)
        assert hit
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_same_line_different_word_hits(self):
        cache = Cache(CacheConfig(size_bytes=1024, line_bytes=32, associativity=2))
        cache.lookup(0x2000)
        hit, _ = cache.lookup(0x2004)
        assert hit

    def test_lru_eviction(self):
        config = CacheConfig(size_bytes=256, line_bytes=32, associativity=2)
        cache = Cache(config)
        set_stride = config.num_sets * config.line_bytes
        cache.lookup(0x0)                 # way 0
        cache.lookup(set_stride)          # way 1
        cache.lookup(0x0)                 # refresh way 0
        cache.lookup(2 * set_stride)      # evicts the LRU line (set_stride)
        assert cache.stats.evictions == 1
        hit, _ = cache.lookup(0x0)
        assert hit
        hit, _ = cache.lookup(set_stride)
        assert not hit

    def test_miss_activity_exceeds_hit_activity(self):
        cache = Cache(CacheConfig(size_bytes=1024, line_bytes=32, associativity=2))
        _, miss_activity = cache.lookup(0x3000)
        _, hit_activity = cache.lookup(0x3000)
        assert miss_activity.data_toggles > hit_activity.data_toggles

    def test_no_allocate_mode(self):
        cache = Cache(CacheConfig(size_bytes=1024, line_bytes=32, associativity=2))
        cache.lookup(0x4000, allocate=False)
        hit, _ = cache.lookup(0x4000)
        assert not hit

    def test_hit_rate(self):
        cache = Cache(CacheConfig(size_bytes=1024, line_bytes=32, associativity=2))
        assert cache.stats.hit_rate == 0.0
        cache.lookup(0x0)
        cache.lookup(0x0)
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_flush_keeps_stats_reset_clears_them(self):
        cache = Cache(CacheConfig(size_bytes=1024, line_bytes=32, associativity=2))
        cache.lookup(0x0)
        cache.flush()
        assert cache.stats.misses == 1
        hit, _ = cache.lookup(0x0)
        assert not hit
        cache.reset()
        assert cache.stats.accesses == 0
