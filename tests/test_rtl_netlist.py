"""Unit tests for repro.rtl.netlist."""

import pytest

from repro.rtl.components import ClockGate, CombinationalBlock, Register
from repro.rtl.netlist import Netlist


@pytest.fixture
def simple_netlist() -> Netlist:
    """clk_ctrl -> icg -> reg -> logic, plus an isolated watermark pair."""
    netlist = Netlist("design")
    netlist.add_component(CombinationalBlock("clk_ctrl", gate_count=4), role="functional")
    netlist.add_component(ClockGate("icg"), role="functional")
    netlist.add_component(Register("reg", width=8), role="functional")
    netlist.add_component(CombinationalBlock("logic", gate_count=10), role="functional")
    netlist.add_component(Register("wm_lfsr", width=12), role="watermark")
    netlist.add_component(Register("wm_load", width=64), role="watermark")
    netlist.connect("clk_ctrl", "icg", net="en")
    netlist.connect("icg", "reg", net="gclk")
    netlist.connect("reg", "logic", net="q")
    netlist.connect("wm_lfsr", "wm_load", net="wmark")
    return netlist


class TestNetlistConstruction:
    def test_duplicate_name_rejected(self, simple_netlist):
        with pytest.raises(ValueError):
            simple_netlist.add_component(Register("reg", width=1))

    def test_unknown_role_rejected(self):
        netlist = Netlist("n")
        with pytest.raises(ValueError):
            netlist.add_component(Register("r"), role="mystery")

    def test_connect_requires_existing_nodes(self, simple_netlist):
        with pytest.raises(KeyError):
            simple_netlist.connect("reg", "missing")

    def test_contains_and_len(self, simple_netlist):
        assert "icg" in simple_netlist
        assert len(simple_netlist) == 6


class TestNetlistQueries:
    def test_role_lookup(self, simple_netlist):
        assert simple_netlist.role("wm_lfsr") == "watermark"
        assert simple_netlist.role("reg") == "functional"

    def test_components_filtered_by_role(self, simple_netlist):
        assert len(simple_netlist.components(role="watermark")) == 2

    def test_component_names_by_role(self, simple_netlist):
        assert sorted(simple_netlist.component_names(role="watermark")) == ["wm_lfsr", "wm_load"]

    def test_fan_in_fan_out(self, simple_netlist):
        assert simple_netlist.fan_in("reg") == ["icg"]
        assert simple_netlist.fan_out("reg") == ["logic"]

    def test_register_totals(self, simple_netlist):
        assert simple_netlist.total_registers == 8 + 12 + 64
        assert simple_netlist.registers_by_role("watermark") == 76

    def test_edges_iteration(self, simple_netlist):
        nets = {edge.net for edge in simple_netlist.edges()}
        assert "wmark" in nets


class TestNetlistStructure:
    def test_weakly_connected_clusters(self, simple_netlist):
        clusters = simple_netlist.weakly_connected_clusters()
        assert len(clusters) == 2
        sizes = sorted(len(c) for c in clusters)
        assert sizes == [2, 4]

    def test_reachability(self, simple_netlist):
        assert simple_netlist.reachable_from(["clk_ctrl"]) == {"clk_ctrl", "icg", "reg", "logic"}

    def test_cone_of_influence(self, simple_netlist):
        assert simple_netlist.cone_of_influence(["logic"]) == {"clk_ctrl", "icg", "reg", "logic"}

    def test_remove_components(self, simple_netlist):
        pruned = simple_netlist.remove_components(["wm_lfsr", "wm_load"])
        assert len(pruned) == 4
        assert "wm_lfsr" not in pruned
        assert len(simple_netlist) == 6  # original untouched

    def test_remove_unknown_component_rejected(self, simple_netlist):
        with pytest.raises(KeyError):
            simple_netlist.remove_components(["ghost"])

    def test_dangling_inputs_after_removal(self, simple_netlist):
        pruned = simple_netlist.remove_components(["clk_ctrl"])
        assert "icg" in pruned.dangling_inputs()

    def test_subgraph_stats(self, simple_netlist):
        stats = simple_netlist.subgraph_stats(["wm_lfsr", "wm_load"])
        assert stats == {"instances": 2, "registers": 76, "cells": 76}
