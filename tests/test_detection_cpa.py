"""Unit tests for repro.detection.cpa."""

import numpy as np
import pytest

from repro.core.config import DetectionConfig
from repro.core.lfsr import LFSR
from repro.detection.cpa import (
    CPADetector,
    pearson_correlation,
    rotation_correlations,
)


def make_measurement(period=63, num_cycles=5000, amplitude=1.0, noise=5.0, offset=17, seed=0):
    """A binary watermark embedded in Gaussian noise, rotated by ``offset``."""
    rng = np.random.default_rng(seed)
    sequence = LFSR(width=int(np.log2(period + 1)), seed=1).sequence()
    tiled = np.tile(sequence, int(np.ceil((num_cycles + offset) / period)))
    watermark = tiled[offset : offset + num_cycles].astype(float) * amplitude
    measured = 10.0 + watermark + rng.normal(0, noise, num_cycles)
    return sequence, measured


class TestPearsonCorrelation:
    def test_perfect_correlation(self):
        x = np.array([0.0, 1.0, 2.0, 3.0])
        assert pearson_correlation(x, 2 * x + 1) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        x = np.array([0.0, 1.0, 2.0, 3.0])
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_zero_variance_returns_zero(self):
        assert pearson_correlation(np.ones(10), np.arange(10)) == 0.0

    def test_independent_noise_near_zero(self):
        rng = np.random.default_rng(1)
        rho = pearson_correlation(rng.normal(size=100_000), rng.normal(size=100_000))
        assert abs(rho) < 0.02

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pearson_correlation(np.ones(3), np.ones(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            pearson_correlation(np.array([]), np.array([]))

    def test_matches_numpy_corrcoef(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=1000)
        y = 0.3 * x + rng.normal(size=1000)
        assert pearson_correlation(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])


class TestRotationCorrelations:
    def test_fft_matches_naive(self):
        sequence, measured = make_measurement(period=63, num_cycles=2000)
        fft_result = rotation_correlations(sequence, measured, method="fft")
        naive_result = rotation_correlations(sequence, measured, method="naive")
        assert np.allclose(fft_result, naive_result, atol=1e-10)

    def test_fft_matches_naive_non_multiple_length(self):
        sequence, measured = make_measurement(period=63, num_cycles=2017)
        assert np.allclose(
            rotation_correlations(sequence, measured, method="fft"),
            rotation_correlations(sequence, measured, method="naive"),
            atol=1e-10,
        )

    def test_peak_at_injected_offset(self):
        sequence, measured = make_measurement(offset=17, noise=1.0)
        correlations = rotation_correlations(sequence, measured)
        assert int(np.argmax(correlations)) == 17

    def test_number_of_rotations_equals_period(self):
        sequence, measured = make_measurement(period=31, num_cycles=1000)
        assert len(rotation_correlations(sequence, measured)) == 31

    def test_clean_signal_gives_unity_peak(self):
        sequence = LFSR(width=6, seed=1).sequence()
        measured = np.tile(sequence, 10).astype(float)
        correlations = rotation_correlations(sequence, measured)
        assert correlations[0] == pytest.approx(1.0)

    def test_correlations_bounded(self):
        sequence, measured = make_measurement()
        correlations = rotation_correlations(sequence, measured)
        assert np.all(np.abs(correlations) <= 1.0 + 1e-12)

    def test_unknown_method_rejected(self):
        sequence, measured = make_measurement()
        with pytest.raises(ValueError):
            rotation_correlations(sequence, measured, method="magic")

    def test_short_measurement_rejected(self):
        sequence = LFSR(width=8, seed=1).sequence()
        with pytest.raises(ValueError):
            rotation_correlations(sequence, np.ones(10))

    def test_non_binary_sequence_supported(self):
        rng = np.random.default_rng(3)
        sequence = rng.normal(size=63)
        measured = np.tile(sequence, 40) + rng.normal(0, 0.1, 63 * 40)
        fft_result = rotation_correlations(sequence, measured, method="fft")
        naive_result = rotation_correlations(sequence, measured, method="naive")
        assert np.allclose(fft_result, naive_result, atol=1e-10)
        assert int(np.argmax(fft_result)) == 0


class TestCPADetector:
    def test_detects_embedded_watermark(self):
        sequence, measured = make_measurement(num_cycles=20_000, amplitude=1.0, noise=4.0, offset=29)
        result = CPADetector().detect(sequence, measured)
        assert result.detected
        assert result.peak_rotation == 29
        assert result.z_score > 4.0

    def test_does_not_detect_pure_noise(self):
        rng = np.random.default_rng(5)
        sequence = LFSR(width=8, seed=1).sequence()
        detections = []
        for i in range(5):
            measured = rng.normal(10.0, 3.0, 30_000)
            detections.append(CPADetector().detect(sequence, measured).detected)
        assert sum(detections) == 0

    def test_negative_watermark_not_reported_as_detected(self):
        sequence, measured = make_measurement(num_cycles=20_000, amplitude=1.0, noise=2.0)
        inverted = 2 * np.mean(measured) - measured
        result = CPADetector().detect(sequence, inverted)
        assert result.peak_correlation < 0
        assert not result.detected

    def test_threshold_configurable(self):
        sequence, measured = make_measurement(num_cycles=8_000, amplitude=0.6, noise=5.0)
        lenient = CPADetector(DetectionConfig(detection_threshold=1.0, uniqueness_margin=1.0))
        strict = CPADetector(DetectionConfig(detection_threshold=50.0))
        assert lenient.detect(sequence, measured).z_score == strict.detect(sequence, measured).z_score
        assert not strict.detect(sequence, measured).detected

    def test_evaluate_requires_enough_rotations(self):
        with pytest.raises(ValueError):
            CPADetector().evaluate(np.array([0.1, 0.2]))

    def test_result_summary_string(self):
        sequence, measured = make_measurement(num_cycles=20_000, noise=2.0)
        result = CPADetector().detect(sequence, measured)
        assert "rho" in result.summary()
        assert result.num_rotations == 63

    def test_summary_formats_infinite_z_score(self):
        # Zero noise floor (all off-peak correlations identical) drives the
        # z-score to infinity; the summary must stay readable.
        spectrum = np.zeros(5)
        spectrum[2] = 0.7
        result = CPADetector().evaluate(spectrum)
        assert np.isinf(result.z_score)
        summary = result.summary()
        assert "zero noise floor" in summary
        assert "z=inf" in summary
