"""Unit tests for repro.rtl.module."""

import pytest

from repro.rtl.components import ClockGate, CombinationalBlock, Register
from repro.rtl.module import Module, Port, PortDirection


def build_sample_hierarchy() -> Module:
    top = Module("top")
    top.add_component(CombinationalBlock("glue", gate_count=4))
    child = Module("ip0")
    child.add_component(ClockGate("icg"))
    child.add_component(Register("reg", width=8))
    child.connect("icg", "reg", net="gclk")
    top.add_child(child)
    top.connect("glue", "ip0/icg", net="en")
    return top


class TestModuleConstruction:
    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            Module("a/b")
        with pytest.raises(ValueError):
            Module("")

    def test_duplicate_component_rejected(self):
        module = Module("m")
        module.add_component(Register("r"))
        with pytest.raises(ValueError):
            module.add_component(Register("r"))

    def test_duplicate_child_rejected(self):
        module = Module("m")
        module.add_child(Module("c"))
        with pytest.raises(ValueError):
            module.add_child(Module("c"))

    def test_duplicate_port_rejected(self):
        module = Module("m")
        module.add_port("clk", PortDirection.INPUT)
        with pytest.raises(ValueError):
            module.add_port("clk", PortDirection.INPUT)

    def test_port_width_validated(self):
        with pytest.raises(ValueError):
            Port("p", PortDirection.INPUT, width=0)


class TestModuleQueries:
    def test_iter_components_paths(self):
        top = build_sample_hierarchy()
        paths = {path for path, _, _ in top.iter_components()}
        assert paths == {"top/glue", "top/ip0/icg", "top/ip0/reg"}

    def test_register_and_cell_counts(self):
        top = build_sample_hierarchy()
        assert top.register_count == 8
        assert top.cell_count == 4 + 1 + 8

    def test_find_by_path(self):
        top = build_sample_hierarchy()
        assert isinstance(top.find("ip0/icg"), ClockGate)
        with pytest.raises(KeyError):
            top.find("ip0/missing")
        with pytest.raises(KeyError):
            top.find("nope/icg")

    def test_role_propagates_to_components(self):
        module = Module("wm", role="watermark")
        module.add_component(Register("r"))
        _, _, role = next(iter(module.iter_components()))
        assert role == "watermark"


class TestModuleFlatten:
    def test_flatten_creates_hierarchical_names(self):
        netlist = build_sample_hierarchy().flatten()
        assert "top/ip0/reg" in netlist
        assert len(netlist) == 3

    def test_flatten_preserves_connections(self):
        netlist = build_sample_hierarchy().flatten()
        assert netlist.fan_out("top/glue") == ["top/ip0/icg"]
        assert netlist.fan_in("top/ip0/reg") == ["top/ip0/icg"]

    def test_flatten_rejects_unknown_connection(self):
        module = Module("m")
        module.add_component(Register("r"))
        module.connect("r", "missing")
        with pytest.raises(KeyError):
            module.flatten()
