"""Unit tests for repro.core.sequence_design."""

import numpy as np
import pytest

from repro.core.lfsr import LFSR
from repro.core.sequence_design import (
    autocorrelation_sidelobe,
    build_recommended_lfsr,
    is_good_watermark_sequence,
    periodic_autocorrelation,
    recommend_lfsr_width,
)


class TestAutocorrelation:
    def test_m_sequence_has_two_valued_autocorrelation(self):
        sequence = LFSR(width=8, seed=1).sequence()
        correlation = periodic_autocorrelation(sequence)
        assert correlation[0] == pytest.approx(1.0)
        assert np.allclose(correlation[1:], -1.0 / len(sequence), atol=1e-9)

    def test_sidelobe_of_m_sequence_is_tiny(self):
        sequence = LFSR(width=10, seed=3).sequence()
        assert autocorrelation_sidelobe(sequence) == pytest.approx(1.0 / 1023, abs=1e-9)

    def test_constant_sequence_rejected_as_watermark(self):
        assert not is_good_watermark_sequence(np.ones(64))

    def test_alternating_sequence_has_large_sidelobe(self):
        alternating = np.tile([1.0, 0.0], 32)
        assert autocorrelation_sidelobe(alternating) == pytest.approx(1.0)
        assert not is_good_watermark_sequence(alternating)

    def test_m_sequence_accepted(self):
        assert is_good_watermark_sequence(LFSR(width=12, seed=0x5A5).sequence())

    def test_validation(self):
        with pytest.raises(ValueError):
            periodic_autocorrelation(np.array([1.0]))


class TestWidthRecommendation:
    def test_paper_operating_point_allows_wide_lfsr(self):
        # rho ~ 0.017 at 300k cycles: the paper's 12-bit choice must be feasible.
        recommendation = recommend_lfsr_width(
            watermark_amplitude_w=1.5e-3, noise_sigma_w=43e-3, acquisition_cycles=300_000
        )
        assert recommendation.feasible
        assert recommendation.width >= 12
        assert recommendation.repetitions_in_acquisition >= 2

    def test_low_snr_reduces_feasible_width_or_fails(self):
        generous = recommend_lfsr_width(1.5e-3, 43e-3, acquisition_cycles=300_000)
        starved = recommend_lfsr_width(1.5e-3, 200e-3, acquisition_cycles=300_000)
        assert (not starved.feasible) or starved.required_cycles > generous.required_cycles

    def test_short_acquisition_is_infeasible(self):
        recommendation = recommend_lfsr_width(
            1.5e-3, 43e-3, acquisition_cycles=5_000, candidate_widths=(12, 14, 16)
        )
        assert not recommendation.feasible

    def test_build_recommended_lfsr(self):
        recommendation = recommend_lfsr_width(1.5e-3, 43e-3)
        lfsr = build_recommended_lfsr(recommendation)
        assert lfsr.width == recommendation.width
        assert lfsr.period == recommendation.period

    def test_validation(self):
        with pytest.raises(ValueError):
            recommend_lfsr_width(1.5e-3, 43e-3, acquisition_cycles=0)
        with pytest.raises(ValueError):
            recommend_lfsr_width(1.5e-3, 43e-3, candidate_widths=())
        with pytest.raises(ValueError):
            recommend_lfsr_width(0.0, 43e-3)
