#!/usr/bin/env python3
"""Capture the pre-refactor reports of every legacy experiment entry point.

Run once against the legacy drivers to freeze their reports and array
digests at fixed seeds; ``tests/test_pipeline_equivalence.py`` then pins the
registry-driven pipeline against the captured output bit for bit.

Usage:  PYTHONPATH=src python tests/data/capture_pipeline_golden.py
"""

from __future__ import annotations

import hashlib
import json
import pathlib

import numpy as np

from repro.core.config import ExperimentConfig
from repro.experiments import (
    run_fig2,
    run_fig3,
    run_fig5,
    run_fig6,
    run_robustness,
    run_table1,
    run_table2,
)

OUT = pathlib.Path(__file__).with_name("pipeline_golden.json")


def digest(array: np.ndarray) -> str:
    array = np.ascontiguousarray(array)
    return hashlib.sha256(array.tobytes()).hexdigest()


def main() -> None:
    config = ExperimentConfig.fast(30_000)
    golden = {}

    fig2 = run_fig2()
    golden["fig2"] = {
        "report": fig2.to_text(),
        "arrays": {
            "wmark": digest(fig2.wmark),
            "baseline_toggles": digest(fig2.baseline_toggles),
            "clock_modulation_toggles": digest(fig2.clock_modulation_toggles),
        },
    }

    fig3 = run_fig3(num_cycles=2_048, seed=7)
    golden["fig3"] = {
        "report": fig3.to_text(),
        "arrays": {"measured_total_power": digest(fig3.measured_total_power)},
    }

    fig5 = run_fig5(config=config, seed=100, m0_window_cycles=4_096)
    golden["fig5"] = {
        "report": fig5.to_text(),
        "arrays": {
            key: digest(panel.cpa.correlations) for key, panel in sorted(fig5.panels.items())
        },
    }

    fig6 = run_fig6(repetitions=6, config=config, base_seed=1_000, m0_window_cycles=4_096)
    golden["fig6"] = {"report": fig6.to_text(), "arrays": {}}

    golden["table1"] = {"report": run_table1().to_text(), "arrays": {}}
    golden["table2"] = {"report": run_table2().to_text(), "arrays": {}}
    golden["robustness"] = {"report": run_robustness().to_text(), "arrays": {}}

    OUT.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUT} ({len(golden)} experiments)")


if __name__ == "__main__":
    main()
