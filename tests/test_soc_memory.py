"""Unit tests for repro.soc.memory."""

import pytest

from repro.soc.memory import Memory

BASE = 0x2000_0000


@pytest.fixture
def memory() -> Memory:
    return Memory(size_bytes=4096, base_address=BASE)


class TestFunctionalAccess:
    def test_uninitialised_reads_zero(self, memory):
        assert memory.read_byte(BASE) == 0
        assert memory.read_word(BASE + 16) == 0

    def test_byte_roundtrip(self, memory):
        memory.write_byte(BASE + 1, 0xAB)
        assert memory.read_byte(BASE + 1) == 0xAB

    def test_word_is_little_endian(self, memory):
        memory.write_word(BASE, 0x11223344)
        assert memory.read_byte(BASE) == 0x44
        assert memory.read_byte(BASE + 3) == 0x11

    def test_word_roundtrip(self, memory):
        memory.write_word(BASE + 8, 0xDEADBEEF)
        assert memory.read_word(BASE + 8) == 0xDEADBEEF

    def test_byte_values_masked(self, memory):
        memory.write_byte(BASE, 0x1FF)
        assert memory.read_byte(BASE) == 0xFF

    def test_out_of_range_rejected(self, memory):
        with pytest.raises(IndexError):
            memory.read_byte(BASE - 1)
        with pytest.raises(IndexError):
            memory.write_word(BASE + 4096 - 2, 1)

    def test_contains(self, memory):
        assert memory.contains(BASE)
        assert not memory.contains(BASE + 4096)

    def test_load_words(self, memory):
        memory.load_words({BASE: 1, BASE + 4: 2})
        assert memory.read_word(BASE + 4) == 2


class TestActivityTrackedAccess:
    def test_read_access_returns_value_and_activity(self, memory):
        memory.write_word(BASE, 0xFF)
        value, activity = memory.access(BASE, write=False)
        assert value == 0xFF
        assert activity.total > 0
        assert memory.read_count == 1

    def test_write_access_requires_value(self, memory):
        with pytest.raises(ValueError):
            memory.access(BASE, write=True)

    def test_write_access_updates_memory(self, memory):
        memory.access(BASE + 4, write=True, value=0x1234)
        assert memory.read_word(BASE + 4) == 0x1234
        assert memory.write_count == 1

    def test_byte_access_width(self, memory):
        memory.access(BASE, write=True, value=0x77, width=1)
        assert memory.read_byte(BASE) == 0x77

    def test_invalid_width_rejected(self, memory):
        with pytest.raises(ValueError):
            memory.access(BASE, write=False, width=2)

    def test_activity_depends_on_address_change(self, memory):
        memory.access(BASE, write=True, value=0)
        _, same = memory.access(BASE, write=True, value=0)
        _, far = memory.access(BASE + 0x800, write=True, value=0)
        assert far.address_toggles > same.address_toggles

    def test_reset_clears_state(self, memory):
        memory.access(BASE, write=True, value=5)
        memory.reset()
        assert memory.read_word(BASE) == 0
        assert memory.read_count == 0
        assert memory.write_count == 0

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            Memory(size_bytes=0)
