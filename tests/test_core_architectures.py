"""Unit tests for repro.core.architectures."""

import numpy as np
import pytest

from repro.core.architectures import BaselineWatermark, ClockModulationWatermark
from repro.core.clock_modulation import ClockModulatedIPBlock
from repro.core.config import ArchitectureKind, WatermarkConfig
from repro.core.load_circuit import LoadCircuit
from repro.core.wgc import WatermarkGenerationCircuit


@pytest.fixture
def small_config() -> WatermarkConfig:
    return WatermarkConfig(lfsr_width=6, lfsr_seed=0x21, num_words=4, word_width=8, load_registers=32)


class TestBaselineWatermark:
    def test_kind(self):
        assert BaselineWatermark().kind is ArchitectureKind.BASELINE_LOAD_CIRCUIT

    def test_from_config(self, small_config):
        watermark = BaselineWatermark.from_config(small_config)
        assert watermark.added_register_count == 32
        assert watermark.sequence_period == 63

    def test_added_registers_equal_load_size(self):
        watermark = BaselineWatermark(load=LoadCircuit(num_registers=576))
        assert watermark.added_register_count == 576

    def test_load_activity_follows_wmark(self, small_config):
        watermark = BaselineWatermark.from_config(small_config)
        traces = watermark.activity_traces(small_config.sequence_period)
        wmark = watermark.sequence(small_config.sequence_period).astype(bool)
        load_toggles = traces["load"].total_toggles
        assert np.all(load_toggles[~wmark] == 0)
        assert np.all(load_toggles[wmark] > 0)


class TestClockModulationWatermark:
    def test_kind(self):
        assert ClockModulationWatermark().kind is ArchitectureKind.CLOCK_MODULATION

    def test_from_config_bank_size(self, small_config):
        watermark = ClockModulationWatermark.from_config(small_config)
        assert watermark.added_register_count == 32  # 4 words x 8 bits (redundant bank)

    def test_reusing_ip_block_adds_no_registers(self, small_config):
        watermark = ClockModulationWatermark.reusing_ip_block(
            modulated_registers=4096, config=small_config
        )
        assert watermark.added_register_count == 0
        assert isinstance(watermark.modulated_block, ClockModulatedIPBlock)

    def test_cell_inventory_combines_wgc_and_block(self, small_config):
        watermark = ClockModulationWatermark.from_config(small_config)
        inventory = watermark.cell_inventory()
        assert inventory["dff"] >= 32
        assert "icg" in inventory


class TestSharedBehaviour:
    def test_sequence_period(self, small_config):
        watermark = ClockModulationWatermark.from_config(small_config)
        assert watermark.sequence_period == 63
        assert len(watermark.sequence()) == 63

    def test_periodic_activity_length(self, small_config):
        watermark = ClockModulationWatermark.from_config(small_config)
        periodic = watermark.periodic_activity()
        assert len(periodic["wgc"]) == 63
        assert len(periodic["load"]) == 63

    def test_activity_traces_tile_exactly(self, small_config):
        watermark = BaselineWatermark.from_config(small_config)
        period = small_config.sequence_period
        traces = watermark.activity_traces(3 * period)
        one_period = traces["load"].total_toggles[:period]
        assert np.array_equal(traces["load"].total_toggles[period : 2 * period], one_period)

    def test_step_matches_periodic_activity(self, small_config):
        watermark = ClockModulationWatermark.from_config(small_config)
        periodic = watermark.periodic_activity()
        watermark.reset()
        stepped = [watermark.step() for _ in range(10)]
        for cycle, record in enumerate(stepped):
            assert record["load"] == periodic["load"][cycle]

    def test_power_trace_has_watermark_shape(self, small_config, nominal_estimator):
        watermark = ClockModulationWatermark.from_config(small_config)
        period = small_config.sequence_period
        power = watermark.power_trace(nominal_estimator, 2 * period)
        wmark = watermark.sequence(2 * period).astype(bool)
        assert power.power_w[wmark].mean() > power.power_w[~wmark].mean()

    def test_average_active_load_power_positive(self, small_config, nominal_estimator):
        watermark = ClockModulationWatermark.from_config(small_config)
        assert watermark.average_active_load_power(nominal_estimator) > 0

    def test_total_register_count(self, small_config):
        watermark = BaselineWatermark.from_config(small_config)
        assert watermark.total_register_count() == watermark.wgc.register_count + 32

    def test_invalid_cycle_count_rejected(self, small_config):
        watermark = BaselineWatermark.from_config(small_config)
        with pytest.raises(ValueError):
            watermark.activity_traces(0)
