"""Unit tests for repro.rtl.simulator."""

import numpy as np
import pytest

from repro.rtl.activity import ActivityRecord
from repro.rtl.components import Register, ShiftRegister
from repro.rtl.signals import Clock
from repro.rtl.simulator import CycleSimulator


@pytest.fixture
def clock() -> Clock:
    return Clock("clk", 10e6)


class TestCycleSimulator:
    def test_requires_blocks(self, clock):
        simulator = CycleSimulator(clock)
        with pytest.raises(ValueError):
            simulator.run(10)

    def test_requires_positive_cycles(self, clock):
        simulator = CycleSimulator(clock)
        simulator.add_block("a", lambda cycle: ActivityRecord())
        with pytest.raises(ValueError):
            simulator.run(0)

    def test_duplicate_block_rejected(self, clock):
        simulator = CycleSimulator(clock)
        simulator.add_block("a", lambda cycle: ActivityRecord())
        with pytest.raises(ValueError):
            simulator.add_block("a", lambda cycle: ActivityRecord())

    def test_traces_have_requested_length(self, clock):
        simulator = CycleSimulator(clock)
        simulator.add_block("a", lambda cycle: ActivityRecord(clock_toggles=2))
        result = simulator.run(25)
        assert result.num_cycles == 25
        assert len(result.trace("a")) == 25
        assert result.duration_s == pytest.approx(25 * 100e-9)

    def test_cycle_index_passed_to_blocks(self, clock):
        seen = []
        simulator = CycleSimulator(clock)
        simulator.add_block("a", lambda cycle: (seen.append(cycle), ActivityRecord())[1])
        simulator.run(5)
        assert seen == [0, 1, 2, 3, 4]

    def test_combined_trace_sums_blocks(self, clock):
        simulator = CycleSimulator(clock)
        simulator.add_block("a", lambda cycle: ActivityRecord(clock_toggles=1))
        simulator.add_block("b", lambda cycle: ActivityRecord(data_toggles=2))
        result = simulator.run(4)
        combined = result.combined_trace()
        assert combined[0] == ActivityRecord(clock_toggles=1, data_toggles=2)

    def test_trace_lookup_error(self, clock):
        simulator = CycleSimulator(clock)
        simulator.add_block("a", lambda cycle: ActivityRecord())
        result = simulator.run(2)
        with pytest.raises(KeyError):
            result.trace("missing")

    def test_reset_hooks_invoked(self, clock):
        register = ShiftRegister("sr", width=8)
        simulator = CycleSimulator(clock)
        simulator.add_block("sr", lambda cycle: register.shift(enable=True), reset=register.reset)
        simulator.run(3)
        assert register.value != 0b10101010  # odd number of shifts inverts the pattern
        simulator.reset()
        assert register.value == 0b10101010

    def test_run_with_reset_first(self, clock):
        register = Register("r", width=4, reset_value=0x5)
        simulator = CycleSimulator(clock)
        simulator.add_block(
            "r", lambda cycle: register.step(clock_enabled=True, next_value=cycle & 0xF), reset=register.reset
        )
        simulator.run(3)
        result = simulator.run(3, reset_first=True)
        assert result.num_cycles == 3

    def test_block_names_sorted(self, clock):
        simulator = CycleSimulator(clock)
        simulator.add_block("z", lambda cycle: ActivityRecord())
        simulator.add_block("a", lambda cycle: ActivityRecord())
        assert simulator.block_names == ["a", "z"]


class TestRunPeriodic:
    def test_matches_full_run_for_periodic_blocks(self, clock):
        def periodic_block(cycle):
            phase = cycle % 4
            return ActivityRecord(clock_toggles=2, data_toggles=phase, comb_toggles=phase % 2)

        simulator = CycleSimulator(clock)
        simulator.add_block("p", periodic_block)
        for num_cycles in (4, 8, 10, 15):
            full = simulator.run(num_cycles)
            fast = simulator.run_periodic(4, num_cycles)
            assert fast.num_cycles == num_cycles
            assert np.array_equal(
                fast.trace("p").total_toggles, full.trace("p").total_toggles
            )

    def test_short_acquisition_truncates_period(self, clock):
        simulator = CycleSimulator(clock)
        simulator.add_block("p", lambda cycle: ActivityRecord(clock_toggles=2))
        result = simulator.run_periodic(8, 3)
        assert result.num_cycles == 3

    def test_invalid_arguments(self, clock):
        simulator = CycleSimulator(clock)
        simulator.add_block("p", lambda cycle: ActivityRecord())
        with pytest.raises(ValueError):
            simulator.run_periodic(0, 10)
        with pytest.raises(ValueError):
            simulator.run_periodic(4, 0)

    def test_resets_blocks_first_by_default(self, clock):
        # Writing F, 0, F, 0, ... from the reset value 0 is strictly
        # periodic with period 2 starting at the power-on state.
        register = Register("r", width=4, reset_value=0)
        simulator = CycleSimulator(clock)
        simulator.add_block(
            "r",
            lambda cycle: register.step(clock_enabled=True, next_value=((cycle + 1) % 2) * 0xF),
            reset=register.reset,
        )
        simulator.run(3)
        result = simulator.run_periodic(2, 6)
        full = simulator.run(6, reset_first=True)
        assert np.array_equal(
            result.trace("r").total_toggles, full.trace("r").total_toggles
        )
