"""Unit tests for repro.power.report."""

import pytest

from repro.power.report import PowerReport, PowerReportRow, format_power


class TestFormatPower:
    @pytest.mark.parametrize(
        "value, expected_unit",
        [(1.5e-3, "mW"), (2e-6, "uW"), (3e-9, "nW"), (4e-12, "pW"), (0.0, "W")],
    )
    def test_units(self, value, expected_unit):
        assert expected_unit in format_power(value)

    def test_milliwatt_value(self):
        assert format_power(1.51e-3) == "1.51 mW"


class TestPowerReportRow:
    def test_total(self):
        row = PowerReportRow("x", dynamic_w=1e-3, static_w=1e-6)
        assert row.total_w == pytest.approx(1.001e-3)

    def test_as_dict(self):
        row = PowerReportRow("x", dynamic_w=1e-3, static_w=0.0, share_of_watermark_dynamic=0.95)
        data = row.as_dict()
        assert data["implementation"] == "x"
        assert data["share_of_watermark_dynamic"] == 0.95


class TestPowerReport:
    def test_row_lookup(self):
        report = PowerReport("r")
        report.add_row(PowerReportRow("a", 1e-3, 0.0))
        assert report.row("a").dynamic_w == 1e-3
        with pytest.raises(KeyError):
            report.row("missing")

    def test_text_rendering_contains_rows(self):
        report = PowerReport("Table I")
        report.add_row(PowerReportRow("No Data Switching", 1.51e-3, 0.4e-6, 0.956))
        text = report.to_text()
        assert "Table I" in text
        assert "No Data Switching" in text
        assert "95.6%" in text

    def test_len_and_iter(self):
        report = PowerReport("r")
        report.add_row(PowerReportRow("a", 1e-3, 0.0))
        report.add_row(PowerReportRow("b", 2e-3, 0.0))
        assert len(report) == 2
        assert [row.implementation for row in report] == ["a", "b"]
