"""Unit tests for repro.core.lfsr."""

import numpy as np
import pytest

from repro.core.lfsr import (
    LFSR,
    CircularShiftRegister,
    clear_sequence_cache,
    max_length_period,
    max_length_taps,
)


class TestTapTables:
    def test_paper_width_supported(self):
        assert 12 in dict.fromkeys([12])  # the paper uses a 12-bit LFSR
        assert max_length_taps(12) == (12, 6, 4, 1)

    def test_unsupported_width_rejected(self):
        with pytest.raises(ValueError):
            max_length_taps(33)

    def test_period_formula(self):
        assert max_length_period(12) == 4095
        with pytest.raises(ValueError):
            max_length_period(1)


class TestLFSR:
    @pytest.mark.parametrize("width", [2, 3, 4, 5, 6, 7, 8, 10, 12])
    def test_maximum_length_period(self, width):
        lfsr = LFSR(width=width, seed=1)
        seen = {lfsr.state}
        for _ in range(max_length_period(width)):
            lfsr.step()
            seen.add(lfsr.state)
        # After exactly one period the register is back at the seed and has
        # visited every non-zero state.
        assert lfsr.state == 1
        assert len(seen) == max_length_period(width)
        assert 0 not in seen

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            LFSR(width=12, seed=0)

    def test_invalid_tap_rejected(self):
        with pytest.raises(ValueError):
            LFSR(width=8, taps=(8, 9))
        with pytest.raises(ValueError):
            LFSR(width=8, taps=(6, 4))  # must include the width itself

    def test_sequence_duty_cycle_near_half(self):
        lfsr = LFSR(width=12, seed=0x5A5)
        sequence = lfsr.sequence()
        assert len(sequence) == 4095
        # A maximum-length sequence has 2^(n-1) ones and 2^(n-1)-1 zeros.
        assert int(sequence.sum()) == 2048

    def test_sequence_does_not_perturb_state(self):
        lfsr = LFSR(width=8, seed=0x3C)
        lfsr.step()
        state_before = lfsr.state
        lfsr.sequence(100)
        assert lfsr.state == state_before

    def test_sequence_is_periodic(self):
        lfsr = LFSR(width=6, seed=1)
        sequence = lfsr.sequence(2 * lfsr.period)
        assert np.array_equal(sequence[: lfsr.period], sequence[lfsr.period :])

    def test_gated_step_holds_state(self):
        lfsr = LFSR(width=12, seed=1)
        bit, activity = lfsr.step(clock_enabled=False)
        assert lfsr.state == 1
        assert activity.total_toggles == 0

    def test_step_activity_accounts_clock_and_data(self):
        lfsr = LFSR(width=12, seed=1)
        _, activity = lfsr.step()
        assert activity.clock_toggles == 24
        assert activity.data_toggles > 0

    def test_reset_restores_seed(self):
        lfsr = LFSR(width=12, seed=0x123)
        for _ in range(10):
            lfsr.step()
        lfsr.reset()
        assert lfsr.state == 0x123

    def test_register_count(self):
        assert LFSR(width=12).register_count == 12

    def test_invalid_sequence_length_rejected(self):
        with pytest.raises(ValueError):
            LFSR(width=4).sequence(0)


class TestCircularShiftRegister:
    def test_period_equals_width(self):
        csr = CircularShiftRegister(pattern=0b1010, width=4)
        assert csr.period == 4

    def test_rotation_preserves_pattern(self):
        csr = CircularShiftRegister(pattern=0b0011, width=4)
        states = []
        for _ in range(4):
            csr.step()
            states.append(csr.state)
        assert states[-1] == 0b0011  # back to the initial pattern
        assert set(states) == {0b0011, 0b1001, 0b1100, 0b0110}

    def test_sequence_repeats_pattern_bits(self):
        csr = CircularShiftRegister(pattern=0b0101, width=4)
        sequence = csr.sequence(8)
        assert list(sequence) == [1, 0, 1, 0, 1, 0, 1, 0]

    def test_gated_step_is_idle(self):
        csr = CircularShiftRegister(pattern=0b1010, width=4)
        _, activity = csr.step(clock_enabled=False)
        assert activity.total_toggles == 0

    def test_reset(self):
        csr = CircularShiftRegister(pattern=0xF0, width=8)
        csr.step()
        csr.reset()
        assert csr.state == 0xF0

    def test_minimum_width_enforced(self):
        with pytest.raises(ValueError):
            CircularShiftRegister(pattern=1, width=1)


class TestVectorizedSequences:
    """The closed-form generators must equal per-bit stepping exactly."""

    @pytest.mark.parametrize("width", list(range(2, 33)))
    def test_lfsr_closed_form_matches_stepped(self, width):
        mask = (1 << width) - 1
        for seed in (1, 0x5A5 & mask or 1, mask, 0x2D & mask or 3):
            lfsr = LFSR(width=width, seed=seed)
            length = min(max_length_period(width), 1024) + 17
            assert np.array_equal(lfsr.sequence(length), lfsr.stepped_sequence(length))

    @pytest.mark.parametrize("width", [2, 5, 8, 13, 24, 32])
    def test_csr_closed_form_matches_stepped(self, width):
        mask = (1 << width) - 1
        for pattern in (0b10, 0xAAAAAAAA & mask, 0x5A5 & mask, 1):
            csr = CircularShiftRegister(pattern=pattern, width=width)
            length = 3 * width + 5
            assert np.array_equal(csr.sequence(length), csr.stepped_sequence(length))

    @pytest.mark.parametrize("width", list(range(2, 15)))
    def test_full_period_window_uniqueness(self, width):
        # A maximum-length sequence contains every non-zero width-bit word
        # exactly once per period (windows are the Fibonacci-form states).
        period = max_length_period(width)
        bits = LFSR(width=width, seed=1).sequence(period).astype(np.int64)
        windows = np.zeros(period, dtype=np.int64)
        for position in range(width):
            windows |= np.roll(bits, -position) << position
        assert len(np.unique(windows)) == period
        assert 0 not in windows

    def test_custom_non_maximum_taps_still_match_stepped(self):
        # x^4 + x^2 + 1 is reducible (period < 15); the closed form must not
        # assume maximum length.
        lfsr = LFSR(width=4, seed=0b1011, taps=(4, 2))
        assert np.array_equal(lfsr.sequence(64), lfsr.stepped_sequence(64))

    def test_cache_serves_copies(self):
        clear_sequence_cache()
        lfsr = LFSR(width=8, seed=0x2D)
        first = lfsr.sequence()
        first[0] ^= 1  # mutate the returned array
        second = lfsr.sequence()
        assert second[0] == first[0] ^ 1  # the cache was not corrupted

    def test_sequence_does_not_perturb_state(self):
        lfsr = LFSR(width=12, seed=0x5A5)
        lfsr.step()
        state_before = lfsr.state
        lfsr.sequence(100)
        lfsr.stepped_sequence(100)
        assert lfsr.state == state_before

    def test_cache_extension_regenerates_longer_sequences(self):
        clear_sequence_cache()
        lfsr = LFSR(width=6, seed=1)
        short = lfsr.sequence(10)
        longer = lfsr.sequence(200)
        assert np.array_equal(longer[:10], short)
        assert np.array_equal(longer, lfsr.stepped_sequence(200))
