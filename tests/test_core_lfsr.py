"""Unit tests for repro.core.lfsr."""

import numpy as np
import pytest

from repro.core.lfsr import (
    LFSR,
    CircularShiftRegister,
    max_length_period,
    max_length_taps,
)


class TestTapTables:
    def test_paper_width_supported(self):
        assert 12 in dict.fromkeys([12])  # the paper uses a 12-bit LFSR
        assert max_length_taps(12) == (12, 6, 4, 1)

    def test_unsupported_width_rejected(self):
        with pytest.raises(ValueError):
            max_length_taps(33)

    def test_period_formula(self):
        assert max_length_period(12) == 4095
        with pytest.raises(ValueError):
            max_length_period(1)


class TestLFSR:
    @pytest.mark.parametrize("width", [2, 3, 4, 5, 6, 7, 8, 10, 12])
    def test_maximum_length_period(self, width):
        lfsr = LFSR(width=width, seed=1)
        seen = {lfsr.state}
        for _ in range(max_length_period(width)):
            lfsr.step()
            seen.add(lfsr.state)
        # After exactly one period the register is back at the seed and has
        # visited every non-zero state.
        assert lfsr.state == 1
        assert len(seen) == max_length_period(width)
        assert 0 not in seen

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            LFSR(width=12, seed=0)

    def test_invalid_tap_rejected(self):
        with pytest.raises(ValueError):
            LFSR(width=8, taps=(8, 9))
        with pytest.raises(ValueError):
            LFSR(width=8, taps=(6, 4))  # must include the width itself

    def test_sequence_duty_cycle_near_half(self):
        lfsr = LFSR(width=12, seed=0x5A5)
        sequence = lfsr.sequence()
        assert len(sequence) == 4095
        # A maximum-length sequence has 2^(n-1) ones and 2^(n-1)-1 zeros.
        assert int(sequence.sum()) == 2048

    def test_sequence_does_not_perturb_state(self):
        lfsr = LFSR(width=8, seed=0x3C)
        lfsr.step()
        state_before = lfsr.state
        lfsr.sequence(100)
        assert lfsr.state == state_before

    def test_sequence_is_periodic(self):
        lfsr = LFSR(width=6, seed=1)
        sequence = lfsr.sequence(2 * lfsr.period)
        assert np.array_equal(sequence[: lfsr.period], sequence[lfsr.period :])

    def test_gated_step_holds_state(self):
        lfsr = LFSR(width=12, seed=1)
        bit, activity = lfsr.step(clock_enabled=False)
        assert lfsr.state == 1
        assert activity.total_toggles == 0

    def test_step_activity_accounts_clock_and_data(self):
        lfsr = LFSR(width=12, seed=1)
        _, activity = lfsr.step()
        assert activity.clock_toggles == 24
        assert activity.data_toggles > 0

    def test_reset_restores_seed(self):
        lfsr = LFSR(width=12, seed=0x123)
        for _ in range(10):
            lfsr.step()
        lfsr.reset()
        assert lfsr.state == 0x123

    def test_register_count(self):
        assert LFSR(width=12).register_count == 12

    def test_invalid_sequence_length_rejected(self):
        with pytest.raises(ValueError):
            LFSR(width=4).sequence(0)


class TestCircularShiftRegister:
    def test_period_equals_width(self):
        csr = CircularShiftRegister(pattern=0b1010, width=4)
        assert csr.period == 4

    def test_rotation_preserves_pattern(self):
        csr = CircularShiftRegister(pattern=0b0011, width=4)
        states = []
        for _ in range(4):
            csr.step()
            states.append(csr.state)
        assert states[-1] == 0b0011  # back to the initial pattern
        assert set(states) == {0b0011, 0b1001, 0b1100, 0b0110}

    def test_sequence_repeats_pattern_bits(self):
        csr = CircularShiftRegister(pattern=0b0101, width=4)
        sequence = csr.sequence(8)
        assert list(sequence) == [1, 0, 1, 0, 1, 0, 1, 0]

    def test_gated_step_is_idle(self):
        csr = CircularShiftRegister(pattern=0b1010, width=4)
        _, activity = csr.step(clock_enabled=False)
        assert activity.total_toggles == 0

    def test_reset(self):
        csr = CircularShiftRegister(pattern=0xF0, width=8)
        csr.step()
        csr.reset()
        assert csr.state == 0xF0

    def test_minimum_width_enforced(self):
        with pytest.raises(ValueError):
            CircularShiftRegister(pattern=1, width=1)
