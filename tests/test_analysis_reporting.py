"""repro-lint v2 reporting: SARIF 2.1.0 shape, baselines, incremental cache."""

import json
import os
import textwrap

import pytest

from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    update_baseline,
)
from repro.analysis.cache import CACHE_FORMAT_VERSION, LintCache, rules_signature
from repro.analysis.engine import (
    META_RULE_ID,
    Finding,
    lint_paths,
    lint_source,
    unsuppressed,
)
from repro.analysis.rules import ALL_RULES, RULE_INDEX
from repro.analysis.sarif import SARIF_VERSION, render_sarif, sarif_dict

VIOLATING = textwrap.dedent(
    """
    import random

    def roll():
        return random.random()
    """
).lstrip("\n")

CLEAN = "VALUE = 1\n"


def _findings_with_suppressions():
    source = textwrap.dedent(
        """
        import random

        def roll():
            return random.random()

        def roll_excused():
            # repro-lint: allow[RNG001] demo fixture
            return random.random()
        """
    ).lstrip("\n")
    findings = lint_source(source, "src/repro/demo.py")
    baselined = Finding(
        rule_id="DET001",
        path="src/repro/other.py",
        line=3,
        message="time.time() call",
        suppressed=True,
        suppression_reason="baseline: legacy banner",
        baselined=True,
    )
    return list(findings) + [baselined]


# -- SARIF -----------------------------------------------------------------------


class TestSarif:
    def test_log_skeleton_matches_2_1_0_required_properties(self):
        log = sarif_dict(_findings_with_suppressions())
        # sarifLog: version + runs are the schema's required properties
        assert log["version"] == SARIF_VERSION == "2.1.0"
        assert "sarif-schema-2.1.0" in log["$schema"]
        assert isinstance(log["runs"], list) and log["runs"]
        run = log["runs"][0]
        # run requires tool; tool requires driver; driver requires name
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        for descriptor in driver["rules"]:
            assert set(descriptor) >= {"id", "shortDescription"}
            assert descriptor["shortDescription"]["text"]

    def test_results_carry_rule_index_message_and_location(self):
        log = sarif_dict(_findings_with_suppressions())
        run = log["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        assert run["results"], "expected findings in the demo fixture"
        for result in run["results"]:
            assert result["message"]["text"]
            location = result["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"]
            assert location["region"]["startLine"] >= 1
            # ruleIndex must point at the descriptor for ruleId
            index = result["ruleIndex"]
            assert rules[index]["id"] == result["ruleId"]

    def test_suppression_kinds_distinguish_pragma_from_baseline(self):
        log = sarif_dict(_findings_with_suppressions())
        kinds = {}
        for result in log["runs"][0]["results"]:
            for suppression in result.get("suppressions", ()):
                assert suppression["kind"] in ("inSource", "external")
                kinds[result["ruleId"]] = suppression["kind"]
        assert kinds["RNG001"] == "inSource"  # pragma
        assert kinds["DET001"] == "external"  # baseline

    def test_unsuppressed_results_have_no_suppressions_key(self):
        log = sarif_dict(_findings_with_suppressions())
        raw = [
            result
            for result in log["runs"][0]["results"]
            if "suppressions" not in result
        ]
        assert raw, "the unsuppressed RNG001 must appear without suppressions"

    def test_render_is_valid_json(self):
        text = render_sarif(_findings_with_suppressions())
        assert json.loads(text)["version"] == "2.1.0"

    def test_meta_rule_always_has_a_descriptor(self):
        log = sarif_dict([], rules=[RULE_INDEX["RNG001"]])
        ids = [d["id"] for d in log["runs"][0]["tool"]["driver"]["rules"]]
        assert ids[0] == META_RULE_ID


# -- baseline --------------------------------------------------------------------


def _write_baseline(path, entries):
    path.write_text(json.dumps({"version": 1, "entries": entries}))


class TestBaseline:
    def _finding(self):
        return Finding(
            rule_id="RNG001",
            path="src/repro/demo.py",
            line=4,
            message="random.random() draws from the process-global stream",
        )

    def test_matching_entry_suppresses_and_records_justification(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        finding = self._finding()
        _write_baseline(
            baseline,
            [
                {
                    "rule": finding.rule_id,
                    "path": finding.path,
                    "line": finding.line,
                    "message": finding.message,
                    "justification": "legacy demo path",
                }
            ],
        )
        out = apply_baseline([finding], baseline)
        assert len(out) == 1
        assert out[0].suppressed and out[0].baselined
        assert out[0].suppression_reason == "baseline: legacy demo path"
        assert unsuppressed(out) == []

    def test_expired_entry_becomes_dead001_at_the_baseline_file(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        _write_baseline(
            baseline,
            [
                {
                    "rule": "RNG001",
                    "path": "src/repro/gone.py",
                    "line": 9,
                    "message": "random.random() call removed last week",
                    "justification": "was fine",
                }
            ],
        )
        out = apply_baseline([], baseline)
        assert [f.rule_id for f in out] == ["DEAD001"]
        assert out[0].path == str(baseline)
        assert "gone.py" in out[0].message
        assert not out[0].suppressed

    def test_out_of_scope_entry_is_neither_consumed_nor_expired(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        _write_baseline(
            baseline,
            [
                {
                    "rule": "RNG001",
                    "path": "src/repro/elsewhere.py",
                    "line": 9,
                    "message": "something",
                    "justification": "still valid",
                }
            ],
        )
        out = apply_baseline(
            [self._finding()], baseline, linted_paths=["src/repro/demo.py"]
        )
        assert [f.rule_id for f in out] == ["RNG001"]

    def test_one_entry_consumes_one_finding(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        finding = self._finding()
        _write_baseline(
            baseline,
            [
                {
                    "rule": finding.rule_id,
                    "path": finding.path,
                    "line": finding.line,
                    "message": finding.message,
                    "justification": "one only",
                }
            ],
        )
        out = apply_baseline([finding, finding], baseline)
        assert sorted(f.suppressed for f in out) == [False, True]

    @pytest.mark.parametrize(
        "entry, fragment",
        [
            ("not-a-dict", "not an object"),
            ({"rule": "RNG001"}, "missing key"),
            (
                {
                    "rule": "NOPE999",
                    "path": "x.py",
                    "message": "m",
                    "justification": "j",
                },
                "unknown rule",
            ),
            (
                {
                    "rule": "RNG001",
                    "path": "x.py",
                    "message": "m",
                    "justification": "   ",
                },
                "no justification",
            ),
            (
                {
                    "rule": META_RULE_ID,
                    "path": "x.py",
                    "message": "m",
                    "justification": "j",
                },
                "cannot be baselined",
            ),
        ],
    )
    def test_malformed_entries_are_lint001(self, tmp_path, entry, fragment):
        baseline = tmp_path / "baseline.json"
        _write_baseline(baseline, [entry])
        entries, problems = load_baseline(baseline)
        assert entries == []
        assert [p.rule_id for p in problems] == [META_RULE_ID]
        assert fragment in problems[0].message

    def test_unreadable_baseline_is_lint001(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{truncated")
        out = apply_baseline([], baseline)
        assert [f.rule_id for f in out] == [META_RULE_ID]

    def test_update_round_trip_carries_justifications(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        finding = self._finding()
        total, missing = update_baseline([finding], baseline)
        assert (total, missing) == (1, 1)  # fresh entry: justification owed
        data = json.loads(baseline.read_text())
        assert data["entries"][0]["justification"] == ""
        # the committer writes the justification...
        data["entries"][0]["justification"] = "reviewed 2026-08"
        baseline.write_text(json.dumps(data))
        # ...and a later --update-baseline must not lose it
        total, missing = update_baseline([finding], baseline)
        assert (total, missing) == (1, 0)
        data = json.loads(baseline.read_text())
        assert data["entries"][0]["justification"] == "reviewed 2026-08"
        # round-trip: the updated file suppresses the finding
        out = apply_baseline([finding], baseline)
        assert unsuppressed(out) == []

    def test_update_drops_entries_for_fixed_findings(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        update_baseline([self._finding()], baseline)
        update_baseline([], baseline)
        assert json.loads(baseline.read_text())["entries"] == []

    def test_suppressed_findings_are_not_baselined_again(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        finding = Finding(
            rule_id="RNG001",
            path="a.py",
            line=1,
            message="m",
            suppressed=True,
            suppression_reason="pragma",
        )
        total, _ = update_baseline([finding], baseline)
        assert total == 0


# -- incremental cache -----------------------------------------------------------


class TestLintCache:
    def _tree(self, tmp_path):
        root = tmp_path / "src"
        root.mkdir()
        (root / "violating.py").write_text(VIOLATING)
        (root / "clean.py").write_text(CLEAN)
        return root

    def _cache(self, tmp_path, rules=ALL_RULES):
        return LintCache(tmp_path / "cache", rules_signature(rules))

    def test_warm_run_hits_and_findings_are_identical(self, tmp_path):
        root = self._tree(tmp_path)
        cold_cache = self._cache(tmp_path)
        cold, files = lint_paths([str(root)], cache=cold_cache)
        assert cold_cache.hits == 0 and cold_cache.misses == 2
        warm_cache = self._cache(tmp_path)
        warm, _ = lint_paths([str(root)], cache=warm_cache)
        assert warm_cache.hits == 2 and warm_cache.misses == 0
        assert [f.to_json_dict() for f in warm] == [
            f.to_json_dict() for f in cold
        ]
        assert files == 2
        assert any(f.rule_id == "RNG001" for f in warm)

    def test_edit_invalidates_only_the_edited_file(self, tmp_path):
        root = self._tree(tmp_path)
        lint_paths([str(root)], cache=self._cache(tmp_path))
        (root / "clean.py").write_text("VALUE = 2\n")
        cache = self._cache(tmp_path)
        findings, _ = lint_paths([str(root)], cache=cache)
        assert cache.hits == 1 and cache.misses == 1
        assert any(f.rule_id == "RNG001" for f in findings)

    def test_touch_with_same_content_still_hits(self, tmp_path):
        root = self._tree(tmp_path)
        lint_paths([str(root)], cache=self._cache(tmp_path))
        target = root / "clean.py"
        stat = target.stat()
        os.utime(target, ns=(stat.st_atime_ns, stat.st_mtime_ns + 5_000_000))
        cache = self._cache(tmp_path)
        lint_paths([str(root)], cache=cache)
        # mtime drifted -> content hash decides -> still a hit
        assert cache.hits == 2 and cache.misses == 0
        # and the entry's stat was refreshed: next run takes the fast path
        again = self._cache(tmp_path)
        lint_paths([str(root)], cache=again)
        assert again.hits == 2 and again.misses == 0

    def test_rule_set_change_misses(self, tmp_path):
        root = self._tree(tmp_path)
        lint_paths([str(root)], cache=self._cache(tmp_path))
        subset = [RULE_INDEX["DET001"]]
        cache = self._cache(tmp_path, rules=subset)
        findings, _ = lint_paths([str(root)], subset, cache=cache)
        assert cache.hits == 0 and cache.misses == 2
        assert all(f.rule_id != "RNG001" for f in unsuppressed(findings))

    def test_signature_covers_format_version(self):
        assert rules_signature(ALL_RULES) != rules_signature(ALL_RULES[:1])
        payload = json.dumps(
            {
                "format": CACHE_FORMAT_VERSION,
                "rules": sorted(r.rule_id for r in ALL_RULES),
            },
            sort_keys=True,
        )
        import hashlib

        assert (
            rules_signature(ALL_RULES)
            == hashlib.sha256(payload.encode()).hexdigest()[:16]
        )

    def test_corrupt_entry_is_a_miss_not_a_crash(self, tmp_path):
        root = self._tree(tmp_path)
        cache = self._cache(tmp_path)
        lint_paths([str(root)], cache=cache)
        for entry in (tmp_path / "cache").iterdir():
            entry.write_text("{torn")
        cache = self._cache(tmp_path)
        findings, _ = lint_paths([str(root)], cache=cache)
        assert cache.misses == 2
        assert any(f.rule_id == "RNG001" for f in findings)

    def test_project_rules_still_run_on_warm_cache(self, tmp_path):
        # cached summaries must feed the cross-module pass: a CONC003
        # violation reports identically cold and warm
        root = tmp_path / "src" / "repro"
        (root / "service").mkdir(parents=True)
        (root / "service" / "memo.py").write_text(
            textwrap.dedent(
                """
                _MEMO = {}

                def lookup(key):
                    if key not in _MEMO:
                        _MEMO[key] = key * 2
                    return _MEMO[key]
                """
            ).lstrip("\n")
        )
        cold, _ = lint_paths([str(root)], cache=self._cache(tmp_path))
        warm_cache = self._cache(tmp_path)
        warm, _ = lint_paths([str(root)], cache=warm_cache)
        assert warm_cache.hits == 1
        assert [f.rule_id for f in unsuppressed(warm)] == ["CONC003"]
        assert [f.to_json_dict() for f in warm] == [
            f.to_json_dict() for f in cold
        ]
