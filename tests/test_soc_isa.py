"""Unit tests for repro.soc.isa."""

import pytest

from repro.soc.isa import (
    BASE_CYCLES,
    Condition,
    Instruction,
    Opcode,
    Operand,
    parse_register,
)


class TestOperand:
    def test_register_operand(self):
        assert Operand.reg(3).value == 3
        with pytest.raises(ValueError):
            Operand.reg(16)

    def test_immediate_operand(self):
        assert Operand.imm(42).value == 42

    def test_memory_operand(self):
        operand = Operand.mem(2, 8)
        assert operand.value == (2, 8)

    def test_reglist_sorted(self):
        assert Operand.reglist([5, 4, 14]).value == (4, 5, 14)


class TestInstruction:
    def test_branch_classification(self):
        branch = Instruction(Opcode.B, (Operand.label("loop"),))
        assert branch.is_branch
        assert not Instruction(Opcode.ADD).is_branch

    def test_memory_classification(self):
        load = Instruction(Opcode.LDR, (Operand.reg(0), Operand.mem(1, 0)))
        assert load.is_memory
        assert not Instruction(Opcode.MOV).is_memory

    def test_base_cycles_alu(self):
        assert Instruction(Opcode.ADD).base_cycles() == 1

    def test_base_cycles_load(self):
        assert Instruction(Opcode.LDR).base_cycles() == 2

    def test_push_cycles_scale_with_reglist(self):
        push = Instruction(Opcode.PUSH, (Operand.reglist([4, 5, 14]),))
        assert push.base_cycles() == BASE_CYCLES[Opcode.PUSH] + 3

    def test_encoding_is_16_bit(self):
        for opcode in Opcode:
            word = Instruction(opcode).encode()
            assert 0 <= word <= 0xFFFF

    def test_encoding_distinguishes_operands(self):
        a = Instruction(Opcode.MOV, (Operand.reg(0), Operand.imm(1)))
        b = Instruction(Opcode.MOV, (Operand.reg(0), Operand.imm(255)))
        assert a.encode() != b.encode()

    def test_string_rendering(self):
        instruction = Instruction(Opcode.B, (Operand.label("loop"),), condition=Condition.NE)
        assert "ne" in str(instruction)


class TestParseRegister:
    @pytest.mark.parametrize("token, expected", [("r0", 0), ("R7", 7), ("sp", 13), ("lr", 14), ("pc", 15)])
    def test_valid_names(self, token, expected):
        assert parse_register(token) == expected

    @pytest.mark.parametrize("token", ["r16", "x0", "", "r-1"])
    def test_invalid_names(self, token):
        with pytest.raises(ValueError):
            parse_register(token)
