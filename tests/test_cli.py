"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import QUICK_CYCLES, build_parser, main
from repro.core.spec import ScenarioSpec


class TestParser:
    def test_known_experiments(self):
        parser = build_parser()
        for name in ("fig2", "fig3", "fig5", "fig6", "table1", "table2", "robustness", "all"):
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_unknown_experiment_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["fig99"])

    def test_options(self):
        args = build_parser().parse_args(["fig5", "--cycles", "1000", "--quick"])
        assert args.cycles == 1000
        assert args.quick


class TestMain:
    def test_table2_runs(self, capsys):
        assert main(["table2"]) == 0
        output = capsys.readouterr().out
        assert "98.0%" in output
        assert "experiment: table2" in output

    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        assert "No Data Switching" in capsys.readouterr().out

    def test_fig2_runs(self, capsys):
        assert main(["fig2"]) == 0
        assert "WMARK" in capsys.readouterr().out

    def test_robustness_runs(self, capsys):
        assert main(["robustness"]) == 0
        assert "improved robustness demonstrated: True" in capsys.readouterr().out

    def test_fig5_quick_runs(self, capsys):
        assert main(["fig5", "--quick", "--cycles", "40000"]) == 0
        output = capsys.readouterr().out
        assert "chip1" in output and "chip2" in output

    def test_fig6_quick_runs(self, capsys):
        assert main(["fig6", "--quick", "--cycles", "40000", "--repetitions", "5"]) == 0
        assert "repetitions" in capsys.readouterr().out

    def test_invalid_cycles_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig5", "--cycles", "-5"])

    def test_invalid_repetitions_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig6", "--repetitions", "0"])


class TestRegistryCommands:
    def test_list_prints_every_scenario(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in ("fig2", "fig5/chip1-active", "fig6/chip2", "table2", "robustness"):
            assert name in output

    def test_list_json(self, tmp_path, capsys):
        path = tmp_path / "scenarios.json"
        assert main(["list", "--json", str(path)]) == 0
        capsys.readouterr()
        entries = json.loads(path.read_text())
        assert {"name", "paper_ref", "title"} <= set(entries[0])
        assert any(entry["name"] == "fig5" for entry in entries)

    def test_run_by_name_with_json_output(self, tmp_path, capsys):
        path = tmp_path / "result.json"
        assert main(["run", "table2", "--json", str(path)]) == 0
        output = capsys.readouterr().out
        assert "scenario: table2" in output
        assert "spec hash:" in output
        payload = json.loads(path.read_text())
        assert payload["scalars"]["headline_reduction"] == pytest.approx(0.98, abs=0.01)
        assert payload["provenance"]["spec_hash"] == ScenarioSpec.from_json_dict(
            payload["spec"]
        ).spec_hash()

    def test_run_spec_file(self, tmp_path, capsys):
        spec_path = ScenarioSpec(kind="fig2", name="from-file", seed=9).save(
            tmp_path / "spec.json"
        )
        assert main(["run", str(spec_path)]) == 0
        assert "scenario: from-file" in capsys.readouterr().out

    def test_run_spec_file_honours_options(self, tmp_path, capsys):
        spec_path = ScenarioSpec(kind="fig2", name="from-file", seed=9).save(
            tmp_path / "spec.json"
        )
        out_path = tmp_path / "out.json"
        assert main(["run", str(spec_path), "--seed", "5", "--json", str(out_path)]) == 0
        capsys.readouterr()
        payload = json.loads(out_path.read_text())
        assert payload["spec"]["seed"] == 5

    def test_run_save_artifact(self, tmp_path, capsys):
        target = tmp_path / "artifact"
        assert main(["run", "fig2", "--save", str(target)]) == 0
        capsys.readouterr()
        assert (tmp_path / "artifact.json").exists()
        assert (tmp_path / "artifact.npz").exists()

    def test_run_unknown_scenario_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])
        assert "unknown scenario" in capsys.readouterr().err

    def test_seed_flag_changes_the_spec(self, tmp_path, capsys):
        default_path = tmp_path / "default.json"
        seeded_path = tmp_path / "seeded.json"
        assert main(["run", "fig2", "--json", str(default_path)]) == 0
        assert main(["run", "fig2", "--seed", "5", "--json", str(seeded_path)]) == 0
        capsys.readouterr()
        default = json.loads(default_path.read_text())
        seeded = json.loads(seeded_path.read_text())
        assert default["spec"]["seed"] == 9
        assert seeded["spec"]["seed"] == 5
        assert default["provenance"]["spec_hash"] != seeded["provenance"]["spec_hash"]

    def test_sweep_with_json_output(self, tmp_path, capsys):
        path = tmp_path / "sweep.json"
        assert main(["sweep", "table1", "table2", "--json", str(path)]) == 0
        output = capsys.readouterr().out
        assert "scenario: table1" in output and "scenario: table2" in output
        assert "sweep of 2 scenarios" in output
        payload = json.loads(path.read_text())
        assert [entry["spec"]["name"] for entry in payload["results"]] == [
            "table1",
            "table2",
        ]

    def test_legacy_json_option(self, tmp_path, capsys):
        path = tmp_path / "table1.json"
        assert main(["table1", "--json", str(path)]) == 0
        capsys.readouterr()
        assert json.loads(path.read_text())["spec"]["kind"] == "table1"


class TestSweepBackendsAndGrids:
    def test_sweep_process_backend(self, tmp_path, capsys):
        path = tmp_path / "sweep.json"
        assert (
            main(
                [
                    "sweep", "fig2", "table2",
                    "--backend", "process", "--workers", "2",
                    "--json", str(path),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "scenario: fig2" in output and "scenario: table2" in output
        payload = json.loads(path.read_text())
        assert [entry["spec"]["name"] for entry in payload["results"]] == [
            "fig2",
            "table2",
        ]
        assert all(entry["error"] is None for entry in payload["results"])

    def test_grid_flags_expand_scenarios(self, tmp_path, capsys):
        path = tmp_path / "grid.json"
        assert (
            main(["sweep", "fig2", "--grid-seeds", "1", "2", "3", "--json", str(path)])
            == 0
        )
        capsys.readouterr()
        payload = json.loads(path.read_text())
        names = [entry["spec"]["name"] for entry in payload["results"]]
        assert names == ["fig2[seed=1]", "fig2[seed=2]", "fig2[seed=3]"]
        assert [entry["spec"]["seed"] for entry in payload["results"]] == [1, 2, 3]

    def test_invalid_workers_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "fig2", "--backend", "process", "--workers", "0"])

    def test_invalid_grid_length_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "fig2", "--grid-lengths", "-5"])

    def test_save_into_directory_uses_sanitized_stem(self, tmp_path, capsys):
        spec_path = ScenarioSpec(kind="fig2", name="demo/cell-1", seed=9).save(
            tmp_path / "spec.json"
        )
        out_dir = tmp_path / "artifacts"
        out_dir.mkdir()
        assert main(["run", str(spec_path), "--save", str(out_dir)]) == 0
        capsys.readouterr()
        assert (out_dir / "demo-cell-1.json").exists()
        assert not (out_dir / "demo").exists()

    def test_run_spec_file_without_json_suffix(self, tmp_path, capsys):
        spec_path = ScenarioSpec(kind="fig2", name="odd", seed=9).save(
            tmp_path / "scenario.spec"
        )
        assert main(["run", str(spec_path)]) == 0
        assert "scenario: odd" in capsys.readouterr().out

    def test_failed_cell_sets_exit_code(self, tmp_path, capsys):
        bad = ScenarioSpec(kind="fig5_panel", name="bad-cell").save(
            tmp_path / "bad.json"
        )
        assert main(["sweep", "fig2", str(bad)]) == 1
        output = capsys.readouterr().out
        assert "FAILED" in output and "(1 FAILED)" in output


class TestResultStoreCommands:
    def _sweep(self, store, json_path, resume=True):
        argv = ["sweep", "fig2", "table2", "--store", str(store)]
        if resume:
            argv.append("--resume")
        return main(argv + ["--json", str(json_path)])

    def test_warm_sweep_hits_and_matches_cold_report(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert self._sweep(store, tmp_path / "cold.json") == 0
        cold_out = capsys.readouterr().out
        assert "0 hit(s)" in cold_out and "2 written" in cold_out
        assert self._sweep(store, tmp_path / "warm.json") == 0
        warm_out = capsys.readouterr().out
        assert "2 hit(s), 0 miss(es)" in warm_out
        cold = json.loads((tmp_path / "cold.json").read_text())
        warm = json.loads((tmp_path / "warm.json").read_text())
        del cold["elapsed_s"], warm["elapsed_s"]
        for entry in cold["results"] + warm["results"]:
            del entry["provenance"]["elapsed_s"]
        assert cold == warm

    def test_store_without_resume_only_records(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert self._sweep(store, tmp_path / "a.json", resume=False) == 0
        capsys.readouterr()
        assert self._sweep(store, tmp_path / "b.json", resume=False) == 0
        assert "0 hit(s)" in capsys.readouterr().out

    def test_run_command_uses_store(self, tmp_path, capsys):
        store = tmp_path / "store"
        argv = ["run", "table2", "--store", str(store), "--resume"]
        assert main(argv) == 0
        assert "1 written" in capsys.readouterr().out
        assert main(argv) == 0
        assert "1 hit(s), 0 miss(es)" in capsys.readouterr().out

    def test_resume_requires_store(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "fig2", "--resume"])
        assert "--resume requires --store" in capsys.readouterr().err

    def test_store_stats_command(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert self._sweep(store, tmp_path / "sweep.json") == 0
        capsys.readouterr()
        assert main(["store", "stats", str(store)]) == 0
        output = capsys.readouterr().out
        assert "entries: 2" in output and "salt:" in output

    def test_store_verify_clean_and_corrupt(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert self._sweep(store, tmp_path / "sweep.json") == 0
        capsys.readouterr()
        assert main(["store", "verify", str(store)]) == 0
        assert "0 problem(s)" in capsys.readouterr().out
        npz = next(store.rglob("*.npz"))
        npz.write_bytes(b"garbage")
        assert main(["store", "verify", str(store)]) == 1
        output = capsys.readouterr().out
        assert "PROBLEM" in output

    def test_store_gc_removes_corrupt_entries(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert self._sweep(store, tmp_path / "sweep.json") == 0
        capsys.readouterr()
        next(store.rglob("*.npz")).write_bytes(b"garbage")
        assert main(["store", "gc", str(store)]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["store", "verify", str(store)]) == 0
