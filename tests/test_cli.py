"""Unit tests for the command-line interface."""

import pytest

from repro.cli import QUICK_CYCLES, build_parser, main


class TestParser:
    def test_known_experiments(self):
        parser = build_parser()
        for name in ("fig2", "fig3", "fig5", "fig6", "table1", "table2", "robustness", "all"):
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_unknown_experiment_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["fig99"])

    def test_options(self):
        args = build_parser().parse_args(["fig5", "--cycles", "1000", "--quick"])
        assert args.cycles == 1000
        assert args.quick


class TestMain:
    def test_table2_runs(self, capsys):
        assert main(["table2"]) == 0
        output = capsys.readouterr().out
        assert "98.0%" in output
        assert "experiment: table2" in output

    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        assert "No Data Switching" in capsys.readouterr().out

    def test_fig2_runs(self, capsys):
        assert main(["fig2"]) == 0
        assert "WMARK" in capsys.readouterr().out

    def test_robustness_runs(self, capsys):
        assert main(["robustness"]) == 0
        assert "improved robustness demonstrated: True" in capsys.readouterr().out

    def test_fig5_quick_runs(self, capsys):
        assert main(["fig5", "--quick", "--cycles", "40000"]) == 0
        output = capsys.readouterr().out
        assert "chip1" in output and "chip2" in output

    def test_fig6_quick_runs(self, capsys):
        assert main(["fig6", "--quick", "--cycles", "40000", "--repetitions", "5"]) == 0
        assert "repetitions" in capsys.readouterr().out

    def test_invalid_cycles_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig5", "--cycles", "-5"])

    def test_invalid_repetitions_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig6", "--repetitions", "0"])
