"""End-to-end integration tests across all subsystems.

These tests walk the full pipeline the paper describes: build a watermarked
SoC model, run the workload, measure the supply power through the modelled
bench setup, and detect (or correctly fail to detect) the watermark with
CPA -- plus the structural embedding/attack loop.
"""

import numpy as np
import pytest

from repro.core.architectures import BaselineWatermark, ClockModulationWatermark
from repro.core.config import (
    DetectionConfig,
    ExperimentConfig,
    MeasurementConfig,
    WatermarkConfig,
)
from repro.detection.cpa import CPADetector
from repro.measurement.acquisition import AcquisitionCampaign
from repro.soc.chip import build_chip_one, build_chip_two
from repro.soc.workloads import idle_loop_program, memcopy_program


@pytest.fixture(scope="module")
def pipeline_config() -> ExperimentConfig:
    return ExperimentConfig(
        watermark=WatermarkConfig(lfsr_width=9, lfsr_seed=0x155),
        measurement=MeasurementConfig(
            num_cycles=50_000,
            transient_noise_floor_w=0.018,
            transient_noise_fraction=0.4,
            seed=3,
        ),
    )


class TestFullDetectionPipeline:
    def test_clock_modulation_watermark_detected_through_full_chain(self, pipeline_config):
        watermark = ClockModulationWatermark.from_config(pipeline_config.watermark)
        chip = build_chip_one(watermark=watermark, m0_window_cycles=2048)
        power = chip.total_power(
            pipeline_config.measurement.num_cycles, watermark_active=True, seed=1,
            watermark_phase_offset=200,
        )
        measured = AcquisitionCampaign(pipeline_config.measurement).measure(power, seed=2)
        result = CPADetector(pipeline_config.detection).detect(chip.watermark_sequence(), measured.values)
        assert result.detected
        assert result.peak_rotation == 200

    def test_baseline_watermark_also_detectable(self, pipeline_config):
        config = pipeline_config.watermark
        baseline = BaselineWatermark.from_config(
            WatermarkConfig(
                architecture=config.architecture,
                lfsr_width=config.lfsr_width,
                lfsr_seed=config.lfsr_seed,
                load_registers=576,
            )
        )
        chip = build_chip_one(watermark=baseline, m0_window_cycles=2048)
        power = chip.total_power(pipeline_config.measurement.num_cycles, seed=4)
        measured = AcquisitionCampaign(pipeline_config.measurement).measure(power, seed=5)
        result = CPADetector().detect(chip.watermark_sequence(), measured.values)
        assert result.detected

    def test_wrong_sequence_is_not_detected(self, pipeline_config):
        # A different seed of the same maximum-length LFSR only rotates the
        # sequence (and is therefore still detected -- CPA is phase blind),
        # so a genuinely wrong model must come from a different generator.
        watermark = ClockModulationWatermark.from_config(pipeline_config.watermark)
        chip = build_chip_one(watermark=watermark, m0_window_cycles=2048)
        power = chip.total_power(pipeline_config.measurement.num_cycles, seed=6)
        measured = AcquisitionCampaign(pipeline_config.measurement).measure(power, seed=7)
        rng = np.random.default_rng(99)
        wrong = (rng.random(len(chip.watermark_sequence())) < 0.5).astype(float)
        result = CPADetector().detect(wrong, measured.values)
        assert not result.detected

    def test_detection_works_under_different_workloads(self, pipeline_config):
        for program_factory in (idle_loop_program, memcopy_program):
            watermark = ClockModulationWatermark.from_config(pipeline_config.watermark)
            chip = build_chip_one(
                watermark=watermark, program=program_factory(), m0_window_cycles=2048
            )
            power = chip.total_power(pipeline_config.measurement.num_cycles, seed=8)
            measured = AcquisitionCampaign(pipeline_config.measurement).measure(power, seed=9)
            result = CPADetector().detect(chip.watermark_sequence(), measured.values)
            assert result.detected, program_factory.__name__

    def test_chip2_background_reduces_peak_but_not_detection(self, pipeline_config):
        watermark1 = ClockModulationWatermark.from_config(pipeline_config.watermark)
        watermark2 = ClockModulationWatermark.from_config(pipeline_config.watermark)
        chip1 = build_chip_one(watermark=watermark1, m0_window_cycles=2048)
        chip2 = build_chip_two(watermark=watermark2, m0_window_cycles=2048)
        campaign = AcquisitionCampaign(pipeline_config.measurement)
        detector = CPADetector()
        results = {}
        for name, chip in (("chip1", chip1), ("chip2", chip2)):
            power = chip.total_power(pipeline_config.measurement.num_cycles, seed=10)
            measured = campaign.measure(power, seed=11)
            results[name] = detector.detect(chip.watermark_sequence(), measured.values)
        assert results["chip1"].detected and results["chip2"].detected
        assert results["chip2"].peak_correlation < results["chip1"].peak_correlation

    def test_more_cycles_improve_confidence(self, pipeline_config):
        watermark = ClockModulationWatermark.from_config(pipeline_config.watermark)
        chip = build_chip_one(watermark=watermark, m0_window_cycles=2048)
        campaign = AcquisitionCampaign(pipeline_config.measurement)
        detector = CPADetector()
        z_scores = []
        for cycles in (15_000, 60_000):
            power = chip.total_power(cycles, seed=12)
            measured = campaign.measure(power, seed=13)
            z_scores.append(detector.detect(chip.watermark_sequence(), measured.values).z_score)
        assert z_scores[1] > z_scores[0]
