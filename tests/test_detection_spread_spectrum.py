"""Unit tests for repro.detection.spread_spectrum."""

import numpy as np
import pytest

from repro.detection.spread_spectrum import SpreadSpectrum


def make_spectrum(peak_value=0.02, peak_rotation=100, size=4095, noise=0.002, seed=0):
    rng = np.random.default_rng(seed)
    correlations = rng.normal(0, noise, size)
    correlations[min(peak_rotation, size - 1)] = peak_value
    return SpreadSpectrum(label="test", correlations=correlations)


class TestSpreadSpectrum:
    def test_peak_properties(self):
        spectrum = make_spectrum(peak_value=0.02, peak_rotation=1234)
        assert spectrum.peak_rotation == 1234
        assert spectrum.peak_correlation == pytest.approx(0.02)
        assert len(spectrum) == 4095

    def test_rotations_axis(self):
        spectrum = make_spectrum(size=63)
        assert list(spectrum.rotations) == list(range(63))

    def test_noise_floor_statistics(self):
        spectrum = make_spectrum(noise=0.003)
        mean, std = spectrum.noise_floor
        assert abs(mean) < 0.001
        assert std == pytest.approx(0.003, rel=0.1)

    def test_single_resolvable_peak(self):
        assert make_spectrum(peak_value=0.02).has_single_resolvable_peak()

    def test_no_peak_in_noise_only_spectrum(self):
        rng = np.random.default_rng(1)
        spectrum = SpreadSpectrum("noise", rng.normal(0, 0.002, 4095))
        assert not spectrum.has_single_resolvable_peak()

    def test_two_peaks_not_single(self):
        spectrum = make_spectrum(peak_value=0.02)
        correlations = spectrum.correlations.copy()
        correlations[2000] = 0.019
        double = SpreadSpectrum("double", correlations)
        assert not double.has_single_resolvable_peak()

    def test_to_series(self):
        spectrum = make_spectrum(size=63)
        series = spectrum.to_series()
        assert len(series) == 63
        assert series[0][0] == 0

    def test_downsample_preserves_peak(self):
        spectrum = make_spectrum(peak_value=0.05, peak_rotation=3000)
        reduced = spectrum.downsample(200)
        assert len(reduced) <= 200
        assert reduced.peak_correlation == pytest.approx(0.05)

    def test_downsample_noop_when_small(self):
        spectrum = make_spectrum(size=100)
        assert spectrum.downsample(200) is spectrum

    def test_render_ascii(self):
        text = make_spectrum().render_ascii(width=60, height=8)
        assert "peak rho" in text
        assert len(text.splitlines()) >= 10

    def test_validation(self):
        with pytest.raises(ValueError):
            SpreadSpectrum("bad", np.zeros((2, 2)))
        with pytest.raises(ValueError):
            SpreadSpectrum("bad", np.array([0.1]))
