"""Fault-tolerant sweep execution: supervision policy + chaos harness.

The supervision layer must keep a sweep correct under every failure mode
it claims to handle: flaky cells retry and end bit-identical to a clean
run, hung cells are timed out (their worker killed and replaced) without
stalling siblings, a hard-killed worker is replaced and its cell
resubmitted, a poison cell is quarantined instead of killing workers
forever, a repeatedly-breaking pool degrades to the serial backend, and
SIGINT/SIGTERM stop the sweep orderly with completed cells already
flushed to the result store -- on *both* backends, driven by the
deterministic chaos harness (:mod:`repro.pipeline.chaos`).
"""

import json
import logging
import os
import signal
import threading
import time

import pytest

from repro.core.spec import ScenarioSpec
from repro.pipeline import ExperimentRunner, grid
from repro.pipeline import backends, chaos, faults
from repro.pipeline.artifacts import ScenarioResult, SweepResult
from repro.pipeline.store import ResultStore


def _specs(n=2):
    return grid("fig2", seeds=list(range(1, n + 1)))


def _cell(seed):
    return f"fig2[seed={seed}]"


@pytest.fixture(scope="module")
def clean_sweep():
    """A fault-free serial baseline for bit-identity comparisons."""
    return ExperimentRunner().run_many(_specs(2), backend="serial")


def _assert_matches_clean(result, clean):
    assert result.scalars == clean.scalars
    assert result.report == clean.report
    assert set(result.arrays) == set(clean.arrays)
    for key in result.arrays:
        assert result.arrays[key].tobytes() == clean.arrays[key].tobytes()


class TestRetryPolicy:
    def test_defaults_and_validation(self):
        policy = faults.RetryPolicy()
        assert policy.max_attempts == 3
        with pytest.raises(ValueError, match="max_attempts"):
            faults.RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="backoff_factor"):
            faults.RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError, match="jitter"):
            faults.RetryPolicy(jitter=1.0)

    def test_coerce_forms(self):
        assert faults.RetryPolicy.coerce(None).max_attempts == 1
        assert faults.RetryPolicy.coerce(2).max_attempts == 3
        policy = faults.RetryPolicy(max_attempts=5)
        assert faults.RetryPolicy.coerce(policy) is policy
        with pytest.raises(ValueError, match="non-negative"):
            faults.RetryPolicy.coerce(-1)
        with pytest.raises(TypeError, match="retry"):
            faults.RetryPolicy.coerce("twice")

    def test_only_transient_failures_retry(self):
        policy = faults.RetryPolicy(max_attempts=3)
        transient = faults.timeout_failure(1.0)
        deterministic = faults.CellFailure(
            kind=faults.EXCEPTION, message="boom", retryable=False
        )
        assert policy.should_retry(transient, 1)
        assert policy.should_retry(transient, 2)
        assert not policy.should_retry(transient, 3)  # budget exhausted
        assert not policy.should_retry(deterministic, 1)

    def test_backoff_is_exponential_capped_and_deterministic(self):
        policy = faults.RetryPolicy(
            backoff_s=1.0, backoff_factor=2.0, max_backoff_s=3.0, jitter=0.1
        )
        first = policy.backoff_for(1, key="cell")
        second = policy.backoff_for(2, key="cell")
        third = policy.backoff_for(3, key="cell")
        assert 0.9 <= first <= 1.1
        assert 1.8 <= second <= 2.2
        assert 2.7 <= third <= 3.3  # base capped at 3.0, then jittered
        # Pure function of (key, attempt): reproducible run to run.
        assert first == policy.backoff_for(1, key="cell")
        assert first != policy.backoff_for(1, key="other-cell")

    def test_zero_jitter_is_exact(self):
        policy = faults.RetryPolicy(backoff_s=0.5, jitter=0.0)
        assert policy.backoff_for(1) == 0.5
        assert policy.backoff_for(2) == 1.0


class TestChaosPlan:
    def test_exact_cell_name_with_brackets_matches(self):
        # Grid names contain "[...]" which fnmatch would read as a
        # character class; a rule naming the cell verbatim must hit it.
        fault = chaos.FaultSpec(cell="fig2[seed=1]", mode="raise")
        assert fault.matches("fig2[seed=1]", 1)
        assert not fault.matches("fig2[seed=2]", 1)

    def test_glob_patterns_match(self):
        fault = chaos.FaultSpec(cell="fig2*", mode="raise")
        assert fault.matches("fig2[seed=7]", 1)
        assert not fault.matches("fig6[seed=7]", 1)

    def test_attempt_gating(self):
        fault = chaos.FaultSpec(cell="x", mode="raise", attempts=(2,))
        assert not fault.matches("x", 1)
        assert fault.matches("x", 2)
        poison = chaos.FaultSpec(cell="x", mode="raise")
        assert all(poison.matches("x", attempt) for attempt in (1, 2, 5))

    def test_validation(self):
        with pytest.raises(ValueError, match="mode"):
            chaos.FaultSpec(cell="x", mode="explode")
        with pytest.raises(ValueError, match="attempts"):
            chaos.FaultSpec(cell="x", mode="raise", attempts=(0,))
        with pytest.raises(ValueError, match="probability"):
            chaos.FaultSpec(cell="x", mode="raise", probability=0.0)
        with pytest.raises(ValueError, match="unknown fault field"):
            chaos.FaultSpec.from_json_dict({"cell": "x", "mode": "raise", "oops": 1})

    def test_probability_roll_is_deterministic(self):
        plan = chaos.ChaosPlan(
            faults=(chaos.FaultSpec(cell="*", mode="raise", probability=0.5),),
            seed=7,
        )
        outcomes = [plan.fault_for(f"cell-{i}", 1) is not None for i in range(32)]
        assert outcomes == [
            plan.fault_for(f"cell-{i}", 1) is not None for i in range(32)
        ]
        assert any(outcomes) and not all(outcomes)
        other_seed = chaos.ChaosPlan(faults=plan.faults, seed=8)
        assert outcomes != [
            other_seed.fault_for(f"cell-{i}", 1) is not None for i in range(32)
        ]

    def test_json_round_trip_and_coerce(self):
        plan = chaos.ChaosPlan.coerce(
            [{"cell": "a", "mode": "hang", "hang_s": 2.5, "attempts": [1, 3]}],
            seed=3,
        )
        assert chaos.ChaosPlan.coerce(plan.to_json()) == plan
        assert chaos.ChaosPlan.coerce(None) is None
        assert chaos.ChaosPlan.coerce(
            json.dumps({"seed": 3, "faults": [{"cell": "a", "mode": "raise"}]})
        ).seed == 3

    def test_first_matching_rule_wins(self):
        plan = chaos.ChaosPlan.coerce(
            [
                {"cell": "a", "mode": "raise"},
                {"cell": "*", "mode": "kill"},
            ]
        )
        assert plan.fault_for("a", 1).mode == "raise"
        assert plan.fault_for("b", 1).mode == "kill"


class TestFailureTaxonomy:
    def test_classification(self):
        crash = faults.classify_exception(faults.WorkerCrashError("x"), "tb")
        flaky = faults.classify_exception(faults.InjectedFault("x"), "tb")
        bug = faults.classify_exception(ValueError("x"), "tb")
        assert crash.kind == faults.WORKER_CRASH and crash.retryable
        assert flaky.kind == faults.EXCEPTION and flaky.retryable
        assert bug.kind == faults.EXCEPTION and not bug.retryable

    def test_failed_result_records_kind_and_attempts(self):
        spec = ScenarioSpec(kind="fig2", name="cell", seed=1)
        result = backends.failed_result(
            spec, "tb", kind=faults.TIMEOUT, attempts=3
        )
        assert result.error_kind == faults.TIMEOUT
        assert result.provenance.attempts == 3
        assert result.report.startswith("scenario cell FAILED:")
        assert not result.ok

    def test_cancelled_result_is_distinct_from_failure(self):
        spec = ScenarioSpec(kind="fig2", name="cell", seed=1)
        result = backends.cancelled_result(spec)
        assert result.error_kind == faults.CANCELLED
        assert result.provenance.attempts == 0
        assert "interrupted" in result.error

    def test_error_kind_survives_save_load_and_wire(self, tmp_path):
        spec = ScenarioSpec(kind="fig2", name="cell", seed=1)
        result = backends.failed_result(
            spec, "tb", kind=faults.WORKER_CRASH, attempts=2
        )
        loaded = ScenarioResult.load(result.save(tmp_path / "cell.json"))
        assert loaded.error_kind == faults.WORKER_CRASH
        assert loaded.provenance.attempts == 2
        wired = ScenarioResult.from_wire(result.to_wire())
        assert wired.error_kind == faults.WORKER_CRASH
        assert wired.provenance.attempts == 2

    def test_to_text_breaks_down_failures(self):
        spec = ScenarioSpec(kind="fig2", name="cell", seed=1)
        sweep = SweepResult(
            results=[
                backends.failed_result(spec, "tb", kind=faults.TIMEOUT, attempts=2)
            ]
        )
        text = sweep.to_text()
        assert "(1 FAILED)" in text
        assert "cell: timeout after 2 attempt(s)" in text


BOTH_BACKENDS = pytest.mark.parametrize("backend", ["serial", "process"])


class TestFaultScenarios:
    """Chaos-injected failures on both backends, bit-identity asserted."""

    def _run(self, backend, chaos_rules, n=2, **kwargs):
        kwargs.setdefault("max_workers", 2)
        return ExperimentRunner().run_many(
            _specs(n), backend=backend, chaos=chaos_rules, **kwargs
        )

    @BOTH_BACKENDS
    def test_flaky_cell_retries_then_succeeds_bit_identically(
        self, backend, clean_sweep
    ):
        sweep = self._run(
            backend,
            [{"cell": _cell(1), "mode": "raise", "attempts": [1]}],
            retry=2,
        )
        assert sweep.ok
        assert sweep[0].provenance.attempts == 2
        assert sweep[1].provenance.attempts == 1
        _assert_matches_clean(sweep[0], clean_sweep[0])

    @BOTH_BACKENDS
    def test_deterministic_exception_never_retries(self, backend):
        specs = [
            ScenarioSpec(kind="fig2", name="good", seed=1),
            # Fails at execution (the chip stage), deterministically.
            ScenarioSpec(kind="fig5_panel", name="bad-cell"),
        ]
        sweep = ExperimentRunner().run_many(
            specs, backend=backend, max_workers=2, retry=3
        )
        failed = sweep.get("bad-cell")
        assert not failed.ok
        assert failed.error_kind == faults.EXCEPTION
        assert failed.provenance.attempts == 1  # retrying a bug is futile
        assert sweep.get("good").ok

    @BOTH_BACKENDS
    def test_hung_cell_times_out_and_retry_succeeds(self, backend, clean_sweep):
        sweep = self._run(
            backend,
            [{"cell": _cell(2), "mode": "hang", "attempts": [1], "hang_s": 30}],
            timeout=1.0,
            retry=1,
        )
        assert sweep.ok
        assert sweep[1].provenance.attempts == 2
        _assert_matches_clean(sweep[1], clean_sweep[1])

    @BOTH_BACKENDS
    def test_timeout_without_retry_is_categorised(self, backend):
        sweep = self._run(
            backend,
            [{"cell": _cell(1), "mode": "hang", "hang_s": 30}],
            timeout=1.0,
        )
        assert not sweep[0].ok
        assert sweep[0].error_kind == faults.TIMEOUT
        assert "timeout" in sweep[0].error
        assert sweep[1].ok  # the sibling cell was not stalled

    @BOTH_BACKENDS
    def test_killed_worker_is_replaced_and_cell_rerun(self, backend, clean_sweep):
        # On the process backend this is a real os._exit hard kill; the
        # serial backend simulates it (killing the caller would take the
        # test suite down too).
        sweep = self._run(
            backend,
            [{"cell": _cell(1), "mode": "kill", "attempts": [1]}],
            retry=2,
        )
        assert sweep.ok
        assert sweep[0].provenance.attempts == 2
        _assert_matches_clean(sweep[0], clean_sweep[0])

    @BOTH_BACKENDS
    def test_poison_cell_is_quarantined_not_retried_forever(self, backend):
        sweep = self._run(
            backend,
            [{"cell": _cell(1), "mode": "kill"}],  # kills on every attempt
            retry=10,
        )
        failed = sweep[0]
        assert not failed.ok
        assert failed.error_kind == faults.WORKER_CRASH
        assert "quarantined" in failed.error
        # Quarantine (default: 2 crashes) preempted the 11-attempt budget.
        assert failed.provenance.attempts == 2
        assert sweep[1].ok

    @BOTH_BACKENDS
    def test_on_failure_raise_aborts_after_flushing_completed(
        self, backend, tmp_path
    ):
        store = ResultStore(tmp_path / "store")
        with pytest.raises(faults.CellFailed, match="fig2"):
            ExperimentRunner().run_many(
                _specs(3),
                backend="serial" if backend == "serial" else "process",
                max_workers=1,  # one worker => strictly in order
                store=store,
                chaos=[{"cell": _cell(3), "mode": "raise"}],
                on_failure="raise",
            )
        # Cells completed before the abort were flushed incrementally.
        assert store.get(_specs(3)[0]) is not None
        assert store.get(_specs(3)[1]) is not None
        assert store.get(_specs(3)[2]) is None


class TestSerialFallback:
    def test_broken_pool_falls_back_to_serial(self, caplog, clean_sweep):
        supervision = faults.Supervision(
            retry=faults.RetryPolicy(max_attempts=4, backoff_s=0.0, jitter=0.0),
            quarantine_after_crashes=10,
            serial_fallback_crashes=2,
        )
        plan = chaos.ChaosPlan.coerce(
            [{"cell": _cell(1), "mode": "kill", "attempts": [1, 2]}]
        )
        with caplog.at_level(logging.WARNING, logger="repro.pipeline.backends"):
            results = backends.run_process(
                _specs(2),
                max_workers=1,
                supervision=supervision,
                chaos=plan,
            )
        assert any("falling back" in record.message for record in caplog.records)
        assert all(result.ok for result in results)
        # Attempts 1 and 2 crashed the pool; attempt 3 ran serially (the
        # serial path simulates further kills, but the rule stops at 2).
        assert results[0].provenance.attempts == 3
        _assert_matches_clean(results[0], clean_sweep[0])
        _assert_matches_clean(results[1], clean_sweep[1])


class TestGracefulShutdown:
    def test_context_manager_converts_signal(self):
        with pytest.raises(faults.SweepInterrupted) as excinfo:
            with faults.graceful_shutdown():
                os.kill(os.getpid(), signal.SIGTERM)
                time.sleep(5)  # the signal must preempt this
        assert excinfo.value.signum == signal.SIGTERM

    def test_handlers_restored_after_exit(self):
        before = signal.getsignal(signal.SIGTERM)
        with faults.graceful_shutdown():
            pass
        assert signal.getsignal(signal.SIGTERM) is before

    @BOTH_BACKENDS
    def test_sigterm_mid_sweep_cancels_flushes_and_resumes_bit_identically(
        self, backend, tmp_path
    ):
        """The headline robustness property, end to end on both backends.

        A sweep hangs on its third cell; SIGTERM arrives mid-hang.  The
        two finished cells must already be in the store, the unfinished
        cells must be recorded ``cancelled`` (not FAILED), and resuming
        against the same store must produce results bit-identical to a
        clean uninterrupted run.
        """
        store_dir = tmp_path / "store"
        specs = _specs(4)
        plan = [{"cell": _cell(3), "mode": "hang", "hang_s": 60}]
        timer = threading.Timer(
            1.0, os.kill, (os.getpid(), signal.SIGTERM)
        )
        timer.start()
        try:
            interrupted = ExperimentRunner().run_many(
                specs,
                backend=backend,
                max_workers=1,  # one worker => cells finish strictly in order
                store=store_dir,
                resume=True,
                chaos=plan,
            )
        finally:
            timer.cancel()
        assert not interrupted.ok
        kinds = [result.error_kind for result in interrupted]
        assert kinds[0] is None and kinds[1] is None
        assert faults.CANCELLED in kinds[2:]
        assert not any(
            kind == faults.EXCEPTION for kind in kinds
        ), "never-ran cells must not be reported as failures"
        # Completed cells were flushed incrementally, before the signal.
        store = ResultStore(store_dir)
        assert store.get(specs[0]) is not None
        assert store.get(specs[1]) is not None
        # Resume executes exactly the unfinished cells, without chaos.
        resumed = ExperimentRunner().run_many(
            specs, backend=backend, max_workers=1, store=store_dir, resume=True
        )
        assert resumed.ok
        clean = ExperimentRunner().run_many(specs, backend="serial")
        for got, expected in zip(resumed, clean):
            _assert_matches_clean(got, expected)


class TestSupervisionPlumbing:
    def test_supervision_validation(self):
        with pytest.raises(ValueError, match="timeout_s"):
            faults.Supervision(timeout_s=0)
        with pytest.raises(ValueError, match="on_failure"):
            faults.Supervision(on_failure="explode")
        with pytest.raises(ValueError, match="quarantine"):
            faults.Supervision(quarantine_after_crashes=0)

    def test_run_many_rejects_bad_on_failure(self):
        with pytest.raises(ValueError, match="on_failure"):
            ExperimentRunner().run_many(_specs(1), on_failure="explode")

    def test_attempts_default_to_one_on_clean_runs(self, clean_sweep):
        assert [result.provenance.attempts for result in clean_sweep] == [1, 1]
