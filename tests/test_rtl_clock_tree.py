"""Unit tests for repro.rtl.clock_tree."""

import pytest

from repro.rtl.clock_tree import ClockTree, build_clock_tree, clock_power_fraction


class TestClockTreeConstruction:
    def test_single_sink_single_buffer(self):
        tree = ClockTree("t", num_sinks=1)
        assert tree.buffer_count == 1
        assert tree.depth == 1

    def test_buffer_count_respects_fanout(self):
        tree = ClockTree("t", num_sinks=256, max_fanout=16)
        # 256 sinks / 16 = 16 leaf buffers, then 1 root buffer.
        assert tree.levels[0].buffer_count == 16
        assert tree.buffer_count == 17

    def test_three_level_tree(self):
        tree = ClockTree("t", num_sinks=1024, max_fanout=8)
        assert tree.levels[0].buffer_count == 128
        assert tree.levels[1].buffer_count == 16
        assert tree.levels[2].buffer_count == 2
        assert tree.levels[3].buffer_count == 1
        assert tree.depth == 4

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ClockTree("t", num_sinks=0)
        with pytest.raises(ValueError):
            ClockTree("t", num_sinks=8, max_fanout=1)


class TestClockTreeActivity:
    def test_all_sinks_active(self):
        tree = ClockTree("t", num_sinks=32, max_fanout=16)
        toggles = tree.toggles_per_cycle()
        # 32 sink pins + 2 leaf buffers + 1 root buffer, two edges each.
        assert toggles == (32 + 2 + 1) * 2

    def test_no_sinks_active_is_idle(self):
        tree = ClockTree("t", num_sinks=32)
        assert tree.toggles_per_cycle(active_sinks=0) == 0

    def test_partial_activity_scales_leaf_level(self):
        tree = ClockTree("t", num_sinks=64, max_fanout=16)
        full = tree.toggles_per_cycle(64)
        half = tree.toggles_per_cycle(32)
        assert 0 < half < full

    def test_gated_step_has_no_activity(self):
        tree = ClockTree("t", num_sinks=16)
        assert tree.step(gated=True).total_toggles == 0

    def test_active_sink_bounds_validated(self):
        tree = ClockTree("t", num_sinks=16)
        with pytest.raises(ValueError):
            tree.toggles_per_cycle(17)

    def test_build_helper(self):
        tree = build_clock_tree("cts", 100, max_fanout=20)
        assert tree.num_sinks == 100


class TestClockPowerFraction:
    def test_zero_activity(self):
        assert clock_power_fraction(0, 0, 0) == 0.0

    def test_typical_fraction(self):
        assert clock_power_fraction(50, 30, 20) == pytest.approx(0.5)
