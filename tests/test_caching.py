"""Unit tests for the shared LRU get-or-compute cache (repro.caching)."""

import pytest

from repro.caching import LRUCache


class TestLRUCache:
    def test_miss_computes_then_hit_reuses(self):
        cache = LRUCache(4)
        calls = []
        value = cache.get_or_compute("k", lambda: calls.append(1) or "v")
        again = cache.get_or_compute("k", lambda: calls.append(1) or "other")
        assert value == again == "v"
        assert len(calls) == 1
        assert cache.stats() == {"hits": 1, "misses": 1, "evictions": 0, "entries": 1}

    def test_lru_eviction_order(self):
        cache = LRUCache(2)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        cache.get_or_compute("a", lambda: None)  # refresh "a"
        cache.get_or_compute("c", lambda: 3)  # evicts "b", the least recent
        assert cache.get_or_compute("a", lambda: "recomputed") == 1
        assert cache.get_or_compute("b", lambda: "recomputed") == "recomputed"
        assert cache.stats()["evictions"] == 2

    def test_callable_bound_is_read_at_insertion(self):
        bound = {"n": 3}
        cache = LRUCache(lambda: bound["n"])
        for key in range(3):
            cache.get_or_compute(key, lambda: key)
        assert len(cache) == 3
        bound["n"] = 1
        cache.get_or_compute("new", lambda: 0)
        assert len(cache) == 1

    def test_clear_resets_everything(self):
        cache = LRUCache(2)
        cache.get_or_compute("a", lambda: 1)
        cache.clear()
        assert cache.stats() == {"hits": 0, "misses": 0, "evictions": 0, "entries": 0}

    def test_non_positive_bound_rejected(self):
        cache = LRUCache(0)
        with pytest.raises(ValueError):
            cache.get_or_compute("a", lambda: 1)
