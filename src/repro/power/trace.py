"""Power and current traces.

A :class:`PowerTrace` holds one average power value per clock cycle -- the
quantity that, after the measurement chain, becomes the CPA vector ``Y``.
A :class:`CurrentTrace` is the same data expressed as supply current, which
is what the shunt resistor and oscilloscope actually observe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.rtl.signals import Clock


@dataclass
class PowerTrace:
    """Per-cycle average power of a circuit or group of circuits.

    Attributes
    ----------
    name:
        Label of the contributing circuit(s).
    clock:
        Clock domain the cycles belong to.
    power_w:
        Array of per-cycle average power values in watts.
    voltage_v:
        Supply voltage, needed to convert power to current.
    """

    name: str
    clock: Clock
    power_w: np.ndarray
    voltage_v: float = 1.2

    def __post_init__(self) -> None:
        self.power_w = np.asarray(self.power_w, dtype=np.float64)
        if self.power_w.ndim != 1:
            raise ValueError("power trace must be one-dimensional")
        if self.voltage_v <= 0:
            raise ValueError("supply voltage must be positive")
        if np.any(self.power_w < 0):
            raise ValueError("power values must be non-negative")

    def __len__(self) -> int:
        return len(self.power_w)

    @property
    def num_cycles(self) -> int:
        """Number of clock cycles covered."""
        return len(self.power_w)

    @property
    def duration_s(self) -> float:
        """Wall-clock duration of the trace."""
        return self.num_cycles * self.clock.period_s

    @property
    def average_power_w(self) -> float:
        """Mean power over the whole trace."""
        if len(self.power_w) == 0:
            return 0.0
        return float(np.mean(self.power_w))

    @property
    def peak_power_w(self) -> float:
        """Maximum per-cycle power."""
        if len(self.power_w) == 0:
            return 0.0
        return float(np.max(self.power_w))

    @property
    def energy_j(self) -> float:
        """Total energy dissipated over the trace."""
        return float(np.sum(self.power_w)) * self.clock.period_s

    def add(self, other: "PowerTrace") -> "PowerTrace":
        """Sum two traces on the same supply (e.g. system + watermark)."""
        if len(self) != len(other):
            raise ValueError(
                f"cannot add power traces of different lengths ({len(self)} vs {len(other)})"
            )
        if abs(self.voltage_v - other.voltage_v) > 1e-9:
            raise ValueError("cannot add power traces at different supply voltages")
        return PowerTrace(
            name=f"{self.name}+{other.name}",
            clock=self.clock,
            power_w=self.power_w + other.power_w,
            voltage_v=self.voltage_v,
        )

    def scale(self, factor: float) -> "PowerTrace":
        """Return a scaled copy (used for what-if/ablation studies)."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return PowerTrace(
            name=self.name,
            clock=self.clock,
            power_w=self.power_w * factor,
            voltage_v=self.voltage_v,
        )

    def slice(self, start: int, stop: int) -> "PowerTrace":
        """Return the sub-trace covering cycles ``[start, stop)``."""
        return PowerTrace(
            name=self.name,
            clock=self.clock,
            power_w=self.power_w[start:stop],
            voltage_v=self.voltage_v,
        )

    def tile(self, num_cycles: int) -> "PowerTrace":
        """Repeat the trace until it covers ``num_cycles`` cycles."""
        if len(self.power_w) == 0:
            raise ValueError("cannot tile an empty power trace")
        reps = int(np.ceil(num_cycles / len(self.power_w)))
        return PowerTrace(
            name=self.name,
            clock=self.clock,
            power_w=np.tile(self.power_w, reps)[:num_cycles],
            voltage_v=self.voltage_v,
        )

    def to_current(self) -> "CurrentTrace":
        """Convert to the supply-current trace seen by the shunt resistor."""
        return CurrentTrace(
            name=self.name,
            clock=self.clock,
            current_a=self.power_w / self.voltage_v,
            voltage_v=self.voltage_v,
        )


@dataclass
class CurrentTrace:
    """Per-cycle average supply current in amperes."""

    name: str
    clock: Clock
    current_a: np.ndarray
    voltage_v: float = 1.2

    def __post_init__(self) -> None:
        self.current_a = np.asarray(self.current_a, dtype=np.float64)
        if self.current_a.ndim != 1:
            raise ValueError("current trace must be one-dimensional")
        if self.voltage_v <= 0:
            raise ValueError("supply voltage must be positive")

    def __len__(self) -> int:
        return len(self.current_a)

    @property
    def average_current_a(self) -> float:
        """Mean current over the whole trace."""
        if len(self.current_a) == 0:
            return 0.0
        return float(np.mean(self.current_a))

    def to_power(self) -> PowerTrace:
        """Convert back to a power trace."""
        return PowerTrace(
            name=self.name,
            clock=self.clock,
            power_w=self.current_a * self.voltage_v,
            voltage_v=self.voltage_v,
        )
