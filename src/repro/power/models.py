"""Dynamic and static power models.

Dynamic power follows the usual CMOS switching-energy model: every node
transition dissipates ``E = 1/2 * C * V^2`` and the library characterises
``E`` per cell class at a reference voltage, so energy scales with
``(V / V_ref)^2``.  Static power is a per-cell leakage value, essentially
independent of activity (the paper's Table I shows sub-uW leakage for the
whole redundant bank).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.power.library import CellCharacteristics, CellLibrary, REFERENCE_VOLTAGE_V
from repro.rtl.activity import ActivityRecord, ActivityTrace
from repro.rtl.signals import Clock


def scale_energy_with_voltage(energy_j: float, voltage_v: float, reference_v: float = REFERENCE_VOLTAGE_V) -> float:
    """Scale a switching energy from the reference voltage to ``voltage_v``.

    Switching energy is proportional to the square of the supply voltage.
    """
    if voltage_v <= 0 or reference_v <= 0:
        raise ValueError("voltages must be positive")
    return energy_j * (voltage_v / reference_v) ** 2


@dataclass(frozen=True)
class OperatingPoint:
    """Supply voltage, clock and temperature at which power is evaluated."""

    clock: Clock
    voltage_v: float = REFERENCE_VOLTAGE_V
    temperature_c: float = 25.0

    def __post_init__(self) -> None:
        if self.voltage_v <= 0:
            raise ValueError("supply voltage must be positive")

    @property
    def cycle_time_s(self) -> float:
        """Duration of one clock cycle."""
        return self.clock.period_s


class DynamicPowerModel:
    """Converts switching activity into energy and average power."""

    def __init__(self, library: CellLibrary, operating_point: OperatingPoint) -> None:
        self.library = library
        self.operating_point = operating_point

    def _energies(self, cell_type: str) -> tuple:
        cell = self.library.cell(cell_type)
        v = self.operating_point.voltage_v
        return (
            scale_energy_with_voltage(cell.clock_toggle_energy_j, v),
            scale_energy_with_voltage(cell.data_toggle_energy_j, v),
            scale_energy_with_voltage(cell.comb_toggle_energy_j, v),
        )

    def cycle_energy(self, cell_type: str, activity: ActivityRecord) -> float:
        """Energy in joules dissipated by one component in one cycle."""
        e_clk, e_data, e_comb = self._energies(cell_type)
        return (
            activity.clock_toggles * e_clk
            + activity.data_toggles * e_data
            + activity.comb_toggles * e_comb
        )

    def cycle_energy_array(self, cell_type: str, trace: ActivityTrace) -> np.ndarray:
        """Vector of per-cycle energies (joules) for an activity trace."""
        e_clk, e_data, e_comb = self._energies(cell_type)
        return (
            trace.clock_toggles * e_clk
            + trace.data_toggles * e_data
            + trace.comb_toggles * e_comb
        ).astype(np.float64)

    def average_power(self, cell_type: str, trace: ActivityTrace) -> float:
        """Average dynamic power in watts over an activity trace."""
        if len(trace) == 0:
            return 0.0
        energies = self.cycle_energy_array(cell_type, trace)
        return float(np.mean(energies)) / self.operating_point.cycle_time_s

    def power_per_cycle(self, cell_type: str, trace: ActivityTrace) -> np.ndarray:
        """Per-cycle average power in watts for an activity trace."""
        return self.cycle_energy_array(cell_type, trace) / self.operating_point.cycle_time_s


class StaticPowerModel:
    """Leakage power model with a mild temperature dependence.

    Leakage roughly doubles every 25 degC above the characterisation point;
    a small state-dependence term models the (tiny) increase observed in
    Table I when more registers hold alternating data.
    """

    #: Leakage doubling interval in degrees Celsius.
    TEMPERATURE_DOUBLING_C = 25.0
    #: Reference temperature of the library characterisation.
    REFERENCE_TEMPERATURE_C = 25.0
    #: Fractional leakage increase for a cell whose state toggles regularly.
    STATE_DEPENDENCE = 0.01

    def __init__(self, library: CellLibrary, operating_point: OperatingPoint) -> None:
        self.library = library
        self.operating_point = operating_point

    def _temperature_factor(self) -> float:
        delta = self.operating_point.temperature_c - self.REFERENCE_TEMPERATURE_C
        return 2.0 ** (delta / self.TEMPERATURE_DOUBLING_C)

    def cell_leakage(self, cell_type: str, active_fraction: float = 0.0) -> float:
        """Leakage power in watts of one cell of ``cell_type``.

        ``active_fraction`` is the fraction of time the cell's state is
        being exercised; it adds the small state-dependent component.
        """
        if not 0.0 <= active_fraction <= 1.0:
            raise ValueError("active_fraction must be within [0, 1]")
        cell = self.library.cell(cell_type)
        base = cell.leakage_w * self._temperature_factor()
        voltage_factor = self.operating_point.voltage_v / self.library.voltage_v
        return base * voltage_factor * (1.0 + self.STATE_DEPENDENCE * active_fraction)

    def total_leakage(self, cell_counts: dict, active_fraction: float = 0.0) -> float:
        """Leakage of a collection of cells given as ``{cell_type: count}``."""
        total = 0.0
        for cell_type, count in cell_counts.items():
            if count < 0:
                raise ValueError("cell counts must be non-negative")
            total += self.cell_leakage(cell_type, active_fraction) * count
        return total
