"""Activity-based power estimation (the PrimeTime-PX analogue).

The estimator consumes per-component activity traces produced by the cycle
simulator and produces:

* per-component dynamic/static/total power figures (Table I style),
* per-cycle power traces that feed the measurement chain and ultimately the
  CPA detector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional

import numpy as np

from repro.power.library import CellLibrary, TSMC65LP_LIKE
from repro.power.models import DynamicPowerModel, OperatingPoint, StaticPowerModel
from repro.power.trace import PowerTrace
from repro.rtl.activity import ActivityRecord, ActivityTrace
from repro.rtl.signals import Clock


@dataclass(frozen=True)
class ComponentPower:
    """Power figures of one component (or component group)."""

    name: str
    dynamic_w: float
    static_w: float

    @property
    def total_w(self) -> float:
        """Dynamic plus static power."""
        return self.dynamic_w + self.static_w


class PowerEstimator:
    """Estimates power from switching activity using a cell library.

    Parameters
    ----------
    library:
        Cell library (defaults to the calibrated 65 nm-class library).
    operating_point:
        Clock, supply voltage and temperature.
    """

    def __init__(
        self,
        operating_point: OperatingPoint,
        library: CellLibrary = TSMC65LP_LIKE,
    ) -> None:
        self.library = library
        self.operating_point = operating_point
        self.dynamic_model = DynamicPowerModel(library, operating_point)
        self.static_model = StaticPowerModel(library, operating_point)

    @classmethod
    def at_nominal(cls, frequency_hz: float = 10e6, voltage_v: float = 1.2) -> "PowerEstimator":
        """Estimator at the paper's nominal operating point (10 MHz, 1.2 V)."""
        clock = Clock("clk", frequency_hz)
        return cls(OperatingPoint(clock=clock, voltage_v=voltage_v))

    # -- component-level reporting ---------------------------------------

    def component_power(
        self,
        name: str,
        cell_type: str,
        trace: ActivityTrace,
        cell_counts: Optional[Mapping[str, int]] = None,
        active_fraction: float = 0.0,
    ) -> ComponentPower:
        """Average power of one component over an activity trace.

        ``cell_counts`` gives the leakage-relevant cell inventory
        (``{"dff": 1024, "icg": 32}``); when omitted a single cell of
        ``cell_type`` is assumed.
        """
        dynamic = self.dynamic_model.average_power(cell_type, trace)
        counts = dict(cell_counts) if cell_counts else {cell_type: 1}
        static = self.static_model.total_leakage(counts, active_fraction)
        return ComponentPower(name=name, dynamic_w=dynamic, static_w=static)

    def cycle_power(self, cell_type: str, activity: ActivityRecord) -> float:
        """Average power during a single cycle with the given activity."""
        energy = self.dynamic_model.cycle_energy(cell_type, activity)
        return energy / self.operating_point.cycle_time_s

    # -- trace-level estimation -------------------------------------------

    def power_trace(
        self,
        trace: ActivityTrace,
        cell_type: str = "dff",
        static_w: float = 0.0,
    ) -> PowerTrace:
        """Per-cycle power trace of one activity trace.

        ``static_w`` is added to every cycle (leakage is activity
        independent at this granularity).
        """
        per_cycle = self.dynamic_model.power_per_cycle(cell_type, trace) + static_w
        return PowerTrace(
            name=trace.name,
            clock=self.operating_point.clock,
            power_w=per_cycle,
            voltage_v=self.operating_point.voltage_v,
        )

    def combined_power_trace(
        self,
        traces: Mapping[str, ActivityTrace],
        cell_types: Optional[Mapping[str, str]] = None,
        static_w: float = 0.0,
        name: str = "total",
    ) -> PowerTrace:
        """Sum per-cycle power over several activity traces.

        ``cell_types`` maps trace name to library cell class; traces without
        a mapping default to the flip-flop class.
        """
        if not traces:
            raise ValueError("no activity traces supplied")
        lengths = {len(t) for t in traces.values()}
        if len(lengths) != 1:
            raise ValueError(f"activity traces have mismatched lengths: {sorted(lengths)}")
        num_cycles = lengths.pop()
        total = np.zeros(num_cycles, dtype=np.float64)
        for trace_name, trace in traces.items():
            cell_type = (cell_types or {}).get(trace_name, "dff")
            total += self.dynamic_model.power_per_cycle(cell_type, trace)
        total += static_w
        return PowerTrace(
            name=name,
            clock=self.operating_point.clock,
            power_w=total,
            voltage_v=self.operating_point.voltage_v,
        )

    # -- convenience -------------------------------------------------------

    def leakage_of(self, cell_counts: Mapping[str, int], active_fraction: float = 0.0) -> float:
        """Leakage power of a cell inventory."""
        return self.static_model.total_leakage(dict(cell_counts), active_fraction)

    def per_register_clock_power(self) -> float:
        """Dynamic power of one register's clock buffer toggling every cycle.

        At the nominal operating point this reproduces the paper's 1.476 uW.
        """
        activity = ActivityRecord(clock_toggles=2)
        return self.cycle_power("dff", activity)

    def per_register_data_power(self) -> float:
        """Dynamic power of one register whose content flips every cycle.

        At the nominal operating point this reproduces the paper's 1.126 uW.
        """
        activity = ActivityRecord(data_toggles=1)
        return self.cycle_power("dff", activity)
