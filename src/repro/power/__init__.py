"""Power modelling: synthetic 65 nm library, estimator, traces and reports.

This package plays the role of the signoff power tool used in the paper
(Synopsys PrimeTime-PX with a TSMC 65 nm low-leakage library).  The cell
library is synthetic but calibrated to the two per-cell figures the paper
publishes (clock-buffer dynamic power of 1.476 uW and register data-switching
power of 1.126 uW per register at 10 MHz / 1.2 V), so Tables I and II are
reproduced from the same coefficients the analysis in Section V uses.
"""

from repro.power.library import CellCharacteristics, CellLibrary, TSMC65LP_LIKE
from repro.power.models import (
    DynamicPowerModel,
    StaticPowerModel,
    OperatingPoint,
    scale_energy_with_voltage,
)
from repro.power.estimator import PowerEstimator, ComponentPower
from repro.power.trace import PowerTrace, CurrentTrace
from repro.power.report import PowerReport, PowerReportRow
from repro.power.synthesis import (
    PeriodicPowerTemplate,
    TraceSynthesizer,
    gather_periodic_rows,
    periodic_extend,
)

__all__ = [
    "CellCharacteristics",
    "CellLibrary",
    "TSMC65LP_LIKE",
    "DynamicPowerModel",
    "StaticPowerModel",
    "OperatingPoint",
    "scale_energy_with_voltage",
    "PowerEstimator",
    "ComponentPower",
    "PowerTrace",
    "CurrentTrace",
    "PowerReport",
    "PowerReportRow",
    "PeriodicPowerTemplate",
    "TraceSynthesizer",
    "gather_periodic_rows",
    "periodic_extend",
]
