"""Vectorized trace synthesis: watermarked power traces as array operations.

The cycle-accurate simulator (:mod:`repro.rtl.simulator`) steps every block
once per clock cycle in Python, which makes trace *generation* the dominant
cost of 100k--300k-cycle acquisitions now that detection is batched
(:mod:`repro.detection.batch`).  The watermark circuits are strictly
periodic, so their per-cycle behaviour is fully characterised by one period
of cycle-accurate stepping; everything past that period is pure indexing.

This module is the generation-side counterpart of the batched detector.
It stacks three layers:

1. **Closed-form sequences** -- :func:`repro.core.lfsr.galois_sequence_bits`
   produces watermark sequences without a per-bit Python loop (cached per
   generator configuration).
2. **Periodic templates** -- :class:`PeriodicPowerTemplate` holds one period
   of a per-cycle power trace and extends it to arbitrary acquisition
   lengths (including trigger-phase rotations) with a modular-index gather.
3. **Batch trial synthesis** -- :class:`TraceSynthesizer` emits whole
   ``trials x cycles`` matrices of the statistical measurement model
   ``Y = base + a * X(rotated) + N(0, sigma)`` that feed straight into
   :meth:`repro.detection.batch.BatchCPADetector.detect_many`.

The per-cycle simulator stays as the golden reference: every fast path here
is bit-identical to stepping cycle by cycle (pinned by the equivalence
suite in ``tests/test_power_synthesis.py``), so experiments keep their
numbers while the generation side runs orders of magnitude faster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.power.trace import PowerTrace
from repro.rtl.signals import Clock


def periodic_extend(
    template: np.ndarray, num_cycles: int, phase_offset: int = 0
) -> np.ndarray:
    """Extend one period of values to ``num_cycles`` with an optional rotation.

    Bit-identical to
    ``np.roll(np.tile(template, reps)[:num_cycles], -phase_offset)``
    (the tile-then-roll idiom of the measurement chain: the acquisition is
    truncated to ``num_cycles`` first, then rotated, so the wraparound
    splices the truncated tail to the front) without materialising the
    tiled array or the roll copy.
    """
    template = np.asarray(template)
    period = len(template)
    if period == 0:
        raise ValueError("cannot extend an empty template")
    if num_cycles <= 0:
        raise ValueError("num_cycles must be positive")
    index = np.arange(num_cycles, dtype=np.int64)
    if phase_offset:
        index += int(phase_offset)
        index %= num_cycles
    index %= period
    return template[index]


def _periodic_windows(template: np.ndarray, num_cycles: int) -> np.ndarray:
    """All ``period`` phase-shifted windows of a periodic template, as a view.

    The template is tiled once to ``num_cycles + period - 1`` values;
    ``result[offset]`` is the length-``num_cycles`` window starting at that
    phase offset, without copying until a window is actually gathered.
    """
    template = np.asarray(template)
    if template.ndim != 1 or len(template) == 0:
        raise ValueError("the periodic template must be a non-empty 1-D array")
    period = len(template)
    span = num_cycles + period - 1
    tiled = np.tile(template, -(-span // period))[:span]
    return sliding_window_view(tiled, num_cycles)


def gather_periodic_rows(
    template: np.ndarray,
    offsets: np.ndarray,
    num_cycles: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Gather ``rows[r, i] = template[(offsets[r] + i) % period]`` batched.

    One strided-window gather replaces a Python slice per trial: every row
    is a window of the tiled template buffer selected by its phase offset.
    """
    windows = _periodic_windows(template, num_cycles)
    offsets = np.asarray(offsets, dtype=np.int64) % len(np.asarray(template))
    if out is None:
        return windows[offsets]
    np.take(windows, offsets, axis=0, out=out)
    return out


@dataclass
class PeriodicPowerTemplate:
    """One period of a strictly periodic per-cycle power trace.

    The watermark circuits repeat exactly with the sequence period, so a
    single cycle-accurate pass over one period fully characterises their
    power; acquisitions of any length are then produced by modular-index
    extension instead of further simulation.
    """

    name: str
    clock: Clock
    power_w: np.ndarray
    voltage_v: float = 1.2

    def __post_init__(self) -> None:
        # Copy (np.array, not np.asarray) so freezing never flips the
        # writeable flag on a caller's aliased array, then serve the one
        # period read-only: templates are shared across every synthesized
        # acquisition and a silent in-place edit would corrupt all of them.
        self.power_w = np.array(self.power_w, dtype=np.float64)
        self.power_w.flags.writeable = False
        if self.power_w.ndim != 1 or len(self.power_w) == 0:
            raise ValueError("a periodic template must be a non-empty 1-D array")
        if self.voltage_v <= 0:
            raise ValueError("supply voltage must be positive")

    @classmethod
    def from_power_trace(cls, trace: PowerTrace) -> "PeriodicPowerTemplate":
        """Wrap a one-period power trace as a template."""
        return cls(
            name=trace.name,
            clock=trace.clock,
            power_w=trace.power_w,
            voltage_v=trace.voltage_v,
        )

    @property
    def period(self) -> int:
        """Template length in cycles."""
        return len(self.power_w)

    def extend(self, num_cycles: int, phase_offset: int = 0) -> PowerTrace:
        """The template tiled to ``num_cycles`` and rotated by ``phase_offset``.

        ``phase_offset`` models the oscilloscope trigger not being aligned
        with the watermark phase; the semantics match
        ``np.roll(tiled, -phase_offset)`` on the truncated acquisition.
        """
        return PowerTrace(
            name=self.name,
            clock=self.clock,
            power_w=periodic_extend(self.power_w, num_cycles, phase_offset),
            voltage_v=self.voltage_v,
        )


def _per_row(
    values: Union[None, float, Sequence[float], np.ndarray],
    default: float,
    trials: int,
    label: str,
) -> np.ndarray:
    """Broadcast a scalar-or-sequence parameter to one value per trial row."""
    if values is None:
        values = default
    array = np.asarray(values, dtype=np.float64)
    if array.ndim == 0:
        return np.full(trials, float(array))
    if array.shape != (trials,):
        raise ValueError(f"{label} must be a scalar or one value per trial row")
    return array


class TraceSynthesizer:
    """Synthesizes watermarked traces and whole trial matrices vectorised.

    Two construction paths cover the pipeline's generation needs:

    * :meth:`from_sequence` -- the statistical measurement model used by
      the detection-probability campaign and the masking sweeps:
      ``Y = base + amplitude * X(rotated) + N(0, sigma)``.
    * :meth:`for_watermark` -- the physical model: one cycle-accurate
      period of a watermark architecture turned into a power template.

    Trial matrices go straight into
    :meth:`repro.detection.batch.BatchCPADetector.detect_many`.
    """

    def __init__(
        self,
        sequence: np.ndarray,
        watermark_amplitude_w: float = 1.0,
        noise_sigma_w: float = 0.0,
        base_power_w: float = 0.0,
        template: Optional[PeriodicPowerTemplate] = None,
    ) -> None:
        self.sequence = np.asarray(sequence, dtype=np.float64)
        if self.sequence.ndim != 1 or len(self.sequence) == 0:
            raise ValueError("the watermark sequence must be a non-empty 1-D array")
        if watermark_amplitude_w < 0 or noise_sigma_w < 0:
            raise ValueError("amplitude and noise must be non-negative")
        self.watermark_amplitude_w = float(watermark_amplitude_w)
        self.noise_sigma_w = float(noise_sigma_w)
        self.base_power_w = float(base_power_w)
        self.template = template

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_sequence(
        cls,
        sequence: np.ndarray,
        watermark_amplitude_w: float,
        noise_sigma_w: float,
        base_power_w: float = 5e-3,
    ) -> "TraceSynthesizer":
        """Synthesizer for the statistical measurement model."""
        return cls(
            sequence,
            watermark_amplitude_w=watermark_amplitude_w,
            noise_sigma_w=noise_sigma_w,
            base_power_w=base_power_w,
        )

    @classmethod
    def for_watermark(
        cls, architecture, estimator, include_leakage: bool = True
    ) -> "TraceSynthesizer":
        """Synthesizer built from a watermark architecture's periodic template.

        Runs the cycle-accurate step loop once per period (cached on the
        architecture) and keeps the resulting per-cycle power as the
        template; ``architecture`` is any object exposing the
        :class:`repro.core.architectures.WatermarkArchitecture` interface.
        """
        template = architecture.power_template(estimator, include_leakage)
        return cls(architecture.sequence(), template=template)

    # -- synthesis ----------------------------------------------------------

    @property
    def period(self) -> int:
        """Period of the watermark sequence."""
        return len(self.sequence)

    def synthesize_power(self, num_cycles: int, phase_offset: int = 0) -> PowerTrace:
        """Watermark power trace over ``num_cycles`` from the periodic template."""
        if self.template is None:
            raise ValueError(
                "this synthesizer has no power template; build it with "
                "TraceSynthesizer.for_watermark"
            )
        return self.template.extend(num_cycles, phase_offset)

    def synthesize_trials(
        self,
        trials: int,
        num_cycles: int,
        rng: np.random.Generator,
        noise_sigmas: Union[None, float, Sequence[float]] = None,
        enable_duties: Union[None, float, Sequence[float]] = None,
        amplitudes: Union[None, float, Sequence[float]] = None,
        out: Optional[np.ndarray] = None,
        compat_draw_order: bool = True,
        dtype: Union[np.dtype, type, str] = np.float64,
    ) -> np.ndarray:
        """Emit a ``trials x num_cycles`` matrix of the measurement model.

        With ``compat_draw_order=True`` (the default) each trial draws a
        uniform phase offset, optionally a starvation gate
        (``enable_duties`` below 1 model the host clock-gate control being
        low part of the time) and its Gaussian noise row -- in exactly the
        order a per-trial loop would draw them, so a given seed stream
        produces the same matrix as the pre-vectorised drivers.

        ``compat_draw_order=False`` selects the fast Gaussian path: all
        phase offsets are drawn in one vectorised call, then the gates (in
        row order, gated rows only), then the whole noise matrix is filled
        by one chunked ``standard_normal`` draw straight into the output
        buffer and scaled per row.  The result is still fully determined
        by the seed, but the draw order (and therefore the exact noise
        realisation) differs from the compat stream -- use it for new
        campaigns, not for reproducing pinned golden curves.

        ``dtype`` selects the trial-matrix precision; ``float32`` halves
        the memory traffic of campaign-scale sweeps (detection decisions
        are preserved -- pinned by the equivalence suite -- but bit-level
        golden comparisons require the default ``float64``).

        The watermark rows themselves are strided windows of one
        pre-scaled periodic buffer added in place (no per-trial slice
        copies, no intermediate trials-by-cycles signal matrix).
        """
        if trials <= 0:
            raise ValueError("trials must be positive")
        if num_cycles <= 0:
            raise ValueError("num_cycles must be positive")
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError("dtype must be float64 or float32")
        period = self.period
        sigmas = _per_row(noise_sigmas, self.noise_sigma_w, trials, "noise_sigmas")
        amps = _per_row(amplitudes, self.watermark_amplitude_w, trials, "amplitudes")
        duties = (
            None
            if enable_duties is None
            else _per_row(enable_duties, 1.0, trials, "enable_duties")
        )
        if out is None:
            out = np.empty((trials, num_cycles), dtype=dtype)
        elif out.shape != (trials, num_cycles):
            raise ValueError("out must be a trials x num_cycles array")
        gates: dict = {}
        if compat_draw_order:
            offsets = np.empty(trials, dtype=np.int64)
            # repro-lint: allow[HOT001] golden reference path: replays the pre-batching per-trial draw order bit-for-bit
            for row in range(trials):
                offsets[row] = rng.integers(0, period)
                if duties is not None and duties[row] < 1.0:
                    gates[row] = rng.random(num_cycles) < duties[row]
                out[row] = rng.normal(0.0, sigmas[row], num_cycles)
        else:
            offsets = rng.integers(0, period, size=trials)
            if duties is not None:
                for row in np.flatnonzero(duties < 1.0):
                    gates[int(row)] = rng.random(num_cycles) < duties[row]
            if out.flags.c_contiguous and out.dtype == dtype:
                rng.standard_normal(out=out.reshape(-1), dtype=dtype)
            else:  # caller-provided non-contiguous or mismatched buffer
                out[...] = rng.standard_normal((trials, num_cycles), dtype=dtype)
            out *= sigmas[:, None]

        # Rows without a starvation gate add a window of one pre-scaled
        # template (base + amplitude * X) straight into their noise row;
        # scaling the period-long template once is bit-identical to scaling
        # every gathered element.  Gated or per-row-amplitude rows need the
        # raw sequence because the gate applies before the amplitude.
        uniform_amplitude = bool(np.all(amps == amps[0]))
        scaled_windows: Optional[np.ndarray] = None
        if uniform_amplitude:
            scaled_windows = _periodic_windows(
                self.base_power_w + self.sequence * amps[0], num_cycles
            )
        raw_windows: Optional[np.ndarray] = None
        # repro-lint: allow[HOT001] O(trials) window-gather adding one period-indexed row at a time; inner work is vectorized
        for row in range(trials):
            gate = gates.get(row)
            if gate is None and scaled_windows is not None:
                out[row] += scaled_windows[offsets[row]]
                continue
            if raw_windows is None:
                raw_windows = _periodic_windows(self.sequence, num_cycles)
            watermark = raw_windows[offsets[row]].copy()
            if gate is not None:
                watermark *= gate
            watermark *= amps[row]
            watermark += self.base_power_w
            out[row] += watermark
        return out

    def detect_trials(
        self,
        detector,
        trials: int,
        num_cycles: int,
        rng: np.random.Generator,
        chunk_cycles: Optional[int] = None,
        **trial_kwargs,
    ):
        """Synthesize a trial matrix and run it through a batched detector.

        ``detector`` is a :class:`repro.detection.batch.BatchCPADetector`
        (duck-typed to keep this package free of detection imports);
        returns its :class:`BatchCPAResult`.
        """
        matrix = self.synthesize_trials(trials, num_cycles, rng, **trial_kwargs)
        return detector.detect_many(self.sequence, matrix, chunk_cycles=chunk_cycles)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceSynthesizer(period={self.period}, "
            f"template={'yes' if self.template is not None else 'no'})"
        )
