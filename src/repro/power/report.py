"""Tabular power reports.

Formats collections of :class:`ComponentPower` rows the way the paper's
Table I does: dynamic, static and total power per implementation plus the
share of the total watermark dynamic power attributable to the load
circuit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence


def format_power(value_w: float) -> str:
    """Human-readable power value with engineering units."""
    if value_w == 0:
        return "0 W"
    magnitude = abs(value_w)
    if magnitude >= 1e-3:
        return f"{value_w * 1e3:.2f} mW"
    if magnitude >= 1e-6:
        return f"{value_w * 1e6:.3g} uW"
    if magnitude >= 1e-9:
        return f"{value_w * 1e9:.3g} nW"
    return f"{value_w * 1e12:.3g} pW"


@dataclass(frozen=True)
class PowerReportRow:
    """One row of a power report."""

    implementation: str
    dynamic_w: float
    static_w: float
    share_of_watermark_dynamic: Optional[float] = None

    @property
    def total_w(self) -> float:
        """Dynamic plus static power."""
        return self.dynamic_w + self.static_w

    def as_dict(self) -> dict:
        """Dictionary form used by the experiment drivers and tests."""
        return {
            "implementation": self.implementation,
            "dynamic_w": self.dynamic_w,
            "static_w": self.static_w,
            "total_w": self.total_w,
            "share_of_watermark_dynamic": self.share_of_watermark_dynamic,
        }


@dataclass
class PowerReport:
    """A titled collection of power rows with text-table rendering."""

    title: str
    rows: List[PowerReportRow] = field(default_factory=list)

    def add_row(self, row: PowerReportRow) -> None:
        """Append one row."""
        self.rows.append(row)

    def row(self, implementation: str) -> PowerReportRow:
        """Look up a row by its implementation label."""
        for row in self.rows:
            if row.implementation == implementation:
                return row
        raise KeyError(f"no row labelled {implementation!r} in report {self.title!r}")

    def to_text(self) -> str:
        """Render the report as a fixed-width text table."""
        header = (
            f"{'Implementation':<44} {'Dynamic':>12} {'Static':>12} "
            f"{'Total':>12} {'% WM dyn':>10}"
        )
        lines = [self.title, "=" * len(header), header, "-" * len(header)]
        for row in self.rows:
            share = (
                f"{row.share_of_watermark_dynamic * 100:.1f}%"
                if row.share_of_watermark_dynamic is not None
                else "-"
            )
            lines.append(
                f"{row.implementation:<44} {format_power(row.dynamic_w):>12} "
                f"{format_power(row.static_w):>12} {format_power(row.total_w):>12} "
                f"{share:>10}"
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)
