"""Synthetic standard-cell library.

The library stores, per cell class, the switching energy of the relevant
node transitions, the leakage power and the cell area.  Values are
calibrated to the only two numbers the paper publishes for its TSMC 65 nm
low-leakage flow (Section V):

* average dynamic power of a single register's clock buffer: **1.476 uW**
* average dynamic power of data switching in a single register: **1.126 uW**

both at 10 MHz and 1.2 V.  Converted to per-transition energies:

* a register's clock pin toggles twice per cycle, so each clock transition
  costs ``1.476 uW / 10 MHz / 2 = 73.8 fJ``;
* a register's content flips at most once per cycle in the load circuit, so
  each data toggle costs ``1.126 uW / 10 MHz = 112.6 fJ``.

Leakage values are chosen so that the 1,024-register + 32-ICG redundant bank
leaks ~0.40 uW, matching the static column of Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

#: Reference conditions at which the library energies are characterised.
REFERENCE_VOLTAGE_V = 1.2
REFERENCE_FREQUENCY_HZ = 10e6

#: Paper-published per-register dynamic powers at the reference conditions.
PAPER_CLOCK_BUFFER_POWER_W = 1.476e-6
PAPER_DATA_SWITCHING_POWER_W = 1.126e-6

#: Derived per-transition energies (joule per toggle).
CLOCK_TOGGLE_ENERGY_J = PAPER_CLOCK_BUFFER_POWER_W / REFERENCE_FREQUENCY_HZ / 2.0
DATA_TOGGLE_ENERGY_J = PAPER_DATA_SWITCHING_POWER_W / REFERENCE_FREQUENCY_HZ


@dataclass(frozen=True)
class CellCharacteristics:
    """Electrical characteristics of one cell class."""

    name: str
    clock_toggle_energy_j: float
    data_toggle_energy_j: float
    comb_toggle_energy_j: float
    leakage_w: float
    area_um2: float

    def __post_init__(self) -> None:
        for attr in (
            "clock_toggle_energy_j",
            "data_toggle_energy_j",
            "comb_toggle_energy_j",
            "leakage_w",
            "area_um2",
        ):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be non-negative")


@dataclass(frozen=True)
class CellLibrary:
    """A named collection of cell classes plus global reference conditions."""

    name: str
    voltage_v: float
    cells: Dict[str, CellCharacteristics] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.voltage_v <= 0:
            raise ValueError("library voltage must be positive")
        if not self.cells:
            raise ValueError("library must contain at least one cell class")

    def cell(self, cell_type: str) -> CellCharacteristics:
        """Look up a cell class, falling back to the generic ``comb`` class."""
        if cell_type in self.cells:
            return self.cells[cell_type]
        if "comb" in self.cells:
            return self.cells["comb"]
        raise KeyError(f"cell type {cell_type!r} not in library {self.name!r}")

    def cell_types(self) -> Iterable[str]:
        """Names of the cell classes in the library."""
        return self.cells.keys()

    def area_of(self, cell_type: str, count: int = 1) -> float:
        """Total area in um^2 of ``count`` cells of ``cell_type``."""
        if count < 0:
            raise ValueError("cell count must be non-negative")
        return self.cell(cell_type).area_um2 * count


def _build_tsmc65lp_like() -> CellLibrary:
    """Build the default 65 nm low-leakage-class library."""
    cells = {
        # Flip-flop: clock-pin energy and data (Q/internal) energy match the
        # paper's per-register figures; area is typical for a 65 nm DFF.
        "dff": CellCharacteristics(
            name="dff",
            clock_toggle_energy_j=CLOCK_TOGGLE_ENERGY_J,
            data_toggle_energy_j=DATA_TOGGLE_ENERGY_J,
            comb_toggle_energy_j=DATA_TOGGLE_ENERGY_J * 0.5,
            leakage_w=0.38e-9,
            area_um2=5.2,
        ),
        # Integrated clock gate: its own gated-clock root node costs about a
        # buffer transition; leakage slightly higher than a DFF latch.
        "icg": CellCharacteristics(
            name="icg",
            clock_toggle_energy_j=CLOCK_TOGGLE_ENERGY_J,
            data_toggle_energy_j=DATA_TOGGLE_ENERGY_J * 0.5,
            comb_toggle_energy_j=DATA_TOGGLE_ENERGY_J * 0.3,
            leakage_w=0.45e-9,
            area_um2=7.0,
        ),
        # Explicit clock-tree buffer (CTS-inserted).
        "clk_buf": CellCharacteristics(
            name="clk_buf",
            clock_toggle_energy_j=CLOCK_TOGGLE_ENERGY_J,
            data_toggle_energy_j=0.0,
            comb_toggle_energy_j=0.0,
            leakage_w=0.25e-9,
            area_um2=2.6,
        ),
        # Generic combinational gate (NAND2-equivalent).
        "comb": CellCharacteristics(
            name="comb",
            clock_toggle_energy_j=0.0,
            data_toggle_energy_j=0.0,
            comb_toggle_energy_j=DATA_TOGGLE_ENERGY_J * 0.35,
            leakage_w=0.15e-9,
            area_um2=1.44,
        ),
        # Register bank composite (1 DFF-equivalent per bit plus ICGs is
        # handled structurally, but a bank seen as a single instance uses
        # DFF-class energies).
        "register_bank": CellCharacteristics(
            name="register_bank",
            clock_toggle_energy_j=CLOCK_TOGGLE_ENERGY_J,
            data_toggle_energy_j=DATA_TOGGLE_ENERGY_J,
            comb_toggle_energy_j=DATA_TOGGLE_ENERGY_J * 0.3,
            leakage_w=0.38e-9,
            area_um2=5.2,
        ),
        # SRAM bit-cell-array macro (per accessed word activity accounted as
        # data toggles by the SoC model).
        "sram": CellCharacteristics(
            name="sram",
            clock_toggle_energy_j=CLOCK_TOGGLE_ENERGY_J * 0.6,
            data_toggle_energy_j=DATA_TOGGLE_ENERGY_J * 1.4,
            comb_toggle_energy_j=DATA_TOGGLE_ENERGY_J * 0.4,
            leakage_w=0.05e-9,
            area_um2=0.52,
        ),
    }
    return CellLibrary(name="tsmc65lp-like", voltage_v=REFERENCE_VOLTAGE_V, cells=cells)


#: Default library used throughout the reproduction.
TSMC65LP_LIKE = _build_tsmc65lp_like()
