"""Command-line interface for the reproduction.

Runs the paper's experiments from a terminal::

    python -m repro table2
    python -m repro fig5 --cycles 100000
    python -m repro fig6 --repetitions 25
    python -m repro all --quick

Each sub-command prints the same text report the benchmark harness produces,
so the CLI is the quickest way to regenerate a single table or figure
without involving pytest.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.core.config import ExperimentConfig, MeasurementConfig
from repro.experiments import (
    run_fig2,
    run_fig3,
    run_fig5,
    run_fig6,
    run_robustness,
    run_table1,
    run_table2,
)

#: Acquisition length used by ``--quick`` runs.
QUICK_CYCLES = 60_000
#: Repetition count used by ``--quick`` runs of the Fig. 6 campaign.
QUICK_REPETITIONS = 20


def _build_config(args: argparse.Namespace) -> ExperimentConfig:
    """Experiment configuration honouring ``--cycles`` / ``--quick``."""
    cycles = args.cycles
    if cycles is None:
        cycles = QUICK_CYCLES if args.quick else MeasurementConfig().num_cycles
    if args.quick:
        measurement = MeasurementConfig(
            num_cycles=cycles,
            transient_noise_floor_w=0.020,
            transient_noise_fraction=0.4,
        )
    else:
        measurement = MeasurementConfig(num_cycles=cycles)
    return ExperimentConfig(measurement=measurement)


def _cmd_fig2(args: argparse.Namespace) -> str:
    return run_fig2().to_text()


def _cmd_fig3(args: argparse.Namespace) -> str:
    return run_fig3(config=_build_config(args)).to_text()


def _cmd_fig5(args: argparse.Namespace) -> str:
    return run_fig5(config=_build_config(args)).to_text()


def _cmd_fig6(args: argparse.Namespace) -> str:
    repetitions = args.repetitions
    if repetitions is None:
        repetitions = QUICK_REPETITIONS if args.quick else 100
    return run_fig6(repetitions=repetitions, config=_build_config(args)).to_text()


def _cmd_table1(args: argparse.Namespace) -> str:
    return run_table1().to_text()


def _cmd_table2(args: argparse.Namespace) -> str:
    return run_table2().to_text()


def _cmd_robustness(args: argparse.Namespace) -> str:
    return run_robustness().to_text()


_COMMANDS: Dict[str, Callable[[argparse.Namespace], str]] = {
    "fig2": _cmd_fig2,
    "fig3": _cmd_fig3,
    "fig5": _cmd_fig5,
    "fig6": _cmd_fig6,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "robustness": _cmd_robustness,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Clock-Modulation Based Watermark for Protection of "
            "Embedded Processors' (DATE 2014): regenerate the paper's tables and figures."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_COMMANDS) + ["all"],
        help="which table/figure to regenerate ('all' runs every experiment)",
    )
    parser.add_argument(
        "--cycles",
        type=int,
        default=None,
        help="clock cycles per correlation (default: the paper's 300,000)",
    )
    parser.add_argument(
        "--repetitions",
        type=int,
        default=None,
        help="repetitions for the Fig. 6 campaign (default: the paper's 100)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced acquisition length and noise for a fast demonstration run",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.cycles is not None and args.cycles <= 0:
        parser.error("--cycles must be positive")
    if args.repetitions is not None and args.repetitions <= 0:
        parser.error("--repetitions must be positive")

    names = sorted(_COMMANDS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print("=" * 78)
        print(f"experiment: {name}")
        print("=" * 78)
        print(_COMMANDS[name](args))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
