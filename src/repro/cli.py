"""Command-line interface for the reproduction.

Registry-driven: every paper experiment (and the extra campaign scenarios)
is a named :class:`repro.core.spec.ScenarioSpec` in
:data:`repro.pipeline.DEFAULT_REGISTRY`, and the CLI resolves names through
one :class:`repro.pipeline.ExperimentRunner`::

    python -m repro list                      # what can run
    python -m repro run fig5 --quick          # one scenario by name
    python -m repro run my_spec.json          # ... or from a spec file
    python -m repro sweep fig3 fig5 fig6      # batched, shared caches
    python -m repro sweep fig5/chip1-active --grid-seeds 1 2 3 \
        --backend process --workers 2         # cartesian grid, process pool
    python -m repro table2                    # legacy spelling, same report
    python -m repro all --quick

Legacy sub-commands (``fig2`` ... ``robustness``, ``all``) print the same
text reports as before, bit for bit.  ``--seed`` overrides a scenario's
default seed and ``--json <path>`` writes the machine-readable result
artifact (spec, scalars, provenance, report), so sweeps are scriptable
without pytest; ``--save <path>`` additionally persists the arrays to a
sibling ``.npz``.

``--store DIR`` memoizes every completed cell in a content-addressed
result store keyed by (spec hash, code version); adding ``--resume``
serves already-stored cells from disk instead of recomputing, making
interrupted sweeps resumable::

    python -m repro sweep fig6/chip1 --grid-seeds 1 2 3 \
        --store results/ --resume
    python -m repro store stats results/      # also: gc, verify

Sweeps run under a supervision policy (see
:mod:`repro.pipeline.faults`): ``--timeout`` bounds each cell's wall
clock (a hung worker is killed and replaced), ``--retries``/
``--retry-backoff`` re-run transiently failed cells (timeouts, worker
crashes) with deterministic exponential backoff, and
``--on-failure raise`` aborts on the first cell that exhausts its
attempts instead of recording it as FAILED.  ``--chaos`` injects
deterministic faults for testing the supervision layer itself::

    python -m repro sweep fig2 --grid-seeds 1 2 3 --timeout 120 \
        --retries 2 --chaos '[{"cell": "fig2[seed=1]", "mode": "kill",
        "attempts": [1]}]'

``serve`` exposes the same scenarios as an HTTP detection service (see
:mod:`repro.service`): PoW-metered ``/verify``/``/issue`` endpoints,
HMAC-signed transcripts, an append-only hash-chained operation ledger,
and the result store as a response cache.  ``serve ledger verify``
integrity-checks the ledger offline::

    python -m repro serve --port 8731 --data-dir service-data \
        --difficulty 12 --workers 4
    python -m repro serve ledger verify --data-dir service-data
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import List, Optional

from repro.core.config import QUICK_CYCLES, QUICK_REPETITIONS  # noqa: F401 (re-export)
from repro.pipeline import faults
from repro.pipeline.artifacts import SweepResult
from repro.pipeline.chaos import ChaosPlan
from repro.pipeline.registry import DEFAULT_REGISTRY, RunOptions, SpecGrid
from repro.pipeline.runner import ExperimentRunner
from repro.pipeline.store import ResultStore

#: The pre-registry sub-commands, in the order ``all`` executes them.
LEGACY_EXPERIMENTS = ("fig2", "fig3", "fig5", "fig6", "robustness", "table1", "table2")


def _add_scenario_options(parser: argparse.ArgumentParser) -> None:
    """Options shared by every scenario-running sub-command."""
    parser.add_argument(
        "--cycles",
        type=int,
        default=None,
        help="clock cycles per correlation (default: the paper's 300,000)",
    )
    parser.add_argument(
        "--repetitions",
        type=int,
        default=None,
        help="repetitions for the Fig. 6 campaign (default: the paper's 100)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced acquisition length and noise for a fast demonstration run",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the scenario's default seed",
    )
    parser.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="write the machine-readable result artifact (JSON) to PATH",
    )
    parser.add_argument(
        "--save",
        dest="save_path",
        default=None,
        metavar="PATH",
        help="save the full result artifact (JSON + .npz arrays) under PATH",
    )
    parser.add_argument(
        "--store",
        dest="store_dir",
        default=None,
        metavar="DIR",
        help=(
            "memoize completed cells in a content-addressed result store "
            "at DIR, keyed by (spec hash, code version)"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "serve cells already present in --store from disk instead of "
            "recomputing them (failed cells always re-execute)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Clock-Modulation Based Watermark for Protection of "
            "Embedded Processors' (DATE 2014): regenerate the paper's tables and "
            "figures, or run any registered scenario."
        ),
    )
    subparsers = parser.add_subparsers(dest="experiment", required=True, metavar="command")

    list_parser = subparsers.add_parser(
        "list", help="list every registered scenario"
    )
    list_parser.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="write the scenario listing as JSON to PATH",
    )

    run_parser = subparsers.add_parser(
        "run", help="run one scenario by registry name or from a spec JSON file"
    )
    run_parser.add_argument(
        "scenario", help="registry name (see 'list') or path to a spec .json"
    )
    _add_scenario_options(run_parser)

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="run several scenarios through one runner (shared chips and caches)",
    )
    sweep_parser.add_argument(
        "scenarios",
        nargs="+",
        help="registry names and/or spec .json paths, in execution order",
    )
    _add_scenario_options(sweep_parser)
    sweep_parser.add_argument(
        "--backend",
        choices=("auto", "serial", "process"),
        default="auto",
        help=(
            "execution backend: in-process serial, a process pool, or auto "
            "(default: serial unless >=2 CPUs and >=2 cells make the pool win)"
        ),
    )
    sweep_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for --backend process (default: one per scenario, capped at the CPU count)",
    )
    sweep_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-cell wall-clock budget; a hung cell is timed out (and its "
            "worker killed and replaced on --backend process) instead of "
            "stalling the sweep"
        ),
    )
    sweep_parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help=(
            "extra attempts for transiently failed cells (timeouts, worker "
            "crashes); deterministic in-cell exceptions never retry "
            "(default: 0)"
        ),
    )
    sweep_parser.add_argument(
        "--retry-backoff",
        type=float,
        default=0.1,
        metavar="SECONDS",
        help=(
            "base delay before a retry, doubled per attempt with "
            "deterministic jitter (default: 0.1)"
        ),
    )
    sweep_parser.add_argument(
        "--on-failure",
        choices=faults.ON_FAILURE_CHOICES,
        default=faults.ON_FAILURE_RECORD,
        help=(
            "record: a cell that exhausts its attempts becomes a FAILED "
            "result and the sweep continues (default); raise: abort the "
            "sweep on the first such cell (completed cells are already in "
            "--store)"
        ),
    )
    sweep_parser.add_argument(
        "--chaos",
        default=None,
        metavar="JSON",
        help=(
            "deterministic fault injection for testing: a JSON list of "
            'rules like [{"cell": "fig2[seed=1]", "mode": "kill", '
            '"attempts": [1]}] (modes: raise, hang, kill), or @FILE to '
            "read the JSON from a file"
        ),
    )
    sweep_parser.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        metavar="SEED",
        help="seed for probabilistic --chaos rules (default: 0)",
    )
    sweep_parser.add_argument(
        "--grid-chips",
        nargs="+",
        default=None,
        metavar="CHIP",
        help="expand each scenario across these chips (cartesian grid axis)",
    )
    sweep_parser.add_argument(
        "--grid-noise-scales",
        nargs="+",
        type=float,
        default=None,
        metavar="SCALE",
        help="expand across measurement-noise scale factors (1.0 = the bench as specified)",
    )
    sweep_parser.add_argument(
        "--grid-lengths",
        nargs="+",
        type=int,
        default=None,
        metavar="CYCLES",
        help="expand across acquisition lengths (cycles per correlation)",
    )
    sweep_parser.add_argument(
        "--grid-seeds",
        nargs="+",
        type=int,
        default=None,
        metavar="SEED",
        help="expand across seeds",
    )

    store_parser = subparsers.add_parser(
        "store",
        help="inspect or maintain a content-addressed result store",
    )
    store_parser.add_argument(
        "action",
        choices=("stats", "gc", "verify"),
        help=(
            "stats: entry counts and size; gc: drop stale/corrupt entries; "
            "verify: integrity-check every entry (exit 1 on problems)"
        ),
    )
    store_parser.add_argument("dir", help="the store directory")

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the HTTP detection service (see also: serve ledger verify)",
    )
    serve_parser.add_argument(
        "maintenance",
        nargs="*",
        metavar="MAINTENANCE",
        help="offline maintenance instead of serving: 'ledger verify'",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8731,
        help="TCP port; 0 binds an ephemeral port (default: 8731)",
    )
    serve_parser.add_argument(
        "--data-dir",
        default="service-data",
        metavar="DIR",
        help=(
            "service state root: server key, commitment salt, and the "
            "default store/ledger locations (default: service-data)"
        ),
    )
    serve_parser.add_argument(
        "--store",
        dest="store_dir",
        default=None,
        metavar="DIR",
        help="result store (response cache) directory (default: DATA_DIR/store)",
    )
    serve_parser.add_argument(
        "--ledger",
        dest="ledger_path",
        default=None,
        metavar="PATH",
        help="operation ledger file (default: DATA_DIR/ledger.jsonl)",
    )
    serve_parser.add_argument(
        "--difficulty",
        type=int,
        default=12,
        metavar="BITS",
        help=(
            "PoW leading-zero bits a request ticket must show; "
            "0 disables the gate (default: 12)"
        ),
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=4,
        metavar="N",
        help="maximum concurrent request-handler threads (default: 4)",
    )

    for name in LEGACY_EXPERIMENTS + ("all",):
        legacy = subparsers.add_parser(
            name,
            help=(
                "run every paper experiment"
                if name == "all"
                else f"regenerate the paper's {name}"
            ),
        )
        _add_scenario_options(legacy)
    return parser


def _run_options(args: argparse.Namespace) -> RunOptions:
    return RunOptions(
        quick=getattr(args, "quick", False),
        cycles=getattr(args, "cycles", None),
        repetitions=getattr(args, "repetitions", None),
        seed=getattr(args, "seed", None),
    )


def _write_json(path: str, payload) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _save_artifact(result, save_path: str, default_stem: str) -> None:
    """Persist an artifact, deriving a sanitized filename under directories.

    Scenario names may contain ``/`` (``"fig5/chip-1"``); when ``--save``
    points at a directory the file name comes from the result's sanitized
    ``artifact_stem`` (or ``default_stem`` for sweeps) instead of the raw
    name, so nothing lands in an unintended subdirectory.
    """
    path = pathlib.Path(save_path)
    if path.is_dir() or str(save_path).endswith(("/", "\\")):
        stem = getattr(result, "artifact_stem", default_stem)
        path = path / stem
    result.save(path)


def _print_banner(label: str, value: str) -> None:
    print("=" * 78)
    print(f"{label}: {value}")
    print("=" * 78)


def _store_for(args: argparse.Namespace) -> Optional[ResultStore]:
    """The result store the command-line options select, if any."""
    store_dir = getattr(args, "store_dir", None)
    return ResultStore(store_dir) if store_dir else None


def _print_store_summary(store: Optional[ResultStore]) -> None:
    """One line of store traffic (the CI smoke test greps for it)."""
    if store is None:
        return
    stats = store.stats()
    print(
        f"store {stats.root}: {stats.hits} hit(s), {stats.misses} miss(es), "
        f"{stats.writes} written, {stats.entries} entr(y/ies) on disk"
    )


def _cmd_list(args: argparse.Namespace) -> int:
    entries = DEFAULT_REGISTRY.entries()
    width = max(len(entry.name) for entry in entries)
    ref_width = max(len(entry.paper_ref) for entry in entries)
    for entry in entries:
        print(f"{entry.name:<{width}}  {entry.paper_ref:<{ref_width}}  {entry.title}")
    if args.json_path:
        _write_json(
            args.json_path,
            [
                {"name": e.name, "paper_ref": e.paper_ref, "title": e.title}
                for e in entries
            ],
        )
    return 0


def _resolve_all(runner: ExperimentRunner, args, names) -> List:
    """Resolve registry names and spec files, honouring the CLI options.

    Registry entries consume :class:`RunOptions` through their factories;
    specs loaded from ``.json`` files get the explicitly passed options
    applied as overrides: ``--seed``/``--repetitions`` replace the spec's
    values, ``--quick`` replaces its measurement with the quick preset,
    and a bare ``--cycles`` changes only the acquisition length while
    keeping the spec's other bench fields.
    """
    options = _run_options(args)
    specs = []
    for name in names:
        if DEFAULT_REGISTRY.has(name):
            specs.append(DEFAULT_REGISTRY.build(name, options))
        else:
            specs.append(options.apply_to(runner.resolve(name)))
    return specs


def _resolve_or_exit(
    parser: argparse.ArgumentParser,
    runner: ExperimentRunner,
    args: argparse.Namespace,
    names,
) -> List:
    """Resolve scenario arguments, reporting bad names/files as usage errors.

    Only *resolution* failures become argparse errors; failures during
    execution propagate with their full context.
    """
    try:
        return _resolve_all(runner, args, names)
    except (KeyError, ValueError, FileNotFoundError) as error:
        parser.error(str(error))


def _cmd_run(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    runner = ExperimentRunner()
    spec = _resolve_or_exit(parser, runner, args, [args.scenario])[0]
    store = _store_for(args)
    result = runner.run(spec, store=store, resume=args.resume)
    _print_banner("scenario", result.name)
    print(result.report)
    print()
    print(f"spec hash: {result.spec.spec_hash()[:12]}  elapsed: {result.provenance.elapsed_s:.2f} s")
    _print_store_summary(store)
    if args.json_path:
        _write_json(args.json_path, result.to_json_dict())
    if args.save_path:
        _save_artifact(result, args.save_path, result.spec.kind)
    return 0


def _expand_grid(parser: argparse.ArgumentParser, args: argparse.Namespace, specs):
    """Expand each resolved spec across the ``--grid-*`` axes, if any."""
    axes = {
        "chips": args.grid_chips,
        "noise_scales": args.grid_noise_scales,
        "lengths": args.grid_lengths,
        "seeds": args.grid_seeds,
    }
    if all(axis is None for axis in axes.values()):
        return specs
    expanded = []
    try:
        for spec in specs:
            expanded.extend(SpecGrid(spec).build(**axes))
    except ValueError as error:
        parser.error(str(error))
    return expanded


def _chaos_plan(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> Optional[ChaosPlan]:
    """Parse ``--chaos`` (inline JSON or ``@FILE``), if given."""
    text = args.chaos
    if text is None:
        return None
    if text.startswith("@"):
        try:
            text = pathlib.Path(text[1:]).read_text()
        except OSError as error:
            parser.error(f"--chaos: cannot read {text[1:]!r}: {error}")
    try:
        return ChaosPlan.coerce(text, seed=args.chaos_seed)
    except (ValueError, KeyError, TypeError) as error:
        parser.error(f"--chaos: invalid fault plan: {error}")


def _cmd_sweep(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    runner = ExperimentRunner()
    specs = _resolve_or_exit(parser, runner, args, args.scenarios)
    specs = _expand_grid(parser, args, specs)
    store = _store_for(args)
    retry = None
    if args.retries:
        retry = faults.RetryPolicy(
            max_attempts=args.retries + 1, backoff_s=args.retry_backoff
        )
    try:
        sweep = runner.run_many(
            specs,
            backend=args.backend,
            max_workers=args.workers,
            store=store,
            resume=args.resume,
            timeout=args.timeout,
            retry=retry,
            on_failure=args.on_failure,
            chaos=_chaos_plan(parser, args),
        )
    except faults.CellFailed as failure:
        print(f"sweep aborted (--on-failure raise): {failure}", file=sys.stderr)
        _print_store_summary(store)
        return 1
    print(sweep.to_text())
    _print_store_summary(store)
    if args.json_path:
        _write_json(args.json_path, sweep.to_json_dict())
    if args.save_path:
        _save_artifact(sweep, args.save_path, "sweep")
    return 0 if sweep.ok else 1


def _cmd_store(args: argparse.Namespace) -> int:
    store = ResultStore(args.dir)
    if args.action == "stats":
        print(store.stats().to_text())
        return 0
    if args.action == "gc":
        removed, freed = store.gc()
        print(f"store {store.root}: removed {removed} file(s), freed {freed / 1e6:.2f} MB")
        return 0
    problems = store.verify()
    for problem in problems:
        print(f"PROBLEM {problem}")
    entries = store.stats().entries
    print(
        f"store {store.root}: {entries} entr(y/ies) verified, "
        f"{len(problems)} problem(s)"
    )
    return 1 if problems else 0


def _cmd_serve(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    from repro.service.ledger import Ledger
    from repro.service.server import ServiceConfig, build_server

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        data_dir=args.data_dir,
        store_dir=args.store_dir,
        ledger_path=args.ledger_path,
        difficulty=args.difficulty,
        workers=args.workers,
    )
    if args.maintenance:
        if args.maintenance == ["ledger", "verify"]:
            ledger = Ledger(config.resolved_ledger_path())
            problems = ledger.verify()
            for problem in problems:
                print(f"PROBLEM {problem}")
            print(
                f"ledger {ledger.path}: {ledger.count} record(s), "
                f"{len(problems)} problem(s)"
            )
            return 1 if problems else 0
        parser.error(
            f"unknown serve maintenance command {' '.join(args.maintenance)!r}; "
            "supported: 'ledger verify'"
        )

    import logging
    import signal
    import threading

    # INFO so the cache decisions ("store hit" / "computed") land in the
    # server log -- the CI smoke job greps for them.
    logging.basicConfig(
        level=logging.INFO, format="%(asctime)s %(name)s %(message)s"
    )
    server = build_server(config)

    def request_shutdown(signum, frame) -> None:
        # shutdown() joins the serve_forever loop; calling it from the
        # signal handler's (main) thread would deadlock, so hand it off.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, request_shutdown)
    signal.signal(signal.SIGINT, request_shutdown)
    print(f"detection service listening on {server.url}", flush=True)
    print(
        f"data dir {config.resolved_data_dir()}  "
        f"store {config.resolved_store_dir()}  "
        f"ledger {config.resolved_ledger_path()}  "
        f"difficulty {config.difficulty}  workers {config.workers}",
        flush=True,
    )
    try:
        server.serve_forever()
    finally:
        server.server_close()
    print("graceful shutdown complete", flush=True)
    return 0


def _cmd_legacy(args: argparse.Namespace) -> int:
    names = LEGACY_EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    options = _run_options(args)
    runner = ExperimentRunner()
    store = _store_for(args)
    results = []
    start = time.perf_counter()
    for name in names:
        result = runner.run(
            DEFAULT_REGISTRY.build(name, options), store=store, resume=args.resume
        )
        results.append(result)
        _print_banner("experiment", name)
        print(result.report)
        print()
    elapsed = time.perf_counter() - start
    _print_store_summary(store)
    if len(results) == 1:
        if args.json_path:
            _write_json(args.json_path, results[0].to_json_dict())
        if args.save_path:
            _save_artifact(results[0], args.save_path, results[0].spec.kind)
    else:
        # Same machine-readable shape as the `sweep` command, so scripts
        # can parse `all --json` and `sweep --json` identically.
        sweep = SweepResult(results=results, elapsed_s=elapsed)
        if args.json_path:
            _write_json(args.json_path, sweep.to_json_dict())
        if args.save_path:
            _save_artifact(sweep, args.save_path, "sweep")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if getattr(args, "cycles", None) is not None and args.cycles <= 0:
        parser.error("--cycles must be positive")
    if getattr(args, "repetitions", None) is not None and args.repetitions <= 0:
        parser.error("--repetitions must be positive")
    if getattr(args, "workers", None) is not None and args.workers <= 0:
        parser.error("--workers must be positive")
    if getattr(args, "grid_lengths", None) is not None and any(
        length <= 0 for length in args.grid_lengths
    ):
        parser.error("--grid-lengths values must be positive")
    if getattr(args, "resume", False) and not getattr(args, "store_dir", None):
        parser.error("--resume requires --store DIR")
    if getattr(args, "timeout", None) is not None and args.timeout <= 0:
        parser.error("--timeout must be positive")
    if getattr(args, "retries", 0) and args.retries < 0:
        parser.error("--retries must be non-negative")
    if getattr(args, "retry_backoff", None) is not None and args.retry_backoff < 0:
        parser.error("--retry-backoff must be non-negative")

    try:
        if args.experiment == "list":
            return _cmd_list(args)
        if args.experiment == "run":
            return _cmd_run(parser, args)
        if args.experiment == "sweep":
            return _cmd_sweep(parser, args)
        if args.experiment == "store":
            return _cmd_store(args)
        if args.experiment == "serve":
            return _cmd_serve(parser, args)
        return _cmd_legacy(args)
    except BrokenPipeError:
        # stdout was piped into something like `head` that exited early.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
