"""Detection-as-a-service: the HTTP serving layer over the pipeline.

The pipeline primitives are all typed and serializable -- a frozen
:class:`repro.core.spec.ScenarioSpec` with a content ``spec_hash()``, a
:class:`repro.pipeline.artifacts.ScenarioResult` with ``to_wire()``, a
content-addressed :class:`repro.pipeline.store.ResultStore` and a
supervised :class:`repro.pipeline.runner.ExperimentRunner` -- but until
this package nothing answered a network request.  ``repro.service`` is
that serving layer, stdlib-only (``http.server``, no framework):

* :mod:`repro.service.protocol` -- versioned request/response schemas, the
  hashcash proof-of-work ticket check and a per-client token bucket;
* :mod:`repro.service.transcripts` -- HMAC-SHA256 signed detection
  transcripts over canonical JSON, with server key/salt management;
* :mod:`repro.service.ledger` -- an append-only, hash-chained JSONL
  ledger whose ``verify()`` detects tamper and truncation;
* :mod:`repro.service.server` -- the threaded HTTP server: ``/verify``
  (execute or cache-serve a detection scenario), ``/issue`` (embed a
  watermark config, log a seed commitment), ``/healthz`` and
  ``/metrics``;
* :mod:`repro.service.client` -- a small stdlib client (ticket mining,
  request posting, offline signature checks) used by tests, examples and
  CI.

Run it with ``python -m repro serve --port 8731 --data-dir service-data``.
"""

from __future__ import annotations

from repro.service.client import ServiceClient, ServiceHTTPError
from repro.service.ledger import Ledger, LedgerAnchor
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ServiceError,
    TokenBucket,
    check_ticket,
    mine_nonce,
)
from repro.service.server import DetectionService, ServiceConfig, build_server
from repro.service.transcripts import (
    load_or_create_secret,
    seed_commitment,
    sign_transcript,
    verify_signature,
)

__all__ = [
    "DetectionService",
    "Ledger",
    "LedgerAnchor",
    "PROTOCOL_VERSION",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceHTTPError",
    "TokenBucket",
    "build_server",
    "check_ticket",
    "load_or_create_secret",
    "mine_nonce",
    "seed_commitment",
    "sign_transcript",
    "verify_signature",
]
