"""The detection HTTP server: stdlib ``http.server``, no framework.

Four routes:

========== ====== ==========================================================
``/verify``  POST  execute (or cache-serve) a detection scenario; returns a
                   signed transcript, the wire-form result and a ledger anchor
``/issue``   POST  embed a watermark config; returns the full config to the
                   requester and logs only a salted seed commitment (201)
``/healthz`` GET   liveness + protocol/difficulty discovery
``/metrics`` GET   request counts, cache-hit rate, latency percentiles
========== ====== ==========================================================

Requests are JSON bodies gated three ways before any compute happens:
schema validation, a per-client token bucket, and the hashcash PoW ticket
(see :mod:`repro.service.protocol`).  ``/verify`` is memoized through the
content-addressed :class:`repro.pipeline.store.ResultStore`: concurrent
identical requests coalesce on a per-``spec_hash`` in-flight lock, the
first computes, the rest are served from the store -- byte-identical
transcripts, zero recompute.  Execution itself is serialized under one
compute lock because :class:`repro.pipeline.runner.ExperimentRunner`
shares mutable chip caches across scenarios.

:class:`ServiceServer` is a :class:`~http.server.ThreadingHTTPServer`
whose concurrency is bounded by a ``--workers`` semaphore; handler
threads are daemons, so ``shutdown()`` never hangs on a stuck client.
"""

from __future__ import annotations

import bisect
import dataclasses
import json
import logging
import math
import pathlib
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple, Union

from repro.caching import LRUCache
from repro.core.spec import ScenarioSpec
from repro.pipeline.artifacts import ScenarioResult, current_commit
from repro.pipeline.faults import CellTimeout, SweepInterrupted
from repro.pipeline.registry import DEFAULT_REGISTRY, RunOptions
from repro.pipeline.runner import ExperimentRunner
from repro.pipeline.store import ResultStore
from repro.service.ledger import Ledger
from repro.service.protocol import (
    ISSUE_ENDPOINT,
    PROTOCOL_VERSION,
    VERIFY_ENDPOINT,
    ServiceError,
    TokenBucket,
    check_ticket,
    schema_versions,
    validate_request,
)
from repro.service.transcripts import (
    build_issue_transcript,
    build_verify_transcript,
    redacted_watermark,
    seed_commitment,
    server_key,
    server_salt,
    sign_transcript,
    transcript_digest,
)

__all__ = [
    "DetectionService",
    "ServiceConfig",
    "ServiceMetrics",
    "ServiceServer",
    "build_server",
]

logger = logging.getLogger(__name__)

#: Routes answering GET (anything else on them is 405, not 404).
_GET_ROUTES = ("/healthz", "/metrics")

#: Bound on the per-spec-hash coalescing lock table.  Far above the
#: worker-slot count, so concurrent distinct specs never contend for
#: table space; far below "one lock per spec ever seen".
_INFLIGHT_LOCKS = 256
_POST_ROUTES = (VERIFY_ENDPOINT, ISSUE_ENDPOINT)


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Everything the service needs to start, in one frozen record.

    ``port=0`` binds an ephemeral port (tests read it back off the bound
    server).  ``store_dir``/``ledger_path`` default to living under
    ``data_dir`` next to the server key and commitment salt, so one
    ``--data-dir`` flag relocates the whole service state.
    ``difficulty <= 0`` disables the PoW gate (useful for local demos).
    """

    host: str = "127.0.0.1"
    port: int = 0
    data_dir: Union[str, pathlib.Path] = "service-data"
    store_dir: Optional[Union[str, pathlib.Path]] = None
    ledger_path: Optional[Union[str, pathlib.Path]] = None
    difficulty: int = 12
    workers: int = 4
    max_body_bytes: int = 1_048_576
    rate_capacity: float = 30.0
    rate_refill_per_s: float = 10.0
    request_timeout_s: float = 60.0

    def resolved_data_dir(self) -> pathlib.Path:
        return pathlib.Path(self.data_dir)

    def resolved_store_dir(self) -> pathlib.Path:
        if self.store_dir is not None:
            return pathlib.Path(self.store_dir)
        return self.resolved_data_dir() / "store"

    def resolved_ledger_path(self) -> pathlib.Path:
        if self.ledger_path is not None:
            return pathlib.Path(self.ledger_path)
        return self.resolved_data_dir() / "ledger.jsonl"


def _percentile(sorted_values: "list[float]", q: float) -> float:
    """Nearest-rank percentile of an already-sorted, non-empty list."""
    rank = max(1, min(len(sorted_values), math.ceil(q * len(sorted_values))))
    return sorted_values[rank - 1]


class ServiceMetrics:
    """Thread-safe request/cache/latency counters behind ``/metrics``.

    Latencies are kept as a bounded *sorted* sample (insertion via
    ``bisect``), so percentile reads are O(1) and memory stays flat on a
    long-lived server.
    """

    def __init__(self, max_samples: int = 4096) -> None:
        self._lock = threading.Lock()
        self._max_samples = max_samples
        self._by_endpoint: Dict[str, int] = {}
        self._errors = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._latencies_ms: "list[float]" = []
        self._latency_count = 0
        self._latency_max = 0.0

    def observe(self, endpoint: str, status: int, elapsed_ms: float) -> None:
        """Record one finished request."""
        with self._lock:
            self._by_endpoint[endpoint] = self._by_endpoint.get(endpoint, 0) + 1
            if status >= 400:
                self._errors += 1
            self._latency_count += 1
            self._latency_max = max(self._latency_max, elapsed_ms)
            bisect.insort(self._latencies_ms, elapsed_ms)
            if len(self._latencies_ms) > self._max_samples:
                # Drop the middle element: keeps both tails, which is what
                # the percentile readout cares about.
                del self._latencies_ms[len(self._latencies_ms) // 2]

    def cache_event(self, hit: bool) -> None:
        """Record one ``/verify`` cache outcome."""
        with self._lock:
            if hit:
                self._cache_hits += 1
            else:
                self._cache_misses += 1

    def snapshot(self) -> Dict[str, Any]:
        """The JSON document ``/metrics`` serves."""
        with self._lock:
            total_cache = self._cache_hits + self._cache_misses
            latency: Dict[str, Any] = {"count": self._latency_count}
            if self._latencies_ms:
                latency.update(
                    p50=_percentile(self._latencies_ms, 0.50),
                    p90=_percentile(self._latencies_ms, 0.90),
                    p99=_percentile(self._latencies_ms, 0.99),
                    max=self._latency_max,
                )
            return {
                "requests": {
                    "total": sum(self._by_endpoint.values()),
                    "by_endpoint": dict(sorted(self._by_endpoint.items())),
                    "errors": self._errors,
                },
                "cache": {
                    "hits": self._cache_hits,
                    "misses": self._cache_misses,
                    "hit_rate": (
                        self._cache_hits / total_cache if total_cache else 0.0
                    ),
                },
                "latency_ms": latency,
            }


class DetectionService:
    """The transport-independent core: request dicts in, (status, body) out.

    Owns the runner, result store, ledger, signing key, commitment salt,
    rate buckets and metrics; the HTTP handler below is a thin shell
    around :meth:`handle_verify`/:meth:`handle_issue`.  Tests can drive
    this class directly without a socket.
    """

    def __init__(
        self, config: ServiceConfig, runner: Optional[ExperimentRunner] = None
    ) -> None:
        self.config = config
        self.runner = runner if runner is not None else ExperimentRunner()
        data_dir = config.resolved_data_dir()
        data_dir.mkdir(parents=True, exist_ok=True)
        self.store = ResultStore(config.resolved_store_dir())
        self.ledger = Ledger(config.resolved_ledger_path())
        self.metrics = ServiceMetrics()
        self._key = server_key(data_dir)
        self._salt = server_salt(data_dir)
        self._bucket = TokenBucket(config.rate_capacity, config.rate_refill_per_s)
        # Concurrent /verify of the same spec coalesce on a per-hash lock;
        # actual execution is additionally serialized because the runner's
        # chip caches are shared mutable state.  The lock table is a
        # bounded LRUCache, not a dict: a long-lived server sees millions
        # of distinct specs and must not grow a lock per hash forever.
        # Evicting a lock mid-wait is safe -- the loser of the split
        # computes redundantly and the store write stays first-wins.
        self._inflight: LRUCache = LRUCache(max_entries=_INFLIGHT_LOCKS)
        self._compute_lock = threading.Lock()

    @property
    def signing_key(self) -> bytes:
        """The transcript HMAC key (tests verify signatures offline)."""
        return self._key

    # -- spec resolution -------------------------------------------------------

    def resolve_spec(self, payload: Dict[str, Any]) -> ScenarioSpec:
        """The spec a validated request names, with overrides applied."""
        overrides = payload.get("overrides") or {}
        options = RunOptions(
            quick=bool(overrides.get("quick", False)),
            cycles=overrides.get("cycles"),
            repetitions=overrides.get("repetitions"),
            seed=overrides.get("seed"),
        )
        scenario = payload.get("scenario")
        if scenario is not None:
            if not DEFAULT_REGISTRY.has(scenario):
                raise ServiceError(
                    404,
                    "unknown_scenario",
                    f"unknown scenario {scenario!r}; registered: "
                    f"{', '.join(DEFAULT_REGISTRY.names())}",
                )
            spec = DEFAULT_REGISTRY.build(scenario, options)
        else:
            try:
                spec = ScenarioSpec.from_json_dict(payload["spec"])
            except (KeyError, TypeError, ValueError) as error:
                raise ServiceError(
                    400, "bad_request", f"invalid spec document: {error}"
                ) from error
            spec = options.apply_to(spec)
        try:
            if "chip" in overrides:
                spec = spec.with_chip(str(overrides["chip"]))
            if "noise_scale" in overrides:
                spec = spec.with_noise_scale(float(overrides["noise_scale"]))
            if "watermark_active" in overrides:
                spec = spec.with_overrides(
                    watermark_active=bool(overrides["watermark_active"])
                )
        except (TypeError, ValueError) as error:
            raise ServiceError(
                400, "bad_request", f"invalid override value: {error}"
            ) from error
        return spec

    # -- execution with store coalescing ---------------------------------------

    def _inflight_lock(self, key: str) -> threading.Lock:
        # repro-lint: allow[CACHE001] caches Lock objects, not arrays
        return self._inflight.get_or_compute(key, threading.Lock)

    def _execute(self, spec: ScenarioSpec) -> Tuple[ScenarioResult, bool]:
        """Run ``spec`` through the store; returns (result, cache_hit)."""
        label = spec.name or spec.kind
        key = spec.spec_hash()
        cached = self.store.get(spec)
        if cached is not None:
            self.metrics.cache_event(hit=True)
            logger.info("verify %s: store hit (%s)", label, key[:12])
            return cached, True
        with self._inflight_lock(key):
            cached = self.store.get(spec)
            if cached is not None:
                # A sibling request computed this cell while we waited.
                self.metrics.cache_event(hit=True)
                logger.info("verify %s: store hit after wait (%s)", label, key[:12])
                return cached, True
            start = time.perf_counter()
            with self._compute_lock:
                result = self.runner.run(spec, store=self.store, resume=True)
            self.metrics.cache_event(hit=False)
            logger.info(
                "verify %s: computed in %.3f s (%s)",
                label, time.perf_counter() - start, key[:12],
            )
            return result, False

    # -- endpoints -------------------------------------------------------------

    def handle_verify(self, payload: Any) -> Tuple[int, Dict[str, Any]]:
        """POST ``/verify``: detection as a service."""
        payload = validate_request(payload, VERIFY_ENDPOINT)
        client_id = payload["client_id"]
        self._bucket.check(client_id)
        ticket = check_ticket(
            client_id, VERIFY_ENDPOINT, payload, self.config.difficulty
        )
        spec = self.resolve_spec(payload)
        result, cache_hit = self._execute(spec)
        if not result.ok:
            raise ServiceError(
                422,
                "scenario_failed",
                f"scenario {result.name!r} failed: {result.error}",
            )
        transcript = build_verify_transcript(result)
        signature = sign_transcript(transcript, self._key)
        anchor = self.ledger.append(
            {
                "type": "verify",
                "client_id": client_id,
                "scenario": result.name,
                "spec_hash": transcript["spec_hash"],
                "ticket": ticket,
                "cache_hit": cache_hit,
                "transcript_sha256": transcript_digest(transcript),
                "signature": signature,
            }
        )
        wire = result.to_wire()
        return 200, {
            "ok": True,
            "cache_hit": cache_hit,
            "transcript": transcript,
            "signature": signature,
            "ledger": anchor.to_json_dict(),
            "result_json": wire["json"],
            "schema_versions": schema_versions(),
        }

    def handle_issue(self, payload: Any) -> Tuple[int, Dict[str, Any]]:
        """POST ``/issue``: embed a watermark, commit to its seed."""
        payload = validate_request(payload, ISSUE_ENDPOINT)
        client_id = payload["client_id"]
        self._bucket.check(client_id)
        ticket = check_ticket(
            client_id, ISSUE_ENDPOINT, payload, self.config.difficulty
        )
        spec = self.resolve_spec(payload)
        commitment = seed_commitment(spec.watermark.lfsr_seed, self._salt)
        transcript = build_issue_transcript(spec, commitment)
        signature = sign_transcript(transcript, self._key)
        anchor = self.ledger.append(
            {
                "type": "issue",
                "client_id": client_id,
                "scenario": transcript["scenario"],
                "spec_hash": transcript["spec_hash"],
                "ticket": ticket,
                "commitment": commitment,
                "watermark": redacted_watermark(spec),
                "transcript_sha256": transcript_digest(transcript),
                "signature": signature,
            }
        )
        # The full config (raw LFSR seed included) goes only to the
        # requester; the ledger and transcript carry the commitment.
        return 201, {
            "ok": True,
            "transcript": transcript,
            "signature": signature,
            "ledger": anchor.to_json_dict(),
            "watermark": spec.watermark.to_dict(),
            "commitment": commitment,
            "schema_versions": schema_versions(),
        }

    def handle_healthz(self) -> Tuple[int, Dict[str, Any]]:
        """GET ``/healthz``: liveness plus protocol discovery."""
        return 200, {
            "status": "ok",
            "protocol_version": PROTOCOL_VERSION,
            "difficulty": self.config.difficulty,
            "commit": current_commit(),
            "schema_versions": schema_versions(),
            "scenarios": DEFAULT_REGISTRY.names(),
            "ledger_records": self.ledger.count,
        }

    def handle_metrics(self) -> Tuple[int, Dict[str, Any]]:
        """GET ``/metrics``: counters, cache-hit rate, latency percentiles."""
        document = self.metrics.snapshot()
        document["store"] = dataclasses.asdict(self.store.stats())
        document["ledger"] = {
            "records": self.ledger.count,
            "tip_digest": self.ledger.tip_digest,
        }
        return 200, document


class _RequestHandler(BaseHTTPRequestHandler):
    """Thin HTTP shell over :class:`DetectionService`."""

    server_version = "repro-detection/1"
    protocol_version = "HTTP/1.1"

    # Typed alias the routing code below relies on.
    server: "ServiceServer"

    def setup(self) -> None:
        self.timeout = self.server.service.config.request_timeout_s
        super().setup()

    # -- plumbing --------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        logger.debug("%s %s", self.address_string(), format % args)

    def _send_json(self, status: int, body: Dict[str, Any]) -> None:
        data = json.dumps(body, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _read_body(self) -> bytes:
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            raise ServiceError(411, "length_required", "Content-Length is required")
        try:
            length = int(length_header)
        except ValueError:
            raise ServiceError(
                400, "bad_request", "Content-Length must be an integer"
            ) from None
        limit = self.server.service.config.max_body_bytes
        if length < 0 or length > limit:
            raise ServiceError(
                413,
                "payload_too_large",
                f"request body of {length} byte(s) exceeds the "
                f"{limit}-byte limit",
            )
        return self.rfile.read(length)

    def _dispatch(self, method: str) -> None:
        service = self.server.service
        path = self.path.split("?", 1)[0]
        start = time.perf_counter()
        try:
            status, body = self._route(service, method, path)
        except ServiceError as error:
            status, body = error.status, error.to_json_dict()
        except (CellTimeout, SweepInterrupted):
            # Supervision control flow is never swallowed into a 500.
            raise
        except Exception:
            logger.exception("unhandled error serving %s %s", method, path)
            status, body = 500, {
                "error": {
                    "code": "internal_error",
                    "message": "unhandled server error; see the server log",
                }
            }
        try:
            self._send_json(status, body)
        except (BrokenPipeError, ConnectionResetError):
            logger.debug("client went away before the response for %s", path)
        service.metrics.observe(path, status, (time.perf_counter() - start) * 1e3)

    def _route(
        self, service: DetectionService, method: str, path: str
    ) -> Tuple[int, Dict[str, Any]]:
        if method == "GET":
            if path == "/healthz":
                return service.handle_healthz()
            if path == "/metrics":
                return service.handle_metrics()
            if path in _POST_ROUTES:
                raise ServiceError(405, "method_not_allowed", f"POST to {path}")
            raise ServiceError(404, "not_found", f"unknown route {path!r}")
        if path not in _POST_ROUTES:
            if path in _GET_ROUTES:
                raise ServiceError(405, "method_not_allowed", f"GET {path} instead")
            raise ServiceError(404, "not_found", f"unknown route {path!r}")
        raw = self._read_body()
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceError(
                400, "bad_request", f"request body is not valid JSON: {error}"
            ) from error
        if path == VERIFY_ENDPOINT:
            return service.handle_verify(payload)
        return service.handle_issue(payload)

    # -- verbs -----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch("POST")


class ServiceServer(ThreadingHTTPServer):
    """Threaded HTTP server with a bounded worker pool.

    ``ThreadingHTTPServer`` spawns one thread per connection; the
    semaphore caps how many run concurrently at ``config.workers`` --
    excess connections queue in the listen backlog instead of fork-bombing
    the host with compute-heavy ``/verify`` bodies.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        handler: type,
        service: DetectionService,
    ) -> None:
        super().__init__(address, handler)
        self.service = service
        self._worker_slots = threading.BoundedSemaphore(
            max(1, service.config.workers)
        )

    def process_request_thread(self, request: Any, client_address: Any) -> None:
        with self._worker_slots:
            super().process_request_thread(request, client_address)

    @property
    def url(self) -> str:
        """The base URL this server is bound to (ephemeral port resolved)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def build_server(
    config: ServiceConfig, runner: Optional[ExperimentRunner] = None
) -> ServiceServer:
    """Construct the service core and bind its HTTP server (not serving yet).

    Callers run ``server.serve_forever()`` (the CLI does) or drive it from
    a thread (tests do); ``server.url`` reports the bound address, which
    matters when ``config.port == 0`` picked an ephemeral port.
    """
    service = DetectionService(config, runner)
    return ServiceServer((config.host, config.port), _RequestHandler, service)
