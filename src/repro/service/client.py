"""Stdlib client for the detection service: ticket mining + posting.

:class:`ServiceClient` wraps ``urllib.request`` -- no dependencies -- and
does the protocol chores a caller shouldn't hand-roll: it discovers the
server's PoW difficulty from ``/healthz``, mines the hashcash nonce for
each POST body (:func:`repro.service.protocol.mine_nonce`), and turns
structured error responses into :class:`ServiceHTTPError`.  Tests, the
example script and the CI smoke job all drive the service through this
module.

Offline use: :func:`result_from` rebuilds the (array-stripped)
:class:`~repro.pipeline.artifacts.ScenarioResult` from a ``/verify``
response, and :meth:`ServiceClient.verify_transcript` checks a response's
HMAC signature against a key file -- no server required for either.
"""

from __future__ import annotations

import json
import pathlib
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, Union

from repro.pipeline.artifacts import ScenarioResult
from repro.service.protocol import (
    ISSUE_ENDPOINT,
    PROTOCOL_VERSION,
    VERIFY_ENDPOINT,
    mine_nonce,
)
from repro.service.transcripts import verify_signature

__all__ = ["ServiceClient", "ServiceHTTPError", "result_from"]


class ServiceHTTPError(Exception):
    """A non-2xx service response, decoded into its structured error."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(f"HTTP {status} [{code}]: {message}")
        self.status = status
        self.code = code
        self.message = message


def result_from(response: Dict[str, Any]) -> ScenarioResult:
    """The :class:`ScenarioResult` a ``/verify`` response carries.

    The service ships the wire JSON without the ``.npz`` array payload,
    so the rebuilt result has :attr:`~ScenarioResult.arrays_stripped`
    set; scalars, report and provenance are bit-exact.
    """
    return ScenarioResult.from_wire({"json": response["result_json"], "npz": None})


class ServiceClient:
    """One client identity against one detection service."""

    def __init__(
        self,
        base_url: str,
        client_id: str = "local",
        difficulty: Optional[int] = None,
        timeout_s: float = 120.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.client_id = client_id
        self.timeout_s = timeout_s
        self._difficulty = difficulty

    # -- transport -------------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Dict[str, Any]:
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=body,
            method=method,
            headers={"Content-Type": "application/json"} if body else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as reply:
                return json.loads(reply.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            raw = error.read().decode("utf-8", errors="replace")
            try:
                detail = json.loads(raw).get("error", {})
            except json.JSONDecodeError:
                detail = {}
            raise ServiceHTTPError(
                error.code,
                detail.get("code", "unknown"),
                detail.get("message", raw.strip() or error.reason),
            ) from error

    def _get(self, path: str) -> Dict[str, Any]:
        return self._request("GET", path)

    def _post(self, endpoint: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        body = dict(payload)
        body.setdefault("protocol_version", PROTOCOL_VERSION)
        body.setdefault("client_id", self.client_id)
        difficulty = self.difficulty()
        if difficulty > 0:
            body["nonce"] = mine_nonce(
                body["client_id"], endpoint, body, difficulty
            )
        return self._request(
            "POST", endpoint, json.dumps(body, sort_keys=True).encode("utf-8")
        )

    # -- endpoints -------------------------------------------------------------

    def difficulty(self) -> int:
        """The server's PoW difficulty (fetched from ``/healthz`` once)."""
        if self._difficulty is None:
            self._difficulty = int(self.healthz().get("difficulty", 0))
        return self._difficulty

    def healthz(self) -> Dict[str, Any]:
        """GET ``/healthz``."""
        return self._get("/healthz")

    def metrics(self) -> Dict[str, Any]:
        """GET ``/metrics``."""
        return self._get("/metrics")

    def verify(
        self,
        scenario: Optional[str] = None,
        spec: Optional[Dict[str, Any]] = None,
        overrides: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """POST ``/verify`` with a mined ticket; returns the response dict."""
        return self._post(
            VERIFY_ENDPOINT, self._scenario_body(scenario, spec, overrides)
        )

    def issue(
        self,
        scenario: Optional[str] = None,
        spec: Optional[Dict[str, Any]] = None,
        overrides: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """POST ``/issue`` with a mined ticket; returns the response dict."""
        return self._post(
            ISSUE_ENDPOINT, self._scenario_body(scenario, spec, overrides)
        )

    @staticmethod
    def _scenario_body(
        scenario: Optional[str],
        spec: Optional[Dict[str, Any]],
        overrides: Optional[Dict[str, Any]],
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {}
        if scenario is not None:
            body["scenario"] = scenario
        if spec is not None:
            body["spec"] = spec
        if overrides:
            body["overrides"] = dict(overrides)
        return body

    # -- offline checks --------------------------------------------------------

    @staticmethod
    def verify_transcript(
        response: Dict[str, Any], key: Union[bytes, str, pathlib.Path]
    ) -> bool:
        """Check a response's transcript signature against the server key.

        ``key`` is the raw key bytes or a path to the server's
        ``hmac.key`` file.  Runs entirely offline.
        """
        if not isinstance(key, bytes):
            key = pathlib.Path(key).read_bytes()
        return verify_signature(response["transcript"], response["signature"], key)
