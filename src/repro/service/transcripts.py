"""Signed detection transcripts: HMAC-SHA256 over canonical JSON.

A *transcript* is the publicly shareable record of one service operation:
for ``/verify`` the detection statistic, decision, detection parameters,
spec hash, code commit, schema versions and a provenance summary; for
``/issue`` the embedded (seed-redacted) watermark configuration and the
salted seed commitment.  The server signs ``canonical_json(transcript)``
with a persistent HMAC key, so anyone holding the key can re-verify a
transcript offline -- no server, no arrays, no ``.npz`` payload required
(:func:`build_verify_transcript` deliberately reads only wire-JSON fields
of the result, never the arrays).

Secrets live under the service data dir, created on first use:

* ``hmac.key`` -- the transcript-signing key;
* ``server_salt.bin`` -- the commitment salt (``/issue`` logs
  ``sha256(salt | seed)``, never the raw watermark seed).

Key creation is the service's one sanctioned entropy site (DET001): the
key *must* differ per deployment, which is exactly the property the
determinism rule exists to ban everywhere else.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import pathlib
from typing import Any, Dict, Union

from repro.core.spec import ScenarioSpec
from repro.pipeline.artifacts import ScenarioResult, current_commit, provenance_clock
from repro.service.protocol import canonical_json, schema_versions

__all__ = [
    "HMAC_KEY_FILE",
    "SERVER_SALT_FILE",
    "TRANSCRIPT_VERSION",
    "build_issue_transcript",
    "build_verify_transcript",
    "load_or_create_secret",
    "redacted_watermark",
    "seed_commitment",
    "sign_transcript",
    "transcript_digest",
    "verify_signature",
]

PathLike = Union[str, pathlib.Path]

#: Version of the signed transcript shape.
TRANSCRIPT_VERSION = 1

#: File names under the service data dir.
HMAC_KEY_FILE = "hmac.key"
SERVER_SALT_FILE = "server_salt.bin"

#: Secrets shorter than this are refused (likely truncated files).
_MIN_SECRET_BYTES = 16

#: Scalar keys tried, in order, for the transcript's headline statistic.
_STATISTIC_KEYS = ("z_score", "peak_correlation", "detection_probability")

#: Scalar keys tried, in order, for the transcript's decision bit.
_DECISION_KEYS = ("detected", "decision")


def load_or_create_secret(path: PathLike, num_bytes: int = 32) -> bytes:
    """Read a secret file, creating it (0600) with fresh entropy if absent.

    Raises :class:`ValueError` on an existing-but-implausibly-short file
    rather than signing with a truncated key.
    """
    path = pathlib.Path(path)
    try:
        secret = path.read_bytes()
    except FileNotFoundError:
        path.parent.mkdir(parents=True, exist_ok=True)
        # repro-lint: allow[DET001] server-key generation is the service's one sanctioned entropy site
        secret = os.urandom(num_bytes)
        tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
        try:
            tmp.write_bytes(secret)
            os.chmod(tmp, 0o600)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        return secret
    if len(secret) < _MIN_SECRET_BYTES:
        raise ValueError(
            f"secret file {path} holds {len(secret)} byte(s); "
            f"at least {_MIN_SECRET_BYTES} required (truncated?)"
        )
    return secret


def server_key(data_dir: PathLike) -> bytes:
    """The transcript-signing HMAC key under ``data_dir`` (created once)."""
    return load_or_create_secret(pathlib.Path(data_dir) / HMAC_KEY_FILE)


def server_salt(data_dir: PathLike) -> bytes:
    """The commitment salt under ``data_dir`` (created once)."""
    return load_or_create_secret(pathlib.Path(data_dir) / SERVER_SALT_FILE)


# -- signing ---------------------------------------------------------------------


def sign_transcript(transcript: Dict[str, Any], key: bytes) -> str:
    """Hex HMAC-SHA256 over the canonical JSON form of ``transcript``."""
    return hmac.new(
        key, canonical_json(transcript).encode("utf-8"), hashlib.sha256
    ).hexdigest()


def verify_signature(
    transcript: Dict[str, Any], signature: str, key: bytes
) -> bool:
    """Constant-time check of a transcript signature."""
    return hmac.compare_digest(sign_transcript(transcript, key), str(signature))


def transcript_digest(transcript: Dict[str, Any]) -> str:
    """Unkeyed sha256 of the canonical transcript (the ledger's reference)."""
    return hashlib.sha256(
        canonical_json(transcript).encode("utf-8")
    ).hexdigest()


# -- commitments -----------------------------------------------------------------


def seed_commitment(seed: int, salt: bytes) -> str:
    """The salted commitment ``/issue`` logs instead of the raw seed."""
    return hashlib.sha256(salt + b"|" + str(int(seed)).encode("ascii")).hexdigest()


def redacted_watermark(spec: ScenarioSpec) -> Dict[str, Any]:
    """The spec's watermark config with the secret LFSR seed removed.

    Transcripts and ledger records are meant to be shown to third
    parties; the commitment proves the server knew the seed without
    revealing it.
    """
    config = spec.watermark.to_dict()
    config.pop("lfsr_seed", None)
    return config


# -- transcript builders ---------------------------------------------------------


def _first_scalar(scalars: Dict[str, Any], keys: "tuple[str, ...]") -> Any:
    for key in keys:
        if key in scalars:
            return scalars[key]
    return None


def build_verify_transcript(result: ScenarioResult) -> Dict[str, Any]:
    """The signed payload of one ``/verify`` operation.

    Built exclusively from the wire-JSON side of the result (spec,
    scalars, provenance, report text) -- never the arrays -- so a client
    holding only the array-stripped wire form reconstructs this
    transcript byte-identically and re-verifies the signature offline.
    Deterministic for a given stored result: serving the same cell twice
    yields byte-identical transcripts.
    """
    if not result.ok:
        raise ValueError(
            f"cannot build a transcript for failed scenario {result.name!r}"
        )
    scalars = dict(result.scalars)
    provenance = result.provenance
    return {
        "transcript_version": TRANSCRIPT_VERSION,
        "type": "verify",
        "scenario": result.name,
        "kind": result.spec.kind,
        "spec_hash": provenance.spec_hash,
        "statistic": _first_scalar(scalars, _STATISTIC_KEYS),
        "decision": _first_scalar(scalars, _DECISION_KEYS),
        "scalars": scalars,
        "detection_params": result.spec.detection.to_dict(),
        "commit": provenance.commit,
        "schema_versions": schema_versions(),
        "provenance": {
            "created_at": provenance.created_at,
            "elapsed_s": provenance.elapsed_s,
            "attempts": provenance.attempts,
            "environment": dict(provenance.environment),
        },
        "report_sha256": hashlib.sha256(
            result.report.encode("utf-8")
        ).hexdigest(),
    }


def build_issue_transcript(
    spec: ScenarioSpec, commitment: str
) -> Dict[str, Any]:
    """The signed payload of one ``/issue`` operation (seed redacted)."""
    return {
        "transcript_version": TRANSCRIPT_VERSION,
        "type": "issue",
        "scenario": spec.name or spec.kind,
        "kind": spec.kind,
        "spec_hash": spec.spec_hash(),
        "watermark": redacted_watermark(spec),
        "commitment": commitment,
        "commit": current_commit(),
        "schema_versions": schema_versions(),
        "issued_at": provenance_clock(),
    }
