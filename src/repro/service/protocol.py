"""Service protocol: schemas, hashcash PoW tickets, per-client metering.

The request/response formats are versioned alongside the pipeline's wire
schemas: every response (and every signed transcript) embeds
``{"spec": SPEC_SCHEMA_VERSION, "artifact": ARTIFACT_SCHEMA_VERSION,
"protocol": PROTOCOL_VERSION}`` so a client can detect a server whose
serialization it no longer understands.

Proof-of-work ticket (hashcash style, the POV-PVW recipe)
---------------------------------------------------------

A request body carries a ``nonce``; the server accepts it only when::

    sha256(client_id | endpoint | body_hash | nonce)

has at least ``difficulty`` leading zero *bits*, where ``body_hash`` is
the hex sha256 of the canonical JSON body **excluding** the ``nonce`` and
``difficulty`` fields.  Mining is a deterministic counter search
(:func:`mine_nonce`) -- no randomness, so tests and CI replay exactly.

On top of the PoW gate, :class:`TokenBucket` meters request *rate* per
``client_id``: the PoW makes each request cost CPU, the bucket bounds
sustained throughput per client regardless of how much CPU they own.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from typing import Any, Callable, Dict, Mapping, Optional, Tuple, Union

from repro.core.spec import SPEC_SCHEMA_VERSION
from repro.pipeline.artifacts import ARTIFACT_SCHEMA_VERSION

__all__ = [
    "PROTOCOL_VERSION",
    "ISSUE_ENDPOINT",
    "VERIFY_ENDPOINT",
    "ServiceError",
    "TokenBucket",
    "body_hash",
    "canonical_json",
    "check_ticket",
    "leading_zero_bits",
    "mine_nonce",
    "schema_versions",
    "ticket_digest",
    "validate_request",
]

#: Version of the service request/response wire formats.  Bump together
#: with any change to the request schema, the response envelope or the
#: signed transcript shape.
PROTOCOL_VERSION = 1

VERIFY_ENDPOINT = "/verify"
ISSUE_ENDPOINT = "/issue"

#: Fields excluded from the PoW body hash (they parameterize the ticket
#: itself, so including them would make the preimage self-referential).
_TICKET_FREE_FIELDS = ("nonce", "difficulty")

#: Request fields every POST endpoint understands.
_KNOWN_REQUEST_FIELDS = {
    "protocol_version",
    "client_id",
    "scenario",
    "spec",
    "overrides",
    "nonce",
    "difficulty",
}

#: Override keys ``/verify`` and ``/issue`` accept on top of a resolved
#: scenario.  ``quick``/``cycles``/``repetitions``/``seed`` mirror the
#: CLI's :class:`repro.pipeline.registry.RunOptions`; the rest map to the
#: spec's grid-axis helpers.
ALLOWED_OVERRIDES = (
    "quick",
    "cycles",
    "repetitions",
    "seed",
    "chip",
    "noise_scale",
    "watermark_active",
)

#: ``client_id`` must stay out of the ticket delimiter alphabet and out of
#: filesystem/log trouble: letters, digits, ``._@-``, 1..64 chars.
_CLIENT_ID_MAX = 64
_CLIENT_ID_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._@-"
)


class ServiceError(Exception):
    """A structured, client-visible service failure.

    Carries the HTTP ``status`` and a stable machine-readable ``code``
    (``bad_request``, ``bad_ticket``, ``rate_limited``, ...) next to the
    human-readable message; the server renders it as
    ``{"error": {"code": ..., "message": ...}}``.
    """

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message

    def to_json_dict(self) -> Dict[str, Any]:
        """The response body the server sends for this error."""
        return {"error": {"code": self.code, "message": self.message}}


def canonical_json(payload: Any) -> str:
    """Canonical JSON text: sorted keys, no whitespace.

    Everything content-addressed or signed in the service (PoW body
    hashes, ledger record digests, transcript signatures) hashes this
    form, so two processes always agree byte-for-byte.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def schema_versions() -> Dict[str, int]:
    """The schema-version stamp embedded in responses and transcripts."""
    return {
        "spec": SPEC_SCHEMA_VERSION,
        "artifact": ARTIFACT_SCHEMA_VERSION,
        "protocol": PROTOCOL_VERSION,
    }


# -- proof-of-work tickets -------------------------------------------------------


def body_hash(body: Mapping[str, Any]) -> str:
    """Hex sha256 of the canonical body, excluding ``nonce``/``difficulty``."""
    filtered = {
        key: value
        for key, value in body.items()
        if key not in _TICKET_FREE_FIELDS
    }
    return hashlib.sha256(canonical_json(filtered).encode("utf-8")).hexdigest()


def ticket_digest(
    client_id: str, endpoint: str, body_hash_hex: str, nonce: Union[int, str]
) -> str:
    """The hashcash digest a ticket is judged by."""
    preimage = f"{client_id}|{endpoint}|{body_hash_hex}|{nonce}"
    return hashlib.sha256(preimage.encode("utf-8")).hexdigest()


def leading_zero_bits(hex_digest: str) -> int:
    """Leading zero bits of a hex digest (the hashcash difficulty measure)."""
    bits = 0
    for char in hex_digest:
        nibble = int(char, 16)
        if nibble == 0:
            bits += 4
            continue
        bits += 4 - nibble.bit_length()
        break
    return bits


def check_ticket(
    client_id: str,
    endpoint: str,
    body: Mapping[str, Any],
    difficulty: int,
) -> str:
    """Validate the PoW ticket carried by ``body``; returns its digest.

    Raises :class:`ServiceError` (403, ``bad_ticket``) on a missing nonce
    or insufficient work.  ``difficulty <= 0`` disables the check but
    still returns the digest (the ledger records it either way).
    """
    nonce = body.get("nonce")
    if difficulty > 0 and nonce is None:
        raise ServiceError(
            403,
            "bad_ticket",
            f"missing PoW nonce; mine sha256(client_id|{endpoint}|body_hash|"
            f"nonce) to at least {difficulty} leading zero bits",
        )
    if not isinstance(nonce, (int, str)) and nonce is not None:
        raise ServiceError(403, "bad_ticket", "nonce must be an integer or string")
    digest = ticket_digest(client_id, endpoint, body_hash(body), nonce or 0)
    if difficulty > 0 and leading_zero_bits(digest) < difficulty:
        raise ServiceError(
            403,
            "bad_ticket",
            f"insufficient proof of work: digest {digest[:16]}... has "
            f"{leading_zero_bits(digest)} leading zero bit(s), "
            f"difficulty requires {difficulty}",
        )
    return digest


def mine_nonce(
    client_id: str,
    endpoint: str,
    body: Mapping[str, Any],
    difficulty: int,
    max_iterations: int = 50_000_000,
) -> int:
    """Find the smallest nonce satisfying ``difficulty`` (deterministic).

    A counter search from zero: no randomness, so the same request body
    always mines the same ticket -- replayable in tests and CI.  Raises
    :class:`RuntimeError` past ``max_iterations`` (a difficulty so high
    the caller almost certainly misconfigured it).
    """
    if difficulty <= 0:
        return 0
    digest_of = hashlib.sha256
    prefix = f"{client_id}|{endpoint}|{body_hash(body)}|"
    for nonce in range(max_iterations):
        digest = digest_of(f"{prefix}{nonce}".encode("utf-8")).hexdigest()
        if leading_zero_bits(digest) >= difficulty:
            return nonce
    raise RuntimeError(
        f"no nonce below {max_iterations} satisfies difficulty {difficulty}"
    )


# -- request validation ----------------------------------------------------------


def validate_request(payload: Any, endpoint: str) -> Dict[str, Any]:
    """Validate a POST body against the protocol schema; returns it typed.

    Raises :class:`ServiceError` (400) on shape problems and (426,
    ``unsupported_protocol``) when the client speaks another protocol
    version.  The PoW ticket and rate metering are checked separately --
    schema first, so a rejected request never burns a ticket.
    """
    if not isinstance(payload, dict):
        raise ServiceError(400, "bad_request", "request body must be a JSON object")
    version = payload.get("protocol_version", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ServiceError(
            426,
            "unsupported_protocol",
            f"protocol version {version!r} is not supported; "
            f"this server speaks version {PROTOCOL_VERSION}",
        )
    unknown = set(payload) - _KNOWN_REQUEST_FIELDS
    if unknown:
        raise ServiceError(
            400, "bad_request", f"unknown request fields: {sorted(unknown)}"
        )
    client_id = payload.get("client_id")
    if not isinstance(client_id, str) or not client_id:
        raise ServiceError(
            400, "bad_request", "client_id is required and must be a non-empty string"
        )
    if len(client_id) > _CLIENT_ID_MAX or not set(client_id) <= _CLIENT_ID_CHARS:
        raise ServiceError(
            400,
            "bad_request",
            f"client_id must be 1..{_CLIENT_ID_MAX} characters from "
            "[A-Za-z0-9._@-]",
        )
    scenario = payload.get("scenario")
    spec = payload.get("spec")
    if (scenario is None) == (spec is None):
        raise ServiceError(
            400,
            "bad_request",
            "exactly one of 'scenario' (registry name) or 'spec' "
            "(full spec document) is required",
        )
    if scenario is not None and not isinstance(scenario, str):
        raise ServiceError(400, "bad_request", "scenario must be a string")
    if spec is not None and not isinstance(spec, dict):
        raise ServiceError(400, "bad_request", "spec must be a JSON object")
    overrides = payload.get("overrides")
    if overrides is not None:
        if not isinstance(overrides, dict):
            raise ServiceError(400, "bad_request", "overrides must be a JSON object")
        bad = set(overrides) - set(ALLOWED_OVERRIDES)
        if bad:
            raise ServiceError(
                400,
                "bad_request",
                f"unknown override(s) {sorted(bad)}; "
                f"allowed: {sorted(ALLOWED_OVERRIDES)}",
            )
    return payload


# -- per-client rate metering ----------------------------------------------------


class TokenBucket:
    """Per-client token buckets: ``capacity`` burst, ``refill_per_s`` rate.

    Thread-safe; the clock is injectable (monotonic seconds) so tests
    drive refill deterministically.  A client absent from the table
    starts with a full bucket.
    """

    def __init__(
        self,
        capacity: float,
        refill_per_s: float,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("bucket capacity must be positive")
        if refill_per_s < 0:
            raise ValueError("refill rate must be non-negative")
        self.capacity = float(capacity)
        self.refill_per_s = float(refill_per_s)
        self._clock = clock if clock is not None else time.monotonic
        self._buckets: Dict[str, Tuple[float, float]] = {}
        self._lock = threading.Lock()

    def consume(self, client_id: str, tokens: float = 1.0) -> bool:
        """Take ``tokens`` from ``client_id``'s bucket; ``False`` when dry."""
        now = self._clock()
        with self._lock:
            level, last = self._buckets.get(client_id, (self.capacity, now))
            level = min(self.capacity, level + (now - last) * self.refill_per_s)
            if level < tokens:
                self._buckets[client_id] = (level, now)
                return False
            self._buckets[client_id] = (level - tokens, now)
            return True

    def check(self, client_id: str) -> None:
        """Raise :class:`ServiceError` (429) when the client's bucket is dry."""
        if not self.consume(client_id):
            raise ServiceError(
                429,
                "rate_limited",
                f"client {client_id!r} exceeded its request budget "
                f"({self.capacity:.0f} burst, {self.refill_per_s:g}/s refill)",
            )
