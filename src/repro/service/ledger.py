"""Append-only, hash-chained JSONL operation ledger.

Every service operation (an issued watermark, a verification) appends one
record.  Records are chained: each embeds the previous record's digest,
and its own digest covers ``{index, prev, payload}`` in canonical JSON::

    {"index": 0, "prev": "000...0", "payload": {...}, "digest": sha256(...)}
    {"index": 1, "prev": "<digest of record 0>", "payload": {...}, ...}

so editing, reordering or deleting any interior record breaks the chain.
Tail truncation -- deleting the newest records, which a bare chain cannot
detect -- is caught by a sidecar *head* file (``<ledger>.head``) updated
atomically on every append with the current record count and tip digest;
:meth:`Ledger.verify` cross-checks the chain against it.

The ledger is plain text on purpose: ``jq``-able, greppable, and
verifiable by a third party with nothing but this module (no server key
involved -- transcript signatures are a separate layer, see
:mod:`repro.service.transcripts`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import threading
from typing import Any, Dict, List, Optional, Union

from repro.service.protocol import canonical_json

__all__ = ["GENESIS_DIGEST", "Ledger", "LedgerAnchor"]

PathLike = Union[str, pathlib.Path]

#: The ``prev`` digest of the first record (no predecessor).
GENESIS_DIGEST = "0" * 64

#: Fields every ledger line must carry.
_RECORD_FIELDS = ("index", "prev", "payload", "digest")


def _record_digest(index: int, prev: str, payload: Dict[str, Any]) -> str:
    body = canonical_json({"index": index, "prev": prev, "payload": payload})
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


@dataclasses.dataclass(frozen=True)
class LedgerAnchor:
    """Where one record landed: its index and chain digest (the "TXID")."""

    index: int
    digest: str

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-able representation (embedded in service responses)."""
        return {"index": self.index, "digest": self.digest}


class Ledger:
    """One append-only JSONL ledger file plus its head sidecar.

    Appends are serialized under a lock and flushed to disk before the
    head file is atomically replaced -- the head never references a
    record that is not durably in the ledger.  Opening an existing ledger
    recovers the tip by scanning once.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._count, self._tip = self._scan_tip()

    @property
    def head_path(self) -> pathlib.Path:
        """The sidecar recording the expected record count and tip digest."""
        return self.path.with_name(self.path.name + ".head")

    @property
    def count(self) -> int:
        """Records appended so far (as recovered at open plus this session)."""
        with self._lock:
            return self._count

    @property
    def tip_digest(self) -> str:
        """Digest of the newest record (:data:`GENESIS_DIGEST` when empty)."""
        with self._lock:
            return self._tip

    def _scan_tip(self) -> "tuple[int, str]":
        count, tip = 0, GENESIS_DIGEST
        try:
            lines = self.path.read_text().splitlines()
        except FileNotFoundError:
            return count, tip
        for line in lines:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                tip = record["digest"]
            except (json.JSONDecodeError, KeyError, TypeError):
                # A torn trailing write; verify() reports it, appends go
                # after it so the damage stays visible rather than being
                # silently overwritten.
                continue
            count += 1
        return count, tip

    # -- writing ---------------------------------------------------------------

    def append(self, payload: Dict[str, Any]) -> LedgerAnchor:
        """Append one record; returns its anchor (index + chain digest)."""
        with self._lock:
            index = self._count
            digest = _record_digest(index, self._tip, payload)
            record = {
                "index": index,
                "prev": self._tip,
                "payload": payload,
                "digest": digest,
            }
            line = json.dumps(record, sort_keys=True) + "\n"
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()
                os.fsync(handle.fileno())
            self._count = index + 1
            self._tip = digest
            self._write_head(self._count, digest)
            return LedgerAnchor(index=index, digest=digest)

    def _write_head(self, count: int, digest: str) -> None:
        head = canonical_json({"count": count, "digest": digest}) + "\n"
        tmp = self.head_path.with_name(f"{self.head_path.name}.tmp-{os.getpid()}")
        try:
            tmp.write_text(head)
            os.replace(tmp, self.head_path)
        finally:
            tmp.unlink(missing_ok=True)

    # -- verification ----------------------------------------------------------

    def verify(self) -> List[str]:
        """Integrity-check the whole ledger; returns a list of problems.

        Detects edited payloads (digest mismatch), spliced/reordered/
        deleted interior records (chain break, index gap), torn trailing
        writes (unparseable line) and tail truncation (head sidecar
        disagrees with the file).  An empty list means every record is
        intact and the chain reaches the recorded head.
        """
        problems: List[str] = []
        records: List[Dict[str, Any]] = []
        try:
            lines = self.path.read_text().splitlines()
        except FileNotFoundError:
            lines = []
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                problems.append(
                    f"line {lineno}: unparseable record (torn or tampered write)"
                )
                continue
            if not isinstance(record, dict) or any(
                field not in record for field in _RECORD_FIELDS
            ):
                problems.append(
                    f"line {lineno}: record is missing required fields "
                    f"{_RECORD_FIELDS}"
                )
                continue
            records.append(record)
        prev = GENESIS_DIGEST
        for position, record in enumerate(records):
            label = f"record {record.get('index')!r} (position {position})"
            if record["index"] != position:
                problems.append(
                    f"{label}: index does not match its position "
                    "(record inserted or deleted)"
                )
            if record["prev"] != prev:
                problems.append(
                    f"{label}: chain break -- prev digest does not match "
                    "the preceding record"
                )
            expected = _record_digest(
                record["index"], record["prev"], record["payload"]
            )
            if record["digest"] != expected:
                problems.append(f"{label}: digest mismatch (payload tampered)")
            prev = record["digest"]
        head = self._read_head()
        if head is None:
            if records:
                problems.append(
                    "head sidecar missing: tail truncation cannot be ruled out"
                )
        else:
            if head.get("count") != len(records):
                problems.append(
                    f"truncation: head records {head.get('count')} entr(y/ies) "
                    f"but the ledger holds {len(records)}"
                )
            elif records and head.get("digest") != records[-1]["digest"]:
                problems.append(
                    "head digest does not match the newest record "
                    "(tail rewritten)"
                )
        return problems

    def _read_head(self) -> Optional[Dict[str, Any]]:
        try:
            head = json.loads(self.head_path.read_text())
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return None
        return head if isinstance(head, dict) else None

    def records(self) -> List[Dict[str, Any]]:
        """Every parseable record, in file order (verification not implied)."""
        out: List[Dict[str, Any]] = []
        try:
            lines = self.path.read_text().splitlines()
        except FileNotFoundError:
            return out
        for line in lines:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                out.append(record)
        return out
