"""Detection-quality metrics and sizing helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


def watermark_snr(watermark_amplitude_w: float, noise_sigma_w: float) -> float:
    """Watermark amplitude over per-cycle noise sigma."""
    if watermark_amplitude_w < 0 or noise_sigma_w < 0:
        raise ValueError("amplitude and noise must be non-negative")
    if noise_sigma_w == 0:
        return float("inf") if watermark_amplitude_w > 0 else 0.0
    return watermark_amplitude_w / noise_sigma_w


def expected_correlation(watermark_amplitude_w: float, noise_sigma_w: float, duty: float = 0.5) -> float:
    """Expected peak correlation for a binary watermark in Gaussian noise.

    For a 0/1 watermark of amplitude ``a`` and duty cycle ``d`` added to
    noise of standard deviation ``sigma``, the population correlation is
    ``a * sqrt(d (1 - d)) / sqrt(a^2 d (1 - d) + sigma^2)``.
    """
    if not 0.0 < duty < 1.0:
        raise ValueError("duty cycle must be in (0, 1)")
    if noise_sigma_w < 0 or watermark_amplitude_w < 0:
        raise ValueError("amplitude and noise must be non-negative")
    signal_std = watermark_amplitude_w * np.sqrt(duty * (1.0 - duty))
    total_std = np.sqrt(signal_std**2 + noise_sigma_w**2)
    if total_std == 0:
        return 0.0
    return float(signal_std / total_std)


def estimate_required_cycles(
    expected_rho: float,
    num_rotations: int,
    confidence_sigma: float = 4.0,
) -> int:
    """Number of cycles needed to resolve a correlation peak.

    The off-peak correlation of ``N`` independent cycles has standard
    deviation ``1/sqrt(N)``; the peak is resolvable when
    ``expected_rho >= confidence_sigma / sqrt(N)`` with margin for the
    maximum over ``num_rotations`` rotations (approximated via the usual
    sqrt(2 ln R) extreme-value factor).
    """
    if not 0.0 < expected_rho < 1.0:
        raise ValueError("expected correlation must be in (0, 1)")
    if num_rotations < 2:
        raise ValueError("need at least two rotations")
    if confidence_sigma <= 0:
        raise ValueError("confidence must be positive")
    extreme_factor = np.sqrt(2.0 * np.log(num_rotations))
    required_sigma = confidence_sigma + extreme_factor
    return int(np.ceil((required_sigma / expected_rho) ** 2))


@dataclass
class DetectionCampaignResult:
    """Summary of a multi-repetition detection campaign."""

    label: str
    detections: np.ndarray
    peak_correlations: np.ndarray

    def __post_init__(self) -> None:
        self.detections = np.asarray(self.detections, dtype=bool)
        self.peak_correlations = np.asarray(self.peak_correlations, dtype=np.float64)
        if len(self.detections) != len(self.peak_correlations):
            raise ValueError("detections and peak correlations must have equal length")

    @property
    def repetitions(self) -> int:
        """Number of repetitions in the campaign."""
        return len(self.detections)

    @property
    def detection_rate(self) -> float:
        """Fraction of repetitions with a successful detection."""
        if self.repetitions == 0:
            return 0.0
        return float(np.mean(self.detections))

    @property
    def mean_peak_correlation(self) -> float:
        """Average peak correlation over the campaign."""
        if self.repetitions == 0:
            return 0.0
        return float(np.mean(self.peak_correlations))


def detection_probability(detections: Sequence[bool]) -> float:
    """Fraction of successful detections in a sequence of attempts."""
    detections = list(detections)
    if not detections:
        return 0.0
    return float(np.mean(np.asarray(detections, dtype=bool)))
