"""Watermark detection via Correlation Power Analysis (CPA).

Implements Section III of the paper: the measured per-cycle power vector
``Y`` is Pearson-correlated against every cyclic rotation of the periodic
watermark model sequence ``X``; the resulting spread spectrum of
correlation coefficients exhibits a single resolvable peak if (and only if)
the watermark is present and active.
"""

from repro.detection.cpa import (
    CPADetector,
    CPAResult,
    pearson_correlation,
    rotation_correlations,
)
from repro.detection.spread_spectrum import SpreadSpectrum
from repro.detection.statistics import (
    BoxPlotStats,
    RepetitionStatistics,
    detection_z_score,
    peak_to_second_peak_ratio,
)
from repro.detection.metrics import (
    DetectionCampaignResult,
    detection_probability,
    estimate_required_cycles,
    watermark_snr,
)
from repro.detection.campaign import (
    DetectionOperatingPoint,
    DetectionProbabilityCurve,
    run_detection_probability_campaign,
)

__all__ = [
    "DetectionOperatingPoint",
    "DetectionProbabilityCurve",
    "run_detection_probability_campaign",
    "CPADetector",
    "CPAResult",
    "pearson_correlation",
    "rotation_correlations",
    "SpreadSpectrum",
    "BoxPlotStats",
    "RepetitionStatistics",
    "detection_z_score",
    "peak_to_second_peak_ratio",
    "DetectionCampaignResult",
    "detection_probability",
    "estimate_required_cycles",
    "watermark_snr",
]
