"""Watermark detection via Correlation Power Analysis (CPA).

Implements Section III of the paper: the measured per-cycle power vector
``Y`` is Pearson-correlated against every cyclic rotation of the periodic
watermark model sequence ``X``; the resulting spread spectrum of
correlation coefficients exhibits a single resolvable peak if (and only if)
the watermark is present and active.

Two detector front-ends share one implementation:

* :class:`CPADetector` -- the single-trace API of the paper
  (``detect(sequence, measured) -> CPAResult``).
* :class:`BatchCPADetector` -- the batched engine
  (``detect_many(sequences, trace_matrix) -> BatchCPAResult``): an entire
  Monte-Carlo campaign (``trials x cycles`` trace matrix) is folded by
  phase and correlated with one stack of rFFTs, and the detection decision
  (peak, off-peak noise floor, z-score, uniqueness) is vectorized across
  trials.  A batch of one is bit-identical to ``CPADetector.detect``.
  ``max_trials_per_chunk`` / ``chunk_cycles`` bound memory for very long
  sweeps.  :func:`batch_rotation_correlations` exposes the raw batched
  correlation spectra; :func:`fold_by_phase` the underlying phase fold.

Campaign-scale consumers (:func:`run_detection_probability_campaign`, the
Fig. 6 repetition study, the masking/robustness sweeps) all route their
trials through the batched engine.
"""

from repro.detection.batch import (
    BatchCPADetector,
    BatchCPAResult,
    batch_rotation_correlations,
    fold_by_phase,
)
from repro.detection.cpa import (
    CPADetector,
    CPAResult,
    pearson_correlation,
    rotation_correlations,
)
from repro.detection.spread_spectrum import SpreadSpectrum
from repro.detection.statistics import (
    BoxPlotStats,
    RepetitionStatistics,
    detection_z_score,
    peak_to_second_peak_ratio,
)
from repro.detection.metrics import (
    DetectionCampaignResult,
    detection_probability,
    estimate_required_cycles,
    watermark_snr,
)
from repro.detection.campaign import (
    DetectionOperatingPoint,
    DetectionProbabilityCurve,
    run_detection_probability_campaign,
)

__all__ = [
    "DetectionOperatingPoint",
    "DetectionProbabilityCurve",
    "run_detection_probability_campaign",
    "BatchCPADetector",
    "BatchCPAResult",
    "batch_rotation_correlations",
    "fold_by_phase",
    "CPADetector",
    "CPAResult",
    "pearson_correlation",
    "rotation_correlations",
    "SpreadSpectrum",
    "BoxPlotStats",
    "RepetitionStatistics",
    "detection_z_score",
    "peak_to_second_peak_ratio",
    "DetectionCampaignResult",
    "detection_probability",
    "estimate_required_cycles",
    "watermark_snr",
]
