"""Spread-spectrum representation of CPA results (Fig. 5 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np


@dataclass
class SpreadSpectrum:
    """Correlation coefficient versus watermark sequence rotation.

    This is the data behind the paper's Fig. 5 panels: one correlation
    value per rotation of the watermark sequence.
    """

    label: str
    correlations: np.ndarray

    def __post_init__(self) -> None:
        self.correlations = np.asarray(self.correlations, dtype=np.float64)
        if self.correlations.ndim != 1:
            raise ValueError("a spread spectrum is a one-dimensional series")
        if len(self.correlations) < 2:
            raise ValueError("a spread spectrum needs at least two rotations")

    def __len__(self) -> int:
        return len(self.correlations)

    @property
    def rotations(self) -> np.ndarray:
        """The x-axis: rotation indices 0 .. period-1."""
        return np.arange(len(self.correlations))

    @property
    def peak_rotation(self) -> int:
        """Rotation index of the largest |correlation|."""
        return int(np.argmax(np.abs(self.correlations)))

    @property
    def peak_correlation(self) -> float:
        """Correlation value at the peak rotation."""
        return float(self.correlations[self.peak_rotation])

    @property
    def noise_floor(self) -> Tuple[float, float]:
        """(mean, std) of the off-peak correlations."""
        off_peak = np.delete(self.correlations, self.peak_rotation)
        return float(np.mean(off_peak)), float(np.std(off_peak))

    def has_single_resolvable_peak(self, threshold_sigma: float = 4.0) -> bool:
        """Whether exactly one correlation stands above the noise floor."""
        mean, std = self.noise_floor
        if std == 0.0:
            return abs(self.peak_correlation) > 0
        scores = (np.abs(self.correlations) - abs(mean)) / std
        significant = int(np.sum(scores >= threshold_sigma))
        return significant == 1 and scores[self.peak_rotation] >= threshold_sigma

    def to_series(self) -> List[Tuple[int, float]]:
        """(rotation, correlation) pairs, e.g. for CSV export or plotting."""
        return list(zip(self.rotations.tolist(), self.correlations.tolist()))

    def downsample(self, max_points: int = 500) -> "SpreadSpectrum":
        """Envelope-preserving downsampling for terminal-friendly rendering."""
        if max_points <= 1 or len(self) <= max_points:
            return self
        bins = np.array_split(self.correlations, max_points)
        reduced = np.array([b[np.argmax(np.abs(b))] for b in bins])
        return SpreadSpectrum(label=f"{self.label} (downsampled)", correlations=reduced)

    def render_ascii(self, width: int = 72, height: int = 12) -> str:
        """Render the spread spectrum as a small ASCII chart."""
        reduced = self.downsample(width).correlations
        low, high = float(np.min(reduced)), float(np.max(reduced))
        if high - low <= 0:
            high = low + 1e-9
        rows = []
        for level in range(height, -1, -1):
            threshold = low + (high - low) * level / height
            row = "".join("#" if value >= threshold else " " for value in reduced)
            rows.append(f"{threshold:+.4f} |{row}")
        rows.append(" " * 9 + "+" + "-" * len(reduced))
        header = f"{self.label}: peak rho={self.peak_correlation:.4f} at rotation {self.peak_rotation}"
        return "\n".join([header] + rows)
