"""Statistics over repeated detection experiments (Fig. 6 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np


def detection_z_score(correlations: np.ndarray) -> float:
    """Peak correlation expressed in off-peak standard deviations."""
    correlations = np.asarray(correlations, dtype=np.float64)
    if len(correlations) < 3:
        raise ValueError("need at least three rotations")
    peak_index = int(np.argmax(np.abs(correlations)))
    off_peak = np.delete(correlations, peak_index)
    std = float(np.std(off_peak))
    if std == 0.0:
        return float("inf") if abs(correlations[peak_index]) > 0 else 0.0
    return float((abs(correlations[peak_index]) - abs(np.mean(off_peak))) / std)


def peak_to_second_peak_ratio(correlations: np.ndarray) -> float:
    """|peak| divided by the second largest |correlation|."""
    correlations = np.asarray(correlations, dtype=np.float64)
    if len(correlations) < 2:
        raise ValueError("need at least two rotations")
    magnitudes = np.sort(np.abs(correlations))[::-1]
    if magnitudes[1] == 0.0:
        return float("inf") if magnitudes[0] > 0 else 1.0
    return float(magnitudes[0] / magnitudes[1])


@dataclass(frozen=True)
class BoxPlotStats:
    """Box-plot summary of a sample (median, quartiles, 95% whiskers, outliers).

    Matches the convention of the paper's Fig. 6: the box covers 95% of all
    correlation coefficients with extreme values shown as dots.
    """

    median: float
    q1: float
    q3: float
    whisker_low: float
    whisker_high: float
    outliers: tuple

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "BoxPlotStats":
        """Compute the summary from raw samples."""
        values = np.asarray(list(samples), dtype=np.float64)
        if len(values) == 0:
            raise ValueError("cannot summarise an empty sample")
        whisker_low, whisker_high = np.percentile(values, [2.5, 97.5])
        outliers = tuple(
            float(v) for v in values if v < whisker_low or v > whisker_high
        )
        return cls(
            median=float(np.median(values)),
            q1=float(np.percentile(values, 25)),
            q3=float(np.percentile(values, 75)),
            whisker_low=float(whisker_low),
            whisker_high=float(whisker_high),
            outliers=outliers,
        )

    @property
    def interquartile_range(self) -> float:
        """Q3 - Q1."""
        return self.q3 - self.q1


@dataclass
class RepetitionStatistics:
    """Aggregated CPA results of a repeated-measurement campaign."""

    label: str
    peak_rotation: int
    peak_values: np.ndarray
    off_peak_values: np.ndarray
    detections: np.ndarray

    @classmethod
    def from_correlation_runs(
        cls,
        label: str,
        runs: Sequence[np.ndarray],
        detected_flags: Optional[Sequence[bool]] = None,
    ) -> "RepetitionStatistics":
        """Aggregate the correlation spectra of many repetitions.

        The peak rotation is determined from the run-averaged |correlation|
        (all repetitions share the same physical phase offset in this model,
        as they do on the bench when acquisition is armed the same way).
        """
        if not runs:
            raise ValueError("need at least one repetition")
        stacked = np.vstack([np.asarray(r, dtype=np.float64) for r in runs])
        mean_abs = np.mean(np.abs(stacked), axis=0)
        peak_rotation = int(np.argmax(mean_abs))
        peak_values = stacked[:, peak_rotation]
        off_peak_values = np.delete(stacked, peak_rotation, axis=1).ravel()
        if detected_flags is None:
            detections = np.array([detection_z_score(run) >= 4.0 for run in stacked])
        else:
            detections = np.asarray(list(detected_flags), dtype=bool)
        return cls(
            label=label,
            peak_rotation=peak_rotation,
            peak_values=peak_values,
            off_peak_values=off_peak_values,
            detections=detections,
        )

    @property
    def repetitions(self) -> int:
        """Number of aggregated repetitions."""
        return len(self.peak_values)

    @property
    def detection_rate(self) -> float:
        """Fraction of repetitions in which the watermark was detected."""
        if len(self.detections) == 0:
            return 0.0
        return float(np.mean(self.detections))

    def peak_box(self) -> BoxPlotStats:
        """Box-plot statistics of the in-phase (peak) correlation values."""
        return BoxPlotStats.from_samples(self.peak_values)

    def off_peak_box(self) -> BoxPlotStats:
        """Box-plot statistics of the out-of-phase correlation values."""
        return BoxPlotStats.from_samples(self.off_peak_values)

    def separation(self) -> float:
        """Gap between the peak box and the off-peak 97.5th percentile.

        Positive separation means the peak box is fully distinguishable from
        the off-peak distribution, i.e. the Fig. 6 peak is resolvable in
        every repetition.
        """
        return float(self.peak_box().whisker_low - self.off_peak_box().whisker_high)
