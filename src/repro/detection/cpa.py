"""Correlation Power Analysis for watermark detection.

The detector evaluates the Pearson correlation coefficient (equation (1) of
the paper) between the measured per-cycle power vector ``Y`` and the
watermark model sequence ``X`` rotated by every possible number of clock
cycles (the two are not phase-aligned on the bench).  The number of
rotations equals the watermark sequence period.

Two evaluation strategies are provided:

* ``naive`` -- literal re-correlation for every rotation, O(period x N);
  used for validation and small problems.
* ``fft`` -- the measured vector is folded into per-phase sums (the model
  sequence is periodic, so only the phase of each cycle matters) and all
  rotation correlations are obtained with one circular cross-correlation
  via FFT, O(N + period log period).  Numerically identical to the naive
  method up to floating-point rounding.

The FFT path and the detection decision are implemented once, in the
batched engine (:mod:`repro.detection.batch`); this module's single-trace
API delegates to it with a batch of one, so ``CPADetector.detect`` is
bit-identical to row ``i`` of ``BatchCPADetector.detect_many``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.config import DetectionConfig
from repro.detection.batch import BatchCPADetector, batch_rotation_correlations


def pearson_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient of two equal-length vectors.

    Implements equation (1) of the paper.  Returns 0.0 when either vector
    has zero variance (no relationship can be established).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"vectors must have equal length, got {x.shape} and {y.shape}")
    n = len(x)
    if n == 0:
        raise ValueError("vectors must be non-empty")
    sum_x = x.sum()
    sum_y = y.sum()
    sum_xy = float(x @ y)
    sum_xx = float(x @ x)
    sum_yy = float(y @ y)
    var_x = n * sum_xx - sum_x * sum_x
    var_y = n * sum_yy - sum_y * sum_y
    if var_x <= 0 or var_y <= 0:
        return 0.0
    return float((n * sum_xy - sum_x * sum_y) / np.sqrt(var_x) / np.sqrt(var_y))


def _tiled_rotation(sequence: np.ndarray, rotation: int, length: int) -> np.ndarray:
    """The model sequence rotated by ``rotation`` cycles and tiled to ``length``."""
    period = len(sequence)
    rotated = np.roll(sequence, -rotation)
    reps = int(np.ceil(length / period))
    return np.tile(rotated, reps)[:length]


def _rotation_correlations_naive(sequence: np.ndarray, measured: np.ndarray) -> np.ndarray:
    period = len(sequence)
    return np.array(
        [  # repro-lint: allow[HOT001] golden reference path: the per-rotation definition the FFT engine is validated against
            pearson_correlation(_tiled_rotation(sequence, rotation, len(measured)), measured)
            for rotation in range(period)
        ]
    )


def _rotation_correlations_fft(sequence: np.ndarray, measured: np.ndarray) -> np.ndarray:
    # One code path for single and batched detection: a batch of one.
    return batch_rotation_correlations(sequence, measured[None, :], method="fft")[0]


def rotation_correlations(
    sequence: np.ndarray, measured: np.ndarray, method: str = "fft"
) -> np.ndarray:
    """Correlation coefficient for every rotation of the watermark sequence.

    Parameters
    ----------
    sequence:
        One period of the watermark model sequence (0/1 values).
    measured:
        Measured per-cycle power vector ``Y``.
    method:
        ``"fft"`` (default) or ``"naive"``.
    """
    sequence = np.asarray(sequence, dtype=np.float64)
    measured = np.asarray(measured, dtype=np.float64)
    if sequence.ndim != 1 or measured.ndim != 1:
        raise ValueError("sequence and measured vectors must be one-dimensional")
    if len(sequence) < 2:
        raise ValueError("the watermark sequence must contain at least two cycles")
    if len(measured) < len(sequence):
        raise ValueError(
            "the measured trace must cover at least one full watermark period "
            f"({len(measured)} < {len(sequence)})"
        )
    if method == "naive":
        return _rotation_correlations_naive(sequence, measured)
    if method == "fft":
        return _rotation_correlations_fft(sequence, measured)
    raise ValueError(f"unknown correlation method {method!r}")


@dataclass
class CPAResult:
    """Outcome of a CPA detection attempt."""

    correlations: np.ndarray
    peak_rotation: int
    peak_correlation: float
    noise_floor_std: float
    second_peak_correlation: float
    z_score: float
    detected: bool
    threshold: float

    @property
    def num_rotations(self) -> int:
        """Number of evaluated rotations (the sequence period)."""
        return len(self.correlations)

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "DETECTED" if self.detected else "not detected"
        if np.isinf(self.z_score):
            z_text = "z=inf (zero noise floor)"
        else:
            z_text = f"z={self.z_score:.1f}"
        return (
            f"{status}: peak rho={self.peak_correlation:.4f} at rotation "
            f"{self.peak_rotation}, noise sigma={self.noise_floor_std:.4f}, "
            f"{z_text}"
        )


class CPADetector:
    """Detects a watermark in a measured power vector.

    The detection rule follows the paper: the watermark is regarded as
    detected only if a *single significant* correlation coefficient can be
    resolved.  "Significant" is operationalised as the peak exceeding the
    off-peak noise floor by ``threshold`` standard deviations (default 4),
    and "single" by requiring the second-highest |correlation| to stay
    below that same threshold.
    """

    def __init__(self, config: Optional[DetectionConfig] = None) -> None:
        self.config = config or DetectionConfig()

    def detect(self, sequence: np.ndarray, measured: np.ndarray) -> CPAResult:
        """Run CPA over all rotations and apply the detection decision."""
        method = "fft" if self.config.use_fft else "naive"
        correlations = rotation_correlations(sequence, measured, method=method)
        return self.evaluate(correlations)

    def evaluate(self, correlations: np.ndarray) -> CPAResult:
        """Apply the detection decision to a precomputed correlation spectrum.

        Delegates to the batched engine with a batch of one, so the result is
        bit-identical to the corresponding row of
        :meth:`repro.detection.batch.BatchCPADetector.evaluate_many`.
        """
        correlations = np.asarray(correlations, dtype=np.float64)
        if correlations.ndim != 1:
            raise ValueError("the correlation spectrum must be one-dimensional")
        batch = BatchCPADetector(self.config).evaluate_many(correlations[None, :])
        return batch.result(0)
