"""Batched CPA detection engine: all Monte-Carlo trials in one shot.

Every study this repository runs on top of the paper's single detection --
detection-probability curves, repeatability box plots, masking/robustness
sweeps, multi-vendor audits -- multiplies one CPA evaluation by hundreds of
Monte-Carlo trials.  This module makes "N traces at once" the native shape
of the detector:

* :func:`batch_rotation_correlations` folds a 2-D trial matrix
  (``trials x cycles``) into per-phase sums and computes the full rotation
  correlation spectrum of every trial with a single stack of rFFTs,
  O(trials * cycles + trials * period log period).
* :class:`BatchCPADetector` vectorizes the evaluate step (peak, off-peak
  noise floor, z-score, uniqueness) across rows and returns a structured
  :class:`BatchCPAResult`.

The single-trace :class:`repro.detection.cpa.CPADetector` delegates its FFT
and evaluation paths to this engine, so a batch of one is *bit-identical*
to a single detection -- the equivalence suite in
``tests/test_detection_batch.py`` locks this in.

Memory stays bounded for very long sweeps through two knobs:

``max_trials_per_chunk``
    :meth:`BatchCPADetector.detect_many` processes the trial matrix in row
    chunks of at most this many trials (results are bit-identical to the
    unchunked run; rows are independent).
``chunk_cycles``
    The phase fold accumulates over column chunks of roughly this many
    cycles (rounded to a whole number of periods), bounding the working
    set of the reduction.  Chunking changes the floating-point summation
    order, so correlations can differ from the unchunked fold at the
    ~1e-15 level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import DetectionConfig

__all__ = [
    "BatchCPADetector",
    "BatchCPAResult",
    "batch_rotation_correlations",
    "fold_by_phase",
]


def fold_by_phase(
    trace_matrix: np.ndarray, period: int, chunk_cycles: Optional[int] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Fold every row of ``trace_matrix`` into per-phase sums.

    Returns ``(folded, counts)`` where ``folded[t, p]`` is the sum of row
    ``t`` over all cycles ``c`` with ``c % period == p`` and ``counts[p]``
    is the number of such cycles (identical for every row).

    The fold is the O(trials * cycles) part of batched CPA; everything after
    it operates on ``trials x period`` arrays.
    """
    matrix = np.asarray(trace_matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("trace matrix must be 2-D (trials x cycles)")
    if period < 2:
        raise ValueError("the watermark period must be at least two cycles")
    trials, num_cycles = matrix.shape
    if num_cycles < period:
        raise ValueError(
            "traces must cover at least one full watermark period "
            f"({num_cycles} < {period})"
        )
    if chunk_cycles is None:
        step = num_cycles
    else:
        if chunk_cycles <= 0:
            raise ValueError("chunk_cycles must be positive")
        # Align chunk boundaries to whole periods so every chunk starts at
        # phase zero and the partial fold stays a plain reshape.
        step = max(period, (int(chunk_cycles) // period) * period)

    folded = np.zeros((trials, period), dtype=np.float64)
    start = 0
    # repro-lint: allow[HOT001] O(num_cycles/chunk) chunk loop, not per-cycle; each pass is a vectorized reshape-fold
    while start < num_cycles:
        stop = min(num_cycles, start + step)
        chunk = matrix[:, start:stop]
        width = stop - start
        full_reps = width // period
        remainder = width - full_reps * period
        if full_reps:
            folded += chunk[:, : full_reps * period].reshape(
                trials, full_reps, period
            ).sum(axis=1)
        if remainder:
            folded[:, :remainder] += chunk[:, full_reps * period :]
        start = stop

    counts = np.full(period, num_cycles // period, dtype=np.float64)
    counts[: num_cycles % period] += 1.0
    return folded, counts


def _as_sequence_matrix(sequences: np.ndarray, trials: int) -> Tuple[np.ndarray, bool]:
    """Validate ``sequences`` and report whether it is shared across trials."""
    x = np.asarray(sequences, dtype=np.float64)
    if x.ndim not in (1, 2):
        raise ValueError("sequences must be a 1-D vector or a (trials x period) matrix")
    if x.shape[-1] < 2:
        raise ValueError("the watermark sequence must contain at least two cycles")
    if x.ndim == 2 and x.shape[0] != trials:
        raise ValueError(
            f"per-trial sequences need one row per trial ({x.shape[0]} != {trials})"
        )
    return x, x.ndim == 1


def batch_rotation_correlations(
    sequences: np.ndarray,
    trace_matrix: np.ndarray,
    method: str = "fft",
    chunk_cycles: Optional[int] = None,
) -> np.ndarray:
    """Rotation correlation spectra for a whole matrix of traces at once.

    Parameters
    ----------
    sequences:
        One period of the watermark model sequence, either a single 1-D
        vector shared by every trial or a ``trials x period`` matrix giving
        each trial its own sequence (same period).
    trace_matrix:
        ``trials x cycles`` matrix of measured per-cycle power vectors.  A
        1-D vector is treated as a batch of one.
    method:
        ``"fft"`` (default) computes all spectra with one stack of rFFTs;
        ``"naive"`` re-correlates literally per rotation and trial
        (validation / small problems only).
    chunk_cycles:
        Optional column-chunk size for the phase fold (memory knob).

    Returns
    -------
    ``trials x period`` matrix; row ``t`` equals
    ``rotation_correlations(sequence_t, trace_matrix[t])``.
    """
    matrix = np.atleast_2d(np.asarray(trace_matrix, dtype=np.float64))
    if matrix.ndim != 2:
        raise ValueError("trace matrix must be 2-D (trials x cycles)")
    trials, num_cycles = matrix.shape
    x, shared = _as_sequence_matrix(sequences, trials)
    period = x.shape[-1]
    if num_cycles < period:
        raise ValueError(
            "traces must cover at least one full watermark period "
            f"({num_cycles} < {period})"
        )
    if chunk_cycles is not None and chunk_cycles <= 0:
        raise ValueError("chunk_cycles must be positive")

    if method == "naive":
        from repro.detection.cpa import rotation_correlations

        rows = []
        # repro-lint: allow[HOT001] golden reference path: the naive per-trial method validates the FFT engine bit-for-bit
        for t in range(trials):
            seq_t = x if shared else x[t]
            rows.append(rotation_correlations(seq_t, matrix[t], method="naive"))
        return np.stack(rows)
    if method != "fft":
        raise ValueError(f"unknown correlation method {method!r}")

    folded, counts = fold_by_phase(matrix, period, chunk_cycles=chunk_cycles)
    # Per-row totals: folded already holds every cycle's contribution, so the
    # row sum falls out of the fold without another pass over the matrix.
    sum_y = folded.sum(axis=1)
    # Row-wise dot products: einsum's buffered reduction rounds differently
    # depending on the total matrix size, which would break the bit-identity
    # between a batch of N and N batches of one; per-row BLAS dots do not.
    sum_yy = np.empty(trials, dtype=np.float64)
    # repro-lint: allow[HOT001] per-row BLAS dots pin batch-size-independent rounding (see comment above); O(trials), not per-cycle
    for t in range(trials):
        sum_yy[t] = matrix[t] @ matrix[t]
    var_y = num_cycles * sum_yy - sum_y * sum_y

    # For rotation r the tiled model at cycle i is x[(i + r) mod period]:
    #   S_xy(t, r) = sum_p folded[t, p] * x[(p + r) mod period]
    #   S_x(r)     = sum_p counts[p]    * x[(p + r) mod period]
    #   S_xx(r)    = S_x(r) when x is 0/1 valued
    # -- circular cross-correlations, evaluated as one stack of rFFTs.
    fft_x = np.fft.rfft(x, axis=-1)
    fft_counts = np.fft.rfft(counts)
    s_xy = np.fft.irfft(np.conj(np.fft.rfft(folded, axis=-1)) * fft_x, n=period, axis=-1)
    s_x = np.fft.irfft(np.conj(fft_counts) * fft_x, n=period, axis=-1)
    if np.all(np.isin(np.unique(x), (0.0, 1.0))):
        s_xx = s_x
    else:
        s_xx = np.fft.irfft(
            np.conj(fft_counts) * np.fft.rfft(x * x, axis=-1), n=period, axis=-1
        )

    if shared:
        s_x = s_x[None, :]
        s_xx = s_xx[None, :]
    numerator = num_cycles * s_xy - s_x * sum_y[:, None]
    var_x = num_cycles * s_xx - s_x * s_x
    denominator = np.sqrt(np.clip(var_x, 0.0, None)) * np.sqrt(
        np.clip(var_y, 0.0, None)
    )[:, None]
    correlations = np.zeros((trials, period), dtype=np.float64)
    valid = denominator > 0
    np.divide(numerator, denominator, out=correlations, where=valid)
    return correlations


@dataclass
class BatchCPAResult:
    """Vectorized outcome of CPA detection over a matrix of trials.

    Every per-trial scalar of :class:`repro.detection.cpa.CPAResult` becomes
    an array indexed by trial; :meth:`result` recovers the scalar result of
    one trial, equal to what :meth:`CPADetector.detect` returns for that row.
    """

    correlations: np.ndarray
    peak_rotations: np.ndarray
    peak_correlations: np.ndarray
    noise_floor_stds: np.ndarray
    second_peak_correlations: np.ndarray
    z_scores: np.ndarray
    detected: np.ndarray
    threshold: float

    @property
    def num_trials(self) -> int:
        """Number of trials (rows) evaluated."""
        return self.correlations.shape[0]

    @property
    def num_rotations(self) -> int:
        """Number of evaluated rotations (the sequence period)."""
        return self.correlations.shape[1]

    @property
    def detection_count(self) -> int:
        """Number of trials in which the watermark was detected."""
        return int(np.count_nonzero(self.detected))

    @property
    def detection_rate(self) -> float:
        """Fraction of trials in which the watermark was detected."""
        if self.num_trials == 0:
            return 0.0
        return self.detection_count / self.num_trials

    def result(self, index: int):
        """The scalar :class:`CPAResult` of one trial."""
        from repro.detection.cpa import CPAResult

        return CPAResult(
            correlations=self.correlations[index],
            peak_rotation=int(self.peak_rotations[index]),
            peak_correlation=float(self.peak_correlations[index]),
            noise_floor_std=float(self.noise_floor_stds[index]),
            second_peak_correlation=float(self.second_peak_correlations[index]),
            z_score=float(self.z_scores[index]),
            detected=bool(self.detected[index]),
            threshold=self.threshold,
        )

    def __len__(self) -> int:
        return self.num_trials

    def __iter__(self) -> Iterator:
        # repro-lint: allow[HOT001] convenience iterator materializing scalar CPAResult views; not on the measured path
        for index in range(self.num_trials):
            yield self.result(index)

    @staticmethod
    def concatenate(results: Sequence["BatchCPAResult"]) -> "BatchCPAResult":
        """Stack several batch results (e.g. from chunked runs) into one."""
        if not results:
            raise ValueError("need at least one batch result to concatenate")
        thresholds = {r.threshold for r in results}
        if len(thresholds) != 1:
            raise ValueError("cannot concatenate results with different thresholds")
        return BatchCPAResult(
            correlations=np.concatenate([r.correlations for r in results]),
            peak_rotations=np.concatenate([r.peak_rotations for r in results]),
            peak_correlations=np.concatenate([r.peak_correlations for r in results]),
            noise_floor_stds=np.concatenate([r.noise_floor_stds for r in results]),
            second_peak_correlations=np.concatenate(
                [r.second_peak_correlations for r in results]
            ),
            z_scores=np.concatenate([r.z_scores for r in results]),
            detected=np.concatenate([r.detected for r in results]),
            threshold=results[0].threshold,
        )

    def summary(self) -> str:
        """One-line human-readable summary of the batch."""
        finite = self.z_scores[np.isfinite(self.z_scores)]
        if len(finite):
            z_text = f"mean finite z={float(finite.mean()):.1f}"
        else:
            z_text = "all z=inf (zero noise floor)"
        return (
            f"{self.detection_count}/{self.num_trials} trials detected "
            f"(rate {self.detection_rate:.2f}), mean peak rho="
            f"{float(self.peak_correlations.mean()):.4f}, {z_text}"
        )


class BatchCPADetector:
    """Vectorized CPA detector over a matrix of measured traces.

    Applies the same detection rule as :class:`repro.detection.cpa.CPADetector`
    (peak exceeding the off-peak noise floor by ``threshold`` standard
    deviations, second peak below the uniqueness margin, positive peak) to
    every row of a ``trials x cycles`` trace matrix at once.
    """

    def __init__(self, config: Optional[DetectionConfig] = None) -> None:
        self.config = config or DetectionConfig()

    def detect_many(
        self,
        sequences: np.ndarray,
        trace_matrix: np.ndarray,
        chunk_cycles: Optional[int] = None,
        max_trials_per_chunk: Optional[int] = None,
    ) -> BatchCPAResult:
        """Run CPA on every trace row and apply the detection decision.

        ``max_trials_per_chunk`` bounds how many rows are processed at once
        (rows are independent, so chunking does not change any result);
        ``chunk_cycles`` bounds the column working set of the phase fold.
        """
        matrix = np.atleast_2d(np.asarray(trace_matrix, dtype=np.float64))
        trials = matrix.shape[0]
        if trials == 0:
            raise ValueError("the trace matrix must contain at least one trial")
        x, shared = _as_sequence_matrix(sequences, trials)
        method = "fft" if self.config.use_fft else "naive"
        if max_trials_per_chunk is not None and max_trials_per_chunk <= 0:
            raise ValueError("max_trials_per_chunk must be positive")
        step = trials if max_trials_per_chunk is None else int(max_trials_per_chunk)
        step = max(1, step)

        chunks: List[BatchCPAResult] = []
        # repro-lint: allow[HOT001] O(trials/chunk) memory-bounding chunk loop; the work inside is the batched engine
        for start in range(0, trials, step):
            stop = min(trials, start + step)
            seq_chunk = x if shared else x[start:stop]
            correlations = batch_rotation_correlations(
                seq_chunk, matrix[start:stop], method=method, chunk_cycles=chunk_cycles
            )
            chunks.append(self.evaluate_many(correlations))
        if len(chunks) == 1:
            return chunks[0]
        return BatchCPAResult.concatenate(chunks)

    def evaluate_many(self, correlations: np.ndarray) -> BatchCPAResult:
        """Apply the detection decision to precomputed correlation spectra.

        ``correlations`` is a ``trials x period`` matrix (a 1-D vector is
        treated as a batch of one).
        """
        spectra = np.atleast_2d(np.asarray(correlations, dtype=np.float64))
        if spectra.ndim != 2:
            raise ValueError("correlations must be at most 2-D")
        trials, period = spectra.shape
        if trials == 0:
            raise ValueError("the correlation matrix must contain at least one trial")
        if period < 3:
            raise ValueError("need at least three rotations to evaluate detection")

        magnitudes = np.abs(spectra)
        peak_rotations = magnitudes.argmax(axis=1)
        rows = np.arange(trials)
        peak_values = spectra[rows, peak_rotations]

        off_peak_mask = np.ones((trials, period), dtype=bool)
        off_peak_mask[rows, peak_rotations] = False
        off_peak = spectra[off_peak_mask].reshape(trials, period - 1)
        noise_stds = off_peak.std(axis=1)
        noise_means = off_peak.mean(axis=1)
        second_peaks = off_peak[rows, np.abs(off_peak).argmax(axis=1)]

        abs_peaks = np.abs(peak_values)
        with np.errstate(divide="ignore", invalid="ignore"):
            z_scores = (abs_peaks - np.abs(noise_means)) / noise_stds
        z_scores = np.where(
            noise_stds == 0.0,
            np.where(abs_peaks > 0, np.inf, 0.0),
            z_scores,
        )
        unique = (abs_peaks > 0) & (
            np.abs(second_peaks) <= self.config.uniqueness_margin * abs_peaks
        )
        threshold = self.config.detection_threshold
        detected = (z_scores >= threshold) & unique & (peak_values > 0)
        return BatchCPAResult(
            correlations=spectra,
            peak_rotations=peak_rotations.astype(np.int64),
            peak_correlations=peak_values,
            noise_floor_stds=noise_stds,
            second_peak_correlations=second_peaks,
            z_scores=z_scores,
            detected=detected,
            threshold=threshold,
        )
