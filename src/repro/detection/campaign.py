"""Detection-probability campaigns.

The paper fixes one operating point (300,000 cycles, one noise level) and
reports that detection succeeds in every repetition.  This module maps the
surrounding design space: for a given watermark amplitude and noise level it
measures the empirical detection probability as a function of acquisition
length, and compares it with the analytical estimate from
:func:`repro.detection.metrics.estimate_required_cycles` -- the question an
IP vendor actually has to answer when sizing a watermark for a new system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.config import DetectionConfig, SynthesisConfig
from repro.detection.batch import BatchCPADetector
from repro.detection.metrics import estimate_required_cycles, expected_correlation
from repro.power.synthesis import TraceSynthesizer


@dataclass(frozen=True)
class DetectionOperatingPoint:
    """One point of the detection-probability curve."""

    num_cycles: int
    trials: int
    detections: int
    mean_peak_correlation: float
    mean_z_score: float

    @property
    def detection_probability(self) -> float:
        """Empirical probability of detecting the watermark."""
        if self.trials == 0:
            return 0.0
        return self.detections / self.trials


@dataclass
class DetectionProbabilityCurve:
    """Empirical detection probability versus acquisition length."""

    watermark_amplitude_w: float
    noise_sigma_w: float
    sequence_period: int
    points: List[DetectionOperatingPoint] = field(default_factory=list)

    @property
    def expected_rho(self) -> float:
        """Analytical population correlation at this amplitude/noise."""
        return expected_correlation(self.watermark_amplitude_w, self.noise_sigma_w)

    @property
    def analytical_required_cycles(self) -> int:
        """Cycles the analytical model deems sufficient for reliable detection."""
        return estimate_required_cycles(self.expected_rho, self.sequence_period)

    def empirical_required_cycles(self, target_probability: float = 0.95) -> Optional[int]:
        """Smallest evaluated acquisition length reaching the target probability.

        Returns ``None`` if no evaluated point reaches it.
        """
        if not 0.0 < target_probability <= 1.0:
            raise ValueError("target probability must be in (0, 1]")
        for point in sorted(self.points, key=lambda p: p.num_cycles):
            if point.detection_probability >= target_probability:
                return point.num_cycles
        return None

    def is_monotonic(self, wiggle_tolerance: float = 0.15) -> bool:
        """Detection probability should not degrade with more cycles (statistically).

        ``wiggle_tolerance`` is how much one point may dip below its
        predecessor before the curve counts as non-monotonic; the default
        absorbs the sampling noise of small trial counts.  Pass ``0.0`` to
        require strict (non-decreasing) monotonicity.
        """
        if wiggle_tolerance < 0:
            raise ValueError("wiggle tolerance must be non-negative")
        ordered = sorted(self.points, key=lambda p: p.num_cycles)
        probabilities = [p.detection_probability for p in ordered]
        return all(b >= a - wiggle_tolerance for a, b in zip(probabilities, probabilities[1:]))

    def to_text(self) -> str:
        """Render the curve as a text table."""
        lines = [
            f"Detection probability curve (amplitude={self.watermark_amplitude_w * 1e3:.2f} mW, "
            f"noise sigma={self.noise_sigma_w * 1e3:.1f} mW, expected rho={self.expected_rho:.4f})",
            f"{'cycles':>10} {'P(detect)':>10} {'mean peak rho':>14} {'mean z':>8}",
        ]
        for point in sorted(self.points, key=lambda p: p.num_cycles):
            lines.append(
                f"{point.num_cycles:>10} {point.detection_probability:>10.2f} "
                f"{point.mean_peak_correlation:>14.4f} {point.mean_z_score:>8.1f}"
            )
        lines.append(
            f"analytical sufficient-cycle estimate: {self.analytical_required_cycles} cycles"
        )
        return "\n".join(lines)


def run_detection_probability_campaign(
    sequence: np.ndarray,
    watermark_amplitude_w: float,
    noise_sigma_w: float,
    cycle_counts: Sequence[int],
    trials_per_point: int = 20,
    detection_config: Optional[DetectionConfig] = None,
    base_power_w: float = 5e-3,
    seed: int = 0,
    max_trials_per_chunk: Optional[int] = None,
    chunk_cycles: Optional[int] = None,
    synthesis: Optional[SynthesisConfig] = None,
) -> DetectionProbabilityCurve:
    """Monte-Carlo estimate of detection probability versus trace length.

    The synthetic measurement model is the same one the full pipeline
    produces after the acquisition chain: ``Y = base + a * X(rotated) +
    N(0, sigma)`` -- which keeps the campaign fast enough to sweep dozens of
    operating points while remaining faithful to what CPA actually sees.

    All trials of one acquisition length are synthesized as a single trial
    matrix by :class:`repro.power.synthesis.TraceSynthesizer` (the offset
    rows come out of one batched modular gather instead of one Python slice
    per trial) and detected in one batched CPA pass.  Each trial's random
    draws (phase offset, then its noise row) happen in the same order as
    the pre-batching per-trial loop, so a given seed produces the *same
    curve* as the original implementation — the golden values in
    ``tests/test_detection_campaign.py`` pin this.
    ``max_trials_per_chunk`` bounds how many trial rows are materialised at
    once so memory stays bounded for very long (1e6-cycle) sweeps; row
    chunking does not touch the draw order, so detection counts are
    identical for any chunk size and the mean statistics agree to
    floating-point rounding.  ``chunk_cycles`` additionally bounds the
    column working set of the batched phase fold.

    ``synthesis`` accepts the declarative
    :class:`repro.core.config.SynthesisConfig` carried by a
    :class:`repro.core.spec.ScenarioSpec`; it currently maps onto
    ``max_trials_per_chunk`` (the campaign's rows always use the pinned
    compat draw order) and is mutually exclusive with passing that
    keyword directly.
    """
    if synthesis is not None:
        if max_trials_per_chunk is not None:
            raise ValueError(
                "pass max_trials_per_chunk either via 'synthesis' or as a "
                "keyword, not both"
            )
        if not synthesis.compat_draw_order or synthesis.gaussian_dtype != "float64":
            # Refuse rather than silently run a different path than the
            # spec (and its hash/provenance stamp) claims.
            raise ValueError(
                "the detection-probability campaign always uses the pinned "
                "compat draw order in float64; compat_draw_order=False / "
                "gaussian_dtype overrides are not supported here"
            )
        max_trials_per_chunk = synthesis.max_trials_per_chunk
    sequence = np.asarray(sequence, dtype=np.float64)
    if sequence.ndim != 1 or len(sequence) < 3:
        raise ValueError("the watermark sequence must be a 1-D vector of at least 3 cycles")
    if watermark_amplitude_w < 0 or noise_sigma_w < 0:
        raise ValueError("amplitude and noise must be non-negative")
    if trials_per_point <= 0:
        raise ValueError("trials_per_point must be positive")
    if not cycle_counts:
        raise ValueError("at least one acquisition length must be evaluated")
    if max_trials_per_chunk is not None and max_trials_per_chunk <= 0:
        raise ValueError("max_trials_per_chunk must be positive")

    detector = BatchCPADetector(detection_config or DetectionConfig())
    period = len(sequence)
    synthesizer = TraceSynthesizer.from_sequence(
        sequence,
        watermark_amplitude_w=watermark_amplitude_w,
        noise_sigma_w=noise_sigma_w,
        base_power_w=base_power_w,
    )
    rng = np.random.default_rng(seed)
    curve = DetectionProbabilityCurve(
        watermark_amplitude_w=watermark_amplitude_w,
        noise_sigma_w=noise_sigma_w,
        sequence_period=period,
    )
    row_step = trials_per_point if max_trials_per_chunk is None else int(max_trials_per_chunk)
    for num_cycles in cycle_counts:
        num_cycles = int(num_cycles)
        if num_cycles < period:
            raise ValueError(
                f"acquisition of {num_cycles} cycles is shorter than the sequence period {period}"
            )
        detections = 0
        peak_sum = 0.0
        z_sum = 0.0
        # repro-lint: allow[HOT001] O(trials/chunk) memory-bounding chunk loop; synthesis and detection inside are batched
        for start in range(0, trials_per_point, row_step):
            stop = min(trials_per_point, start + row_step)
            # Each row draws its offset then its noise, exactly as the
            # pre-batching per-trial loop did (seed compatibility); the
            # offset rows are gathered in one batched fancy-index pass and
            # the chunk's peak memory stays at one trials x cycles array.
            trial_matrix = synthesizer.synthesize_trials(stop - start, num_cycles, rng)
            batch = detector.detect_many(sequence, trial_matrix, chunk_cycles=chunk_cycles)
            detections += batch.detection_count
            peak_sum += float(batch.peak_correlations.sum())
            z_sum += float(batch.z_scores.sum())
        curve.points.append(
            DetectionOperatingPoint(
                num_cycles=num_cycles,
                trials=trials_per_point,
                detections=detections,
                mean_peak_correlation=peak_sum / trials_per_point,
                mean_z_score=z_sum / trials_per_point,
            )
        )
    return curve
