"""SoC substrate: embedded-processor models producing background activity.

The paper detects the watermark while an ARM Cortex-M0 runs the Dhrystone
benchmark (chip I), and additionally with a clocked-but-idle dual-core
Cortex-A5 plus caches contributing background noise (chip II).  This
package provides the equivalents we can build without the proprietary IP:

* a small Thumb-like instruction set, assembler and in-order scalar core
  (:mod:`repro.soc.cpu`) whose execution produces per-cycle switching
  activity comparable in structure to a Cortex-M0-class microcontroller;
* SRAM, an AHB-lite-style bus and a cache model;
* a Dhrystone-like synthetic integer workload (:mod:`repro.soc.workloads`);
* an idle dual-core + cache background model (:mod:`repro.soc.multicore`);
* the chip I / chip II system assemblies (:mod:`repro.soc.chip`) that turn
  all of the above into the background power traces the measurement chain
  consumes.
"""

from repro.soc.isa import Opcode, Instruction, Condition, REGISTER_NAMES
from repro.soc.assembler import Assembler, AssemblyError, Program
from repro.soc.memory import Memory
from repro.soc.bus import SystemBus, BusTransfer
from repro.soc.cache import Cache, CacheConfig
from repro.soc.cpu import CortexM0Like, CPUActivityModel, ExecutionStats
from repro.soc.multicore import IdleDualCoreA5Like
from repro.soc.workloads import (
    dhrystone_like_program,
    memcopy_program,
    idle_loop_program,
    checksum_program,
)
from repro.soc.chip import ChipModel, build_chip_one, build_chip_two

__all__ = [
    "Opcode",
    "Instruction",
    "Condition",
    "REGISTER_NAMES",
    "Assembler",
    "AssemblyError",
    "Program",
    "Memory",
    "SystemBus",
    "BusTransfer",
    "Cache",
    "CacheConfig",
    "CortexM0Like",
    "CPUActivityModel",
    "ExecutionStats",
    "IdleDualCoreA5Like",
    "dhrystone_like_program",
    "memcopy_program",
    "idle_loop_program",
    "checksum_program",
    "ChipModel",
    "build_chip_one",
    "build_chip_two",
]
