"""Background-noise contributors that are clocked but not simulated in detail.

Chip II of the paper contains a dual-core Cortex-A5 with caches; during the
measurements the A5 executes no program, yet both cores and the on-chip bus
are clocked and "account for a significant portion of background noise in
the system".  Chip I likewise contains "numerous commercial IP blocks"
besides the Cortex-M0.

Neither the A5 nor the commercial peripherals can be modelled at the
instruction level (no RTL is available, and they are idle anyway), so they
are represented by structural activity models: a register/clock-tree
inventory whose non-gated fraction toggles every cycle, plus a stochastic
per-cycle component representing asynchronous housekeeping activity
(timers, snoop logic, bus arbiters).  The traces are generated vectorised
with a seeded generator so experiments are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.rtl.activity import ActivityTrace
from repro.rtl.components import CLOCK_EDGES_PER_CYCLE
from repro.soc.cache import CacheConfig


@dataclass(frozen=True)
class IdleBlockParameters:
    """Structural parameters of an idle-but-clocked block."""

    name: str
    register_count: int
    ungated_fraction: float
    mean_data_activity: float
    data_activity_std: float

    def __post_init__(self) -> None:
        if self.register_count <= 0:
            raise ValueError("register count must be positive")
        if not 0.0 <= self.ungated_fraction <= 1.0:
            raise ValueError("ungated fraction must be within [0, 1]")
        if self.mean_data_activity < 0 or self.data_activity_std < 0:
            raise ValueError("activity statistics must be non-negative")


class _IdleActivitySource:
    """Common trace generation for idle-but-clocked blocks."""

    def __init__(self, parameters: IdleBlockParameters) -> None:
        self.parameters = parameters

    @property
    def name(self) -> str:
        """Block name."""
        return self.parameters.name

    @property
    def register_count(self) -> int:
        """Total flip-flop count of the block."""
        return self.parameters.register_count

    @property
    def clocked_registers(self) -> int:
        """Registers whose clock is not gated while the block idles."""
        return int(round(self.parameters.register_count * self.parameters.ungated_fraction))

    def activity_trace(self, num_cycles: int, seed: Optional[int] = None) -> ActivityTrace:
        """Per-cycle activity of the idle block over ``num_cycles`` cycles."""
        if num_cycles <= 0:
            raise ValueError("num_cycles must be positive")
        rng = np.random.default_rng(seed)
        clock = np.full(
            num_cycles, CLOCK_EDGES_PER_CYCLE * self.clocked_registers, dtype=np.int64
        )
        mean = self.parameters.mean_data_activity
        std = self.parameters.data_activity_std
        data = np.clip(rng.normal(mean, std, size=num_cycles), 0, None)
        # Occasional housekeeping bursts (timer rollovers, arbitration).
        burst_mask = rng.random(num_cycles) < 0.002
        data = data + burst_mask * rng.integers(50, 400, size=num_cycles)
        comb = data * 0.6
        return ActivityTrace(
            name=self.name,
            clock_toggles=clock,
            data_toggles=np.round(data).astype(np.int64),
            comb_toggles=np.round(comb).astype(np.int64),
        )


class IdleDualCoreA5Like(_IdleActivitySource):
    """A clocked-but-idle dual-core application processor with caches.

    Parameters approximate a dual Cortex-A5 class subsystem: tens of
    thousands of flip-flops per core plus L1 caches.  Only the ungated
    fraction of the clock tree toggles while idle, but that alone is an
    order of magnitude more background clock power than the microcontroller
    core -- which is why the chip II correlation peak in the paper is lower
    than chip I's.
    """

    def __init__(
        self,
        registers_per_core: int = 22_000,
        num_cores: int = 2,
        cache_config: Optional[CacheConfig] = None,
        ungated_fraction: float = 0.18,
        name: str = "a5_subsystem",
    ) -> None:
        if registers_per_core <= 0 or num_cores <= 0:
            raise ValueError("core dimensions must be positive")
        self.num_cores = num_cores
        self.registers_per_core = registers_per_core
        self.cache_config = cache_config or CacheConfig(size_bytes=16 * 1024)
        cache_registers = 2 * num_cores * (self.cache_config.num_lines * (self.cache_config.tag_bits + 2))
        total_registers = registers_per_core * num_cores + cache_registers
        super().__init__(
            IdleBlockParameters(
                name=name,
                register_count=total_registers,
                ungated_fraction=ungated_fraction,
                mean_data_activity=220.0,
                data_activity_std=140.0,
            )
        )


class BackgroundIPBlocks(_IdleActivitySource):
    """The "numerous commercial IP blocks" sharing the chip I SoC.

    Peripherals (timers, UARTs, DMA, memory controllers) that are clocked
    and occasionally active while the Cortex-M0 runs Dhrystone.
    """

    def __init__(
        self,
        register_count: int = 6_000,
        ungated_fraction: float = 0.35,
        name: str = "soc_peripherals",
    ) -> None:
        super().__init__(
            IdleBlockParameters(
                name=name,
                register_count=register_count,
                ungated_fraction=ungated_fraction,
                mean_data_activity=90.0,
                data_activity_std=60.0,
            )
        )
