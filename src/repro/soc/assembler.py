"""Two-pass assembler for the Thumb-like ISA.

Supported syntax (one statement per line)::

    ; comment
    label:
        mov   r0, #42
        add   r1, r0, r2
        sub   r1, r1, #1
        cmp   r1, #0
        bne   label
        ldr   r3, [r2, #4]
        str   r3, [r2, #8]
        push  {r4, r5, lr}
        pop   {r4, r5, pc}
        bl    function
        bx    lr
        halt

    .word  data_label, 1, 2, 3      ; literal data in the data section
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.soc.isa import (
    Condition,
    Instruction,
    Opcode,
    Operand,
    parse_register,
)


class AssemblyError(Exception):
    """Raised when a source line cannot be assembled."""

    def __init__(self, message: str, line_number: int = 0, line: str = "") -> None:
        location = f" (line {line_number}: {line.strip()!r})" if line_number else ""
        super().__init__(f"{message}{location}")
        self.line_number = line_number


@dataclass
class Program:
    """An assembled program: instructions plus initial data memory."""

    instructions: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    data_words: Dict[int, int] = field(default_factory=dict)
    entry_point: int = 0

    def __len__(self) -> int:
        return len(self.instructions)

    def label_address(self, name: str) -> int:
        """Instruction index of a label."""
        if name not in self.labels:
            raise KeyError(f"undefined label {name!r}")
        return self.labels[name]


#: Branch mnemonics with condition suffixes, e.g. ``bne`` -> (B, NE).
_BRANCH_RE = re.compile(r"^b(?P<cond>eq|ne|lt|le|gt|ge|cs|cc|mi|pl)?$")


class Assembler:
    """Two-pass assembler producing a :class:`Program`."""

    def __init__(self, data_base_address: int = 0x2000_0000) -> None:
        self.data_base_address = data_base_address

    def assemble(self, source: str, entry_label: Optional[str] = None) -> Program:
        """Assemble ``source`` text into a program."""
        statements = self._tokenize(source)
        program = Program()
        self._first_pass(statements, program)
        self._second_pass(statements, program)
        if entry_label is not None:
            program.entry_point = program.label_address(entry_label)
        return program

    # -- pass 0: tokenisation --------------------------------------------

    def _tokenize(self, source: str) -> List[Tuple[int, str]]:
        statements: List[Tuple[int, str]] = []
        for line_number, raw in enumerate(source.splitlines(), start=1):
            line = raw.split(";")[0].split("//")[0].strip()
            if not line:
                continue
            statements.append((line_number, line))
        return statements

    # -- pass 1: label collection -------------------------------------------

    def _first_pass(self, statements: List[Tuple[int, str]], program: Program) -> None:
        instruction_index = 0
        data_offset = 0
        for line_number, line in statements:
            while ":" in line:
                label, _, rest = line.partition(":")
                label = label.strip()
                if not label.isidentifier():
                    raise AssemblyError(f"invalid label {label!r}", line_number, line)
                if line.lstrip().startswith(".word"):
                    break
                if label in program.labels:
                    raise AssemblyError(f"duplicate label {label!r}", line_number, line)
                program.labels[label] = instruction_index
                line = rest.strip()
            if not line:
                continue
            if line.startswith(".word"):
                values = line[len(".word"):].split(",")
                data_offset += 4 * len([v for v in values if v.strip()])
                continue
            if line.startswith(".data"):
                continue
            instruction_index += 1

    # -- pass 2: encoding --------------------------------------------------

    def _second_pass(self, statements: List[Tuple[int, str]], program: Program) -> None:
        data_offset = 0
        for line_number, line in statements:
            while ":" in line and not line.lstrip().startswith(".word"):
                _, _, line = line.partition(":")
                line = line.strip()
            if not line:
                continue
            if line.startswith(".data"):
                continue
            if line.startswith(".word"):
                for value_text in line[len(".word"):].split(","):
                    value_text = value_text.strip()
                    if not value_text:
                        continue
                    value = self._parse_immediate(value_text, line_number, line)
                    program.data_words[self.data_base_address + data_offset] = value & 0xFFFFFFFF
                    data_offset += 4
                continue
            program.instructions.append(self._parse_instruction(line, line_number))

    def _parse_instruction(self, line: str, line_number: int) -> Instruction:
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        condition = Condition.AL

        branch_match = _BRANCH_RE.match(mnemonic)
        if mnemonic in ("bl", "bx"):
            opcode = Opcode.BL if mnemonic == "bl" else Opcode.BX
        elif branch_match:
            opcode = Opcode.B
            cond = branch_match.group("cond")
            if cond:
                condition = Condition(cond)
        else:
            # Strip the Thumb "s" (flag-setting) suffix: movs, adds, subs...
            base = mnemonic[:-1] if mnemonic.endswith("s") and mnemonic not in ("bcs",) else mnemonic
            try:
                opcode = Opcode(base)
            except ValueError:
                try:
                    opcode = Opcode(mnemonic)
                except ValueError:
                    raise AssemblyError(f"unknown mnemonic {mnemonic!r}", line_number, line)

        operands = self._parse_operands(opcode, operand_text, line_number, line)
        return Instruction(
            opcode=opcode, operands=operands, condition=condition, source_line=line_number
        )

    def _parse_operands(
        self, opcode: Opcode, text: str, line_number: int, line: str
    ) -> Tuple[Operand, ...]:
        text = text.strip()
        if not text:
            return ()
        if opcode in (Opcode.PUSH, Opcode.POP):
            if not (text.startswith("{") and text.endswith("}")):
                raise AssemblyError("push/pop operands must be a {reglist}", line_number, line)
            registers = [
                parse_register(token) for token in text[1:-1].split(",") if token.strip()
            ]
            if not registers:
                raise AssemblyError("empty register list", line_number, line)
            return (Operand.reglist(registers),)
        if opcode in (Opcode.B, Opcode.BL):
            return (Operand.label(text.strip()),)
        if opcode is Opcode.BX:
            return (Operand.reg(parse_register(text)),)

        operands: List[Operand] = []
        for token in self._split_operands(text):
            token = token.strip()
            if token.startswith("#"):
                operands.append(Operand.imm(self._parse_immediate(token[1:], line_number, line)))
            elif token.startswith("["):
                operands.append(self._parse_memory_operand(token, line_number, line))
            else:
                try:
                    operands.append(Operand.reg(parse_register(token)))
                except ValueError:
                    operands.append(Operand.imm(self._parse_immediate(token, line_number, line)))
        return tuple(operands)

    @staticmethod
    def _split_operands(text: str) -> List[str]:
        tokens: List[str] = []
        depth = 0
        current = ""
        for char in text:
            if char == "[":
                depth += 1
            elif char == "]":
                depth -= 1
            if char == "," and depth == 0:
                tokens.append(current)
                current = ""
            else:
                current += char
        if current.strip():
            tokens.append(current)
        return tokens

    def _parse_memory_operand(self, token: str, line_number: int, line: str) -> Operand:
        if not token.endswith("]"):
            raise AssemblyError(f"malformed memory operand {token!r}", line_number, line)
        inner = token[1:-1]
        parts = [p.strip() for p in inner.split(",")]
        try:
            base = parse_register(parts[0])
        except ValueError as exc:
            raise AssemblyError(str(exc), line_number, line) from exc
        offset = 0
        if len(parts) > 1 and parts[1]:
            offset_text = parts[1].lstrip("#")
            offset = self._parse_immediate(offset_text, line_number, line)
        return Operand.mem(base, offset)

    @staticmethod
    def _parse_immediate(text: str, line_number: int, line: str) -> int:
        text = text.strip()
        try:
            if text.lower().startswith("0x"):
                return int(text, 16)
            if text.lower().startswith("-0x"):
                return -int(text[1:], 16)
            return int(text)
        except ValueError as exc:
            raise AssemblyError(f"invalid immediate {text!r}", line_number, line) from exc
