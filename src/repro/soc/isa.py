"""A small Thumb-like instruction set.

The instruction set covers the classes of operations Dhrystone exercises on
a Cortex-M0 (integer arithmetic, logic, shifts, compares, loads/stores,
branches and calls) without attempting binary compatibility.  Instructions
are represented symbolically; a synthetic 16-bit encoding is provided only
so the core's fetch datapath has realistic bit-level switching activity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Architectural register names.  r13 = sp, r14 = lr, r15 = pc.
REGISTER_NAMES: Tuple[str, ...] = tuple(f"r{i}" for i in range(16))
NUM_REGISTERS = 16
SP = 13
LR = 14
PC = 15


class Opcode(enum.Enum):
    """Instruction mnemonics."""

    MOV = "mov"
    MVN = "mvn"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    AND = "and"
    ORR = "orr"
    EOR = "eor"
    LSL = "lsl"
    LSR = "lsr"
    ASR = "asr"
    CMP = "cmp"
    LDR = "ldr"
    LDRB = "ldrb"
    STR = "str"
    STRB = "strb"
    PUSH = "push"
    POP = "pop"
    B = "b"
    BL = "bl"
    BX = "bx"
    NOP = "nop"
    HALT = "halt"


class Condition(enum.Enum):
    """Branch conditions (a subset of the ARM condition codes)."""

    AL = "al"
    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    CS = "cs"
    CC = "cc"
    MI = "mi"
    PL = "pl"


#: Base execution latency per opcode, in cycles, loosely following the
#: Cortex-M0 (single-cycle ALU, two-cycle loads/stores, three-cycle taken
#: branches, one extra cycle per transferred register for PUSH/POP).
BASE_CYCLES: Dict[Opcode, int] = {
    Opcode.MOV: 1,
    Opcode.MVN: 1,
    Opcode.ADD: 1,
    Opcode.SUB: 1,
    Opcode.MUL: 1,
    Opcode.AND: 1,
    Opcode.ORR: 1,
    Opcode.EOR: 1,
    Opcode.LSL: 1,
    Opcode.LSR: 1,
    Opcode.ASR: 1,
    Opcode.CMP: 1,
    Opcode.LDR: 2,
    Opcode.LDRB: 2,
    Opcode.STR: 2,
    Opcode.STRB: 2,
    Opcode.PUSH: 1,
    Opcode.POP: 1,
    Opcode.B: 1,
    Opcode.BL: 3,
    Opcode.BX: 3,
    Opcode.NOP: 1,
    Opcode.HALT: 1,
}

#: Extra cycles when a branch is taken (pipeline refill).
TAKEN_BRANCH_PENALTY = 2


@dataclass(frozen=True)
class Operand:
    """A single instruction operand."""

    kind: str  # "reg", "imm", "label", "mem", "reglist"
    value: object

    @classmethod
    def reg(cls, index: int) -> "Operand":
        if not 0 <= index < NUM_REGISTERS:
            raise ValueError(f"register index out of range: {index}")
        return cls(kind="reg", value=index)

    @classmethod
    def imm(cls, value: int) -> "Operand":
        return cls(kind="imm", value=int(value))

    @classmethod
    def label(cls, name: str) -> "Operand":
        return cls(kind="label", value=name)

    @classmethod
    def mem(cls, base: int, offset: int = 0) -> "Operand":
        return cls(kind="mem", value=(base, offset))

    @classmethod
    def reglist(cls, registers: List[int]) -> "Operand":
        return cls(kind="reglist", value=tuple(sorted(registers)))


@dataclass(frozen=True)
class Instruction:
    """A decoded instruction."""

    opcode: Opcode
    operands: Tuple[Operand, ...] = ()
    condition: Condition = Condition.AL
    label: Optional[str] = None
    source_line: int = 0

    @property
    def is_branch(self) -> bool:
        """Whether the instruction can redirect control flow."""
        return self.opcode in (Opcode.B, Opcode.BL, Opcode.BX)

    @property
    def is_memory(self) -> bool:
        """Whether the instruction accesses data memory."""
        return self.opcode in (
            Opcode.LDR,
            Opcode.LDRB,
            Opcode.STR,
            Opcode.STRB,
            Opcode.PUSH,
            Opcode.POP,
        )

    def base_cycles(self) -> int:
        """Execution latency before branch/reglist adjustments."""
        cycles = BASE_CYCLES[self.opcode]
        if self.opcode in (Opcode.PUSH, Opcode.POP) and self.operands:
            reglist = self.operands[0]
            if reglist.kind == "reglist":
                cycles += len(reglist.value)
        return cycles

    def encode(self) -> int:
        """Synthetic 16-bit encoding used for fetch-path switching activity.

        The encoding is *not* ARM Thumb; it simply mixes the opcode and
        operand fields into 16 bits so that consecutive fetched words have
        data-dependent Hamming distances, which is what the power model
        needs.
        """
        opcode_field = list(Opcode).index(self.opcode) & 0x1F
        cond_field = list(Condition).index(self.condition) & 0xF
        operand_hash = 0
        for i, operand in enumerate(self.operands):
            if operand.kind == "reg":
                operand_hash ^= (operand.value & 0xF) << (4 * (i % 2))
            elif operand.kind == "imm":
                operand_hash ^= operand.value & 0xFF
            elif operand.kind == "mem":
                base, offset = operand.value
                operand_hash ^= ((base & 0xF) << 4) | (offset & 0xF)
            elif operand.kind == "reglist":
                for reg in operand.value:
                    operand_hash ^= 1 << (reg % 8)
            elif operand.kind == "label":
                operand_hash ^= sum(ord(c) for c in str(operand.value)) & 0xFF
        word = (opcode_field << 11) | (cond_field << 7) | (operand_hash & 0x7F)
        return word & 0xFFFF

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        suffix = "" if self.condition is Condition.AL else self.condition.value
        operand_text = ", ".join(str(op.value) for op in self.operands)
        return f"{self.opcode.value}{suffix} {operand_text}".strip()


def parse_register(token: str) -> int:
    """Parse a register token (``r0``-``r15``, ``sp``, ``lr``, ``pc``)."""
    token = token.strip().lower()
    aliases = {"sp": SP, "lr": LR, "pc": PC}
    if token in aliases:
        return aliases[token]
    if token.startswith("r") and token[1:].isdigit():
        index = int(token[1:])
        if 0 <= index < NUM_REGISTERS:
            return index
    raise ValueError(f"invalid register name: {token!r}")
