"""Structural (netlist-level) model of the host SoC.

The behavioural chip models in :mod:`repro.soc.chip` produce power traces;
this module produces the *structural* view -- a module hierarchy with
registers, integrated clock gates and glue logic -- that the embedding API
and the removal-attack analysis of Section VI operate on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.rtl.components import ClockGate, CombinationalBlock, Register
from repro.rtl.module import Module


@dataclass(frozen=True)
class IPBlockSpec:
    """Geometry of one clock-gated functional IP sub-module."""

    name: str
    num_words: int = 16
    word_width: int = 32
    comb_gates: int = 200

    def __post_init__(self) -> None:
        if self.num_words <= 0 or self.word_width <= 0 or self.comb_gates <= 0:
            raise ValueError("IP block dimensions must be positive")

    @property
    def register_count(self) -> int:
        """Flip-flops in the block."""
        return self.num_words * self.word_width


#: Default sub-module mix approximating a Cortex-M0-class SoC.
DEFAULT_SOC_BLOCKS: tuple = (
    IPBlockSpec(name="cpu_core", num_words=28, word_width=32, comb_gates=2600),
    IPBlockSpec(name="ahb_fabric", num_words=8, word_width=32, comb_gates=500),
    IPBlockSpec(name="uart", num_words=4, word_width=16, comb_gates=160),
    IPBlockSpec(name="timer", num_words=6, word_width=32, comb_gates=220),
    IPBlockSpec(name="dma", num_words=10, word_width=32, comb_gates=420),
)


def build_ip_block(spec: IPBlockSpec) -> Module:
    """A clock-gated functional sub-module.

    Structure per block: a control block drives the clock-gate enable
    (``CLK_CTRL`` in Fig. 1(b)); each clock gate drives a group of register
    words; registers feed the datapath logic which loops back to the
    registers and to the control.
    """
    block = Module(spec.name, role="functional")
    control = CombinationalBlock("clk_ctrl", gate_count=max(4, spec.comb_gates // 20), activity_factor=0.1)
    datapath = CombinationalBlock("datapath", gate_count=spec.comb_gates, activity_factor=0.15)
    block.add_component(control)
    block.add_component(datapath)

    words_per_gate = 4
    num_gates = max(1, (spec.num_words + words_per_gate - 1) // words_per_gate)
    for gate_index in range(num_gates):
        gate = ClockGate(f"icg{gate_index}")
        block.add_component(gate)
        block.connect("clk_ctrl", f"icg{gate_index}", net="clk_en")
        first_word = gate_index * words_per_gate
        last_word = min(spec.num_words, first_word + words_per_gate)
        for word_index in range(first_word, last_word):
            register = Register(f"word{word_index}", width=spec.word_width)
            block.add_component(register)
            block.connect(f"icg{gate_index}", f"word{word_index}", net="gated_clk")
            block.connect(f"word{word_index}", "datapath", net="q")
    block.connect("datapath", "clk_ctrl", net="state")
    block.connect("datapath", "word0", net="d")
    return block


def build_soc_structure(
    blocks: Optional[List[IPBlockSpec]] = None,
    name: str = "soc",
) -> Module:
    """Structural module hierarchy of the host SoC."""
    soc = Module(name, role="functional")
    specs = list(blocks) if blocks is not None else list(DEFAULT_SOC_BLOCKS)
    if not specs:
        raise ValueError("the SoC needs at least one IP block")
    previous: Optional[str] = None
    bus = CombinationalBlock("bus_matrix", gate_count=800, activity_factor=0.1)
    soc.add_component(bus)
    for spec in specs:
        child = build_ip_block(spec)
        soc.add_child(child)
        soc.connect("bus_matrix", f"{spec.name}/clk_ctrl", net="hsel")
        soc.connect(f"{spec.name}/datapath", "bus_matrix", net="hrdata")
        if previous is not None:
            soc.connect(f"{previous}/datapath", f"{spec.name}/datapath", net="irq")
        previous = spec.name
    return soc


def clock_gate_paths(module: Module) -> List[str]:
    """Paths (relative to ``module``) of every clock gate in the hierarchy.

    These are the candidate embedding targets for the clock-modulation
    watermark.
    """
    prefix = f"{module.name}/"
    paths = []
    for path, component, _ in module.iter_components():
        if isinstance(component, ClockGate):
            if not path.startswith(prefix):
                raise ValueError(f"unexpected component path {path!r}")
            paths.append(path[len(prefix):])
    return sorted(paths)
