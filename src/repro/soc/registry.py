"""Canonical chip registry.

The paper's two test chips used to be resolved by stringly alias matching
scattered through ``experiments/common.py``; this registry declares each
chip once -- canonical name, builder, aliases, description -- and serves
both the pipeline and the CLI.  Unknown names raise a ``ValueError``
listing every valid spelling.

Workload programs are registered here too, so a :class:`ScenarioSpec`'s
``workload`` field resolves through the same mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.soc.assembler import Program
from repro.soc.workloads import (
    checksum_program,
    dhrystone_like_program,
    idle_loop_program,
    memcopy_program,
)


@dataclass(frozen=True)
class ChipEntry:
    """One registered chip configuration."""

    canonical_name: str
    builder: Callable[..., "object"]
    aliases: Tuple[str, ...]
    description: str

    def matches(self, name: str) -> bool:
        """Whether ``name`` is this chip's canonical name or an alias."""
        return name == self.canonical_name or name in self.aliases


def _build_chip_one(**kwargs):
    from repro.soc.chip import build_chip_one

    return build_chip_one(**kwargs)


def _build_chip_two(**kwargs):
    from repro.soc.chip import build_chip_two

    return build_chip_two(**kwargs)


_CHIPS: Dict[str, ChipEntry] = {}


def register_chip(entry: ChipEntry) -> None:
    """Register a chip; canonical names and aliases must be unique."""
    taken = set()
    for existing in _CHIPS.values():
        taken.add(existing.canonical_name)
        taken.update(existing.aliases)
    clashes = ({entry.canonical_name} | set(entry.aliases)) & taken
    if entry.canonical_name in _CHIPS:
        clashes.add(entry.canonical_name)
    if clashes:
        raise ValueError(f"chip names already registered: {sorted(clashes)}")
    _CHIPS[entry.canonical_name] = entry


register_chip(
    ChipEntry(
        canonical_name="chip1",
        builder=_build_chip_one,
        aliases=("chipI", "chip_one", "1", "I"),
        description="Cortex-M0-class SoC with peripherals, watermark as a macro",
    )
)
register_chip(
    ChipEntry(
        canonical_name="chip2",
        builder=_build_chip_two,
        aliases=("chipII", "chip_two", "2", "II"),
        description="chip I plus the clocked-but-idle dual-core A5-class subsystem",
    )
)


def available_chips() -> Tuple[str, ...]:
    """Canonical names of every registered chip."""
    return tuple(sorted(_CHIPS))


def chip_entry(name: str) -> ChipEntry:
    """Resolve a chip name or alias to its registry entry."""
    for entry in _CHIPS.values():
        if entry.matches(name):
            return entry
    valid = ", ".join(
        f"{entry.canonical_name!r} (aliases: {', '.join(map(repr, entry.aliases))})"
        for entry in sorted(_CHIPS.values(), key=lambda e: e.canonical_name)
    )
    raise ValueError(f"unknown chip name {name!r}; expected one of {valid}")


def canonical_chip_name(name: str) -> str:
    """Canonical name of a chip given any registered spelling."""
    return chip_entry(name).canonical_name


def build_registered_chip(name: str, **kwargs):
    """Build a chip through the registry (accepts any registered spelling)."""
    return chip_entry(name).builder(**kwargs)


#: Workload registry: spec ``workload`` name -> program builder.
_WORKLOADS: Dict[str, Callable[[], Program]] = {
    "dhrystone": dhrystone_like_program,
    "memcopy": memcopy_program,
    "idle": idle_loop_program,
    "checksum": checksum_program,
}


def available_workloads() -> Tuple[str, ...]:
    """Names of every registered workload program."""
    return tuple(sorted(_WORKLOADS))


def workload_program(name: str) -> Optional[Program]:
    """Build the named workload program.

    Returns ``None`` for the default workload so chip builders keep their
    own default (``dhrystone_like_program``) without re-assembling it.
    """
    if name == "dhrystone":
        return None
    try:
        builder = _WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; expected one of {sorted(_WORKLOADS)}"
        ) from None
    return builder()
