"""Synthetic workloads for the Cortex-M0-class core.

The main workload is a Dhrystone-like integer benchmark: like the original,
it mixes integer arithmetic, logic decisions, string copy/compare, pointer
(array) accesses and function calls in an endless measurement loop.  The
paper runs Dhrystone on the Cortex-M0 while the watermark is detected, so
this program is what generates the data-dependent background activity of
chips I and II.

Additional smaller workloads (idle loop, memory copy, checksum) are
provided for ablation studies on how background activity level affects
detectability.
"""

from __future__ import annotations

from repro.soc.assembler import Assembler, Program

#: Base address of the data SRAM used by the workloads.
DATA_BASE = 0x2000_0000


_DHRYSTONE_LIKE_SOURCE = """
; Dhrystone-like synthetic integer benchmark.
; r10 holds the data base address (0x20000000), r11 the iteration counter.

main:
    mov   r10, #0x20
    lsl   r10, r10, #24        ; r10 = 0x20000000 (data base)
    mov   r11, #0              ; iteration counter
    mov   r0, #7
    str   r0, [r10, #0]        ; Int_Glob = 7
    mov   r0, #0
    str   r0, [r10, #4]        ; Bool_Glob = 0

bench_loop:
    add   r11, r11, #1

    ; ---- Proc_1 / Proc_2 style integer arithmetic ----
    mov   r0, #2
    mov   r1, #3
    bl    proc_arith
    str   r0, [r10, #8]        ; Int_1_Loc result

    ; ---- string copy: 16 bytes from src to dst ----
    mov   r0, #32
    add   r0, r10, r0          ; src = base + 32
    mov   r1, #64
    add   r1, r10, r1          ; dst = base + 64
    mov   r2, #16              ; length
    bl    str_copy

    ; ---- string compare ----
    mov   r0, #32
    add   r0, r10, r0
    mov   r1, #64
    add   r1, r10, r1
    mov   r2, #16
    bl    str_cmp
    str   r0, [r10, #12]       ; comparison result

    ; ---- array accesses (Proc_8 style) ----
    mov   r0, #96
    add   r0, r10, r0          ; array base
    mov   r1, #5               ; index
    bl    array_update

    ; ---- logic decisions (Func_3 / Proc_6 style enumeration handling) ----
    ldr   r0, [r10, #8]
    and   r1, r0, #3
    cmp   r1, #0
    beq   case_zero
    cmp   r1, #1
    beq   case_one
    cmp   r1, #2
    beq   case_two
    mov   r2, #9
    b     case_done
case_zero:
    mov   r2, #1
    b     case_done
case_one:
    mov   r2, #3
    b     case_done
case_two:
    mov   r2, #5
case_done:
    str   r2, [r10, #16]

    ; ---- global state update ----
    ldr   r0, [r10, #0]
    add   r0, r0, r2
    and   r0, r0, #0xFF
    str   r0, [r10, #0]

    b     bench_loop           ; endless measurement loop

; ---- Proc_arith(a, b): mixed ALU work, returns in r0 ----
proc_arith:
    push  {r4, r5, lr}
    add   r4, r0, r1
    mul   r5, r4, r1
    eor   r4, r5, r0
    lsl   r5, r4, #2
    lsr   r4, r5, #1
    orr   r0, r4, r1
    sub   r0, r0, #1
    pop   {r4, r5, pc}

; ---- str_copy(src, dst, len): byte copy ----
str_copy:
    push  {r4, lr}
copy_loop:
    cmp   r2, #0
    beq   copy_done
    ldrb  r4, [r0, #0]
    strb  r4, [r1, #0]
    add   r0, r0, #1
    add   r1, r1, #1
    sub   r2, r2, #1
    b     copy_loop
copy_done:
    pop   {r4, pc}

; ---- str_cmp(a, b, len): returns 0 if equal, 1 otherwise ----
str_cmp:
    push  {r4, r5, lr}
cmp_loop:
    cmp   r2, #0
    beq   cmp_equal
    ldrb  r4, [r0, #0]
    ldrb  r5, [r1, #0]
    cmp   r4, r5
    bne   cmp_diff
    add   r0, r0, #1
    add   r1, r1, #1
    sub   r2, r2, #1
    b     cmp_loop
cmp_equal:
    mov   r0, #0
    pop   {r4, r5, pc}
cmp_diff:
    mov   r0, #1
    pop   {r4, r5, pc}

; ---- array_update(base, index): read-modify-write two elements ----
array_update:
    push  {r4, r5, lr}
    lsl   r5, r1, #2
    add   r5, r0, r5           ; &array[index]
    ldr   r4, [r5, #0]
    add   r4, r4, #6
    str   r4, [r5, #0]
    ldr   r4, [r5, #4]
    eor   r4, r4, r1
    str   r4, [r5, #4]
    pop   {r4, r5, pc}
"""


_MEMCOPY_SOURCE = """
; Word-wise memory copy loop: high load/store density.
main:
    mov   r10, #0x20
    lsl   r10, r10, #24
copy_restart:
    mov   r0, #0
    add   r0, r10, r0          ; src
    mov   r1, #128
    add   r1, r10, r1          ; dst
    mov   r2, #32              ; words
copy_loop:
    cmp   r2, #0
    beq   copy_restart
    ldr   r3, [r0, #0]
    str   r3, [r1, #0]
    add   r0, r0, #4
    add   r1, r1, #4
    sub   r2, r2, #1
    b     copy_loop
"""


_IDLE_SOURCE = """
; Tight idle loop: minimal datapath activity, clock tree still running.
main:
    mov   r0, #0
idle_loop:
    add   r0, r0, #1
    and   r0, r0, #0xFF
    b     idle_loop
"""


_CHECKSUM_SOURCE = """
; Rolling checksum over a memory block: arithmetic + memory mix.
main:
    mov   r10, #0x20
    lsl   r10, r10, #24
checksum_restart:
    mov   r0, #0               ; checksum
    mov   r1, #0               ; offset
    mov   r2, #64              ; words to sum
checksum_loop:
    cmp   r2, #0
    beq   checksum_store
    add   r3, r10, r1
    ldr   r4, [r3, #0]
    add   r0, r0, r4
    eor   r0, r0, r2
    lsl   r5, r0, #1
    orr   r0, r5, r0
    add   r1, r1, #4
    sub   r2, r2, #1
    b     checksum_loop
checksum_store:
    str   r0, [r10, #252]
    b     checksum_restart
"""


def dhrystone_like_program() -> Program:
    """The Dhrystone-like benchmark used for the chip I/II background."""
    return Assembler().assemble(_DHRYSTONE_LIKE_SOURCE, entry_label="main")


def memcopy_program() -> Program:
    """A memory-copy-dominated workload (higher bus activity)."""
    return Assembler().assemble(_MEMCOPY_SOURCE, entry_label="main")


def idle_loop_program() -> Program:
    """A near-idle loop (lowest background activity)."""
    return Assembler().assemble(_IDLE_SOURCE, entry_label="main")


def checksum_program() -> Program:
    """An arithmetic/memory mixed checksum workload."""
    return Assembler().assemble(_CHECKSUM_SOURCE, entry_label="main")
