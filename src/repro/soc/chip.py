"""Chip-level system assemblies (the paper's chip I and chip II).

A :class:`ChipModel` combines:

* a Cortex-M0-class core running a workload (Dhrystone-like by default),
* its SRAM and system bus,
* the other clocked IP blocks of the SoC (peripherals, and for chip II the
  idle dual-core A5-class subsystem with caches),
* optionally an embedded watermark architecture,

and produces per-cycle power traces for the measurement chain.  The
Cortex-M0 workload is simulated cycle by cycle for a representative window
and tiled to the full acquisition length -- Dhrystone itself is a short
repeating loop, so this preserves the cycle-to-cycle structure of the
background power while keeping multi-hundred-thousand-cycle acquisitions
tractable in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional

import numpy as np

from repro.caching import LRUCache
from repro.core.architectures import WatermarkArchitecture
from repro.power.estimator import PowerEstimator
from repro.power.trace import PowerTrace
from repro.rtl.activity import ActivityTrace
from repro.soc.bus import SystemBus
from repro.soc.cpu import CortexM0Like, cached_window_trace, program_fingerprint
from repro.soc.memory import Memory
from repro.soc.multicore import BackgroundIPBlocks, IdleDualCoreA5Like
from repro.soc.workloads import dhrystone_like_program
from repro.soc.assembler import Program


# -- chip-level background-power template cache --------------------------------
#
# The background power of a chip is a deterministic function of the chip
# configuration, the background seed and the acquisition length: the M0
# window simulation is keyed by the program, and the stochastic peripheral
# / A5 draws come from seeded generators.  Fig. 5/6 panels, robustness
# sweeps and `measure_many` campaigns all re-request the same background,
# so the per-cycle template is computed once and shared.
#
# Each distinct ``num_cycles`` is its own cache class: the block-activity
# generators draw normals, uniforms and integers in length-dependent order,
# so truncating a longer template would *not* be bit-identical to drawing
# the shorter trace directly -- and bit-identity with the pre-cache
# implementation is the contract pinned by the equivalence suite.

#: Upper bound on retained background templates (LRU eviction beyond this).
BACKGROUND_TEMPLATE_CACHE_MAX_ENTRIES = 32

_BACKGROUND_TEMPLATE_CACHE = LRUCache(lambda: BACKGROUND_TEMPLATE_CACHE_MAX_ENTRIES)


def clear_background_template_cache() -> None:
    """Explicitly drop every cached background-power template."""
    _BACKGROUND_TEMPLATE_CACHE.clear()


def background_template_cache_stats() -> Dict[str, int]:
    """Hit/miss/eviction counters plus current size of the template cache."""
    return _BACKGROUND_TEMPLATE_CACHE.stats()


@dataclass(frozen=True)
class ChipDescription:
    """Static description of a chip configuration."""

    name: str
    has_a5_subsystem: bool
    m0_window_cycles: int = 16_384
    sram_bytes: int = 64 * 1024

    def __post_init__(self) -> None:
        if self.m0_window_cycles <= 0:
            raise ValueError("the M0 simulation window must be positive")
        if self.sram_bytes <= 0:
            raise ValueError("SRAM size must be positive")


class ChipModel:
    """A complete test-chip model producing power traces."""

    def __init__(
        self,
        description: ChipDescription,
        watermark: Optional[WatermarkArchitecture] = None,
        program: Optional[Program] = None,
        estimator: Optional[PowerEstimator] = None,
        seed: int = 2014,
    ) -> None:
        self.description = description
        self.watermark = watermark
        self.estimator = estimator or PowerEstimator.at_nominal()
        self.seed = seed

        self.memory = Memory(size_bytes=description.sram_bytes)
        self.bus = SystemBus()
        self.bus.attach(self.memory)
        self.program = program or dhrystone_like_program()
        if self.program.data_words:
            self.memory.load_words(self.program.data_words)
        self.cpu = CortexM0Like(self.program, self.bus)
        self.peripherals = BackgroundIPBlocks()
        self.a5_subsystem: Optional[IdleDualCoreA5Like] = (
            IdleDualCoreA5Like() if description.has_a5_subsystem else None
        )

    # -- structural information ----------------------------------------------

    @property
    def name(self) -> str:
        """Chip name ("chip1" / "chip2")."""
        return self.description.name

    def system_register_count(self) -> int:
        """Flip-flop count of the functional system (excluding the watermark)."""
        total = self.cpu.activity.total_registers + self.peripherals.register_count
        if self.a5_subsystem is not None:
            total += self.a5_subsystem.register_count
        return total

    def system_cell_inventory(self) -> Dict[str, int]:
        """Approximate cell inventory of the functional system (for leakage)."""
        registers = self.system_register_count()
        return {"dff": registers, "comb": registers * 6, "sram": self.description.sram_bytes * 8}

    # -- activity traces --------------------------------------------------------

    def _m0_window_cache_key(self, window: int) -> Hashable:
        """Cache key of the simulated M0 window.

        Covers everything the window simulation depends on: the program
        (instructions, labels, entry point *and* initial memory image, via
        :func:`repro.soc.cpu.program_fingerprint`), the window length, the
        core's structural activity model and the memory configuration.
        """
        return (
            "m0-window",
            program_fingerprint(self.program),
            window,
            self.cpu.activity,
            self.cpu.name,
            self.description.sram_bytes,
        )

    def _simulate_m0_window(self, window: int) -> ActivityTrace:
        """Cycle-accurately simulate the M0 window in a pristine environment.

        A fresh core/bus/memory triple is used so the simulated window is a
        pure function of the program and configuration -- exactly what a
        newly built chip would produce -- and therefore safe to share
        across chip instances through the module-level window cache.
        """
        memory = Memory(size_bytes=self.description.sram_bytes)
        bus = SystemBus()
        bus.attach(memory)
        if self.program.data_words:
            memory.load_words(self.program.data_words)
        cpu = CortexM0Like(
            self.program, bus, activity_model=self.cpu.activity, name=self.cpu.name
        )
        return cpu.run_cycles(window)

    def m0_activity(
        self, num_cycles: int, seed: Optional[int] = None, use_cache: bool = True
    ) -> ActivityTrace:
        """Activity of the Cortex-M0-class core (plus bus/SRAM) over ``num_cycles``.

        The core is simulated cycle-accurately for a representative window
        and the window is then repeated with a random cyclic shift per
        repetition.  The shifts reflect that on the bench the benchmark
        loop is not phase-locked to the acquisition window; without them an
        exactly periodic background could alias into the watermark-period
        phase bins and bias the CPA noise floor.

        The simulated window is shared across chip instances through the
        module-level cache in :mod:`repro.soc.cpu` (keyed by program
        identity and window length); ``use_cache=False`` forces a fresh
        cycle-accurate run, which is bit-identical by construction.
        """
        window = min(num_cycles, self.description.m0_window_cycles)
        if use_cache:
            trace = cached_window_trace(
                self._m0_window_cache_key(window), lambda: self._simulate_m0_window(window)
            )
        else:
            trace = self._simulate_m0_window(window)
        if window >= num_cycles:
            return trace
        rng = np.random.default_rng(self.seed if seed is None else seed)
        # One modular-index gather replaces the np.roll-per-repetition list
        # tiling: repetition r of the window is read at indices
        # (i - shift_r) mod window, which is exactly np.roll(values, shift_r).
        # The shifts stay scalar draws so a given seed yields the identical
        # activity trace as the pre-vectorised implementation (pinned in
        # tests/test_soc_chip.py).
        repetitions = -(-num_cycles // window)
        shifts = np.empty(repetitions, dtype=np.int64)
        # repro-lint: allow[HOT001] golden reference path: scalar shift draws pin the pre-vectorised seed stream
        for repetition in range(repetitions):
            shifts[repetition] = rng.integers(0, window)
        index = np.arange(window, dtype=np.int64)[None, :] - shifts[:, None]
        index %= window
        index = index.reshape(-1)[:num_cycles]
        return ActivityTrace(
            name=trace.name,
            clock_toggles=trace.clock_toggles[index],
            data_toggles=trace.data_toggles[index],
            comb_toggles=trace.comb_toggles[index],
        )

    def background_activity(
        self, num_cycles: int, seed: Optional[int] = None, use_cache: bool = True
    ) -> Dict[str, ActivityTrace]:
        """Per-contributor background activity (everything except the watermark)."""
        seed = self.seed if seed is None else seed
        traces = {
            "m0": self.m0_activity(num_cycles, seed=seed, use_cache=use_cache),
            "peripherals": self.peripherals.activity_trace(num_cycles, seed=seed + 1),
        }
        if self.a5_subsystem is not None:
            traces["a5"] = self.a5_subsystem.activity_trace(num_cycles, seed=seed + 2)
        return traces

    # -- power traces -------------------------------------------------------------

    def _estimator_fingerprint(self) -> Hashable:
        """Hashable identity of the power model (operating point + library).

        The library is fingerprinted by value (name, voltage and every
        cell's characteristics), not by name alone: two same-named but
        differently calibrated libraries must never alias one cached
        template.
        """
        point = self.estimator.operating_point
        library = self.estimator.library
        return (
            point.clock.frequency_hz,
            point.voltage_v,
            point.temperature_c,
            library.name,
            library.voltage_v,
            tuple(sorted(library.cells.items())),
        )

    def _background_template_key(self, num_cycles: int, seed: int) -> Hashable:
        """Cache key of the seeded background-power template.

        Covers the chip configuration (description, program identity, core
        activity model, background-block parameters), the power model
        (operating point and cell library, by value) and the seeded
        acquisition class ``(seed, num_cycles)``.
        """
        return (
            "background-power",
            self.description,
            program_fingerprint(self.program),
            self.cpu.activity,
            self.peripherals.parameters,
            self.a5_subsystem.parameters if self.a5_subsystem is not None else None,
            self._estimator_fingerprint(),
            seed,
            num_cycles,
        )

    def background_power(
        self, num_cycles: int, seed: Optional[int] = None, use_cache: bool = True
    ) -> PowerTrace:
        """Power consumed by the functional system over ``num_cycles``.

        Static leakage covers the chip's full cell inventory
        (:meth:`system_cell_inventory`: flip-flops, combinational cells and
        the SRAM array), matching how the watermark architectures and the
        Table I analysis compute leakage from ``leakage_of(cell_inventory())``.

        The per-cycle template is cached per ``(chip configuration, seed,
        num_cycles)`` -- see the module docstring of the template cache --
        so repeated acquisitions of the same background reuse one array.
        ``use_cache=False`` recomputes from scratch (bit-identical by
        construction; the equivalence suite pins this).
        """
        resolved_seed = self.seed if seed is None else seed

        def compute() -> PowerTrace:
            traces = self.background_activity(
                num_cycles, seed=resolved_seed, use_cache=use_cache
            )
            static = self.estimator.leakage_of(self.system_cell_inventory())
            return self.estimator.combined_power_trace(
                traces,
                cell_types={"m0": "dff", "peripherals": "dff", "a5": "dff"},
                static_w=static,
                name=f"{self.name}/background",
            )

        if not use_cache:
            return compute()

        def compute_template() -> np.ndarray:
            template = compute().power_w
            template.flags.writeable = False
            return template

        power_w = _BACKGROUND_TEMPLATE_CACHE.get_or_compute(
            self._background_template_key(num_cycles, resolved_seed), compute_template
        )
        return PowerTrace(
            name=f"{self.name}/background",
            clock=self.estimator.operating_point.clock,
            power_w=power_w,
            voltage_v=self.estimator.operating_point.voltage_v,
        )

    def watermark_power(self, num_cycles: int, phase_offset: int = 0) -> PowerTrace:
        """Power contributed by the embedded watermark circuit.

        Synthesized from the architecture's one-period power template;
        ``phase_offset`` rotates the trace relative to the acquisition
        start (the scope trigger is not aligned with the LFSR phase).
        """
        if self.watermark is None:
            raise ValueError(f"chip {self.name!r} has no embedded watermark")
        return self.watermark.power_trace(
            self.estimator, num_cycles, phase_offset=phase_offset
        )

    def total_power(
        self,
        num_cycles: int,
        watermark_active: bool = True,
        seed: Optional[int] = None,
        watermark_phase_offset: int = 0,
        use_cache: bool = True,
    ) -> PowerTrace:
        """Total device power: background plus (optionally) the watermark.

        ``watermark_active=False`` reproduces the paper's control
        experiment (Fig. 5(b)/(d)) in which the watermark circuit is
        disabled and only background power reaches the shunt resistor.

        ``watermark_phase_offset`` shifts the watermark sequence by that
        many clock cycles relative to the start of the acquisition -- on
        the bench the oscilloscope trigger is not aligned with the LFSR
        phase, which is why the paper's correlation peaks appear at
        arbitrary rotations (~3,800 on chip I, ~2,400 on chip II).
        """
        background = self.background_power(num_cycles, seed=seed, use_cache=use_cache)
        if not watermark_active or self.watermark is None:
            return PowerTrace(
                name=f"{self.name}/total",
                clock=background.clock,
                power_w=background.power_w,
                voltage_v=background.voltage_v,
            )
        watermark = self.watermark_power(num_cycles, phase_offset=watermark_phase_offset)
        total = background.add(watermark)
        return PowerTrace(
            name=f"{self.name}/total",
            clock=total.clock,
            power_w=total.power_w,
            voltage_v=total.voltage_v,
        )

    def watermark_sequence(self, length: Optional[int] = None) -> np.ndarray:
        """The watermark model sequence of the embedded watermark."""
        if self.watermark is None:
            raise ValueError(f"chip {self.name!r} has no embedded watermark")
        return self.watermark.sequence(length)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChipModel(name={self.name!r}, a5={self.a5_subsystem is not None}, "
            f"watermark={self.watermark is not None})"
        )


def build_chip_one(
    watermark: Optional[WatermarkArchitecture] = None,
    program: Optional[Program] = None,
    m0_window_cycles: int = 16_384,
    seed: int = 2014,
) -> ChipModel:
    """Chip I: Cortex-M0-class SoC with peripherals, watermark as a macro."""
    description = ChipDescription(name="chip1", has_a5_subsystem=False, m0_window_cycles=m0_window_cycles)
    return ChipModel(description, watermark=watermark, program=program, seed=seed)


def build_chip_two(
    watermark: Optional[WatermarkArchitecture] = None,
    program: Optional[Program] = None,
    m0_window_cycles: int = 16_384,
    seed: int = 2015,
) -> ChipModel:
    """Chip II: adds the clocked-but-idle dual-core A5-class subsystem."""
    description = ChipDescription(name="chip2", has_a5_subsystem=True, m0_window_cycles=m0_window_cycles)
    return ChipModel(description, watermark=watermark, program=program, seed=seed)
