"""Cortex-M0-class scalar in-order core model.

The core executes programs written in the Thumb-like ISA and, for every
clock cycle, reports a switching-activity record assembled from:

* the core's clock network (always-clocked control registers, pipeline
  registers while the core is not sleeping, register-file write banks when
  a result is written),
* datapath toggles (fetch bus, operand buses, ALU result, load/store data),
* decode/ALU combinational activity, and
* the activity returned by the system bus / SRAM for memory accesses.

Timing loosely follows the Cortex-M0: single-cycle ALU operations,
two-cycle loads and stores, pipeline-refill penalty on taken branches.
The goal is not microarchitectural fidelity but a background power trace
whose cycle-to-cycle structure is driven by real instruction execution --
exactly the "noise" the CPA detector has to overcome in the paper.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Tuple

from dataclasses import dataclass, field

import numpy as np

from repro.caching import LRUCache
from repro.rtl.activity import ActivityRecord, ActivityTrace
from repro.rtl.components import CLOCK_EDGES_PER_CYCLE
from repro.rtl.signals import hamming_distance
from repro.soc.assembler import Program
from repro.soc.bus import SystemBus
from repro.soc.isa import (
    Condition,
    Instruction,
    Opcode,
    Operand,
    TAKEN_BRANCH_PENALTY,
    LR,
    PC,
    SP,
)

_WORD_MASK = 0xFFFFFFFF


# -- shared M0 window cache ----------------------------------------------------
#
# Every ``ChipModel.m0_activity`` call used to re-run the cycle-accurate
# window simulation -- the last O(cycles) Python loop on the generation
# side.  The simulated window is a pure function of the program (including
# its initial memory image), the window length and the structural
# configuration of the core/bus, so one simulation can be shared by every
# chip instance that executes the same program.  The cache is keyed by a
# caller-built tuple (see ``ChipModel._m0_window_cache_key``) whose program
# component comes from :func:`program_fingerprint`, which is what
# invalidates entries when the program text or memory image differs.

#: Upper bound on retained window traces (LRU eviction beyond this).
M0_WINDOW_CACHE_MAX_ENTRIES = 32

_M0_WINDOW_CACHE = LRUCache(lambda: M0_WINDOW_CACHE_MAX_ENTRIES)


def program_fingerprint(program: Program) -> Hashable:
    """Hashable identity of a program *and* its initial memory image.

    Two programs share a fingerprint exactly when they decode to the same
    instruction stream (opcodes, operands, conditions), branch labels,
    entry point and ``.word`` data section -- i.e. when a cycle-accurate
    run from reset is guaranteed to produce the same activity.  Used as
    the program component of the shared M0 window-cache key, so a changed
    program or memory image can never alias a stale cached window.
    """
    instructions = tuple(
        (
            instruction.opcode.value,
            tuple((operand.kind, operand.value) for operand in instruction.operands),
            instruction.condition.value,
        )
        for instruction in program.instructions
    )
    return (
        program.entry_point,
        instructions,
        tuple(sorted(program.labels.items())),
        tuple(sorted(program.data_words.items())),
    )


def _frozen_trace_copy(trace: ActivityTrace) -> ActivityTrace:
    """A read-only snapshot of a trace (shared cache entries must not mutate)."""
    arrays = {}
    for attr in ("clock_toggles", "data_toggles", "comb_toggles"):
        array = np.array(getattr(trace, attr), dtype=np.int64)
        array.flags.writeable = False
        arrays[attr] = array
    return ActivityTrace(name=trace.name, **arrays)


def cached_window_trace(
    key: Hashable, simulate: Callable[[], ActivityTrace]
) -> ActivityTrace:
    """The cached activity window for ``key``, simulating on a miss.

    The returned trace shares read-only arrays with the cache, so callers
    can gather/index freely but cannot corrupt other chips' view of the
    window.
    """
    return _M0_WINDOW_CACHE.get_or_compute(key, lambda: _frozen_trace_copy(simulate()))


def clear_m0_window_cache() -> None:
    """Explicitly drop every cached M0 window (and reset the hit counters)."""
    _M0_WINDOW_CACHE.clear()


def m0_window_cache_stats() -> Dict[str, int]:
    """Hit/miss/eviction counters plus current size of the window cache."""
    return _M0_WINDOW_CACHE.stats()


@dataclass(frozen=True)
class CPUActivityModel:
    """Structural activity parameters of the core.

    Register counts are representative of a Cortex-M0-class core
    (~1,000 flip-flops); they determine the clock-network share of the
    core's dynamic power, which the paper notes is typically up to half of
    total dynamic power.
    """

    always_clocked_registers: int = 180
    pipeline_registers: int = 130
    regfile_registers: int = 512
    regfile_write_width: int = 32
    decode_gates: int = 400
    alu_gates: int = 600
    comb_activity_factor: float = 0.12

    @property
    def total_registers(self) -> int:
        """Total flip-flop count of the core."""
        return self.always_clocked_registers + self.pipeline_registers + self.regfile_registers

    def idle_activity(self) -> ActivityRecord:
        """Activity of a cycle in which the core is clocked but sleeping."""
        return ActivityRecord(
            clock_toggles=CLOCK_EDGES_PER_CYCLE * self.always_clocked_registers
        )

    def cycle_activity(
        self,
        executing: bool,
        regfile_write: bool,
        datapath_toggles: int,
        comb_toggles: int,
    ) -> ActivityRecord:
        """Assemble the core-internal activity of one cycle."""
        clocked = self.always_clocked_registers
        if executing:
            clocked += self.pipeline_registers
        if regfile_write:
            clocked += self.regfile_write_width
        return ActivityRecord(
            clock_toggles=CLOCK_EDGES_PER_CYCLE * clocked,
            data_toggles=datapath_toggles,
            comb_toggles=comb_toggles,
        )


@dataclass
class ExecutionStats:
    """Aggregate execution statistics of a run.

    ``cycles`` counts only cycles during which the core was running the
    program; cycles stepped after ``halt`` are tracked separately in
    ``halted_cycles`` so CPI and cycle-count consumers are not inflated by
    post-halt idle stepping (the core is still clocked while halted, which
    matters for power but not for execution statistics).
    """

    cycles: int = 0
    halted_cycles: int = 0
    instructions: int = 0
    branches: int = 0
    taken_branches: int = 0
    memory_accesses: int = 0
    halted: bool = False

    @property
    def total_cycles(self) -> int:
        """All stepped cycles, including post-halt idle cycles."""
        return self.cycles + self.halted_cycles

    @property
    def cpi(self) -> float:
        """Cycles per instruction (excluding post-halt idle cycles)."""
        if self.instructions == 0:
            return 0.0
        return self.cycles / self.instructions


class CPUError(Exception):
    """Raised on invalid program behaviour (bad PC, missing label, ...)."""


class CortexM0Like:
    """In-order scalar core executing an assembled :class:`Program`."""

    def __init__(
        self,
        program: Program,
        bus: SystemBus,
        activity_model: Optional[CPUActivityModel] = None,
        stack_pointer: int = 0x2000_F000,
        name: str = "cpu0",
    ) -> None:
        self.name = name
        self.program = program
        self.bus = bus
        self.activity = activity_model or CPUActivityModel()
        self.registers: List[int] = [0] * 16
        self.registers[SP] = stack_pointer
        self.registers[PC] = program.entry_point
        self.flags = {"n": False, "z": False, "c": False, "v": False}
        self.stats = ExecutionStats()
        self.halted = False
        self._initial_sp = stack_pointer
        # Datapath history for Hamming-distance switching estimates.
        self._prev_fetch_word = 0
        self._prev_result = 0
        self._prev_operands = (0, 0)
        # Multi-cycle instruction bookkeeping.
        self._stall_cycles = 0
        self._pending_activity: Optional[ActivityRecord] = None

    # -- architectural helpers -----------------------------------------------

    def reset(self) -> None:
        """Reset architectural and activity state (memory is left alone)."""
        self.registers = [0] * 16
        self.registers[SP] = self._initial_sp
        self.registers[PC] = self.program.entry_point
        self.flags = {"n": False, "z": False, "c": False, "v": False}
        self.stats = ExecutionStats()
        self.halted = False
        self._prev_fetch_word = 0
        self._prev_result = 0
        self._prev_operands = (0, 0)
        self._stall_cycles = 0
        self._pending_activity = None

    def register(self, index: int) -> int:
        """Read an architectural register."""
        return self.registers[index] & _WORD_MASK

    def _write_register(self, index: int, value: int) -> None:
        self.registers[index] = value & _WORD_MASK

    def _operand_value(self, operand: Operand) -> int:
        if operand.kind == "reg":
            return self.register(operand.value)
        if operand.kind == "imm":
            return operand.value & _WORD_MASK
        raise CPUError(f"cannot read value of operand kind {operand.kind!r}")

    def _set_nz(self, value: int) -> None:
        value &= _WORD_MASK
        self.flags["n"] = bool(value & 0x8000_0000)
        self.flags["z"] = value == 0

    @staticmethod
    def _to_signed(value: int) -> int:
        value &= _WORD_MASK
        return value - (1 << 32) if value & 0x8000_0000 else value

    def _set_add_flags(self, a: int, b: int, result: int) -> None:
        self._set_nz(result)
        self.flags["c"] = result > _WORD_MASK
        signed_a = self._to_signed(a)
        signed_b = self._to_signed(b)
        signed_r = self._to_signed(result)
        self.flags["v"] = bool((signed_a >= 0) == (signed_b >= 0) and (signed_r >= 0) != (signed_a >= 0))

    def _set_sub_flags(self, a: int, b: int, result: int) -> None:
        self._set_nz(result)
        self.flags["c"] = (a & _WORD_MASK) >= (b & _WORD_MASK)
        signed_a = self._to_signed(a)
        signed_b = self._to_signed(b)
        signed_r = self._to_signed(result)
        self.flags["v"] = bool((signed_a >= 0) != (signed_b >= 0) and (signed_r >= 0) != (signed_a >= 0))

    def _condition_met(self, condition: Condition) -> bool:
        n, z, c, v = self.flags["n"], self.flags["z"], self.flags["c"], self.flags["v"]
        table = {
            Condition.AL: True,
            Condition.EQ: z,
            Condition.NE: not z,
            Condition.CS: c,
            Condition.CC: not c,
            Condition.MI: n,
            Condition.PL: not n,
            Condition.LT: n != v,
            Condition.LE: z or (n != v),
            Condition.GT: (not z) and (n == v),
            Condition.GE: n == v,
        }
        return table[condition]

    # -- execution -----------------------------------------------------------

    def step_cycle(self) -> ActivityRecord:
        """Advance the core by exactly one clock cycle."""
        if self.halted:
            self.stats.halted_cycles += 1
            return self.activity.idle_activity()
        self.stats.cycles += 1
        if self._stall_cycles > 0:
            self._stall_cycles -= 1
            activity = self._pending_activity or self.activity.idle_activity()
            # Stall cycles re-use the clock network but not the full datapath.
            return ActivityRecord(
                clock_toggles=activity.clock_toggles,
                data_toggles=activity.data_toggles // 2,
                comb_toggles=activity.comb_toggles // 2,
            )
        return self._execute_next_instruction()

    def _execute_next_instruction(self) -> ActivityRecord:
        pc = self.registers[PC]
        if not 0 <= pc < len(self.program.instructions):
            raise CPUError(f"program counter {pc} outside program of {len(self.program)} instructions")
        instruction = self.program.instructions[pc]
        self.stats.instructions += 1

        fetch_word = instruction.encode()
        fetch_toggles = hamming_distance(self._prev_fetch_word, fetch_word, 16)
        self._prev_fetch_word = fetch_word

        result, next_pc, bus_activity, extra_cycles, regfile_write, operand_toggles = self._execute(
            instruction, pc
        )

        result_toggles = hamming_distance(self._prev_result, result, 32)
        self._prev_result = result
        datapath_toggles = fetch_toggles + result_toggles + operand_toggles
        comb_toggles = int(
            round(
                (self.activity.decode_gates + self.activity.alu_gates)
                * self.activity.comb_activity_factor
            )
        ) + datapath_toggles // 2

        core_activity = self.activity.cycle_activity(
            executing=True,
            regfile_write=regfile_write,
            datapath_toggles=datapath_toggles,
            comb_toggles=comb_toggles,
        )
        total_activity = core_activity + bus_activity

        total_cycles = instruction.base_cycles() + extra_cycles
        self._stall_cycles = max(0, total_cycles - 1)
        self._pending_activity = core_activity
        self.registers[PC] = next_pc
        return total_activity

    def _execute(
        self, instruction: Instruction, pc: int
    ) -> Tuple[int, int, ActivityRecord, int, bool, int]:
        """Execute one instruction.

        Returns ``(result, next_pc, bus_activity, extra_cycles,
        regfile_write, operand_toggles)``.
        """
        opcode = instruction.opcode
        operands = instruction.operands
        bus_activity = ActivityRecord()
        extra_cycles = 0
        regfile_write = False
        result = 0
        next_pc = pc + 1

        operand_values = [
            self._operand_value(op) for op in operands if op.kind in ("reg", "imm")
        ]
        operand_toggles = 0
        if operand_values:
            a = operand_values[0]
            b = operand_values[1] if len(operand_values) > 1 else 0
            operand_toggles = hamming_distance(self._prev_operands[0], a, 32) + hamming_distance(
                self._prev_operands[1], b, 32
            )
            self._prev_operands = (a, b)

        if opcode is Opcode.NOP:
            pass
        elif opcode is Opcode.HALT:
            self.halted = True
            self.stats.halted = True
            next_pc = pc
        elif opcode in (Opcode.MOV, Opcode.MVN):
            value = self._operand_value(operands[1])
            result = (~value & _WORD_MASK) if opcode is Opcode.MVN else value
            self._write_register(operands[0].value, result)
            self._set_nz(result)
            regfile_write = True
        elif opcode in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND, Opcode.ORR, Opcode.EOR,
                        Opcode.LSL, Opcode.LSR, Opcode.ASR):
            result, regfile_write = self._execute_alu(opcode, operands)
        elif opcode is Opcode.CMP:
            a = self._operand_value(operands[0])
            b = self._operand_value(operands[1])
            result = (a - b) & _WORD_MASK
            self._set_sub_flags(a, b, a - b)
        elif opcode in (Opcode.LDR, Opcode.LDRB, Opcode.STR, Opcode.STRB):
            result, bus_activity, extra_cycles, regfile_write = self._execute_memory(opcode, operands)
            self.stats.memory_accesses += 1
        elif opcode is Opcode.PUSH:
            bus_activity, extra_cycles = self._execute_push(operands[0])
            self.stats.memory_accesses += len(operands[0].value)
        elif opcode is Opcode.POP:
            result, next_pc_override, bus_activity, extra_cycles = self._execute_pop(operands[0], next_pc)
            next_pc = next_pc_override
            regfile_write = True
            self.stats.memory_accesses += len(operands[0].value)
        elif opcode is Opcode.B:
            self.stats.branches += 1
            if self._condition_met(instruction.condition):
                self.stats.taken_branches += 1
                next_pc = self.program.label_address(operands[0].value)
                extra_cycles = TAKEN_BRANCH_PENALTY
        elif opcode is Opcode.BL:
            self.stats.branches += 1
            self.stats.taken_branches += 1
            self._write_register(LR, pc + 1)
            next_pc = self.program.label_address(operands[0].value)
            regfile_write = True
        elif opcode is Opcode.BX:
            self.stats.branches += 1
            self.stats.taken_branches += 1
            next_pc = self.register(operands[0].value)
        else:  # pragma: no cover - all opcodes handled above
            raise CPUError(f"unhandled opcode {opcode}")
        return result, next_pc, bus_activity, extra_cycles, regfile_write, operand_toggles

    def _execute_alu(self, opcode: Opcode, operands: Tuple[Operand, ...]) -> Tuple[int, bool]:
        destination = operands[0].value
        if len(operands) == 3:
            a = self._operand_value(operands[1])
            b = self._operand_value(operands[2])
        else:
            a = self.register(destination)
            b = self._operand_value(operands[1])
        if opcode is Opcode.ADD:
            raw = a + b
            result = raw & _WORD_MASK
            self._set_add_flags(a, b, raw)
        elif opcode is Opcode.SUB:
            raw = a - b
            result = raw & _WORD_MASK
            self._set_sub_flags(a, b, raw)
        elif opcode is Opcode.MUL:
            result = (a * b) & _WORD_MASK
            self._set_nz(result)
        elif opcode is Opcode.AND:
            result = a & b
            self._set_nz(result)
        elif opcode is Opcode.ORR:
            result = a | b
            self._set_nz(result)
        elif opcode is Opcode.EOR:
            result = a ^ b
            self._set_nz(result)
        elif opcode is Opcode.LSL:
            shift = b & 0x1F
            result = (a << shift) & _WORD_MASK
            self._set_nz(result)
        elif opcode is Opcode.LSR:
            shift = b & 0x1F
            result = (a & _WORD_MASK) >> shift
            self._set_nz(result)
        else:  # ASR
            shift = b & 0x1F
            result = (self._to_signed(a) >> shift) & _WORD_MASK
            self._set_nz(result)
        self._write_register(destination, result)
        return result, True

    def _execute_memory(
        self, opcode: Opcode, operands: Tuple[Operand, ...]
    ) -> Tuple[int, ActivityRecord, int, bool]:
        register_index = operands[0].value
        base, offset = operands[1].value
        address = (self.register(base) + offset) & _WORD_MASK
        width = 1 if opcode in (Opcode.LDRB, Opcode.STRB) else 4
        if opcode in (Opcode.LDR, Opcode.LDRB):
            value, activity, wait = self.bus.access(address, write=False, width=width)
            self._write_register(register_index, value or 0)
            return value or 0, activity, wait, True
        value = self.register(register_index)
        if width == 1:
            value &= 0xFF
        _, activity, wait = self.bus.access(address, write=True, value=value, width=width)
        return value, activity, wait, False

    def _execute_push(self, reglist: Operand) -> Tuple[ActivityRecord, int]:
        activity = ActivityRecord()
        wait_total = 0
        for register_index in reversed(reglist.value):
            self._write_register(SP, self.register(SP) - 4)
            _, access_activity, wait = self.bus.access(
                self.register(SP), write=True, value=self.register(register_index), width=4
            )
            activity = activity + access_activity
            wait_total += wait
        return activity, wait_total

    def _execute_pop(self, reglist: Operand, next_pc: int) -> Tuple[int, int, ActivityRecord, int]:
        activity = ActivityRecord()
        wait_total = 0
        result = 0
        for register_index in reglist.value:
            value, access_activity, wait = self.bus.access(self.register(SP), write=False, width=4)
            self._write_register(SP, self.register(SP) + 4)
            activity = activity + access_activity
            wait_total += wait
            value = value or 0
            result = value
            if register_index == PC:
                next_pc = value
            else:
                self._write_register(register_index, value)
        return result, next_pc, activity, wait_total

    # -- trace generation ----------------------------------------------------

    def run_cycles(self, num_cycles: int) -> ActivityTrace:
        """Run for ``num_cycles`` clock cycles and return the activity trace."""
        if num_cycles <= 0:
            raise ValueError("num_cycles must be positive")
        # repro-lint: allow[HOT001] golden reference path: the cycle-accurate ISS is the ground truth the fast paths window-cache
        records = [self.step_cycle() for _ in range(num_cycles)]
        return ActivityTrace.from_records(self.name, records)

    def run_until_halt(self, max_cycles: int = 1_000_000) -> ActivityTrace:
        """Run until the program executes ``halt`` (or ``max_cycles`` elapse)."""
        records = []
        # repro-lint: allow[HOT001] golden reference path: halt detection needs the cycle-accurate ISS step loop
        for _ in range(max_cycles):
            records.append(self.step_cycle())
            if self.halted:
                break
        return ActivityTrace.from_records(self.name, records)
