"""Byte-addressable SRAM model with access-activity accounting.

The memory tracks, per access, the switching activity of its address and
data paths (Hamming distances against the previously driven values), which
the SoC activity model converts into SRAM power.  Functionally it is a
sparse byte store, adequate for the synthetic workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.rtl.signals import hamming_distance


@dataclass
class MemoryAccessActivity:
    """Switching activity caused by one memory access."""

    address_toggles: int = 0
    data_toggles: int = 0
    array_toggles: int = 0

    @property
    def total(self) -> int:
        """Total transitions of the access."""
        return self.address_toggles + self.data_toggles + self.array_toggles


class Memory:
    """Sparse byte-addressable memory.

    Parameters
    ----------
    size_bytes:
        Addressable size; accesses outside ``[base_address, base_address +
        size_bytes)`` raise ``IndexError``.
    base_address:
        First valid address.
    word_access_toggles:
        Approximate internal bit-line/word-line transitions per 32-bit
        access, used by the power model.
    """

    def __init__(
        self,
        size_bytes: int = 64 * 1024,
        base_address: int = 0x2000_0000,
        word_access_toggles: int = 48,
    ) -> None:
        if size_bytes <= 0:
            raise ValueError("memory size must be positive")
        self.size_bytes = size_bytes
        self.base_address = base_address
        self.word_access_toggles = word_access_toggles
        self._bytes: Dict[int, int] = {}
        self._last_address = 0
        self._last_data = 0
        self.read_count = 0
        self.write_count = 0

    # -- address handling ----------------------------------------------------

    def _check(self, address: int, length: int = 1) -> None:
        if not (self.base_address <= address and address + length <= self.base_address + self.size_bytes):
            raise IndexError(
                f"address {address:#x} (+{length}) outside memory "
                f"[{self.base_address:#x}, {self.base_address + self.size_bytes:#x})"
            )

    def contains(self, address: int) -> bool:
        """Whether ``address`` falls inside this memory."""
        return self.base_address <= address < self.base_address + self.size_bytes

    # -- functional access -----------------------------------------------------

    def read_byte(self, address: int) -> int:
        """Read one byte (zero if never written)."""
        self._check(address)
        return self._bytes.get(address, 0)

    def write_byte(self, address: int, value: int) -> None:
        """Write one byte."""
        self._check(address)
        self._bytes[address] = value & 0xFF

    def read_word(self, address: int) -> int:
        """Read a little-endian 32-bit word."""
        self._check(address, 4)
        return (
            self.read_byte(address)
            | (self.read_byte(address + 1) << 8)
            | (self.read_byte(address + 2) << 16)
            | (self.read_byte(address + 3) << 24)
        )

    def write_word(self, address: int, value: int) -> None:
        """Write a little-endian 32-bit word."""
        self._check(address, 4)
        for i in range(4):
            self.write_byte(address + i, (value >> (8 * i)) & 0xFF)

    # -- activity-tracked access -------------------------------------------------

    def access(self, address: int, write: bool, value: Optional[int] = None, width: int = 4) -> tuple:
        """Perform an access and return ``(read_value, activity)``.

        ``width`` is 1 (byte) or 4 (word).
        """
        if width not in (1, 4):
            raise ValueError("access width must be 1 or 4 bytes")
        if write:
            if value is None:
                raise ValueError("write access requires a value")
            if width == 4:
                self.write_word(address, value)
            else:
                self.write_byte(address, value)
            data = value
            self.write_count += 1
            result = None
        else:
            data = self.read_word(address) if width == 4 else self.read_byte(address)
            self.read_count += 1
            result = data
        activity = MemoryAccessActivity(
            address_toggles=hamming_distance(self._last_address, address, 32),
            data_toggles=hamming_distance(self._last_data, data or 0, 32),
            array_toggles=self.word_access_toggles if width == 4 else self.word_access_toggles // 4,
        )
        self._last_address = address
        self._last_data = data or 0
        return result, activity

    def load_words(self, words: Dict[int, int]) -> None:
        """Bulk-initialise memory from an ``{address: word}`` mapping."""
        for address, value in words.items():
            self.write_word(address, value)

    def reset(self) -> None:
        """Clear contents and statistics."""
        self._bytes.clear()
        self._last_address = 0
        self._last_data = 0
        self.read_count = 0
        self.write_count = 0
