"""AHB-lite-style system bus.

The bus routes CPU data accesses to the attached memories/peripherals and
accounts for the switching activity of its shared address and data wires --
on the test chips the on-chip bus is explicitly listed as one of the
background-noise contributors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.rtl.activity import ActivityRecord
from repro.rtl.signals import hamming_distance
from repro.soc.memory import Memory, MemoryAccessActivity


@dataclass(frozen=True)
class BusTransfer:
    """A completed bus transfer (for statistics and tests)."""

    address: int
    write: bool
    width: int
    value: int


class SystemBus:
    """Single-master bus connecting the CPU to its memories.

    Parameters
    ----------
    wait_states:
        Extra cycles added to every data access (zero-wait-state SRAM by
        default, matching a small microcontroller SoC).
    """

    def __init__(self, wait_states: int = 0, name: str = "ahb") -> None:
        if wait_states < 0:
            raise ValueError("wait states must be non-negative")
        self.name = name
        self.wait_states = wait_states
        self.slaves: List[Memory] = []
        self.transfers: List[BusTransfer] = []
        self._last_address = 0
        self._last_data = 0
        self.transfer_count = 0

    def attach(self, memory: Memory) -> None:
        """Attach a memory region to the bus."""
        for existing in self.slaves:
            overlap_start = max(existing.base_address, memory.base_address)
            overlap_end = min(
                existing.base_address + existing.size_bytes,
                memory.base_address + memory.size_bytes,
            )
            if overlap_start < overlap_end:
                raise ValueError("attached memory regions overlap")
        self.slaves.append(memory)

    def _slave_for(self, address: int) -> Memory:
        for slave in self.slaves:
            if slave.contains(address):
                return slave
        raise IndexError(f"no bus slave maps address {address:#x}")

    def access(
        self, address: int, write: bool, value: Optional[int] = None, width: int = 4
    ) -> Tuple[Optional[int], ActivityRecord, int]:
        """Perform a data access.

        Returns ``(read_value, activity, extra_cycles)`` where
        ``extra_cycles`` is the number of wait states the CPU must stall.
        """
        slave = self._slave_for(address)
        result, memory_activity = slave.access(address, write=write, value=value, width=width)
        bus_toggles = hamming_distance(self._last_address, address, 32) + hamming_distance(
            self._last_data, (value if write else (result or 0)) or 0, 32
        )
        self._last_address = address
        self._last_data = (value if write else (result or 0)) or 0
        self.transfer_count += 1
        if len(self.transfers) < 10_000:
            self.transfers.append(
                BusTransfer(address=address, write=write, width=width, value=(value if write else (result or 0)) or 0)
            )
        activity = ActivityRecord(
            data_toggles=memory_activity.data_toggles + memory_activity.array_toggles,
            comb_toggles=bus_toggles + memory_activity.address_toggles,
        )
        return result, activity, self.wait_states

    def reset(self) -> None:
        """Clear transfer history and address/data phase state."""
        self.transfers.clear()
        self.transfer_count = 0
        self._last_address = 0
        self._last_data = 0
        for slave in self.slaves:
            slave.reset()
