"""Set-associative cache model.

Chip II of the paper contains a dual-core Cortex-A5 with caches; although
the A5 executes no program during the measurements, its caches are clocked
and contribute to the background noise.  The cache model is functional
(lookup, allocate, evict) and reports per-access switching activity; the
idle background model additionally uses its structural size (tag/data
arrays) for clock-tree power.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.rtl.activity import ActivityRecord
from repro.rtl.signals import hamming_distance


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of a cache."""

    size_bytes: int = 16 * 1024
    line_bytes: int = 32
    associativity: int = 4

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.associativity <= 0:
            raise ValueError("cache geometry values must be positive")
        if self.size_bytes % (self.line_bytes * self.associativity) != 0:
            raise ValueError("cache size must be divisible by line size x associativity")

    @property
    def num_sets(self) -> int:
        """Number of cache sets."""
        return self.size_bytes // (self.line_bytes * self.associativity)

    @property
    def num_lines(self) -> int:
        """Total number of cache lines."""
        return self.num_sets * self.associativity

    @property
    def tag_bits(self) -> int:
        """Approximate tag width (32-bit physical addresses assumed)."""
        offset_bits = self.line_bytes.bit_length() - 1
        index_bits = self.num_sets.bit_length() - 1
        return 32 - offset_bits - index_bits

    @property
    def storage_bits(self) -> int:
        """Total bits of tag + data storage (for structural power estimates)."""
        return self.num_lines * (self.line_bytes * 8 + self.tag_bits + 2)


@dataclass
class CacheStats:
    """Hit/miss counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        """Total number of lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit fraction (zero when no accesses have happened)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class Cache:
    """A set-associative cache with LRU replacement."""

    def __init__(self, config: Optional[CacheConfig] = None, name: str = "cache") -> None:
        self.name = name
        self.config = config or CacheConfig()
        self.stats = CacheStats()
        # Per set: list of (tag, last_use_counter) entries, most recent last.
        self._sets: List[List[Tuple[int, int]]] = [[] for _ in range(self.config.num_sets)]
        self._access_counter = 0
        self._last_address = 0

    def _decompose(self, address: int) -> Tuple[int, int]:
        line_address = address // self.config.line_bytes
        set_index = line_address % self.config.num_sets
        tag = line_address // self.config.num_sets
        return set_index, tag

    def lookup(self, address: int, allocate: bool = True) -> Tuple[bool, ActivityRecord]:
        """Look up ``address``; returns ``(hit, activity)``.

        A miss optionally allocates the line (evicting the LRU entry when
        the set is full).
        """
        self._access_counter += 1
        set_index, tag = self._decompose(address)
        entries = self._sets[set_index]
        address_toggles = hamming_distance(self._last_address, address, 32)
        self._last_address = address
        # Tag comparison activity: all ways' comparators switch.
        comparator_toggles = self.config.associativity * max(1, self.config.tag_bits // 4)

        hit = any(entry_tag == tag for entry_tag, _ in entries)
        if hit:
            self.stats.hits += 1
            self._sets[set_index] = [
                (entry_tag, self._access_counter if entry_tag == tag else last_use)
                for entry_tag, last_use in entries
            ]
            data_toggles = self.config.line_bytes  # data array read of one line
        else:
            self.stats.misses += 1
            data_toggles = self.config.line_bytes * 4  # line fill traffic
            if allocate:
                if len(entries) >= self.config.associativity:
                    entries.sort(key=lambda item: item[1])
                    entries.pop(0)
                    self.stats.evictions += 1
                entries.append((tag, self._access_counter))
        activity = ActivityRecord(
            data_toggles=data_toggles,
            comb_toggles=address_toggles + comparator_toggles,
        )
        return hit, activity

    def flush(self) -> None:
        """Invalidate every line (statistics are retained)."""
        self._sets = [[] for _ in range(self.config.num_sets)]

    def reset(self) -> None:
        """Invalidate the cache and clear statistics."""
        self.flush()
        self.stats = CacheStats()
        self._access_counter = 0
        self._last_address = 0
