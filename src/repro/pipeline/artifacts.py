"""Typed result artifacts produced by the pipeline runner.

A :class:`ScenarioResult` bundles everything one scenario run produced:

* the :class:`repro.core.spec.ScenarioSpec` that was executed,
* ``scalars`` -- JSON-able headline metrics,
* ``arrays`` -- named numpy arrays (correlation spectra, traces, ...),
* ``report`` -- the human-readable text report (bit-identical to what the
  legacy driver printed),
* ``provenance`` -- spec hash, commit, environment, timings.

Artifacts round-trip through a JSON file plus a sibling ``.npz`` for the
arrays: ``ScenarioResult.load(result.save(path))`` reproduces every array
bit-exactly.  A :class:`SweepResult` is an ordered collection of scenario
results sharing one artifact pair.
"""

from __future__ import annotations

import datetime
import functools
import io
import json
import pathlib
import platform
import re
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

import numpy as np

from repro.core.spec import ScenarioSpec

PathLike = Union[str, pathlib.Path]

#: Schema version of the artifact JSON form.  Part of the result store's
#: code-version salt: bumping it invalidates memoized results whose
#: serialized shape changed.  v2 added ``error_kind`` (failure taxonomy)
#: and ``provenance.attempts`` (retry accounting); v1 artifacts still load.
ARTIFACT_SCHEMA_VERSION = 2

_ARTIFACT_SCHEMA_VERSION = ARTIFACT_SCHEMA_VERSION

#: Versions :meth:`ScenarioResult.load`/``SweepResult.load`` accept.
_READABLE_SCHEMA_VERSIONS = (1, 2)


@functools.lru_cache(maxsize=1)
def current_commit() -> str:
    """The repository's HEAD commit, or ``"unknown"`` outside a checkout.

    Cached per process: provenance stamping must not pay one subprocess
    per scenario in a large sweep.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


def environment_stamp() -> Dict[str, str]:
    """The runtime environment recorded into every artifact."""
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": sys.platform,
        "machine": platform.machine(),
    }


def provenance_clock() -> str:
    """The sole sanctioned wall-clock read: a UTC ISO-8601 creation stamp.

    Every provenance timestamp flows through this helper so
    deterministic-replay tooling can monkeypatch one symbol instead of
    chasing ``datetime.now`` call sites.
    """
    # repro-lint: allow[DET001] the one sanctioned provenance wall-clock read
    return datetime.datetime.now(datetime.timezone.utc).isoformat(
        timespec="seconds"
    )


@dataclass(frozen=True)
class Provenance:
    """Where a result came from: spec identity, code version, environment."""

    spec_hash: str
    commit: str = field(default_factory=current_commit)
    environment: Dict[str, str] = field(default_factory=environment_stamp)
    created_at: str = ""
    elapsed_s: float = 0.0
    #: Execution attempts this result took (1 = first try; >1 means the
    #: supervision layer retried a transient failure).
    attempts: int = 1

    def __post_init__(self) -> None:
        if not self.created_at:
            object.__setattr__(self, "created_at", provenance_clock())

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-able representation."""
        return {
            "spec_hash": self.spec_hash,
            "commit": self.commit,
            "environment": dict(self.environment),
            "created_at": self.created_at,
            "elapsed_s": self.elapsed_s,
            "attempts": self.attempts,
        }

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "Provenance":
        """Rebuild from :meth:`to_json_dict` output."""
        return cls(
            spec_hash=payload["spec_hash"],
            commit=payload.get("commit", "unknown"),
            environment=dict(payload.get("environment", {})),
            created_at=payload.get("created_at", ""),
            elapsed_s=float(payload.get("elapsed_s", 0.0)),
            attempts=int(payload.get("attempts", 1)),
        )


def _json_path(path: PathLike) -> pathlib.Path:
    path = pathlib.Path(path)
    if path.suffix != ".json":
        path = path.with_suffix(path.suffix + ".json") if path.suffix else path.with_suffix(".json")
    return path


def _npz_path(json_path: pathlib.Path) -> pathlib.Path:
    return json_path.with_suffix(".npz")


@dataclass
class ScenarioResult:
    """Everything one executed scenario produced."""

    spec: ScenarioSpec
    provenance: Provenance
    scalars: Dict[str, Any] = field(default_factory=dict)
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    report: str = ""
    #: The legacy result object (``Fig5Result``, ``Table1Result``, ...).
    #: Not serialized; ``None`` after :meth:`load` and under the process
    #: backend (results cross the process boundary serialized).
    payload: Any = None
    #: Traceback text when the scenario failed instead of producing a
    #: result (sweep backends capture per-cell failures); ``None`` on
    #: success.
    error: Optional[str] = None
    #: Failure category of ``error`` -- one of
    #: :data:`repro.pipeline.faults.FAILURE_KINDS` (``exception`` /
    #: ``timeout`` / ``worker-crash`` / ``cancelled``); ``None`` on
    #: success.  A never-executed cell is ``cancelled``, not a generic
    #: failure, so reports distinguish "it broke" from "it never ran".
    error_kind: Optional[str] = None

    @property
    def name(self) -> str:
        """Scenario name (falls back to the kind)."""
        return self.spec.name or self.spec.kind

    @property
    def ok(self) -> bool:
        """Whether the scenario executed without error."""
        return self.error is None

    @property
    def arrays_stripped(self) -> bool:
        """Whether this result lost its array *data* in transit.

        True for a result rebuilt by :meth:`from_wire` from a wire form
        whose ``npz`` payload was stripped (service responses do this --
        spectra can be megabytes) while the JSON side still records array
        metadata.  Scalars, report and provenance remain bit-exact, so
        transcripts re-verify; only the numeric arrays are gone.
        """
        return not self.arrays and bool(getattr(self, "_stripped_arrays", {}))

    @property
    def artifact_stem(self) -> str:
        """The scenario name sanitized into a single path component.

        Grid-cell and sub-scenario names contain ``/`` (``"fig5/chip-1"``);
        using them raw as filenames writes into unintended subdirectories.
        Every run of filesystem-hostile characters becomes one ``-``.
        """
        stem = re.sub(r"[^\w.+=,@-]+", "-", self.name).strip("-.")
        return stem or self.spec.kind

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-able representation (array *metadata* only, data lives in .npz)."""
        return {
            "schema_version": _ARTIFACT_SCHEMA_VERSION,
            "spec": self.spec.to_json_dict(),
            "provenance": self.provenance.to_json_dict(),
            "scalars": dict(self.scalars),
            "arrays": self._arrays_metadata(),
            "report": self.report,
            "error": self.error,
            "error_kind": self.error_kind,
        }

    def _arrays_metadata(self) -> Dict[str, Dict[str, Any]]:
        # An array-stripped result (see arrays_stripped) keeps the
        # metadata it arrived with, so the wire JSON round-trips exactly
        # even though the data itself is gone.
        if self.arrays:
            return {
                key: {"shape": list(value.shape), "dtype": str(value.dtype)}
                for key, value in self.arrays.items()
            }
        stripped: Dict[str, Dict[str, Any]] = getattr(self, "_stripped_arrays", {})
        return {key: dict(meta) for key, meta in stripped.items()}

    @classmethod
    def _from_json_dict(
        cls, payload: Dict[str, Any], arrays: Dict[str, np.ndarray]
    ) -> "ScenarioResult":
        version = payload.get("schema_version", _ARTIFACT_SCHEMA_VERSION)
        if version not in _READABLE_SCHEMA_VERSIONS:
            raise ValueError(f"unsupported artifact schema version {version!r}")
        error = payload.get("error")
        # v1 artifacts predate the taxonomy: a recorded failure without a
        # category is a plain in-cell exception.
        error_kind = payload.get("error_kind")
        if error is not None and error_kind is None:
            error_kind = "exception"
        return cls(
            spec=ScenarioSpec.from_json_dict(payload["spec"]),
            provenance=Provenance.from_json_dict(payload["provenance"]),
            scalars=dict(payload.get("scalars", {})),
            arrays=arrays,
            report=payload.get("report", ""),
            error=error,
            error_kind=error_kind if error is not None else None,
        )

    def to_wire(self) -> Dict[str, Any]:
        """In-memory equivalent of :meth:`save`: JSON text + ``.npz`` bytes.

        This is how the process backend ships results across the worker
        boundary -- the same serialization as the on-disk artifact, so
        :meth:`from_wire` reproduces scalars, arrays and report bit-exactly
        while the non-serializable ``payload`` is dropped, exactly like
        :meth:`load`.
        """
        npz_bytes: Optional[bytes] = None
        if self.arrays:
            buffer = io.BytesIO()
            np.savez(buffer, **self.arrays)
            npz_bytes = buffer.getvalue()
        return {
            "json": json.dumps(self.to_json_dict(), sort_keys=True),
            "npz": npz_bytes,
        }

    @classmethod
    def from_wire(cls, wire: Dict[str, Any]) -> "ScenarioResult":
        """Rebuild a result from :meth:`to_wire` output (arrays bit-exact).

        A wire form whose ``npz`` payload was stripped (``None``) still
        round-trips: the array metadata from the JSON side is retained,
        ``to_wire()`` re-emits it unchanged, and :attr:`arrays_stripped`
        reports the data loss -- so a signed transcript re-verifies from
        the wire JSON alone, no ``.npz`` required.
        """
        payload = json.loads(wire["json"])
        arrays: Dict[str, np.ndarray] = {}
        if wire.get("npz"):
            with np.load(io.BytesIO(wire["npz"]), allow_pickle=False) as data:
                arrays = {key: np.array(data[key]) for key in data.files}
        result = cls._from_json_dict(payload, arrays)
        metadata = payload.get("arrays") or {}
        if metadata and not arrays:
            result._stripped_arrays = {
                key: dict(meta) for key, meta in metadata.items()
            }
        return result

    def save(self, path: PathLike) -> pathlib.Path:
        """Write ``<path>.json`` (+ sibling ``.npz`` when arrays exist).

        Overwriting an artifact that *had* arrays with one that has none
        removes the now-orphaned sibling ``.npz``: the new JSON no longer
        references it, and leaving it behind would make a later save with
        arrays ambiguous about whose data the file holds.
        """
        json_path = _json_path(path)
        json_path.parent.mkdir(parents=True, exist_ok=True)
        payload = self.to_json_dict()
        if self.arrays:
            payload["arrays_file"] = _npz_path(json_path).name
            np.savez(_npz_path(json_path), **self.arrays)
        else:
            _npz_path(json_path).unlink(missing_ok=True)
        json_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return json_path

    @classmethod
    def load(cls, path: PathLike) -> "ScenarioResult":
        """Read an artifact written by :meth:`save` (arrays bit-exact)."""
        json_path = _json_path(path)
        payload = json.loads(json_path.read_text())
        arrays: Dict[str, np.ndarray] = {}
        arrays_file = payload.get("arrays_file")
        if arrays_file:
            with np.load(json_path.parent / arrays_file, allow_pickle=False) as data:
                arrays = {key: np.array(data[key]) for key in data.files}
        return cls._from_json_dict(payload, arrays)


@dataclass
class SweepResult:
    """An ordered batch of scenario results from one ``run_many`` call.

    ``elapsed_s`` is the *wall-clock* duration of the whole sweep as seen
    by the caller -- under the process backend it is what the sweep
    actually took, not the sum of per-result ``provenance.elapsed_s``
    (which overlap across workers).
    """

    results: List[ScenarioResult] = field(default_factory=list)
    elapsed_s: float = 0.0

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> ScenarioResult:
        return self.results[index]

    def get(
        self,
        name: str,
        *,
        seed: Optional[int] = None,
        index: Optional[int] = None,
    ) -> ScenarioResult:
        """Look up one result by scenario name, raising on ambiguity.

        A grid sweep legitimately contains the same registry name at
        several seeds; a bare ``get(name)`` with more than one match is an
        error rather than a silent first-match.  Disambiguate with
        ``seed=`` (match ``result.spec.seed``) and/or ``index=`` (position
        among the same-named matches, in submission order).
        """
        matches = [
            (position, result)
            for position, result in enumerate(self.results)
            if result.name == name
        ]
        if seed is not None:
            matches = [(p, r) for p, r in matches if r.spec.seed == seed]
        if not matches:
            qualifier = f" with seed {seed}" if seed is not None else ""
            raise KeyError(
                f"no result named {name!r}{qualifier}; "
                f"available: {[r.name for r in self.results]}"
            )
        if index is not None:
            if not 0 <= index < len(matches):
                raise KeyError(
                    f"index {index} out of range: {len(matches)} results "
                    f"match {name!r}"
                )
            return matches[index][1]
        if len(matches) > 1:
            cells = [
                f"#{position} (seed {result.spec.seed})"
                for position, result in matches
            ]
            raise KeyError(
                f"ambiguous name {name!r}: {len(matches)} results match "
                f"({', '.join(cells)}); qualify with seed= and/or index="
            )
        return matches[0][1]

    @property
    def names(self) -> List[str]:
        """Scenario names in execution order."""
        return [result.name for result in self.results]

    @property
    def failures(self) -> List[ScenarioResult]:
        """The results whose scenario failed (``error`` set), in order."""
        return [result for result in self.results if not result.ok]

    @property
    def ok(self) -> bool:
        """Whether every scenario in the sweep succeeded."""
        return not self.failures

    def to_text(self) -> str:
        """All reports concatenated in execution order.

        When cells failed, the summary is followed by one line per
        failure with its taxonomy category and attempt count, e.g.
        ``fig2[seed=3]: worker-crash after 2 attempt(s)`` -- so a report
        distinguishes a crashed cell from a timed-out one from a cell
        that was cancelled before it ever ran.
        """
        blocks = []
        for result in self.results:
            bar = "=" * 78
            blocks.append(f"{bar}\nscenario: {result.name}\n{bar}\n{result.report}")
        summary = (
            f"sweep of {len(self.results)} scenarios in {self.elapsed_s:.2f} s"
        )
        # Cells cancelled by an interrupt never ran -- they are counted
        # apart from genuine failures, not reported as FAILED.
        failed = [r for r in self.failures if r.error_kind != "cancelled"]
        cancelled = [r for r in self.failures if r.error_kind == "cancelled"]
        if failed or cancelled:
            counts = []
            if failed:
                counts.append(f"{len(failed)} FAILED")
            if cancelled:
                counts.append(f"{len(cancelled)} cancelled")
            summary += f" ({', '.join(counts)})"
            for result in self.failures:
                summary += (
                    f"\n  {result.name}: {result.error_kind or 'exception'}"
                    f" after {result.provenance.attempts} attempt(s)"
                )
        return "\n\n".join(blocks + [summary])

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-able representation of the whole sweep."""
        return {
            "schema_version": _ARTIFACT_SCHEMA_VERSION,
            "elapsed_s": self.elapsed_s,
            "results": [result.to_json_dict() for result in self.results],
        }

    def save(self, path: PathLike) -> pathlib.Path:
        """Write one ``<path>.json`` + one ``.npz`` holding every array.

        Array keys are namespaced ``"<index>/<name>"`` so same-named arrays
        of different scenarios never collide.
        """
        json_path = _json_path(path)
        json_path.parent.mkdir(parents=True, exist_ok=True)
        payload = self.to_json_dict()
        stacked: Dict[str, np.ndarray] = {}
        for index, result in enumerate(self.results):
            for key, value in result.arrays.items():
                stacked[f"{index}/{key}"] = value
        if stacked:
            payload["arrays_file"] = _npz_path(json_path).name
            np.savez(_npz_path(json_path), **stacked)
        else:
            # Same stale-sibling hazard as ScenarioResult.save: an earlier
            # sweep with arrays must not leave its .npz next to a new
            # array-less sweep JSON.
            _npz_path(json_path).unlink(missing_ok=True)
        json_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return json_path

    @classmethod
    def load(cls, path: PathLike) -> "SweepResult":
        """Read a sweep artifact written by :meth:`save`."""
        json_path = _json_path(path)
        payload = json.loads(json_path.read_text())
        version = payload.get("schema_version", _ARTIFACT_SCHEMA_VERSION)
        if version not in _READABLE_SCHEMA_VERSIONS:
            raise ValueError(f"unsupported artifact schema version {version!r}")
        stacked: Dict[str, np.ndarray] = {}
        arrays_file = payload.get("arrays_file")
        if arrays_file:
            with np.load(json_path.parent / arrays_file, allow_pickle=False) as data:
                stacked = {key: np.array(data[key]) for key in data.files}
        results = []
        for index, entry in enumerate(payload.get("results", [])):
            prefix = f"{index}/"
            arrays = {
                key[len(prefix):]: value
                for key, value in stacked.items()
                if key.startswith(prefix)
            }
            results.append(ScenarioResult._from_json_dict(entry, arrays))
        return cls(results=results, elapsed_s=float(payload.get("elapsed_s", 0.0)))
