"""The pipeline runner: execute declarative scenario specs.

:class:`Pipeline` resolves one :class:`repro.core.spec.ScenarioSpec` into
its named stages (see :mod:`repro.pipeline.stages`);
:class:`ExperimentRunner` executes single specs (:meth:`~ExperimentRunner.run`)
or whole sweeps (:meth:`~ExperimentRunner.run_many`) and wraps every outcome
in a typed :class:`repro.pipeline.artifacts.ScenarioResult`.

One runner instance shares work across everything it executes:

* a chip provider caches :class:`repro.soc.chip.ChipModel` instances per
  (chip, watermark config, workload, M0 window), so a sweep's scenarios
  reuse one chip -- and therefore one watermark period template -- instead
  of rebuilding it per scenario;
* underneath, the module-level M0-window and background-template caches
  (PR 3) and the batched CPA/synthesis engines (PRs 1-2) do the heavy
  lifting, which is why a registry-driven sweep beats the same scenarios
  run as independent drivers (pinned by
  ``benchmarks/test_bench_pipeline_sweep.py``).
"""

from __future__ import annotations

import logging
import pathlib
import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union, cast

from repro.caching import LRUCache
from repro.core.spec import ScenarioSpec
from repro.experiments.common import build_watermark
from repro.pipeline import backends, faults
from repro.pipeline.artifacts import Provenance, ScenarioResult, SweepResult
from repro.pipeline.chaos import ChaosPlan
from repro.pipeline.stages import PipelineStage, StageContext, stages_for
from repro.pipeline.store import ResultStore
from repro.soc.registry import build_registered_chip, workload_program

logger = logging.getLogger(__name__)

#: Chip instances retained per runner (LRU beyond this).
CHIP_CACHE_MAX_ENTRIES = 8


@dataclass(frozen=True)
class Pipeline:
    """A spec resolved into its ordered, named stages."""

    spec: ScenarioSpec
    stages: Tuple[PipelineStage, ...]

    @classmethod
    def from_spec(cls, spec: ScenarioSpec) -> "Pipeline":
        """Resolve the stage graph for ``spec`` (raises on unknown kinds)."""
        return cls(spec=spec, stages=tuple(stages_for(spec)))

    @property
    def stage_names(self) -> Tuple[str, ...]:
        """The stage names in execution order."""
        return tuple(stage.name for stage in self.stages)

    def execute(self, runner: Optional["ExperimentRunner"] = None) -> ScenarioResult:
        """Run every stage and assemble the typed result artifact."""
        runner = runner or ExperimentRunner()
        start = time.perf_counter()
        ctx = StageContext(self.spec, runner)
        for stage in self.stages:
            stage.run(ctx)
        elapsed = time.perf_counter() - start
        if "payload" not in ctx.data:
            raise RuntimeError(
                f"pipeline for kind {self.spec.kind!r} finished without a payload"
            )
        return ScenarioResult(
            spec=self.spec,
            provenance=Provenance(spec_hash=self.spec.spec_hash(), elapsed_s=elapsed),
            scalars=ctx.data.get("scalars", {}),
            arrays=ctx.data.get("arrays", {}),
            report=ctx.data.get("report", ""),
            payload=ctx.data.get("payload"),
        )


class ExperimentRunner:
    """Executes scenario specs, sharing chips and caches across a sweep."""

    def __init__(self, chip_cache_entries: int = CHIP_CACHE_MAX_ENTRIES) -> None:
        self._chips = LRUCache(lambda: chip_cache_entries)

    # -- shared services used by stages ---------------------------------------

    def chip_for(self, spec: ScenarioSpec):
        """The chip a spec names, cached per configuration within this runner."""
        if spec.chip is None:
            raise ValueError(f"scenario kind {spec.kind!r} requires a chip")
        chip_name = spec.chip  # bound post-check: narrowing does not cross closures
        key = (chip_name, spec.watermark, spec.workload, spec.m0_window_cycles)

        def build():
            return build_registered_chip(
                chip_name,
                watermark=build_watermark(spec.watermark),
                program=workload_program(spec.workload),
                m0_window_cycles=spec.m0_window_cycles,
            )

        # repro-lint: allow[CACHE001] the chip provider caches ChipModel objects, not arrays; array freezing happens inside the chip's own window cache
        return self._chips.get_or_compute(key, build)

    def chip_cache_stats(self):
        """Hit/miss/eviction counters of the runner's chip provider."""
        return self._chips.stats()

    # -- execution -------------------------------------------------------------

    def resolve(
        self, scenario: Union[ScenarioSpec, str, pathlib.Path]
    ) -> ScenarioSpec:
        """Accept a spec, a registry name, or a path to a spec JSON file.

        A :class:`pathlib.Path` is always treated as a spec file.  For a
        string, the registry wins on a name collision; otherwise any
        existing file loads as a spec regardless of its extension (a spec
        saved as ``fig5.spec`` must not be rejected as an "unknown
        scenario"), and a ``.json`` path that does not exist raises
        :class:`FileNotFoundError` rather than hiding the miss.
        """
        if isinstance(scenario, ScenarioSpec):
            return scenario
        if isinstance(scenario, pathlib.Path):
            return ScenarioSpec.load(scenario)
        from repro.pipeline.registry import DEFAULT_REGISTRY

        if DEFAULT_REGISTRY.has(scenario):
            return DEFAULT_REGISTRY.build(scenario)
        path = pathlib.Path(scenario)
        if scenario.endswith(".json") or path.is_file():
            return ScenarioSpec.load(path)
        raise ValueError(
            f"unknown scenario {scenario!r}: not a registry name "
            f"(see 'python -m repro list') and not a spec file path"
        )

    def run(
        self,
        scenario: Union[ScenarioSpec, str],
        store: Optional[Union[ResultStore, str, pathlib.Path]] = None,
        resume: bool = True,
    ) -> ScenarioResult:
        """Execute one scenario and return its typed result artifact.

        With ``store`` (a :class:`~repro.pipeline.store.ResultStore` or a
        directory path) the result is memoized by (spec hash, code
        version): when ``resume`` is true a stored cell is served from
        disk instead of recomputing -- bit-identical scalars, arrays and
        report, with the in-memory ``payload`` dropped exactly as after
        :meth:`ScenarioResult.load` -- and a computed success is written
        back.  ``resume=False`` forces recomputation but still writes
        back.  Failed scenarios are never memoized.
        """
        spec = self.resolve(scenario)
        store = ResultStore.coerce(store)
        if store is not None and resume:
            cached = store.get(spec)
            if cached is not None:
                return cached
        result = Pipeline.from_spec(spec).execute(self)
        if store is not None and result.ok:
            store.put(result)
        return result

    def run_many(
        self,
        scenarios: Iterable[Union[ScenarioSpec, str, pathlib.Path]],
        backend: str = "auto",
        max_workers: Optional[int] = None,
        store: Optional[Union[ResultStore, str, pathlib.Path]] = None,
        resume: bool = True,
        timeout: Optional[float] = None,
        retry: Optional[Union[int, faults.RetryPolicy]] = None,
        on_failure: str = faults.ON_FAILURE_RECORD,
        chaos: Optional[Union[ChaosPlan, str, Sequence]] = None,
    ) -> SweepResult:
        """Execute a batch of scenarios, serially or on a process pool.

        ``backend="serial"`` runs in order through this runner: chips, M0
        windows, background-power templates and watermark period templates
        are shared across the whole sweep, so N related scenarios cost far
        less than N independent driver runs.  ``backend="process"``
        dispatches the resolved specs to ``max_workers`` worker processes
        (each with its own runner and naturally warming caches) and is
        bit-identical in scalars, arrays and reports -- only the in-memory
        ``payload`` objects are dropped, exactly as after
        :meth:`ScenarioResult.load`.  The default ``"auto"`` picks the
        process pool only when the host has at least two schedulable CPUs
        and the sweep has enough cells to win (the choice is logged, see
        :func:`repro.pipeline.backends.choose_backend`).

        With ``store`` the sweep becomes resumable and memoized: before
        executing, every cell already present under the current (spec
        hash, code version) key is served from disk (when ``resume`` is
        true, the default), only the missing cells are dispatched to the
        backend, and every *successful* cell is written back -- so a
        sweep that died at cell 900/1000 re-executes exactly the 100
        unfinished cells, and overlapping grids or repeat runs are
        near-free.  Failed cells are never memoized and always re-execute.

        Resolution errors (unknown names, missing spec files) raise before
        anything runs; *execution* failures are captured per cell (the
        result carries ``error`` + ``error_kind`` + a ``FAILED`` report)
        so one bad cell never kills the sweep.  ``elapsed_s`` of the
        returned :class:`SweepResult` is always the caller-observed wall
        clock.

        Supervision (see :mod:`repro.pipeline.faults`): ``timeout`` is a
        per-cell wall-clock budget in seconds -- on the process backend a
        hung cell's worker is killed and replaced without stalling sibling
        cells.  ``retry`` is a retry *count* or a full
        :class:`~repro.pipeline.faults.RetryPolicy`; only transient
        failures (timeouts, worker crashes,
        :class:`~repro.pipeline.faults.TransientError`) are retried, with
        deterministic backoff, and attempt counts land in each result's
        provenance.  ``on_failure="raise"`` aborts the sweep with
        :class:`~repro.pipeline.faults.CellFailed` once a cell exhausts
        its attempts (default ``"record"`` keeps sweeping).  ``chaos``
        injects deterministic faults for testing (see
        :mod:`repro.pipeline.chaos`).

        Completed cells are flushed to the store *as they finish*, and
        SIGINT/SIGTERM during the sweep trigger an orderly shutdown:
        unfinished cells are recorded as ``cancelled`` and the partial
        sweep returns normally -- so an interrupted run loses nothing
        already computed and ``--resume`` picks up exactly where it
        stopped.
        """
        specs: Sequence[ScenarioSpec] = [self.resolve(s) for s in scenarios]
        if not specs:
            raise ValueError("at least one scenario is required")
        chosen = backends.resolve_backend(backend, len(specs))
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        supervision = faults.Supervision(
            timeout_s=timeout,
            retry=faults.RetryPolicy.coerce(retry),
            on_failure=on_failure,
        )
        chaos_plan = ChaosPlan.coerce(chaos)
        store = ResultStore.coerce(store)
        start = time.perf_counter()
        results: List[Optional[ScenarioResult]] = [None] * len(specs)
        pending = list(range(len(specs)))
        if store is not None and resume:
            pending = []
            for index, spec in enumerate(specs):
                cached = store.get(spec)
                if cached is not None:
                    results[index] = cached
                else:
                    pending.append(index)
            logger.info(
                "result store %s: %d hit(s), %d cell(s) to execute",
                store.root, len(specs) - len(pending), len(pending),
            )
        if pending:
            pending_specs = [specs[index] for index in pending]

            def on_result(local_index: int, result: ScenarioResult) -> None:
                # Incremental write-back: a completed cell reaches the
                # store the moment it finishes, so a crash or interrupt
                # later in the sweep cannot lose it.
                results[pending[local_index]] = result
                if store is not None and result.ok:
                    store.put(result)

            with faults.graceful_shutdown():
                if chosen == "serial":
                    backends.run_serial(
                        pending_specs,
                        self,
                        supervision=supervision,
                        chaos=chaos_plan,
                        on_result=on_result,
                    )
                else:
                    backends.run_process(
                        pending_specs,
                        max_workers=max_workers,
                        runner=self,
                        supervision=supervision,
                        chaos=chaos_plan,
                        on_result=on_result,
                    )
        # Every cell is settled: store hits above, the backend (which
        # records failures and cancellations as results) for the rest.
        return SweepResult(
            results=cast(List[ScenarioResult], results),
            elapsed_s=time.perf_counter() - start,
        )


def run_scenario(scenario: Union[ScenarioSpec, str]) -> ScenarioResult:
    """One-shot convenience wrapper: ``ExperimentRunner().run(scenario)``."""
    return ExperimentRunner().run(scenario)
