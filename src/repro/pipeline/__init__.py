"""Declarative scenario pipeline: specs in, typed result artifacts out.

The public surface:

* :class:`repro.core.spec.ScenarioSpec` -- a frozen, JSON-serializable
  experiment description (re-exported here for convenience);
* :class:`Pipeline` / :class:`ExperimentRunner` -- resolve a spec into
  chip → acquisition → synthesis → detection stages and execute single
  specs or batched sweeps (``run_many``) through the shared caches;
* :class:`ScenarioResult` / :class:`SweepResult` -- typed artifacts with
  JSON/``.npz`` round-trip and provenance stamps;
* :data:`DEFAULT_REGISTRY` -- every paper figure/table (plus campaign
  scenarios) as a named spec factory;
* :class:`SpecGrid` / :func:`grid` -- cartesian sweep builders expanding a
  base scenario along chip/noise/length/seed axes, and
  ``run_many(..., backend="process", max_workers=N)`` to execute such
  grids on a process pool (bit-identical to serial, see
  :mod:`repro.pipeline.backends`);
* :class:`ResultStore` -- content-addressed memoization of results by
  (spec hash, code version), making sweeps resumable
  (``run_many(..., store=..., resume=True)``, see
  :mod:`repro.pipeline.store`);
* :class:`RetryPolicy` / :class:`Supervision` / :data:`FAILURE_KINDS` --
  the fault-tolerance policy layer (per-cell timeouts, retries with
  deterministic backoff, failure taxonomy, graceful shutdown; see
  :mod:`repro.pipeline.faults`), plus :class:`ChaosPlan` /
  :class:`FaultSpec` for deterministic fault injection
  (:mod:`repro.pipeline.chaos`).
"""

from repro.core.spec import ScenarioSpec
from repro.pipeline.artifacts import Provenance, ScenarioResult, SweepResult
from repro.pipeline.backends import BACKEND_CHOICES, BACKENDS
from repro.pipeline.chaos import ChaosPlan, FaultSpec
from repro.pipeline.faults import (
    FAILURE_KINDS,
    CellFailed,
    InjectedFault,
    RetryPolicy,
    Supervision,
    TransientError,
)
from repro.pipeline.store import ResultStore, StoreStats, code_version_salt
from repro.pipeline.registry import (
    DEFAULT_REGISTRY,
    ExperimentRegistry,
    RegistryEntry,
    RunOptions,
    SpecGrid,
    grid,
)
from repro.pipeline.runner import ExperimentRunner, Pipeline, run_scenario
from repro.pipeline.stages import PipelineStage, StageContext, registered_kinds

__all__ = [
    "ScenarioSpec",
    "Provenance",
    "ScenarioResult",
    "SweepResult",
    "BACKENDS",
    "BACKEND_CHOICES",
    "FAILURE_KINDS",
    "RetryPolicy",
    "Supervision",
    "CellFailed",
    "TransientError",
    "InjectedFault",
    "ChaosPlan",
    "FaultSpec",
    "ResultStore",
    "StoreStats",
    "code_version_salt",
    "DEFAULT_REGISTRY",
    "ExperimentRegistry",
    "RegistryEntry",
    "RunOptions",
    "SpecGrid",
    "grid",
    "ExperimentRunner",
    "Pipeline",
    "run_scenario",
    "PipelineStage",
    "StageContext",
    "registered_kinds",
]
