"""Deterministic, seeded fault injection for sweep cells.

The chaos harness makes a *named* cell misbehave on chosen attempts so the
fault-tolerance layer (:mod:`repro.pipeline.faults`,
:mod:`repro.pipeline.backends`) can be exercised reproducibly -- by the
test suite, the CI chaos job, and ``sweep --chaos`` on the command line.

A :class:`ChaosPlan` is a list of :class:`FaultSpec` rules::

    ChaosPlan.coerce([
        {"cell": "fig2[seed=1]", "mode": "kill", "attempts": [1]},
        {"cell": "fig2[seed=2]", "mode": "raise", "attempts": [1]},
    ])

Modes:

``raise``
    Raise :class:`repro.pipeline.faults.InjectedFault` (a transient,
    retryable exception) instead of running the cell.
``hang``
    Sleep ``hang_s`` seconds (default one hour) before running the cell --
    with a per-cell timeout the attempt is timed out and retried; without
    one the sweep stalls there, which is how the SIGTERM/resume tests
    freeze a sweep at a known point.
``kill``
    Hard-kill the worker with ``os._exit`` (no cleanup, no exception) on
    the process backend; the serial backend has no worker to kill, so the
    kill is *simulated* by raising
    :class:`repro.pipeline.faults.WorkerCrashError` (classified and
    retried exactly like a real crash).

Injection happens strictly *before* the cell's pipeline executes, so an
attempt that survives injection is bit-identical to a clean run of the
same spec.  Probabilistic rules (``probability < 1``) roll a pure
``sha256(seed|cell|attempt)`` hash -- not a live RNG -- so a plan fires
identically in every process and on every re-run.
"""

from __future__ import annotations

import fnmatch
import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.pipeline import faults

#: Exit status of a chaos-killed worker (distinctive in ps/exit logs).
KILL_EXIT_CODE = 173

MODES = ("raise", "hang", "kill")

#: Default hang duration: long enough that an un-timed-out hang is
#: indistinguishable from a genuinely stuck cell.
DEFAULT_HANG_S = 3600.0


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: make ``cell`` misbehave on chosen attempts."""

    #: Scenario name to target; ``fnmatch`` patterns are allowed, so
    #: ``"fig2[seed=*]"`` faults every seed of a grid axis.
    cell: str
    mode: str
    #: 1-based attempt numbers on which the fault fires; empty = every
    #: attempt (a *poison* cell that never recovers).
    attempts: Tuple[int, ...] = ()
    #: Probability the fault fires on a matching attempt (rolled
    #: deterministically from the plan seed).
    probability: float = 1.0
    hang_s: float = DEFAULT_HANG_S

    def __post_init__(self) -> None:
        object.__setattr__(self, "attempts", tuple(self.attempts))
        if not self.cell:
            raise ValueError("fault 'cell' must be a non-empty name/pattern")
        if self.mode not in MODES:
            raise ValueError(
                f"unknown fault mode {self.mode!r}; expected one of {MODES}"
            )
        if any(int(a) != a or a < 1 for a in self.attempts):
            raise ValueError("fault 'attempts' must be 1-based attempt numbers")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("fault 'probability' must be in (0, 1]")
        if self.hang_s <= 0:
            raise ValueError("fault 'hang_s' must be positive")

    def matches(self, cell_name: str, attempt: int) -> bool:
        """Whether this rule applies to ``cell_name`` on ``attempt``.

        Exact equality is checked before the ``fnmatch`` pattern: grid
        cell names contain ``[...]`` (``"fig2[seed=1]"``), which fnmatch
        would otherwise misread as a character class, so a rule naming a
        cell verbatim must always hit it.
        """
        if self.attempts and attempt not in self.attempts:
            return False
        if cell_name == self.cell:
            return True
        return fnmatch.fnmatchcase(cell_name, self.cell)

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-able representation (the ``--chaos`` wire form)."""
        payload: Dict[str, Any] = {"cell": self.cell, "mode": self.mode}
        if self.attempts:
            payload["attempts"] = list(self.attempts)
        if self.probability != 1.0:
            payload["probability"] = self.probability
        if self.hang_s != DEFAULT_HANG_S:
            payload["hang_s"] = self.hang_s
        return payload

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "FaultSpec":
        """Rebuild from :meth:`to_json_dict` output (extra keys rejected)."""
        unknown = set(payload) - {"cell", "mode", "attempts", "probability", "hang_s"}
        if unknown:
            raise ValueError(f"unknown fault field(s): {sorted(unknown)}")
        return cls(
            cell=payload["cell"],
            mode=payload["mode"],
            attempts=tuple(payload.get("attempts", ())),
            probability=float(payload.get("probability", 1.0)),
            hang_s=float(payload.get("hang_s", DEFAULT_HANG_S)),
        )


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded set of injection rules, safe to ship to worker processes."""

    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    @classmethod
    def coerce(
        cls,
        value: Optional[Union["ChaosPlan", str, Sequence]],
        seed: int = 0,
    ) -> Optional["ChaosPlan"]:
        """``None``, a plan, JSON text, or a rule list -> an optional plan.

        JSON text may be either a list of fault objects or
        ``{"seed": ..., "faults": [...]}``.
        """
        if value is None or isinstance(value, ChaosPlan):
            return value
        if isinstance(value, str):
            value = json.loads(value)
        if isinstance(value, dict):
            seed = int(value.get("seed", seed))
            value = value.get("faults", ())
        rules: List[FaultSpec] = []
        for entry in value:
            if isinstance(entry, FaultSpec):
                rules.append(entry)
            else:
                rules.append(FaultSpec.from_json_dict(entry))
        return cls(faults=tuple(rules), seed=seed)

    def to_json(self) -> str:
        """The plan as JSON (accepted back by :meth:`coerce`)."""
        return json.dumps(
            {"seed": self.seed, "faults": [f.to_json_dict() for f in self.faults]},
            sort_keys=True,
        )

    def _roll(self, cell_name: str, attempt: int) -> float:
        """Deterministic uniform [0, 1) fraction for a (cell, attempt)."""
        digest = hashlib.sha256(
            f"{self.seed}|{cell_name}|{attempt}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2.0**64

    def fault_for(self, cell_name: str, attempt: int) -> Optional[FaultSpec]:
        """The first rule firing for ``cell_name`` on 1-based ``attempt``."""
        for fault in self.faults:
            if not fault.matches(cell_name, attempt):
                continue
            if fault.probability >= 1.0:
                return fault
            if self._roll(cell_name, attempt) < fault.probability:
                return fault
        return None


def trigger(fault: FaultSpec, serial: bool = False) -> None:
    """Fire one fault at the injection point (just before the cell runs).

    ``serial=True`` replaces the hard ``os._exit`` kill with a raised
    :class:`~repro.pipeline.faults.WorkerCrashError` -- on the serial
    backend the "worker" is the caller's own process, and actually killing
    it would take the whole sweep (and test suite) down with it.
    """
    if fault.mode == "raise":
        raise faults.InjectedFault(
            f"chaos: injected failure for cell pattern {fault.cell!r}"
        )
    if fault.mode == "hang":
        time.sleep(fault.hang_s)
        return
    if serial:
        raise faults.WorkerCrashError(
            f"chaos: injected worker kill for cell pattern {fault.cell!r} "
            "(simulated on the serial backend)"
        )
    os._exit(KILL_EXIT_CODE)
