"""Execution backends for :meth:`repro.pipeline.runner.ExperimentRunner.run_many`.

Two backends execute a resolved list of :class:`ScenarioSpec` cells:

``serial``
    The cells run in submission order inside the calling process, through
    the caller's runner (shared chip provider, warm module-level caches).
    Per-cell wall-clock timeouts use a SIGALRM deadline (main thread
    only); chaos worker-kills are *simulated* as raised crashes.

``process``
    The cells are dispatched to a supervised pool of worker processes.
    Each worker runs one cell at a time over its own pipe, builds one
    :class:`ExperimentRunner` on first use (on fork platforms it adopts a
    copy-on-write snapshot of the sweep runner, inheriting warm chips and
    templates), and ships results back through
    :meth:`ScenarioResult.to_wire` -- the same JSON + ``.npz``
    serialization as ``save``/``load``, so scalars, arrays and reports
    stay bit-identical to the serial backend while the in-memory
    ``payload`` is dropped.

Both backends run under one supervision policy
(:class:`repro.pipeline.faults.Supervision`):

* every failure is *classified* (``exception`` / ``timeout`` /
  ``worker-crash`` / ``cancelled``) and captured per cell -- one bad cell
  never kills the sweep;
* transient failures (timeouts, worker crashes, :class:`TransientError`)
  retry with deterministic exponential backoff, and the attempt count is
  recorded in the result's provenance -- a retried cell re-executes the
  same frozen spec, so its result is bit-identical to a clean run;
* a cell over its wall-clock budget has its worker killed and replaced,
  so a hung cell cannot stall sibling cells;
* a cell that repeatedly kills its worker is quarantined instead of
  poisoning the pool, and a pool that keeps breaking falls back to the
  serial backend for the remaining cells;
* ``on_result`` fires in the parent as each cell finishes (success or
  failure), which is how ``run_many`` flushes completed cells to the
  result store incrementally -- an interrupt mid-sweep loses nothing that
  already finished;
* :class:`SweepInterrupted` (SIGINT/SIGTERM under
  :func:`faults.graceful_shutdown`) stops the sweep orderly: in-flight
  and queued cells are recorded as ``cancelled``, never as spurious
  failures.

Fault injection (:mod:`repro.pipeline.chaos`) hooks in just before a
cell's pipeline runs, on both backends, so the whole supervision layer is
testable deterministically.
"""

from __future__ import annotations

import contextlib
import dataclasses
import logging
import multiprocessing
import multiprocessing.connection
import os
import signal
import threading
import time
import traceback
from collections import deque
from typing import (
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    cast,
)

from repro.core.spec import ScenarioSpec
from repro.pipeline import chaos as chaos_mod
from repro.pipeline import faults
from repro.pipeline.artifacts import Provenance, ScenarioResult

logger = logging.getLogger(__name__)

#: Concrete execution backends.
BACKENDS = ("serial", "process")

#: Everything ``run_many`` accepts: ``"auto"`` resolves to a concrete
#: backend per sweep via :func:`choose_backend`.
BACKEND_CHOICES = ("auto",) + BACKENDS

#: Minimum sweep size for ``auto`` to reach for the process pool: a
#: single cell has nothing to overlap, so fork + wire overhead can only
#: lose (BENCH.json ``parallel_sweep`` measured 0.75x on one CPU).
AUTO_MIN_CELLS = 2

#: Supervisor idle tick: the upper bound on how late a deadline or a
#: backed-off retry is noticed (messages from workers wake it instantly).
_SUPERVISOR_TICK_S = 0.2

#: The per-cell result callback: ``on_result(index, result)``.
OnResult = Optional[Callable[[int, ScenarioResult], None]]


def choose_backend(num_specs: int) -> str:
    """The backend ``"auto"`` resolves to for a sweep of ``num_specs``.

    The process pool only wins when there are at least two schedulable
    CPUs *and* enough cells to overlap; otherwise serialization and fork
    overhead make it strictly slower than the serial backend, so small
    grids and single-CPU hosts stay serial.  The choice is logged at INFO
    on the ``repro.pipeline.backends`` logger.
    """
    cpus = available_cpus()
    if cpus >= 2 and num_specs >= AUTO_MIN_CELLS:
        choice = "process"
        reason = f"{num_specs} cell(s) across {cpus} schedulable CPUs"
    else:
        choice = "serial"
        reason = (
            f"only {cpus} schedulable CPU(s)"
            if cpus < 2
            else f"only {num_specs} cell(s)"
        )
    logger.info("backend auto: chose %r (%s)", choice, reason)
    return choice


def resolve_backend(backend: str, num_specs: int) -> str:
    """Validate a ``run_many`` backend name, resolving ``"auto"``."""
    if backend == "auto":
        return choose_backend(num_specs)
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKEND_CHOICES}"
        )
    return backend


def _cell_name(spec: ScenarioSpec) -> str:
    return spec.name or spec.kind


def failed_result(
    spec: ScenarioSpec,
    error: str,
    kind: str = faults.EXCEPTION,
    attempts: int = 1,
) -> ScenarioResult:
    """The placeholder artifact recording one failed sweep cell."""
    return ScenarioResult(
        spec=spec,
        provenance=Provenance(
            spec_hash=spec.spec_hash(), elapsed_s=0.0, attempts=attempts
        ),
        report=(
            f"scenario {_cell_name(spec)} FAILED: {kind} "
            f"after {attempts} attempt(s)\n{error}"
        ),
        error=error,
        error_kind=kind,
    )


def cancelled_result(spec: ScenarioSpec, attempts: int = 0) -> ScenarioResult:
    """The artifact recording a cell the sweep never finished.

    ``attempts`` counts the attempts *started* before the interrupt (0
    for a cell that was still queued).  Distinct from a failure: the cell
    did not break, the sweep stopped -- its report says CANCELLED, not
    FAILED, and resuming against a result store re-executes exactly
    these cells.
    """
    error = (
        "sweep interrupted before this cell finished; "
        "resume with a result store to execute it"
    )
    return ScenarioResult(
        spec=spec,
        provenance=Provenance(
            spec_hash=spec.spec_hash(), elapsed_s=0.0, attempts=attempts
        ),
        report=f"scenario {_cell_name(spec)} CANCELLED: {error}",
        error=error,
        error_kind=faults.CANCELLED,
    )


def available_cpus() -> int:
    """CPUs this process may actually schedule onto (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def default_max_workers(num_specs: int) -> int:
    """Worker count when the caller does not pin one."""
    return max(1, min(num_specs, available_cpus()))


# -- serial backend ------------------------------------------------------------


_warned_no_alarm = False


@contextlib.contextmanager
def _cell_timeout(timeout_s: Optional[float]) -> Iterator[None]:
    """Arm a SIGALRM deadline raising :class:`faults.CellTimeout`.

    Only usable on the main thread of a POSIX process; elsewhere the
    timeout is skipped with a (one-time) warning rather than silently
    promising supervision it cannot deliver.
    """
    global _warned_no_alarm
    usable = (
        timeout_s is not None
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        if timeout_s is not None and not _warned_no_alarm:
            _warned_no_alarm = True
            logger.warning(
                "serial per-cell timeout unavailable here (needs SIGALRM on "
                "the main thread); cells run without a deadline"
            )
        yield
        return

    assert timeout_s is not None  # implied by ``usable``; narrows for mypy

    def on_alarm(signum, frame):
        raise faults.CellTimeout()

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _attempt_serial(
    spec: ScenarioSpec,
    runner,
    sup: faults.Supervision,
    chaos: Optional[chaos_mod.ChaosPlan],
    attempt: int,
) -> Tuple[Optional[ScenarioResult], Optional[faults.CellFailure]]:
    """One serial attempt: ``(result, None)`` or ``(None, CellFailure)``."""
    from repro.pipeline.runner import Pipeline

    try:
        with _cell_timeout(sup.timeout_s):
            if chaos is not None:
                fault = chaos.fault_for(_cell_name(spec), attempt)
                if fault is not None:
                    chaos_mod.trigger(fault, serial=True)
            result = Pipeline.from_spec(spec).execute(runner)
    except faults.CellTimeout:
        return None, faults.timeout_failure(sup.timeout_s)
    except Exception as exc:
        return None, faults.classify_exception(exc, traceback.format_exc())
    return result, None


def _run_cell_serial(
    spec: ScenarioSpec,
    runner,
    sup: faults.Supervision,
    chaos: Optional[chaos_mod.ChaosPlan],
    start_attempt: int = 1,
    prior_crashes: int = 0,
) -> ScenarioResult:
    """Execute one cell under the supervision policy, in this process.

    ``start_attempt``/``prior_crashes`` carry accounting over when the
    process supervisor falls back to serial mid-cell.
    """
    attempt = start_attempt
    crashes = prior_crashes
    while True:
        result, failure = _attempt_serial(spec, runner, sup, chaos, attempt)
        if failure is None:
            assert result is not None  # the attempt contract: one of the two
            result.provenance = dataclasses.replace(
                result.provenance, attempts=attempt
            )
            return result
        if failure.kind == faults.WORKER_CRASH:
            crashes += 1
            if crashes >= sup.quarantine_after_crashes:
                return failed_result(
                    spec,
                    f"{failure.message}\nquarantined after {crashes} worker "
                    "crash(es); not retried",
                    kind=faults.WORKER_CRASH,
                    attempts=attempt,
                )
        if sup.retry.should_retry(failure, attempt):
            delay = sup.retry.backoff_for(attempt, key=spec.spec_hash())
            logger.warning(
                "cell %s attempt %d failed (%s); retrying in %.2f s",
                _cell_name(spec), attempt, failure.kind, delay,
            )
            if delay > 0:
                time.sleep(delay)
            attempt += 1
            continue
        return failed_result(
            spec, failure.message, kind=failure.kind, attempts=attempt
        )


def run_serial(
    specs: Sequence[ScenarioSpec],
    runner,
    supervision: Optional[faults.Supervision] = None,
    chaos: Optional[chaos_mod.ChaosPlan] = None,
    on_result: OnResult = None,
) -> List[ScenarioResult]:
    """Execute every cell in order through the caller's runner.

    ``on_result(index, result)`` fires as each cell settles (success,
    failure, or cancellation).  A :class:`faults.SweepInterrupted` raised
    mid-sweep (see :func:`faults.graceful_shutdown`) records the current
    and remaining cells as ``cancelled`` and returns the partial results
    instead of propagating.
    """
    sup = supervision or faults.Supervision()
    results: List[Optional[ScenarioResult]] = [None] * len(specs)

    def settle(index: int, result: ScenarioResult) -> None:
        results[index] = result
        if on_result is not None:
            on_result(index, result)

    try:
        for index, spec in enumerate(specs):
            result = _run_cell_serial(spec, runner, sup, chaos)
            settle(index, result)
            if not result.ok and sup.on_failure == faults.ON_FAILURE_RAISE:
                raise faults.CellFailed(result)
    except faults.SweepInterrupted as stop:
        logger.warning(
            "%s; cancelling %d unfinished cell(s)",
            stop, sum(result is None for result in results),
        )
    for index, spec in enumerate(specs):
        if results[index] is None:
            settle(index, cancelled_result(spec))
    # Every slot was settled above; the Optional is only for mid-sweep state.
    return cast(List[ScenarioResult], results)


# -- process backend -----------------------------------------------------------


def _pool_context():
    """Prefer ``fork`` so workers inherit warm module-level caches."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        return multiprocessing.get_context()


def _supervised_worker(conn, runner, chaos) -> None:
    """Worker body: one cell at a time over ``conn``, until ``None``/EOF.

    Exceptions never cross the pipe raw: the worker ships
    ``("ok", wire)``, ``("transient", traceback)`` or
    ``("error", traceback)`` and the parent classifies.  A chaos ``kill``
    fault hard-exits here (``os._exit``), which the parent observes as a
    dead worker.  SIGINT is ignored -- a Ctrl-C to the foreground process
    group must interrupt only the parent's supervisor, not look like a
    spontaneous crash of every worker.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic contexts
        pass
    from repro.pipeline.runner import ExperimentRunner, Pipeline

    if runner is None:
        runner = ExperimentRunner()
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if task is None:
            return
        spec_json, attempt = task
        try:
            spec = ScenarioSpec.from_json(spec_json)
            if chaos is not None:
                fault = chaos.fault_for(_cell_name(spec), attempt)
                if fault is not None:
                    chaos_mod.trigger(fault)  # "kill" never returns
            result = Pipeline.from_spec(spec).execute(runner)
            message = ("ok", result.to_wire())
        except (faults.CellTimeout, faults.SweepInterrupted):
            # BaseException-derived control flow must never be folded into
            # the ("error", ...) taxonomy: the parent supervisor owns
            # timeout/interrupt handling, so let it propagate.
            raise
        except faults.TransientError:
            message = ("transient", traceback.format_exc())
        except Exception:
            message = ("error", traceback.format_exc())
        try:
            conn.send(message)
        except (BrokenPipeError, OSError):  # parent went away
            return


class _Task:
    """One in-flight attempt of one cell on one worker."""

    __slots__ = ("index", "attempt", "deadline")

    def __init__(self, index: int, attempt: int, deadline: Optional[float]):
        self.index = index
        self.attempt = attempt
        self.deadline = deadline


class _Worker:
    """A worker process, its parent-side pipe end, and its current task."""

    __slots__ = ("process", "conn", "task")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.task: Optional[_Task] = None


class _ProcessSupervisor:
    """Supervises a pool of single-cell workers executing one sweep.

    The event loop dispatches at most one cell per worker, watches worker
    pipes and process sentinels, enforces per-cell deadlines by killing
    and replacing hung workers, classifies and retries failures per the
    supervision policy, quarantines cells that repeatedly kill their
    worker, and degrades to the serial backend when the pool itself keeps
    breaking.
    """

    def __init__(
        self,
        specs: Sequence[ScenarioSpec],
        max_workers: int,
        runner,
        sup: faults.Supervision,
        chaos: Optional[chaos_mod.ChaosPlan],
        on_result: OnResult,
    ) -> None:
        self.specs = list(specs)
        self.max_workers = max_workers
        self.runner = runner
        self.sup = sup
        self.chaos = chaos
        self.on_result = on_result
        self.context = _pool_context()
        self.results: List[Optional[ScenarioResult]] = [None] * len(self.specs)
        #: (index, attempt, ready_at) cells awaiting dispatch, FIFO with
        #: backed-off retries gated by ``ready_at`` (monotonic seconds).
        self.queue: Deque[Tuple[int, int, float]] = deque(
            (index, 1, 0.0) for index in range(len(self.specs))
        )
        #: index -> worker crashes caused by that cell
        self.crashes: Dict[int, int] = {}
        self.total_crashes = 0
        self.workers: List[_Worker] = []

    # -- lifecycle -------------------------------------------------------------

    def run(self) -> List[ScenarioResult]:
        for _ in range(min(self.max_workers, len(self.specs))):
            self.workers.append(self._spawn_worker())
        try:
            try:
                self._supervise()
            except faults.SweepInterrupted as stop:
                logger.warning(
                    "%s; cancelling %d unfinished cell(s)",
                    stop,
                    sum(result is None for result in self.results),
                )
                self._cancel_unfinished()
        finally:
            self._shutdown()
        # ``_supervise``/``_cancel_unfinished`` settled every slot.
        return cast(List[ScenarioResult], self.results)

    def _spawn_worker(self) -> _Worker:
        parent_conn, child_conn = self.context.Pipe()
        # Under fork the runner reference crosses via copy-on-write memory
        # (nothing is pickled) and the worker inherits its warm chips;
        # other start methods rebuild a fresh runner per worker.
        runner = self.runner if self.context.get_start_method() == "fork" else None
        process = self.context.Process(
            target=_supervised_worker,
            args=(child_conn, runner, self.chaos),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Worker(process, parent_conn)

    def _replace_worker(self, worker: _Worker) -> None:
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if worker.process.is_alive():  # pragma: no cover - defensive
            worker.process.kill()
        worker.process.join(1.0)
        self.workers[self.workers.index(worker)] = self._spawn_worker()

    def _shutdown(self) -> None:
        for worker in self.workers:
            if worker.task is None and worker.process.is_alive():
                try:
                    worker.conn.send(None)  # polite: let idle workers exit
                except (BrokenPipeError, OSError):
                    pass
        for worker in self.workers:
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
            worker.process.join(0.2)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(1.0)

    # -- event loop ------------------------------------------------------------

    def _done(self) -> bool:
        return all(result is not None for result in self.results)

    def _supervise(self) -> None:
        while not self._done():
            self._reap_messages()
            self._reap_crashes()
            self._reap_timeouts()
            if self.total_crashes >= self.sup.serial_fallback_crashes:
                self._fall_back_to_serial()
                return
            self._dispatch()
            if self._done():
                return
            self._wait()

    def _settle(self, index: int, result: ScenarioResult) -> None:
        self.results[index] = result
        if self.on_result is not None:
            self.on_result(index, result)
        if not result.ok and self.sup.on_failure == faults.ON_FAILURE_RAISE:
            raise faults.CellFailed(result)

    def _resolve_failure(self, task: _Task, failure: faults.CellFailure) -> None:
        spec = self.specs[task.index]
        if failure.kind == faults.WORKER_CRASH:
            count = self.crashes.get(task.index, 0) + 1
            self.crashes[task.index] = count
            self.total_crashes += 1
            if count >= self.sup.quarantine_after_crashes:
                self._settle(
                    task.index,
                    failed_result(
                        spec,
                        f"{failure.message}\nquarantined after {count} worker "
                        "crash(es); not retried",
                        kind=faults.WORKER_CRASH,
                        attempts=task.attempt,
                    ),
                )
                return
        if self.sup.retry.should_retry(failure, task.attempt):
            delay = self.sup.retry.backoff_for(task.attempt, key=spec.spec_hash())
            logger.warning(
                "cell %s attempt %d failed (%s); retrying in %.2f s",
                _cell_name(spec), task.attempt, failure.kind, delay,
            )
            self.queue.append(
                (task.index, task.attempt + 1, time.monotonic() + delay)
            )
            return
        self._settle(
            task.index,
            failed_result(
                spec, failure.message, kind=failure.kind, attempts=task.attempt
            ),
        )

    def _try_receive(self, worker: _Worker) -> Optional[str]:
        """Consume one buffered worker message, settling its task.

        Returns ``"msg"`` if a message was consumed, ``"eof"`` if the
        pipe is at end-of-file (the worker is dead -- a dead worker's
        closed pipe reads as *ready*, so ``poll()`` alone cannot tell a
        result from a corpse), or ``None`` if nothing is buffered.
        """
        if not worker.conn.poll(0):
            return None
        try:
            status, payload = worker.conn.recv()
        except (EOFError, OSError):
            return "eof"
        task, worker.task = worker.task, None
        if task is None:  # pragma: no cover - defensive
            return "msg"
        if status == "ok":
            result = ScenarioResult.from_wire(payload)
            result.provenance = dataclasses.replace(
                result.provenance, attempts=task.attempt
            )
            self._settle(task.index, result)
        else:
            self._resolve_failure(
                task,
                faults.CellFailure(
                    kind=faults.EXCEPTION,
                    message=payload,
                    retryable=(status == "transient"),
                ),
            )
        return "msg"

    def _handle_dead_worker(self, worker: _Worker) -> None:
        task, worker.task = worker.task, None
        exitcode = worker.process.exitcode
        self._replace_worker(worker)
        if task is None:
            # An idle worker dying is still a broken pool.
            self.total_crashes += 1
            return
        detail = (
            f"worker process died (exit code {exitcode}) while executing "
            f"attempt {task.attempt} of cell "
            f"{_cell_name(self.specs[task.index])}"
        )
        logger.warning("%s", detail)
        self._resolve_failure(task, faults.crash_failure(detail))

    def _reap_messages(self) -> None:
        for worker in list(self.workers):
            if worker.task is None:
                continue
            if self._try_receive(worker) == "eof":
                self._handle_dead_worker(worker)

    def _reap_crashes(self) -> None:
        for worker in list(self.workers):
            if worker.process.is_alive():
                continue
            # A worker that finished its cell and then died still has the
            # result buffered -- consume it before declaring the crash.
            self._try_receive(worker)
            self._handle_dead_worker(worker)

    def _reap_timeouts(self) -> None:
        if self.sup.timeout_s is None:
            return
        now = time.monotonic()
        for worker in list(self.workers):
            task = worker.task
            if task is None or task.deadline is None or now < task.deadline:
                continue
            worker.task = None
            logger.warning(
                "cell %s attempt %d exceeded its %.1f s timeout; killing "
                "worker pid %s",
                _cell_name(self.specs[task.index]), task.attempt,
                self.sup.timeout_s, worker.process.pid,
            )
            worker.process.kill()
            self._replace_worker(worker)
            self._resolve_failure(task, faults.timeout_failure(self.sup.timeout_s))

    def _dispatch(self) -> None:
        now = time.monotonic()
        for worker in self.workers:
            if worker.task is not None:
                continue
            item = self._pop_ready(now)
            if item is None:
                return
            index, attempt, _ = item
            deadline = (
                now + self.sup.timeout_s if self.sup.timeout_s is not None else None
            )
            try:
                worker.conn.send(
                    (self.specs[index].to_json(indent=None), attempt)
                )
            except (BrokenPipeError, OSError):
                # Worker died before it could accept the task; requeue and
                # let the crash reaper replace the worker.
                self.queue.appendleft((index, attempt, 0.0))
                continue
            worker.task = _Task(index, attempt, deadline)

    def _pop_ready(self, now: float) -> Optional[Tuple[int, int, float]]:
        """The first queued cell whose backoff has elapsed, if any."""
        for position, item in enumerate(self.queue):
            if item[2] <= now:
                del self.queue[position]
                return item
        return None

    def _wait(self) -> None:
        now = time.monotonic()
        waits = [_SUPERVISOR_TICK_S]
        for worker in self.workers:
            if worker.task is not None and worker.task.deadline is not None:
                waits.append(worker.task.deadline - now)
        for _, _, ready_at in self.queue:
            waits.append(ready_at - now)
        timeout = max(0.001, min(waits))
        handles = []
        for worker in self.workers:
            if worker.task is not None:
                handles.append(worker.conn)
                handles.append(worker.process.sentinel)
        if handles:
            multiprocessing.connection.wait(handles, timeout)
        else:
            time.sleep(min(timeout, 0.05))

    # -- degradation paths -----------------------------------------------------

    def _unfinished(self) -> List[Tuple[int, int]]:
        """Every unsettled (index, attempt) pair, in submission order."""
        pairs = {index: attempt for index, attempt, _ in self.queue}
        for worker in self.workers:
            if worker.task is not None:
                pairs[worker.task.index] = worker.task.attempt
        return sorted(pairs.items())

    def _fall_back_to_serial(self) -> None:
        unfinished = self._unfinished()
        logger.warning(
            "process pool broke %d time(s); falling back to the serial "
            "backend for %d unfinished cell(s)",
            self.total_crashes, len(unfinished),
        )
        for worker in self.workers:
            worker.task = None
            if worker.process.is_alive():
                worker.process.kill()
        self.queue.clear()
        runner = self.runner
        if runner is None:
            from repro.pipeline.runner import ExperimentRunner

            runner = ExperimentRunner()
        for index, attempt in unfinished:
            self._settle(
                index,
                _run_cell_serial(
                    self.specs[index],
                    runner,
                    self.sup,
                    self.chaos,
                    start_attempt=attempt,
                    prior_crashes=self.crashes.get(index, 0),
                ),
            )

    def _cancel_unfinished(self) -> None:
        for worker in self.workers:
            task, worker.task = worker.task, None
            if task is not None and self.results[task.index] is None:
                self._settle(
                    task.index,
                    cancelled_result(self.specs[task.index], attempts=task.attempt),
                )
        while self.queue:
            index, attempt, _ = self.queue.popleft()
            if self.results[index] is None:
                self._settle(
                    index,
                    cancelled_result(self.specs[index], attempts=attempt - 1),
                )


def run_process(
    specs: Sequence[ScenarioSpec],
    max_workers: Optional[int] = None,
    runner=None,
    supervision: Optional[faults.Supervision] = None,
    chaos: Optional[chaos_mod.ChaosPlan] = None,
    on_result: OnResult = None,
) -> List[ScenarioResult]:
    """Execute the cells on a supervised process pool, in submission order.

    When ``runner`` is the sweep's :class:`ExperimentRunner` and the
    platform forks workers, the workers adopt (a copy-on-write snapshot
    of) that runner, inheriting its warm chips; otherwise each worker
    builds a fresh runner on first use.  Supervision semantics (timeouts,
    retries, quarantine, serial fallback, cancellation, ``on_result``)
    are described on :class:`_ProcessSupervisor` and in
    :mod:`repro.pipeline.faults`.
    """
    sup = supervision or faults.Supervision()
    if max_workers is None:
        max_workers = default_max_workers(len(specs))
    supervisor = _ProcessSupervisor(
        specs, max_workers, runner, sup, chaos, on_result
    )
    return supervisor.run()
