"""Execution backends for :meth:`repro.pipeline.runner.ExperimentRunner.run_many`.

Two backends execute a resolved list of :class:`ScenarioSpec` cells:

``serial``
    The cells run in submission order inside the calling process, through
    the caller's runner (shared chip provider, warm module-level caches).

``process``
    The cells are dispatched to a :class:`concurrent.futures.ProcessPoolExecutor`.
    Each worker process builds one :class:`ExperimentRunner` on first use and
    keeps it for every cell it executes, so the module-level M0-window and
    background-template caches warm naturally per worker.  Specs travel to
    the workers as their canonical JSON text and results come back through
    :meth:`ScenarioResult.to_wire` -- the same JSON + ``.npz`` serialization
    as :meth:`ScenarioResult.save`/``load``, so the ``payload`` object is
    dropped exactly like after ``load`` while scalars, arrays and reports
    stay bit-identical to the serial backend.

Both backends capture per-cell failures: a scenario that raises produces a
:class:`ScenarioResult` with :attr:`~ScenarioResult.error` set (and a
``FAILED`` report) instead of killing the whole sweep, and results are
always reassembled in submission order.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence

from repro.core.spec import ScenarioSpec
from repro.pipeline.artifacts import Provenance, ScenarioResult

logger = logging.getLogger(__name__)

#: Concrete execution backends.
BACKENDS = ("serial", "process")

#: Everything ``run_many`` accepts: ``"auto"`` resolves to a concrete
#: backend per sweep via :func:`choose_backend`.
BACKEND_CHOICES = ("auto",) + BACKENDS

#: Minimum sweep size for ``auto`` to reach for the process pool: a
#: single cell has nothing to overlap, so fork + wire overhead can only
#: lose (BENCH.json ``parallel_sweep`` measured 0.75x on one CPU).
AUTO_MIN_CELLS = 2


def choose_backend(num_specs: int) -> str:
    """The backend ``"auto"`` resolves to for a sweep of ``num_specs``.

    The process pool only wins when there are at least two schedulable
    CPUs *and* enough cells to overlap; otherwise serialization and fork
    overhead make it strictly slower than the serial backend, so small
    grids and single-CPU hosts stay serial.  The choice is logged at INFO
    on the ``repro.pipeline.backends`` logger.
    """
    cpus = available_cpus()
    if cpus >= 2 and num_specs >= AUTO_MIN_CELLS:
        choice = "process"
        reason = f"{num_specs} cell(s) across {cpus} schedulable CPUs"
    else:
        choice = "serial"
        reason = (
            f"only {cpus} schedulable CPU(s)"
            if cpus < 2
            else f"only {num_specs} cell(s)"
        )
    logger.info("backend auto: chose %r (%s)", choice, reason)
    return choice


def resolve_backend(backend: str, num_specs: int) -> str:
    """Validate a ``run_many`` backend name, resolving ``"auto"``."""
    if backend == "auto":
        return choose_backend(num_specs)
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKEND_CHOICES}"
        )
    return backend


def failed_result(spec: ScenarioSpec, error: str) -> ScenarioResult:
    """The placeholder artifact recording one failed sweep cell."""
    return ScenarioResult(
        spec=spec,
        provenance=Provenance(spec_hash=spec.spec_hash(), elapsed_s=0.0),
        report=f"scenario {spec.name or spec.kind} FAILED:\n{error}",
        error=error,
    )


def available_cpus() -> int:
    """CPUs this process may actually schedule onto (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def default_max_workers(num_specs: int) -> int:
    """Worker count when the caller does not pin one."""
    return max(1, min(num_specs, available_cpus()))


def run_serial(specs: Sequence[ScenarioSpec], runner) -> List[ScenarioResult]:
    """Execute every cell in order through the caller's runner."""
    from repro.pipeline.runner import Pipeline

    results: List[ScenarioResult] = []
    for spec in specs:
        try:
            results.append(Pipeline.from_spec(spec).execute(runner))
        except Exception:
            results.append(failed_result(spec, traceback.format_exc()))
    return results


#: The per-process runner, created lazily on the first cell a worker sees
#: (or installed at worker startup by :func:`_adopt_runner`).
_WORKER_RUNNER = None


def _adopt_runner(runner) -> None:
    """Pool initializer under fork: adopt the sweep runner's snapshot.

    A forked child copies the parent's memory, so handing the worker the
    sweep's own :class:`ExperimentRunner` gives it the already-warm chip
    instances (and their watermark period templates) instead of
    rebuilding them per process.  Runs in the worker, per pool, so
    concurrent ``run_process`` calls cannot interfere with each other.
    """
    global _WORKER_RUNNER
    _WORKER_RUNNER = runner


def _worker_run_spec(spec_json: str):
    """Worker body: rebuild the spec, run it, ship the result back as wire.

    Returns ``(True, wire_dict)`` on success or ``(False, traceback_text)``
    on failure -- exceptions never cross the process boundary raw, so one
    failing cell cannot poison the pool.
    """
    global _WORKER_RUNNER
    try:
        if _WORKER_RUNNER is None:
            from repro.pipeline.runner import ExperimentRunner

            _WORKER_RUNNER = ExperimentRunner()
        spec = ScenarioSpec.from_json(spec_json)
        result = _WORKER_RUNNER.run(spec)
        return True, result.to_wire()
    except Exception:
        return False, traceback.format_exc()


def _pool_context():
    """Prefer ``fork`` so workers inherit warm module-level caches."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        return multiprocessing.get_context()


def run_process(
    specs: Sequence[ScenarioSpec],
    max_workers: Optional[int] = None,
    runner=None,
) -> List[ScenarioResult]:
    """Execute the cells on a process pool, results in submission order.

    When ``runner`` is the sweep's :class:`ExperimentRunner` and the
    platform forks workers, the workers adopt (a copy-on-write snapshot
    of) that runner, inheriting its warm chips; otherwise each worker
    builds a fresh runner on first use.  The handoff rides the pool's
    ``initializer`` (fork passes the reference through process memory,
    nothing is pickled), so concurrent sweeps never see each other's
    runner.
    """
    if max_workers is None:
        max_workers = default_max_workers(len(specs))
    context = _pool_context()
    pool_kwargs = {}
    if runner is not None and context.get_start_method() == "fork":
        pool_kwargs = {"initializer": _adopt_runner, "initargs": (runner,)}
    results: List[ScenarioResult] = []
    with ProcessPoolExecutor(
        max_workers=max_workers, mp_context=context, **pool_kwargs
    ) as pool:
        futures = [
            pool.submit(_worker_run_spec, spec.to_json(indent=None))
            for spec in specs
        ]
        for spec, future in zip(specs, futures):
            try:
                ok, payload = future.result()
            except Exception as error:  # the worker process itself died
                ok, payload = False, f"{type(error).__name__}: {error}"
            if ok:
                results.append(ScenarioResult.from_wire(payload))
            else:
                results.append(failed_result(spec, payload))
    return results
