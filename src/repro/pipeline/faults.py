"""Fault taxonomy and supervision policy for sweep execution.

This module is the *policy* half of the fault-tolerance layer (the
*mechanism* -- supervised serial loop and process-pool supervisor -- lives
in :mod:`repro.pipeline.backends`):

* a failure taxonomy: every failed sweep cell is classified as one of
  :data:`FAILURE_KINDS` (``exception`` / ``timeout`` / ``worker-crash`` /
  ``cancelled``), recorded on :attr:`ScenarioResult.error_kind`;
* :class:`RetryPolicy` -- bounded retries with exponential backoff and
  *deterministic* jitter (seeded by the spec hash, so a retried sweep is
  reproducible).  Only transient failures retry: timeouts, worker
  crashes, and exceptions deriving from :class:`TransientError`.  A
  deterministic in-cell exception (bad spec, bug in a stage) fails
  immediately on its first attempt -- retrying it could only burn time;
* :class:`Supervision` -- the full per-sweep policy: per-cell wall-clock
  timeout, retry policy, what to do when a cell exhausts its attempts
  (``on_failure``), when a repeatedly worker-killing cell is quarantined,
  and when a repeatedly breaking pool degrades to the serial backend;
* :func:`graceful_shutdown` -- a context manager turning SIGINT/SIGTERM
  into :class:`SweepInterrupted` so a sweep stops *between* (or inside) a
  cell, marks unfinished cells ``cancelled``, and returns normally with
  every completed cell already flushed to the result store.

Retried cells are bit-identical to a clean run: a retry re-executes the
same frozen spec with the same seeds, and fault injection
(:mod:`repro.pipeline.chaos`) happens strictly *before* the cell's
pipeline runs.
"""

from __future__ import annotations

import contextlib
import hashlib
import signal
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional, Union

if TYPE_CHECKING:  # circular at runtime: artifacts imports nothing from here
    from repro.pipeline.artifacts import ScenarioResult

#: Failure categories recorded on ``ScenarioResult.error_kind``.
EXCEPTION = "exception"
TIMEOUT = "timeout"
WORKER_CRASH = "worker-crash"
CANCELLED = "cancelled"
FAILURE_KINDS = (EXCEPTION, TIMEOUT, WORKER_CRASH, CANCELLED)

#: ``Supervision.on_failure`` choices: record the FAILED cell and keep
#: sweeping (the historical behaviour), or abort the sweep by raising
#: :class:`CellFailed` as soon as one cell exhausts its attempts.
ON_FAILURE_RECORD = "record"
ON_FAILURE_RAISE = "raise"
ON_FAILURE_CHOICES = (ON_FAILURE_RECORD, ON_FAILURE_RAISE)


class TransientError(Exception):
    """Base class for in-cell exceptions worth retrying.

    Raise (or subclass) this for failures that are plausibly environmental
    -- an I/O hiccup, a chaos-injected flake -- rather than deterministic
    properties of the cell.  Everything else is assumed deterministic and
    never retried.
    """


class InjectedFault(TransientError):
    """A chaos-injected in-cell failure (``mode="raise"``)."""


class WorkerCrashError(TransientError):
    """A worker crash observed (or, on the serial backend, simulated)."""


class CellTimeout(BaseException):
    """Raised inside a cell when its wall-clock budget expires.

    A ``BaseException`` so stage code catching broad ``Exception`` cannot
    swallow the supervisor's deadline; the supervised execution loops
    always catch it explicitly.
    """


class SweepInterrupted(BaseException):
    """Raised by :func:`graceful_shutdown` handlers on SIGINT/SIGTERM.

    A ``BaseException`` for the same reason as :class:`CellTimeout`: it
    must cut through a running cell to reach the supervision loop, which
    marks unfinished cells ``cancelled`` and returns the partial sweep.
    """

    def __init__(self, signum: int) -> None:
        super().__init__(f"sweep interrupted by signal {signum}")
        self.signum = signum


class CellFailed(Exception):
    """Raised by ``on_failure="raise"`` when a cell exhausts its attempts.

    Carries the failed :class:`~repro.pipeline.artifacts.ScenarioResult`
    as ``result``; everything the sweep completed before the failure has
    already been delivered to the caller's ``on_result`` hook (and
    therefore flushed to the result store, when one is attached).
    """

    def __init__(self, result: "ScenarioResult") -> None:
        super().__init__(
            f"scenario {result.name!r} failed "
            f"({result.error_kind or EXCEPTION}, "
            f"{result.provenance.attempts} attempt(s)):\n{result.error}"
        )
        self.result = result


@dataclass(frozen=True)
class CellFailure:
    """One classified failure of one attempt of one cell."""

    kind: str
    message: str
    retryable: bool


def classify_exception(exc: BaseException, message: str) -> CellFailure:
    """Classify an in-cell exception into the failure taxonomy.

    ``message`` is the full traceback text (it becomes
    ``ScenarioResult.error``).  Worker crashes and :class:`TransientError`
    subclasses are retryable; any other exception is deterministic.
    """
    if isinstance(exc, WorkerCrashError):
        return CellFailure(kind=WORKER_CRASH, message=message, retryable=True)
    if isinstance(exc, TransientError):
        return CellFailure(kind=EXCEPTION, message=message, retryable=True)
    return CellFailure(kind=EXCEPTION, message=message, retryable=False)


def timeout_failure(timeout_s: float) -> CellFailure:
    """The (always retryable) failure recorded for a timed-out attempt."""
    return CellFailure(
        kind=TIMEOUT,
        message=f"cell exceeded its {timeout_s:g} s wall-clock timeout",
        retryable=True,
    )


def crash_failure(detail: str) -> CellFailure:
    """The (always retryable) failure recorded for a dead worker."""
    return CellFailure(kind=WORKER_CRASH, message=detail, retryable=True)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``max_attempts`` counts *total* attempts (1 = never retry).  The delay
    before attempt ``n + 1`` is ``backoff_s * backoff_factor ** (n - 1)``
    capped at ``max_backoff_s``, then jittered by up to ``+/- jitter``
    (fractional).  The jitter is a pure function of ``(key, attempt)`` --
    the key is the cell's spec hash -- so two runs of the same sweep back
    off identically and stay reproducible.
    """

    max_attempts: int = 3
    backoff_s: float = 0.1
    backoff_factor: float = 2.0
    max_backoff_s: float = 30.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff durations must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be at least 1.0")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    @classmethod
    def none(cls) -> "RetryPolicy":
        """The no-retry policy (every cell gets exactly one attempt)."""
        return cls(max_attempts=1)

    @classmethod
    def coerce(cls, value: Optional[Union[int, "RetryPolicy"]]) -> "RetryPolicy":
        """``None``, a retry *count*, or a policy -> a policy.

        An integer is the number of *retries* (extra attempts after the
        first), matching the CLI's ``--retries`` flag.
        """
        if value is None:
            return cls.none()
        if isinstance(value, RetryPolicy):
            return value
        if isinstance(value, int) and not isinstance(value, bool):
            if value < 0:
                raise ValueError("retry count must be non-negative")
            return cls(max_attempts=value + 1)
        raise TypeError(
            f"retry must be a RetryPolicy, an int retry count, or None; "
            f"got {type(value).__name__}"
        )

    def should_retry(self, failure: CellFailure, attempt: int) -> bool:
        """Whether ``failure`` on (1-based) ``attempt`` earns another try."""
        return failure.retryable and attempt < self.max_attempts

    def backoff_for(self, attempt: int, key: str = "") -> float:
        """Seconds to wait after (1-based) ``attempt`` failed.

        Deterministic: the jitter fraction comes from
        ``sha256(key:attempt)``, not a live RNG, so resumed/retried sweeps
        are reproducible run to run.
        """
        base = min(
            self.backoff_s * self.backoff_factor ** (attempt - 1),
            self.max_backoff_s,
        )
        if self.jitter <= 0.0 or base <= 0.0:
            return base
        digest = hashlib.sha256(f"{key}:{attempt}".encode("utf-8")).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2.0**64
        return base * (1.0 + self.jitter * (2.0 * fraction - 1.0))


@dataclass(frozen=True)
class Supervision:
    """The complete fault-tolerance policy of one ``run_many`` sweep."""

    #: Per-cell wall-clock budget in seconds (``None`` = unlimited).  On
    #: the process backend a cell over budget has its worker killed and
    #: replaced; on the serial backend a SIGALRM deadline interrupts it.
    timeout_s: Optional[float] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy.none)
    #: ``"record"``: a cell that exhausts its attempts becomes a FAILED
    #: result and the sweep continues.  ``"raise"``: the sweep aborts
    #: with :class:`CellFailed` (completed cells are already flushed).
    on_failure: str = ON_FAILURE_RECORD
    #: A cell whose worker dies this many times is quarantined -- recorded
    #: as FAILED (``worker-crash``) and never resubmitted -- instead of
    #: being allowed to keep killing fresh workers.
    quarantine_after_crashes: int = 2
    #: Total worker crashes (across all cells) after which the process
    #: pool is declared unsound and the remaining cells fall back to the
    #: serial backend.
    serial_fallback_crashes: int = 5

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.on_failure not in ON_FAILURE_CHOICES:
            raise ValueError(
                f"on_failure must be one of {ON_FAILURE_CHOICES}, "
                f"got {self.on_failure!r}"
            )
        if self.quarantine_after_crashes < 1:
            raise ValueError("quarantine_after_crashes must be at least 1")
        if self.serial_fallback_crashes < 1:
            raise ValueError("serial_fallback_crashes must be at least 1")


#: Signals :func:`graceful_shutdown` converts into an orderly stop.
_SHUTDOWN_SIGNALS = ("SIGINT", "SIGTERM")


@contextlib.contextmanager
def graceful_shutdown() -> Iterator[None]:
    """Convert the first SIGINT/SIGTERM into :class:`SweepInterrupted`.

    Installed around supervised sweep execution (main thread only --
    elsewhere this is a no-op, since Python only delivers signals to the
    main thread).  The first signal raises :class:`SweepInterrupted` in
    the main thread, which the supervision loops catch to mark unfinished
    cells ``cancelled`` and return the partial sweep; further signals
    during the cleanup are ignored so the orderly shutdown can finish.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    fired = []

    def handler(signum, frame):
        if fired:
            return
        fired.append(signum)
        raise SweepInterrupted(signum)

    previous = {}
    for name in _SHUTDOWN_SIGNALS:
        signum = getattr(signal, name, None)
        if signum is None:  # pragma: no cover - platform without the signal
            continue
        try:
            previous[signum] = signal.signal(signum, handler)
        except (ValueError, OSError):  # pragma: no cover - exotic contexts
            pass
    try:
        yield
    finally:
        for signum, old in previous.items():
            signal.signal(signum, old)
