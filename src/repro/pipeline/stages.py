"""Stage graphs: how a :class:`ScenarioSpec` kind becomes executable stages.

Each scenario kind maps to an ordered list of named stages (chip →
acquisition → synthesis → detection, or a subset).  A stage is a plain
function mutating a :class:`StageContext`; the final stage populates the
context's ``payload`` (the legacy result object), ``report`` (the legacy
text rendering), plus the typed ``scalars``/``arrays`` that end up in the
:class:`repro.pipeline.artifacts.ScenarioResult`.

The stage bodies are the legacy driver bodies, relocated -- same calls in
the same order at identical seeds, so reports and arrays stay bit-identical
to the pre-pipeline drivers (pinned by ``tests/test_pipeline_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

import numpy as np

from repro.core.spec import ScenarioSpec
from repro.detection.campaign import run_detection_probability_campaign
from repro.detection.cpa import CPADetector
from repro.detection.batch import BatchCPADetector
from repro.detection.spread_spectrum import SpreadSpectrum
from repro.detection.statistics import RepetitionStatistics
from repro.experiments.common import build_watermark
from repro.measurement.acquisition import AcquisitionCampaign
from repro.power.trace import PowerTrace


@dataclass
class StageContext:
    """Mutable state threaded through one scenario's stages."""

    spec: ScenarioSpec
    runner: Any
    data: Dict[str, Any] = field(default_factory=dict)

    def finish(
        self,
        payload: Any,
        report: str,
        scalars: Dict[str, Any],
        arrays: Dict[str, np.ndarray],
    ) -> None:
        """Record the scenario's outputs (called by the final stage)."""
        self.data["payload"] = payload
        self.data["report"] = report
        self.data["scalars"] = scalars
        self.data["arrays"] = arrays


@dataclass(frozen=True)
class PipelineStage:
    """One named step of a resolved pipeline."""

    name: str
    run: Callable[[StageContext], None]


StageBuilder = Callable[[ScenarioSpec], List[PipelineStage]]

_STAGE_BUILDERS: Dict[str, StageBuilder] = {}


def stage_builder(kind: str) -> Callable[[StageBuilder], StageBuilder]:
    """Register the stage builder for one scenario kind."""

    def decorate(builder: StageBuilder) -> StageBuilder:
        _STAGE_BUILDERS[kind] = builder
        return builder

    return decorate


def stages_for(spec: ScenarioSpec) -> List[PipelineStage]:
    """Resolve a spec into its ordered stages."""
    try:
        builder = _STAGE_BUILDERS[spec.kind]
    except KeyError:
        raise ValueError(f"no pipeline stages registered for kind {spec.kind!r}") from None
    return builder(spec)


def registered_kinds() -> List[str]:
    """Every kind the stage registry can resolve."""
    return sorted(_STAGE_BUILDERS)


# -- shared stages ---------------------------------------------------------------


def _chip_stage(ctx: StageContext) -> None:
    """Resolve the spec's chip through the runner's shared chip provider."""
    ctx.data["chip"] = ctx.runner.chip_for(ctx.spec)


# -- Fig. 2 ----------------------------------------------------------------------


@stage_builder("fig2")
def _fig2_stages(spec: ScenarioSpec) -> List[PipelineStage]:
    def simulate(ctx: StageContext) -> None:
        from repro.experiments.fig2 import _compute_fig2

        result = _compute_fig2(
            num_cycles=ctx.spec.param("num_cycles", 64),
            register_count=ctx.spec.param("register_count", 8),
            lfsr_width=ctx.spec.param("lfsr_width", 4),
            seed=ctx.spec.seed,
        )
        ctx.finish(
            payload=result,
            report=result.to_text(),
            scalars={
                "baseline_toggles_per_active_register": result.baseline_toggles_per_active_register,
                "clock_modulation_toggles_per_active_register": result.clock_modulation_toggles_per_active_register,
                "idle_when_wmark_low": result.idle_when_wmark_low,
            },
            arrays={
                "wmark": result.wmark,
                "baseline_toggles": result.baseline_toggles,
                "clock_modulation_toggles": result.clock_modulation_toggles,
            },
        )

    return [PipelineStage("simulate", simulate)]


# -- Fig. 3 ----------------------------------------------------------------------


@stage_builder("fig3")
def _fig3_stages(spec: ScenarioSpec) -> List[PipelineStage]:
    def power(ctx: StageContext) -> None:
        chip = ctx.data["chip"]
        num_cycles = ctx.spec.param("num_cycles", 4_096)
        system = chip.background_power(num_cycles, seed=ctx.spec.seed)
        watermark = chip.watermark_power(num_cycles)
        total = system.add(watermark)
        ctx.data["system"] = system
        ctx.data["watermark"] = watermark
        ctx.data["total"] = PowerTrace(
            name=f"{chip.name}/total",
            clock=total.clock,
            power_w=total.power_w,
            voltage_v=total.voltage_v,
        )

    def acquisition(ctx: StageContext) -> None:
        from repro.experiments.fig3 import Fig3Result

        campaign = AcquisitionCampaign.from_spec(ctx.spec)
        measured = campaign.measure(ctx.data["total"], seed=ctx.spec.seed)
        result = Fig3Result(
            system_power=ctx.data["system"],
            watermark_power=ctx.data["watermark"],
            total_power=ctx.data["total"],
            measured_total_power=measured.values,
        )
        ctx.finish(
            payload=result,
            report=result.to_text(),
            scalars={
                "watermark_amplitude_w": result.watermark_amplitude_w,
                "system_mean_power_w": result.system_mean_power_w,
                "relative_amplitude": result.relative_amplitude,
                "deeply_embedded": result.deeply_embedded,
            },
            arrays={
                "system_power_w": result.system_power.power_w,
                "watermark_power_w": result.watermark_power.power_w,
                "total_power_w": result.total_power.power_w,
                "measured_total_power": result.measured_total_power,
            },
        )

    return [
        PipelineStage("chip", _chip_stage),
        PipelineStage("power", power),
        PipelineStage("acquisition", acquisition),
    ]


# -- Fig. 5 ----------------------------------------------------------------------


def _fig5_panel_phase_offset(spec: ScenarioSpec) -> int:
    from repro.experiments.fig5 import _PAPER_PHASE_FRACTION

    if spec.phase_offset is not None:
        return spec.phase_offset
    period = spec.watermark.sequence_period
    return int(_PAPER_PHASE_FRACTION.get(spec.chip, 0.5) * period)


@stage_builder("fig5_panel")
def _fig5_panel_stages(spec: ScenarioSpec) -> List[PipelineStage]:
    def acquisition(ctx: StageContext) -> None:
        chip = ctx.data["chip"]
        campaign = AcquisitionCampaign.from_spec(ctx.spec)
        ctx.data["measured"] = campaign.measure_chip(
            chip,
            ctx.spec.measurement.num_cycles,
            watermark_active=ctx.spec.watermark_active,
            power_seed=ctx.spec.seed,
            seed=ctx.spec.seed,
            watermark_phase_offset=_fig5_panel_phase_offset(ctx.spec),
        )

    def detection(ctx: StageContext) -> None:
        from repro.experiments.fig5 import Fig5Panel, _panel_key

        chip = ctx.data["chip"]
        detector = CPADetector(ctx.spec.detection)
        sequence = chip.watermark_sequence()
        cpa = detector.detect(sequence, ctx.data["measured"].values)
        key = _panel_key(ctx.spec.chip, ctx.spec.watermark_active)
        spectrum = SpreadSpectrum(label=key, correlations=cpa.correlations)
        panel = Fig5Panel(
            chip_name=ctx.spec.chip,
            watermark_active=ctx.spec.watermark_active,
            spectrum=spectrum,
            cpa=cpa,
        )
        ctx.finish(
            payload=panel,
            report=f"[{panel.label}] {cpa.summary()}",
            scalars={
                "detected": bool(cpa.detected),
                "peak_correlation": float(cpa.peak_correlation),
                "peak_rotation": int(cpa.peak_rotation),
                "z_score": float(cpa.z_score),
                "noise_floor_std": float(cpa.noise_floor_std),
            },
            arrays={"correlations": cpa.correlations},
        )

    return [
        PipelineStage("chip", _chip_stage),
        PipelineStage("acquisition", acquisition),
        PipelineStage("detection", detection),
    ]


def fig5_panel_spec(spec: ScenarioSpec, chip_name: str, active: bool) -> ScenarioSpec:
    """Derive one Fig. 5 panel spec from the composite Fig. 5 spec.

    Seed offsets follow the legacy driver: +50 for the watermark-inactive
    control, +7 for chip II.
    """
    return spec.with_overrides(
        kind="fig5_panel",
        name=f"{spec.name or 'fig5'}/{chip_name}-{'active' if active else 'inactive'}",
        chip=chip_name,
        watermark_active=active,
        seed=spec.seed + (0 if active else 50) + (0 if chip_name == "chip1" else 7),
    )


@stage_builder("fig5")
def _fig5_stages(spec: ScenarioSpec) -> List[PipelineStage]:
    def panels(ctx: StageContext) -> None:
        from repro.experiments.fig5 import Fig5Result, _panel_key

        result = Fig5Result(config=ctx.spec.experiment_config)
        arrays: Dict[str, np.ndarray] = {}
        for chip_name in ("chip1", "chip2"):
            for active in (True, False):
                sub = ctx.runner.run(fig5_panel_spec(ctx.spec, chip_name, active))
                key = _panel_key(chip_name, active)
                result.panels[key] = sub.payload
                arrays[f"{key}/correlations"] = sub.arrays["correlations"]
        ctx.finish(
            payload=result,
            report=result.to_text(),
            scalars={
                "all_active_panels_detected": result.all_active_panels_detected,
                "no_inactive_panel_detected": result.no_inactive_panel_detected,
                **{
                    f"{key}/peak_correlation": float(panel.cpa.peak_correlation)
                    for key, panel in sorted(result.panels.items())
                },
            },
            arrays=arrays,
        )

    return [PipelineStage("panels", panels)]


# -- Fig. 6 ----------------------------------------------------------------------


@stage_builder("fig6_chip")
def _fig6_chip_stages(spec: ScenarioSpec) -> List[PipelineStage]:
    def campaign_stage(ctx: StageContext) -> None:
        chip = ctx.data["chip"]
        spec = ctx.spec
        repetitions = spec.repetitions
        batch_size = spec.param("max_repetitions_per_batch", 25)
        if batch_size <= 0:
            raise ValueError("max_repetitions_per_batch must be positive")
        num_cycles = spec.measurement.num_cycles
        phase_offset = _fig5_panel_phase_offset(spec)
        campaign = AcquisitionCampaign.from_spec(spec)
        detector = BatchCPADetector(spec.detection)
        sequence = chip.watermark_sequence()
        runs: List[np.ndarray] = []
        detections: List[bool] = []
        for start in range(0, repetitions, batch_size):
            stop = min(repetitions, start + batch_size)
            trace_matrix = campaign.measure_chip_many(
                chip,
                num_cycles,
                seeds=range(spec.seed + start, spec.seed + stop),
                watermark_active=spec.watermark_active,
                power_seed=spec.seed,
                watermark_phase_offset=phase_offset,
            )
            batch = detector.detect_many(sequence, trace_matrix)
            runs.extend(batch.correlations)
            detections.extend(bool(flag) for flag in batch.detected)
        ctx.data["runs"] = runs
        ctx.data["detections"] = detections

    def statistics(ctx: StageContext) -> None:
        from repro.experiments.fig6 import Fig6ChipResult

        stats = RepetitionStatistics.from_correlation_runs(
            ctx.spec.chip, ctx.data["runs"], detected_flags=ctx.data["detections"]
        )
        result = Fig6ChipResult(
            chip_name=ctx.spec.chip,
            statistics=stats,
            peak_box=stats.peak_box(),
            off_peak_box=stats.off_peak_box(),
        )
        peak = result.peak_box
        ctx.finish(
            payload=result,
            report=(
                f"[{result.chip_name}] detection rate = {result.detection_rate * 100:.0f}%, "
                f"peak rotation {stats.peak_rotation}, median rho = {peak.median:.4f}"
            ),
            scalars={
                "detection_rate": result.detection_rate,
                "peak_separated": result.peak_separated,
                "peak_rotation": int(stats.peak_rotation),
                "peak_median_rho": float(peak.median),
            },
            arrays={
                "correlations": np.vstack(ctx.data["runs"]),
                "detected": np.asarray(ctx.data["detections"], dtype=bool),
            },
        )

    return [
        PipelineStage("chip", _chip_stage),
        PipelineStage("campaign", campaign_stage),
        PipelineStage("statistics", statistics),
    ]


def fig6_chip_spec(spec: ScenarioSpec, chip_name: str) -> ScenarioSpec:
    """Derive one chip's Fig. 6 campaign spec from the composite spec.

    The chip II campaign seeds 500 apart, as in the legacy driver.
    """
    return spec.with_overrides(
        kind="fig6_chip",
        name=f"{spec.name or 'fig6'}/{chip_name}",
        chip=chip_name,
        seed=spec.seed + (0 if chip_name == "chip1" else 500),
    )


@stage_builder("fig6")
def _fig6_stages(spec: ScenarioSpec) -> List[PipelineStage]:
    def chips(ctx: StageContext) -> None:
        from repro.experiments.fig6 import Fig6Result

        result = Fig6Result(
            config=ctx.spec.experiment_config, repetitions=ctx.spec.repetitions
        )
        arrays: Dict[str, np.ndarray] = {}
        for chip_name in ("chip1", "chip2"):
            sub = ctx.runner.run(fig6_chip_spec(ctx.spec, chip_name))
            result.chips[chip_name] = sub.payload
            arrays[f"{chip_name}/correlations"] = sub.arrays["correlations"]
            arrays[f"{chip_name}/detected"] = sub.arrays["detected"]
        ctx.finish(
            payload=result,
            report=result.to_text(),
            scalars={
                "all_repetitions_detected": result.all_repetitions_detected,
                **{
                    f"{name}/detection_rate": chip_result.detection_rate
                    for name, chip_result in sorted(result.chips.items())
                },
            },
            arrays=arrays,
        )

    return [PipelineStage("chips", chips)]


# -- Tables ----------------------------------------------------------------------


@stage_builder("table1")
def _table1_stages(spec: ScenarioSpec) -> List[PipelineStage]:
    def estimate(ctx: StageContext) -> None:
        from repro.experiments.table1 import TABLE_I_SWITCHING_REGISTERS, _compute_table1

        counts = ctx.spec.param(
            "switching_register_counts", list(TABLE_I_SWITCHING_REGISTERS)
        )
        result = _compute_table1(
            switching_register_counts=tuple(counts),
            estimator=None,
            config=ctx.spec.watermark,
        )
        ctx.finish(
            payload=result,
            report=result.to_text(),
            scalars={
                "wgc_dynamic_w": result.wgc_dynamic_w,
                "dynamic_power_monotonic": result.dynamic_power_monotonic(),
            },
            arrays={
                "switching_registers": np.array(
                    [row.switching_registers for row in result.rows], dtype=np.int64
                ),
                "dynamic_w": np.array([row.dynamic_w for row in result.rows]),
                "static_w": np.array([row.static_w for row in result.rows]),
                "share_of_watermark_dynamic": np.array(
                    [row.share_of_watermark_dynamic for row in result.rows]
                ),
            },
        )

    return [PipelineStage("estimate", estimate)]


@stage_builder("table2")
def _table2_stages(spec: ScenarioSpec) -> List[PipelineStage]:
    def estimate(ctx: StageContext) -> None:
        from repro.analysis.overhead import TABLE_II_LOAD_POWERS_W, WGC_REGISTERS
        from repro.experiments.table2 import _compute_table2

        load_powers = ctx.spec.param("load_powers_w", list(TABLE_II_LOAD_POWERS_W))
        result = _compute_table2(
            load_powers_w=tuple(load_powers),
            wgc_registers=ctx.spec.param("wgc_registers", WGC_REGISTERS),
            estimator=None,
        )
        ctx.finish(
            payload=result,
            report=result.to_text(),
            scalars={
                "headline_reduction": result.headline_reduction,
                "per_register_clock_power_w": result.per_register_clock_power_w,
                "per_register_data_power_w": result.per_register_data_power_w,
                "reduction_monotonic": result.reduction_monotonic(),
            },
            arrays={
                "load_power_w": np.array([row.load_power_w for row in result.table]),
                "load_registers": np.array(
                    [row.load_registers for row in result.table], dtype=np.int64
                ),
                "overhead_reduction": np.array(
                    [row.overhead_reduction for row in result.table]
                ),
            },
        )

    return [PipelineStage("estimate", estimate)]


# -- Robustness ------------------------------------------------------------------


@stage_builder("robustness")
def _robustness_stages(spec: ScenarioSpec) -> List[PipelineStage]:
    def attack(ctx: StageContext) -> None:
        from repro.experiments.robustness_exp import _compute_robustness

        result = _compute_robustness(
            config=ctx.spec.watermark,
            attack=None,
            modulated_gates=ctx.spec.param("modulated_gates", 4),
        )
        ctx.finish(
            payload=result,
            report=result.to_text(),
            scalars={
                "baseline_removed_by_blind_attack": result.baseline_removed_by_blind_attack,
                "baseline_removal_harmless": result.baseline_removal_harmless,
                "clock_modulation_survives_blind_attack": result.clock_modulation_survives_blind_attack,
                "clock_modulation_removal_breaks_system": result.clock_modulation_removal_breaks_system,
                "improved_robustness_demonstrated": result.improved_robustness_demonstrated,
            },
            arrays={},
        )

    return [PipelineStage("attack", attack)]


# -- Campaign-style scenarios (beyond the paper's figures) -----------------------


@stage_builder("detection_probability")
def _detection_probability_stages(spec: ScenarioSpec) -> List[PipelineStage]:
    def campaign_stage(ctx: StageContext) -> None:
        spec = ctx.spec
        sequence = build_watermark(spec.watermark).sequence()
        curve = run_detection_probability_campaign(
            sequence,
            watermark_amplitude_w=spec.param("watermark_amplitude_w", 1.5e-3),
            noise_sigma_w=spec.param("noise_sigma_w", 25e-3),
            cycle_counts=tuple(
                spec.param("cycle_counts", [5_000, 20_000, 80_000, 160_000])
            ),
            trials_per_point=spec.param("trials_per_point", 20),
            detection_config=spec.detection,
            base_power_w=spec.param("base_power_w", 5e-3),
            seed=spec.seed,
            synthesis=spec.synthesis,
        )
        points = sorted(curve.points, key=lambda p: p.num_cycles)
        ctx.finish(
            payload=curve,
            report=curve.to_text(),
            scalars={
                "expected_rho": curve.expected_rho,
                "analytical_required_cycles": curve.analytical_required_cycles,
                "empirical_required_cycles": curve.empirical_required_cycles(),
            },
            arrays={
                "cycles": np.array([p.num_cycles for p in points], dtype=np.int64),
                "detection_probability": np.array(
                    [p.detection_probability for p in points]
                ),
                "mean_peak_correlation": np.array(
                    [p.mean_peak_correlation for p in points]
                ),
                "mean_z_score": np.array([p.mean_z_score for p in points]),
            },
        )

    return [PipelineStage("campaign", campaign_stage)]


def _masking_stages(spec: ScenarioSpec, starvation: bool) -> List[PipelineStage]:
    def sweep(ctx: StageContext) -> None:
        from repro.analysis.masking import (
            run_noise_masking_study,
            run_starvation_study,
            sweep_kwargs_from_synthesis,
        )

        spec = ctx.spec
        sequence = build_watermark(spec.watermark).sequence()
        common = dict(
            watermark_amplitude_w=spec.param("watermark_amplitude_w", 1.5e-3),
            base_noise_sigma_w=spec.param("base_noise_sigma_w", 43e-3),
            num_cycles=spec.measurement.num_cycles,
            detection_config=spec.detection,
            seed=spec.seed,
            trials_per_point=spec.param("trials_per_point", 1),
            **sweep_kwargs_from_synthesis(spec.synthesis),
        )
        if starvation:
            study = run_starvation_study(
                sequence,
                enable_duties=tuple(
                    spec.param("enable_duties", [1.0, 0.5, 0.25, 0.1, 0.02])
                ),
                **common,
            )
        else:
            study = run_noise_masking_study(
                sequence,
                masking_noise_levels_w=tuple(
                    spec.param(
                        "masking_noise_levels_w", [0.0, 50e-3, 100e-3, 200e-3, 400e-3]
                    )
                ),
                **common,
            )
        defeated = study.detection_defeated_at()
        ctx.finish(
            payload=study,
            report=study.to_text(),
            scalars={
                "still_detected_everywhere": study.still_detected_everywhere(),
                "defeated_at_masking_noise_w": (
                    None if defeated is None else defeated.masking_noise_w
                ),
                "defeated_at_enable_duty": (
                    None if defeated is None else defeated.enable_duty
                ),
            },
            arrays={
                "masking_noise_w": np.array([p.masking_noise_w for p in study.points]),
                "enable_duty": np.array([p.enable_duty for p in study.points]),
                "peak_correlation": np.array([p.peak_correlation for p in study.points]),
                "z_score": np.array([p.z_score for p in study.points]),
                "detection_probability": np.array(
                    [p.detection_probability for p in study.points]
                ),
            },
        )

    return [PipelineStage("sweep", sweep)]


@stage_builder("masking_noise")
def _masking_noise_stages(spec: ScenarioSpec) -> List[PipelineStage]:
    return _masking_stages(spec, starvation=False)


@stage_builder("masking_starvation")
def _masking_starvation_stages(spec: ScenarioSpec) -> List[PipelineStage]:
    return _masking_stages(spec, starvation=True)
