"""The experiment registry: every paper figure/table as a named scenario.

Each entry maps a stable name (``"fig5"``, ``"fig6/chip1"``, ``"table2"``,
...) to a factory producing a :class:`repro.core.spec.ScenarioSpec` from
:class:`RunOptions` (the CLI's ``--quick``/``--cycles``/``--repetitions``/
``--seed`` knobs).  Adding a scenario is a data change -- declare a spec
factory here -- not a new driver module.

Beyond the paper's grid, the registry also exposes campaign scenarios
(detection-probability curve, masking sweeps) built on the same engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.core.config import (
    QUICK_REPETITIONS,
    DetectionConfig,
    MeasurementConfig,
    SynthesisConfig,
    WatermarkConfig,
)
from repro.core.spec import ScenarioSpec


@dataclass(frozen=True)
class RunOptions:
    """CLI-level knobs applied when a registry entry builds its spec."""

    quick: bool = False
    cycles: Optional[int] = None
    repetitions: Optional[int] = None
    seed: Optional[int] = None

    def measurement(self) -> MeasurementConfig:
        """The measurement preset these options select."""
        if self.quick:
            return MeasurementConfig.quick(self.cycles)
        return MeasurementConfig.full(self.cycles)

    def apply_to(self, spec: ScenarioSpec) -> ScenarioSpec:
        """Apply these options as overrides on an already-built spec.

        Registry factories consume options natively; specs loaded from
        ``.json`` files get the explicitly passed options applied on top:
        ``seed``/``repetitions`` replace the spec's values, ``quick``
        replaces its measurement bench with the quick preset, and a bare
        ``cycles`` rewrites only the acquisition length while keeping the
        spec's other bench fields.  Returns ``spec`` itself when nothing
        was overridden, so untouched specs keep their identity (and hash).
        """
        changes = {}
        if self.seed is not None:
            changes["seed"] = self.seed
        if self.repetitions is not None:
            changes["repetitions"] = self.repetitions
        if self.quick:
            changes["measurement"] = self.measurement()
        elif self.cycles is not None:
            changes["measurement"] = replace(
                spec.measurement, num_cycles=self.cycles
            )
        return spec.with_overrides(**changes) if changes else spec


SpecFactory = Callable[[RunOptions], ScenarioSpec]


@dataclass(frozen=True)
class RegistryEntry:
    """One named scenario: metadata plus its spec factory."""

    name: str
    title: str
    paper_ref: str
    factory: SpecFactory

    def build(self, options: Optional[RunOptions] = None) -> ScenarioSpec:
        """Materialise the spec for the given options."""
        return self.factory(options or RunOptions())


class ExperimentRegistry:
    """Ordered name -> entry mapping with helpful unknown-name errors."""

    def __init__(self) -> None:
        self._entries: Dict[str, RegistryEntry] = {}

    def register(self, entry: RegistryEntry) -> RegistryEntry:
        """Add an entry; names must be unique."""
        if entry.name in self._entries:
            raise ValueError(f"scenario {entry.name!r} is already registered")
        self._entries[entry.name] = entry
        return entry

    def has(self, name: str) -> bool:
        """Whether a scenario of that name exists."""
        return name in self._entries

    def names(self) -> List[str]:
        """Registered names in registration order."""
        return list(self._entries)

    def entries(self) -> List[RegistryEntry]:
        """Registered entries in registration order."""
        return list(self._entries.values())

    def get(self, name: str) -> RegistryEntry:
        """Look up one entry; unknown names list every registered name."""
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(
                f"unknown scenario {name!r}; registered: {', '.join(self._entries)}"
            ) from None

    def build(self, name: str, options: Optional[RunOptions] = None) -> ScenarioSpec:
        """Materialise the named scenario's spec."""
        return self.get(name).build(options)


@dataclass(frozen=True)
class SpecGrid:
    """Cartesian sweep builder over one base scenario.

    The base is either a registry name (materialised with ``options``
    through ``registry``, :data:`DEFAULT_REGISTRY` by default) or an
    already-resolved :class:`ScenarioSpec`.  :meth:`build` expands it along
    up to four axes -- chips, noise scales, acquisition lengths, seeds --
    into the full cartesian grid of specs, ready for
    ``ExperimentRunner.run_many(..., backend="process")``::

        specs = SpecGrid("fig5/chip1-active", RunOptions(quick=True)).build(
            chips=["chip1", "chip2"], seeds=[1, 2, 3]
        )

    Every cell gets a unique, axis-qualified name
    (``"fig5/chip1-active[chip=chip2,seed=3]"``), so grid sweeps never
    trip :meth:`repro.pipeline.artifacts.SweepResult.get`'s duplicate-name
    guard.  Axes not passed keep the base spec's value; axis order in the
    product is chips → noise → length → seed (outermost to innermost).
    """

    base: Union[str, ScenarioSpec]
    options: RunOptions = field(default_factory=RunOptions)
    registry: Optional["ExperimentRegistry"] = None

    def base_spec(self) -> ScenarioSpec:
        """The spec every grid cell derives from."""
        if isinstance(self.base, ScenarioSpec):
            return self.base
        registry = self.registry if self.registry is not None else DEFAULT_REGISTRY
        return registry.build(self.base, self.options)

    def build(
        self,
        *,
        chips: Optional[Sequence[str]] = None,
        noise_scales: Optional[Sequence[float]] = None,
        lengths: Optional[Sequence[int]] = None,
        seeds: Optional[Sequence[int]] = None,
    ) -> List[ScenarioSpec]:
        """The cartesian product of the given axes as a list of specs."""
        if chips is not None:
            # Canonicalise before the duplicate check: two alias spellings
            # of one chip ("chip1", "chipI") are the same grid cell and
            # would otherwise produce duplicate cell names.
            from repro.soc.registry import canonical_chip_name

            chips = [canonical_chip_name(chip) for chip in chips]
        for axis_name, axis in (
            ("chips", chips),
            ("noise_scales", noise_scales),
            ("lengths", lengths),
            ("seeds", seeds),
        ):
            if axis is None:
                continue
            if len(axis) == 0:
                raise ValueError(f"grid axis {axis_name!r} must be non-empty")
            if len(set(axis)) != len(axis):
                raise ValueError(
                    f"grid axis {axis_name!r} contains duplicate values: "
                    f"{list(axis)}"
                )
        base = self.base_spec()
        base_name = base.name or base.kind
        specs: List[ScenarioSpec] = []
        for chip in chips if chips is not None else (None,):
            for scale in noise_scales if noise_scales is not None else (None,):
                for length in lengths if lengths is not None else (None,):
                    for seed in seeds if seeds is not None else (None,):
                        spec = base
                        labels = []
                        if chip is not None:
                            spec = spec.with_chip(chip)
                            labels.append(f"chip={spec.chip}")
                        if scale is not None:
                            spec = spec.with_noise_scale(scale)
                            labels.append(f"noise={scale:g}")
                        if length is not None:
                            spec = spec.with_num_cycles(length)
                            labels.append(f"len={length}")
                        if seed is not None:
                            spec = spec.with_seed(seed)
                            labels.append(f"seed={seed}")
                        if labels:
                            spec = spec.with_name(
                                f"{base_name}[{','.join(labels)}]"
                            )
                        specs.append(spec)
        return specs


def grid(
    base: Union[str, ScenarioSpec],
    options: Optional[RunOptions] = None,
    *,
    chips: Optional[Sequence[str]] = None,
    noise_scales: Optional[Sequence[float]] = None,
    lengths: Optional[Sequence[int]] = None,
    seeds: Optional[Sequence[int]] = None,
) -> List[ScenarioSpec]:
    """One-shot :class:`SpecGrid` convenience wrapper."""
    return SpecGrid(base, options or RunOptions()).build(
        chips=chips, noise_scales=noise_scales, lengths=lengths, seeds=seeds
    )


DEFAULT_REGISTRY = ExperimentRegistry()


def _register(name: str, title: str, paper_ref: str):
    def decorate(factory: SpecFactory) -> SpecFactory:
        DEFAULT_REGISTRY.register(
            RegistryEntry(name=name, title=title, paper_ref=paper_ref, factory=factory)
        )
        return factory

    return decorate


def _seed(options: RunOptions, default: int) -> int:
    return default if options.seed is None else options.seed


@_register("fig2", "Functional simulation of both watermark architectures", "Fig. 2")
def _fig2(options: RunOptions) -> ScenarioSpec:
    return ScenarioSpec(kind="fig2", name="fig2", seed=_seed(options, 0b1001))


@_register("fig3", "Watermark power deeply embedded in total device power", "Fig. 3")
def _fig3(options: RunOptions) -> ScenarioSpec:
    num_cycles = 4_096
    return ScenarioSpec(
        kind="fig3",
        name="fig3",
        chip="chip1",
        measurement=options.measurement(),
        seed=_seed(options, 7),
        m0_window_cycles=min(num_cycles, 8_192),
        params={"num_cycles": num_cycles},
    )


def _fig5_spec(options: RunOptions) -> ScenarioSpec:
    return ScenarioSpec(
        kind="fig5",
        name="fig5",
        measurement=options.measurement(),
        seed=_seed(options, 100),
    )


DEFAULT_REGISTRY.register(
    RegistryEntry(
        name="fig5",
        title="CPA spread spectra, chips I and II, active and inactive",
        paper_ref="Fig. 5",
        factory=_fig5_spec,
    )
)


def _register_fig5_panels() -> None:
    from repro.pipeline.stages import fig5_panel_spec

    for chip_name in ("chip1", "chip2"):
        for active in (True, False):
            state = "active" if active else "inactive"

            def factory(
                options: RunOptions, chip_name: str = chip_name, active: bool = active
            ) -> ScenarioSpec:
                return fig5_panel_spec(_fig5_spec(options), chip_name, active)

            DEFAULT_REGISTRY.register(
                RegistryEntry(
                    name=f"fig5/{chip_name}-{state}",
                    title=f"CPA spread spectrum, {chip_name}, watermark {state}",
                    paper_ref="Fig. 5",
                    factory=factory,
                )
            )


_register_fig5_panels()


def _fig6_spec(options: RunOptions) -> ScenarioSpec:
    if options.repetitions is not None:
        repetitions = options.repetitions
    else:
        repetitions = QUICK_REPETITIONS if options.quick else 100
    return ScenarioSpec(
        kind="fig6",
        name="fig6",
        measurement=options.measurement(),
        seed=_seed(options, 1_000),
        repetitions=repetitions,
    )


DEFAULT_REGISTRY.register(
    RegistryEntry(
        name="fig6",
        title="Detection repeatability over repeated acquisitions",
        paper_ref="Fig. 6",
        factory=_fig6_spec,
    )
)


def _register_fig6_chips() -> None:
    from repro.pipeline.stages import fig6_chip_spec

    for chip_name in ("chip1", "chip2"):

        def factory(options: RunOptions, chip_name: str = chip_name) -> ScenarioSpec:
            return fig6_chip_spec(_fig6_spec(options), chip_name)

        DEFAULT_REGISTRY.register(
            RegistryEntry(
                name=f"fig6/{chip_name}",
                title=f"Detection repeatability campaign on {chip_name}",
                paper_ref="Fig. 6",
                factory=factory,
            )
        )


_register_fig6_chips()


@_register("table1", "Power of the placed-and-routed load circuit", "Table I")
def _table1(options: RunOptions) -> ScenarioSpec:
    return ScenarioSpec(kind="table1", name="table1", seed=_seed(options, 0))


@_register("table2", "Load-circuit implementation costs vs required power", "Table II")
def _table2(options: RunOptions) -> ScenarioSpec:
    return ScenarioSpec(kind="table2", name="table2", seed=_seed(options, 0))


@_register("robustness", "Removal-attack robustness of both architectures", "Sec. VI")
def _robustness(options: RunOptions) -> ScenarioSpec:
    return ScenarioSpec(kind="robustness", name="robustness", seed=_seed(options, 0))


@_register(
    "detection-probability",
    "Empirical detection probability vs acquisition length",
    "beyond paper (campaign)",
)
def _detection_probability(options: RunOptions) -> ScenarioSpec:
    trials = 20 if options.quick else 50
    cycle_counts = [5_000, 20_000, 80_000] if options.quick else [5_000, 20_000, 80_000, 160_000]
    return ScenarioSpec(
        kind="detection_probability",
        name="detection-probability",
        watermark=WatermarkConfig(lfsr_width=8, lfsr_seed=0x2D),
        detection=DetectionConfig(),
        synthesis=SynthesisConfig(max_trials_per_chunk=25),
        seed=_seed(options, 1),
        params={
            "watermark_amplitude_w": 1.5e-3,
            "noise_sigma_w": 25e-3,
            "cycle_counts": cycle_counts,
            "trials_per_point": trials,
        },
    )


@_register(
    "masking-noise",
    "Noise-injection masking attack sweep",
    "beyond paper (Sec. VI flip side)",
)
def _masking_noise(options: RunOptions) -> ScenarioSpec:
    return ScenarioSpec(
        kind="masking_noise",
        name="masking-noise",
        measurement=options.measurement(),
        synthesis=SynthesisConfig(max_trials_per_chunk=25),
        seed=_seed(options, 0),
        params={"trials_per_point": 3 if options.quick else 5},
    )


@_register(
    "masking-starvation",
    "Clock-enable starvation masking attack sweep",
    "beyond paper (Sec. VI flip side)",
)
def _masking_starvation(options: RunOptions) -> ScenarioSpec:
    return ScenarioSpec(
        kind="masking_starvation",
        name="masking-starvation",
        measurement=options.measurement(),
        synthesis=SynthesisConfig(max_trials_per_chunk=25),
        seed=_seed(options, 0),
        params={"trials_per_point": 3 if options.quick else 5},
    )
