"""Content-addressed result store: memoized scenario results on disk.

A :class:`ResultStore` persists every successful
:class:`repro.pipeline.artifacts.ScenarioResult` under a key derived from
the spec's content hash *and* a code-version salt::

    key = sha256(spec.spec_hash() + "\\n" + salt)
    salt = "commit=<HEAD>,spec-schema=v1,artifact-schema=v1"

so a memoized cell is served again only while both the scenario *and* the
code that produced it are unchanged -- a new commit (or a spec/artifact
schema bump) silently invalidates every older entry, and ``gc()`` reclaims
them.  Entries reuse the artifact serialization
(:meth:`ScenarioResult.to_wire`): one JSON document per cell plus a
sibling ``.npz`` whose bytes are integrity-checked against a recorded
sha256 digest on every read, so a truncated or bit-flipped array file is
detected and treated as a miss rather than served as data.

Failed cells (``result.ok`` is ``False``) are never memoized: ``put``
refuses them and ``get`` double-checks the stored document, so a resumed
sweep always re-executes exactly the cells that did not finish.

Layout (two-level fan-out keeps directories small at 10^5+ cells)::

    <root>/<key[:2]>/<key>.json     # entry document (see below)
    <root>/<key[:2]>/<key>.npz      # arrays, only when the result has any

Writes are atomic (temp file + ``os.replace``, ``.npz`` before ``.json``
so the JSON is the commit point); concurrent writers of the same cell --
two sweep processes computing one deterministic scenario -- therefore
always leave a self-consistent entry behind.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pathlib
import threading
import zipfile
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.core.spec import SPEC_SCHEMA_VERSION, ScenarioSpec
from repro.pipeline.artifacts import (
    ARTIFACT_SCHEMA_VERSION,
    ScenarioResult,
    current_commit,
)

logger = logging.getLogger(__name__)

PathLike = Union[str, pathlib.Path]

#: Schema version of the store's entry documents.
STORE_SCHEMA_VERSION = 1

#: Everything a corrupt-but-parseable entry can raise while
#: :meth:`ScenarioResult.from_wire` rebuilds it (bad JSON shapes, missing
#: keys, truncated npz payloads).  Deliberately *not* ``Exception``: the
#: BaseException-derived sweep control flow (``CellTimeout``,
#: ``SweepInterrupted``) and genuine bugs must propagate, not be recorded
#: as cache corruption (EXC001).
_REBUILD_ERRORS = (
    KeyError,
    IndexError,
    TypeError,
    ValueError,
    AttributeError,
    OSError,
    EOFError,
    zipfile.BadZipFile,
)


def code_version_salt(commit: Optional[str] = None) -> str:
    """The code-version component of every store key.

    Combines the repository HEAD commit with the spec and artifact schema
    versions: any of those changing means previously memoized results may
    no longer be reproducible by (or readable to) the current code, so
    they must miss.  Outside a git checkout the commit is ``"unknown"``
    and only the schema versions invalidate.
    """
    return (
        f"commit={commit if commit is not None else current_commit()}"
        f",spec-schema=v{SPEC_SCHEMA_VERSION}"
        f",artifact-schema=v{ARTIFACT_SCHEMA_VERSION}"
    )


def store_key(spec_hash: str, salt: str) -> str:
    """The content-addressed key of one (scenario, code version) cell."""
    return hashlib.sha256(f"{spec_hash}\n{salt}".encode("utf-8")).hexdigest()


def _npz_digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


@dataclass(frozen=True)
class StoreStats:
    """One snapshot of a store: on-disk contents plus session counters.

    ``entries``/``stale``/``invalid``/``total_bytes``/``per_kind`` are
    re-scanned from disk on every :meth:`ResultStore.stats` call;
    ``hits``/``misses``/``writes``/``corrupt`` count this process's
    traffic through the owning :class:`ResultStore` instance.
    """

    root: str
    salt: str
    #: Entries readable under the store's current code-version salt.
    entries: int = 0
    #: Readable entries written under *another* salt (``gc()`` removes them).
    stale: int = 0
    #: Unparseable entry documents (``gc()`` removes them too).
    invalid: int = 0
    total_bytes: int = 0
    per_kind: Dict[str, int] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0

    def to_text(self) -> str:
        """Human-readable multi-line summary (the CLI ``store stats`` body)."""
        lines = [
            f"store:   {self.root}",
            f"salt:    {self.salt}",
            f"entries: {self.entries} current"
            + (f", {self.stale} stale" if self.stale else "")
            + (f", {self.invalid} invalid" if self.invalid else ""),
            f"size:    {self.total_bytes / 1e6:.2f} MB",
        ]
        for kind in sorted(self.per_kind):
            lines.append(f"  kind {kind}: {self.per_kind[kind]}")
        return "\n".join(lines)


class ResultStore:
    """Directory-backed memoization of scenario results by content key.

    ``salt`` defaults to :func:`code_version_salt`; tests (and tools that
    must read entries across commits) may pin their own.
    """

    def __init__(self, root: PathLike, salt: Optional[str] = None) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.salt = salt if salt is not None else code_version_salt()
        # Counter updates come from concurrent service/sweep threads; the
        # file operations themselves are already safe (atomic replace).
        self._stats_lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._writes = 0
        self._corrupt = 0

    @classmethod
    def coerce(
        cls, store: Optional[Union["ResultStore", PathLike]]
    ) -> Optional["ResultStore"]:
        """``None``, a path, or an existing store -> an optional store."""
        if store is None or isinstance(store, ResultStore):
            return store
        return cls(store)

    # -- key / path helpers ----------------------------------------------------

    def key_for(self, spec: ScenarioSpec) -> str:
        """The key ``spec`` is stored under at this code version."""
        return store_key(spec.spec_hash(), self.salt)

    def _json_path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def _npz_path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.npz"

    def _entry_paths(self) -> Iterator[pathlib.Path]:
        return sorted(self.root.glob("*/*.json"))

    # -- read side -------------------------------------------------------------

    def has(self, spec: ScenarioSpec) -> bool:
        """Whether an entry document exists for ``spec`` (no counters)."""
        return self._json_path(self.key_for(spec)).is_file()

    def __contains__(self, spec: ScenarioSpec) -> bool:
        return self.has(spec)

    def get(self, spec: ScenarioSpec) -> Optional[ScenarioResult]:
        """The memoized result for ``spec``, or ``None`` on a miss.

        A hit reproduces scalars, arrays and report bit-identically to the
        run that was stored (the arrays round-trip through the same
        ``.npz`` bytes, verified against the recorded digest).  A corrupt
        entry -- unreadable JSON, missing/bit-flipped ``.npz``, or a
        failed cell that somehow reached the store -- is logged, counted
        in ``stats().corrupt`` and reported as a miss, never raised.
        """
        key = self.key_for(spec)
        json_path = self._json_path(key)
        try:
            document = json.loads(json_path.read_text())
        except FileNotFoundError:
            with self._stats_lock:
                self._misses += 1
            return None
        except (OSError, json.JSONDecodeError) as error:
            self._note_corrupt(key, f"unreadable entry document ({error})")
            return None
        problem = self._document_problem(document, key)
        if problem is not None:
            self._note_corrupt(key, problem)
            return None
        npz_bytes: Optional[bytes] = None
        if document["npz_sha256"] is not None:
            try:
                npz_bytes = self._npz_path(key).read_bytes()
            except OSError as error:
                self._note_corrupt(key, f"missing arrays file ({error})")
                return None
            if _npz_digest(npz_bytes) != document["npz_sha256"]:
                self._note_corrupt(key, "arrays digest mismatch")
                return None
        try:
            result = ScenarioResult.from_wire(
                {"json": json.dumps(document["artifact"]), "npz": npz_bytes}
            )
        except _REBUILD_ERRORS as error:
            self._note_corrupt(key, f"artifact failed to rebuild ({error})")
            return None
        with self._stats_lock:
            self._hits += 1
        return result

    def _note_corrupt(self, key: str, problem: str) -> None:
        with self._stats_lock:
            self._corrupt += 1
            self._misses += 1
        logger.warning("result store %s: entry %s %s; treating as a miss",
                       self.root, key[:12], problem)

    def _document_problem(self, document, key: str) -> Optional[str]:
        """Why an entry document must not be served, or ``None`` if fine."""
        if not isinstance(document, dict):
            return "is not a JSON object"
        if document.get("store_schema_version") != STORE_SCHEMA_VERSION:
            return (
                "has unsupported store schema "
                f"{document.get('store_schema_version')!r}"
            )
        for field_name in ("key", "spec_hash", "salt", "artifact"):
            if field_name not in document:
                return f"is missing the {field_name!r} field"
        if "npz_sha256" not in document:
            return "is missing the 'npz_sha256' field"
        if document["key"] != key:
            return "was stored under a different key"
        if store_key(document["spec_hash"], document["salt"]) != key:
            return "key does not match its (spec hash, salt)"
        artifact = document["artifact"]
        if not isinstance(artifact, dict):
            return "artifact is not a JSON object"
        if artifact.get("error") is not None:
            # Defense in depth: put() refuses failed results, but a store
            # is plain files anyone can write -- never serve a failure.
            return "records a failed cell"
        return None

    # -- write side ------------------------------------------------------------

    def put(self, result: ScenarioResult) -> pathlib.Path:
        """Memoize one successful result; returns the entry document path.

        Failed cells are never memoized (a resumed sweep must re-execute
        them), so ``put`` raises :class:`ValueError` on ``result.ok``
        being ``False``.
        """
        if not result.ok:
            raise ValueError(
                f"refusing to memoize failed scenario {result.name!r}: "
                "failed cells must re-execute on resume"
            )
        key = self.key_for(result.spec)
        wire = result.to_wire()
        npz_bytes: Optional[bytes] = wire["npz"]
        document = {
            "store_schema_version": STORE_SCHEMA_VERSION,
            "key": key,
            "spec_hash": result.spec.spec_hash(),
            "salt": self.salt,
            "npz_sha256": _npz_digest(npz_bytes) if npz_bytes is not None else None,
            "artifact": json.loads(wire["json"]),
        }
        json_path = self._json_path(key)
        json_path.parent.mkdir(parents=True, exist_ok=True)
        # .npz first, entry document last: the JSON is the commit point,
        # so a reader never sees a document whose arrays are not on disk
        # yet.  Identical concurrent writers interleave harmlessly -- the
        # npz bytes are deterministic for one scenario, and os.replace is
        # atomic, so any winner leaves a self-consistent pair.
        if npz_bytes is not None:
            self._atomic_write(self._npz_path(key), npz_bytes)
        else:
            self._npz_path(key).unlink(missing_ok=True)
        self._atomic_write(
            json_path,
            (json.dumps(document, indent=2, sort_keys=True) + "\n").encode("utf-8"),
        )
        with self._stats_lock:
            self._writes += 1
        return json_path

    @staticmethod
    def _atomic_write(path: pathlib.Path, data: bytes) -> None:
        tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
        try:
            tmp.write_bytes(data)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    # -- maintenance -----------------------------------------------------------

    def stats(self) -> StoreStats:
        """Scan the directory and combine it with this session's counters."""
        entries = stale = invalid = total_bytes = 0
        per_kind: Dict[str, int] = {}
        for json_path in self._entry_paths():
            total_bytes += json_path.stat().st_size
            npz_path = json_path.with_suffix(".npz")
            if npz_path.is_file():
                total_bytes += npz_path.stat().st_size
            try:
                document = json.loads(json_path.read_text())
                salt = document["salt"]
                kind = document["artifact"]["spec"]["kind"]
            except (OSError, json.JSONDecodeError, KeyError, TypeError):
                invalid += 1
                continue
            if salt != self.salt:
                stale += 1
                continue
            entries += 1
            per_kind[kind] = per_kind.get(kind, 0) + 1
        with self._stats_lock:
            hits, misses = self._hits, self._misses
            writes, corrupt = self._writes, self._corrupt
        return StoreStats(
            root=str(self.root),
            salt=self.salt,
            entries=entries,
            stale=stale,
            invalid=invalid,
            total_bytes=total_bytes,
            per_kind=per_kind,
            hits=hits,
            misses=misses,
            writes=writes,
            corrupt=corrupt,
        )

    def verify(self) -> List[str]:
        """Integrity-check every entry; returns a list of problems.

        Checks each entry document (schema, key consistency, no failed
        cells), rebuilds its artifact, re-hashes its ``.npz`` bytes, and
        flags orphaned ``.npz`` files with no entry document.  An empty
        list means the whole store is servable.
        """
        problems: List[str] = []
        seen_npz = set()
        for json_path in self._entry_paths():
            key = json_path.stem
            try:
                document = json.loads(json_path.read_text())
            except (OSError, json.JSONDecodeError) as error:
                problems.append(f"{key}: unreadable entry document ({error})")
                continue
            problem = self._document_problem(document, key)
            if problem is not None:
                problems.append(f"{key}: {problem}")
                continue
            npz_bytes = None
            if document["npz_sha256"] is not None:
                npz_path = self._npz_path(key)
                seen_npz.add(npz_path)
                try:
                    npz_bytes = npz_path.read_bytes()
                except OSError:
                    problems.append(f"{key}: arrays file missing")
                    continue
                if _npz_digest(npz_bytes) != document["npz_sha256"]:
                    problems.append(f"{key}: arrays digest mismatch")
                    continue
            try:
                ScenarioResult.from_wire(
                    {"json": json.dumps(document["artifact"]), "npz": npz_bytes}
                )
            except _REBUILD_ERRORS as error:
                problems.append(f"{key}: artifact failed to rebuild ({error})")
        for npz_path in sorted(self.root.glob("*/*.npz")):
            if npz_path not in seen_npz and not npz_path.with_suffix(".json").is_file():
                problems.append(f"{npz_path.stem}: orphaned arrays file")
        return problems

    def gc(self) -> Tuple[int, int]:
        """Remove stale-salt, invalid and orphaned files.

        Returns ``(files_removed, bytes_freed)``.  Entries written under
        the current salt that verify cleanly are kept; everything else --
        another commit's entries, unreadable documents, ``.npz`` files
        whose document is gone or whose digest does not match -- is
        deleted, so the store only ever holds cells the current code
        would serve.
        """
        removed = freed = 0

        def drop(path: pathlib.Path) -> None:
            nonlocal removed, freed
            try:
                freed += path.stat().st_size
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - racing cleanup
                pass

        for json_path in self._entry_paths():
            key = json_path.stem
            npz_path = self._npz_path(key)
            try:
                document = json.loads(json_path.read_text())
            except (OSError, json.JSONDecodeError):
                document = None
            stale = (
                document is None
                or self._document_problem(document, key) is not None
                or document["salt"] != self.salt
            )
            if not stale and document["npz_sha256"] is not None:
                try:
                    stale = _npz_digest(npz_path.read_bytes()) != document["npz_sha256"]
                except OSError:
                    stale = True
            if stale:
                drop(json_path)
                if npz_path.is_file():
                    drop(npz_path)
        for npz_path in sorted(self.root.glob("*/*.npz")):
            if not npz_path.with_suffix(".json").is_file():
                drop(npz_path)
        for shard in sorted(self.root.glob("*/")):
            try:
                shard.rmdir()  # only succeeds when the shard emptied out
            except OSError:
                pass
        return removed, freed
