"""Embedding watermark circuits into a host design's module hierarchy.

The structural (netlist-level) counterpart of the behavioural architectures
in :mod:`repro.core.architectures`.  Embedding produces the module/netlist
structures on which the robustness analysis of Section VI operates:

* the baseline watermark is added as a *stand-alone* sub-module whose only
  connection to the host is the clock -- which is what makes it easy to
  locate and remove;
* the clock-modulation watermark inserts the WGC output into the enable
  path of the host's existing integrated clock gates, so removing the
  watermark logic severs the clock-enable cone of functional registers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.config import ArchitectureKind, WatermarkConfig
from repro.rtl.components import ClockGate, CombinationalBlock, Register, ShiftRegister
from repro.rtl.module import Module
from repro.rtl.netlist import Netlist


@dataclass
class EmbeddedWatermark:
    """Handle to a watermark embedded in a host module."""

    host: Module
    architecture: ArchitectureKind
    wgc_instances: List[str] = field(default_factory=list)
    load_instances: List[str] = field(default_factory=list)
    modulated_gate_paths: List[str] = field(default_factory=list)

    @property
    def watermark_instances(self) -> List[str]:
        """All instance paths that belong to the watermark circuit."""
        return list(self.wgc_instances) + list(self.load_instances)

    def netlist(self) -> Netlist:
        """Flatten the host (with the embedded watermark) into a netlist."""
        return self.host.flatten()


def _build_wgc_module(config: WatermarkConfig, name: str = "wgc") -> Module:
    """Structural model of the WGC: LFSR register plus feedback/control logic."""
    wgc = Module(name, role="watermark")
    lfsr_reg = Register(f"lfsr", width=config.lfsr_width, reset_value=config.lfsr_seed)
    feedback = CombinationalBlock("feedback", gate_count=4, activity_factor=0.3)
    control = CombinationalBlock("control", gate_count=4, activity_factor=0.1)
    wmark_out = CombinationalBlock("wmark_out", gate_count=1, activity_factor=0.5)
    wgc.add_component(lfsr_reg)
    wgc.add_component(feedback)
    wgc.add_component(control)
    wgc.add_component(wmark_out)
    wgc.connect("lfsr", "feedback")
    wgc.connect("feedback", "lfsr")
    wgc.connect("control", "lfsr")
    wgc.connect("lfsr", "wmark_out")
    return wgc


def _build_load_module(config: WatermarkConfig, name: str = "load") -> Module:
    """Structural model of the baseline load circuit (shift-register bank)."""
    load = Module(name, role="watermark")
    remaining = config.load_registers
    index = 0
    previous: Optional[str] = None
    while remaining > 0:
        width = min(8, remaining)
        sr = ShiftRegister(f"sr{index}", width=width)
        load.add_component(sr)
        if previous is not None:
            load.connect(previous, f"sr{index}")
        previous = f"sr{index}"
        remaining -= width
        index += 1
    return load


def embed_baseline(host: Module, config: Optional[WatermarkConfig] = None) -> EmbeddedWatermark:
    """Embed the state-of-the-art WGC + load-circuit watermark into ``host``.

    The watermark forms its own sub-modules; the only wiring into the host
    design is the WGC-to-load shift-enable net, so structurally the
    watermark is a near-isolated cluster.
    """
    config = config or WatermarkConfig(architecture=ArchitectureKind.BASELINE_LOAD_CIRCUIT)
    wgc = _build_wgc_module(config, name="wm_wgc")
    load = _build_load_module(config, name="wm_load")
    host.add_child(wgc)
    host.add_child(load)
    host.connect("wm_wgc/wmark_out", "wm_load/sr0", net="wmark_shift_en")
    wgc_paths = [f"{host.name}/wm_wgc/{n}" for n in wgc.components]
    load_paths = [f"{host.name}/wm_load/{n}" for n in load.components]
    return EmbeddedWatermark(
        host=host,
        architecture=ArchitectureKind.BASELINE_LOAD_CIRCUIT,
        wgc_instances=wgc_paths,
        load_instances=load_paths,
    )


def embed_clock_modulation(
    host: Module,
    target_gate_paths: List[str],
    config: Optional[WatermarkConfig] = None,
) -> EmbeddedWatermark:
    """Embed the proposed clock-modulation watermark into ``host``.

    ``target_gate_paths`` are paths (relative to ``host``) of existing
    integrated clock gates whose enables are modulated.  The WGC is added as
    a sub-module and its output is wired into each target gate's enable
    cone, together with the original clock-gate control (Fig. 1(b)).

    Raises
    ------
    KeyError
        If a target path does not exist in the host.
    ValueError
        If a target path does not name a clock gate.
    """
    if not target_gate_paths:
        raise ValueError("clock-modulation embedding needs at least one target clock gate")
    config = config or WatermarkConfig()
    for path in target_gate_paths:
        component = host.find(path)
        if not isinstance(component, ClockGate):
            raise ValueError(f"embedding target {path!r} is not a clock gate")
    wgc = _build_wgc_module(config, name="wm_wgc")
    host.add_child(wgc)
    for path in target_gate_paths:
        host.connect(f"wm_wgc/wmark_out", path, net="wmark_clk_en")
    wgc_paths = [f"{host.name}/wm_wgc/{n}" for n in wgc.components]
    modulated = [f"{host.name}/{path}" for path in target_gate_paths]
    return EmbeddedWatermark(
        host=host,
        architecture=ArchitectureKind.CLOCK_MODULATION,
        wgc_instances=wgc_paths,
        load_instances=[],
        modulated_gate_paths=modulated,
    )
