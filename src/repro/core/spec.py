"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a frozen, JSON-serializable description of one
experiment cell: which chip, which watermark configuration, which workload,
the measurement/noise bench, the trial-synthesis knobs, the detection
parameters and the seed.  The pipeline runner
(:mod:`repro.pipeline.runner`) resolves a spec into chip → acquisition →
synthesis → detection stages; nothing in a spec is executable, so specs can
be hashed, diffed, stored next to result artifacts and replayed on another
machine.

``spec_hash`` is a content hash of the canonical JSON form (sorted keys,
no whitespace), so it is stable across processes and Python versions --
it is the provenance stamp connecting a result artifact back to the exact
scenario that produced it.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.core.config import (
    DetectionConfig,
    ExperimentConfig,
    MeasurementConfig,
    SynthesisConfig,
    WatermarkConfig,
)

#: Scenario kinds the pipeline knows how to resolve into stages.  Each kind
#: names one experiment family; kind-specific knobs go into ``params``.
SCENARIO_KINDS: Tuple[str, ...] = (
    "fig2",
    "fig3",
    "fig5_panel",
    "fig5",
    "fig6_chip",
    "fig6",
    "table1",
    "table2",
    "robustness",
    "detection_probability",
    "masking_noise",
    "masking_starvation",
)

#: Schema version of the spec's JSON form.  Part of the result store's
#: code-version salt (:func:`repro.pipeline.store.code_version_salt`): a
#: schema bump invalidates memoized results whose spec serialization
#: changed meaning.
SPEC_SCHEMA_VERSION = 1

_SPEC_SCHEMA_VERSION = SPEC_SCHEMA_VERSION


#: Marker distinguishing a frozen mapping from a frozen list in ``params``.
_MAPPING_TAG = "__mapping__"


def _freeze_params(params: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """Normalise kind-specific params into a hashable, ordered tuple."""

    def freeze_value(value: Any) -> Any:
        if isinstance(value, Mapping):
            return (
                _MAPPING_TAG,
                tuple(sorted((str(k), freeze_value(v)) for k, v in value.items())),
            )
        if isinstance(value, (list, tuple)):
            return tuple(freeze_value(item) for item in value)
        if value is None or isinstance(value, (bool, int, float, str)):
            return value
        raise TypeError(
            f"scenario params must be JSON-able scalars/lists/mappings, got {type(value).__name__}"
        )

    return tuple(sorted((str(key), freeze_value(value)) for key, value in params.items()))


def _thaw(value: Any) -> Any:
    """Turn frozen param values back into JSON-friendly dicts/lists."""
    if isinstance(value, tuple):
        if len(value) == 2 and value[0] == _MAPPING_TAG and isinstance(value[1], tuple):
            return {key: _thaw(item) for key, item in value[1]}
        return [_thaw(item) for item in value]
    return value


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative experiment cell.

    ``kind`` selects the stage graph; ``chip`` is a canonical chip-registry
    name (or ``None`` for chip-less analyses such as Table II); ``params``
    carries kind-specific knobs as a frozen key/value tuple (pass a plain
    dict, it is normalised in ``__post_init__``).
    """

    kind: str
    name: str = ""
    chip: Optional[str] = None
    workload: str = "dhrystone"
    watermark: WatermarkConfig = field(default_factory=WatermarkConfig)
    measurement: MeasurementConfig = field(default_factory=MeasurementConfig)
    detection: DetectionConfig = field(default_factory=DetectionConfig)
    synthesis: SynthesisConfig = field(default_factory=SynthesisConfig)
    watermark_active: bool = True
    seed: int = 0
    phase_offset: Optional[int] = None
    repetitions: int = 1
    m0_window_cycles: int = 16_384
    params: Any = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in SCENARIO_KINDS:
            raise ValueError(
                f"unknown scenario kind {self.kind!r}; expected one of {sorted(SCENARIO_KINDS)}"
            )
        from repro.soc.registry import available_workloads

        if self.workload not in available_workloads():
            raise ValueError(
                f"unknown workload {self.workload!r}; "
                f"expected one of {sorted(available_workloads())}"
            )
        if self.chip is not None:
            # Canonicalise eagerly so aliases ("chipI") never leak into the
            # spec hash and two spellings of one chip share cached work.
            from repro.soc.registry import canonical_chip_name

            object.__setattr__(self, "chip", canonical_chip_name(self.chip))
        if self.repetitions <= 0:
            raise ValueError("repetitions must be positive")
        if self.m0_window_cycles <= 0:
            raise ValueError("m0_window_cycles must be positive")
        if not isinstance(self.params, tuple):
            object.__setattr__(self, "params", _freeze_params(dict(self.params)))

    # -- convenience accessors -------------------------------------------------

    @property
    def experiment_config(self) -> ExperimentConfig:
        """The legacy-driver configuration bundle equivalent to this spec."""
        return ExperimentConfig(
            watermark=self.watermark,
            measurement=self.measurement,
            detection=self.detection,
        )

    def param(self, key: str, default: Any = None) -> Any:
        """Look up one kind-specific parameter."""
        for name, value in self.params:
            if name == key:
                return _thaw(value)
        return default

    def params_dict(self) -> Dict[str, Any]:
        """Kind-specific params as a plain dict."""
        return {name: _thaw(value) for name, value in self.params}

    def with_overrides(self, **changes: Any) -> "ScenarioSpec":
        """A copy with the given fields replaced (specs are immutable)."""
        return replace(self, **changes)

    # -- grid axis helpers -----------------------------------------------------
    #
    # One method per sweep axis the SpecGrid builders vary, so a cartesian
    # grid is a chain of copies instead of hand-built dataclasses.replace
    # calls reaching into nested configs.

    def with_name(self, name: str) -> "ScenarioSpec":
        """A copy renamed (grid cells get unique, axis-qualified names)."""
        return replace(self, name=name)

    def with_seed(self, seed: int) -> "ScenarioSpec":
        """A copy at another seed."""
        return replace(self, seed=seed)

    def with_chip(self, chip: str) -> "ScenarioSpec":
        """A copy targeting another chip (aliases canonicalise as usual)."""
        return replace(self, chip=chip)

    def with_num_cycles(self, num_cycles: int) -> "ScenarioSpec":
        """A copy at another acquisition length (cycles per correlation)."""
        if num_cycles <= 0:
            raise ValueError("num_cycles must be positive")
        return replace(
            self, measurement=replace(self.measurement, num_cycles=num_cycles)
        )

    def with_noise_scale(self, scale: float) -> "ScenarioSpec":
        """A copy with every measurement-noise knob scaled by ``scale``.

        Scales the probe noise and both transient-noise terms together, so
        ``scale=0`` is a noiseless bench and ``scale=2`` doubles every
        noise contribution -- the masking/robustness sweep axis.
        """
        if scale < 0:
            raise ValueError("noise scale must be non-negative")
        measurement = self.measurement
        return replace(
            self,
            measurement=replace(
                measurement,
                probe_noise_rms_v=measurement.probe_noise_rms_v * scale,
                transient_noise_floor_w=measurement.transient_noise_floor_w * scale,
                transient_noise_fraction=measurement.transient_noise_fraction * scale,
            ),
        )

    # -- serialization ---------------------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        """Nested JSON-able representation (round-trips via :meth:`from_json_dict`)."""
        return {
            "schema_version": _SPEC_SCHEMA_VERSION,
            "kind": self.kind,
            "name": self.name,
            "chip": self.chip,
            "workload": self.workload,
            "watermark": self.watermark.to_dict(),
            "measurement": self.measurement.to_dict(),
            "detection": self.detection.to_dict(),
            "synthesis": self.synthesis.to_dict(),
            "watermark_active": self.watermark_active,
            "seed": self.seed,
            "phase_offset": self.phase_offset,
            "repetitions": self.repetitions,
            "m0_window_cycles": self.m0_window_cycles,
            "params": self.params_dict(),
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_json_dict` output."""
        payload = dict(payload)
        version = payload.pop("schema_version", _SPEC_SCHEMA_VERSION)
        if version != _SPEC_SCHEMA_VERSION:
            raise ValueError(f"unsupported spec schema version {version!r}")
        known = {
            "kind", "name", "chip", "workload", "watermark", "measurement",
            "detection", "synthesis", "watermark_active", "seed",
            "phase_offset", "repetitions", "m0_window_cycles", "params",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown ScenarioSpec fields: {sorted(unknown)}")
        if "kind" not in payload:
            raise ValueError(
                "spec is missing the required 'kind' field; "
                f"expected one of {sorted(SCENARIO_KINDS)}"
            )
        return cls(
            kind=payload["kind"],
            name=payload.get("name", ""),
            chip=payload.get("chip"),
            workload=payload.get("workload", "dhrystone"),
            watermark=WatermarkConfig.from_dict(payload.get("watermark", {})),
            measurement=MeasurementConfig.from_dict(payload.get("measurement", {})),
            detection=DetectionConfig.from_dict(payload.get("detection", {})),
            synthesis=SynthesisConfig.from_dict(payload.get("synthesis", {})),
            watermark_active=payload.get("watermark_active", True),
            seed=payload.get("seed", 0),
            phase_offset=payload.get("phase_offset"),
            repetitions=payload.get("repetitions", 1),
            m0_window_cycles=payload.get("m0_window_cycles", 16_384),
            params=payload.get("params", {}),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        """JSON text form."""
        return json.dumps(self.to_json_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        return cls.from_json_dict(json.loads(text))

    def save(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write the spec to a JSON file."""
        path = pathlib.Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "ScenarioSpec":
        """Read a spec from a JSON file."""
        return cls.from_json(pathlib.Path(path).read_text())

    # -- identity --------------------------------------------------------------

    def spec_hash(self) -> str:
        """Content hash of the canonical JSON form (process-stable)."""
        canonical = json.dumps(
            self.to_json_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def __hash__(self) -> int:
        return hash(self.spec_hash())
