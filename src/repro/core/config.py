"""Configuration dataclasses shared by experiments, benches and examples."""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, Optional

#: Acquisition length used by ``--quick`` runs (CLI and registry presets).
QUICK_CYCLES = 60_000
#: Repetition count used by ``--quick`` runs of the Fig. 6 campaign.
QUICK_REPETITIONS = 20
#: Reduced transient-noise knobs of the quick preset: shorter acquisitions
#: need a cleaner bench to keep the correlation peak resolvable.
QUICK_TRANSIENT_NOISE_FLOOR_W = 0.020
QUICK_TRANSIENT_NOISE_FRACTION = 0.4


def _config_to_dict(config: Any) -> Dict[str, Any]:
    """Serialize a configuration dataclass into a JSON-able dict."""
    payload = asdict(config)
    for key, value in payload.items():
        if isinstance(value, enum.Enum):
            payload[key] = value.value
    return payload


def _config_from_dict(cls: type, payload: Dict[str, Any]) -> Any:
    """Rebuild a configuration dataclass from :func:`_config_to_dict` output."""
    known = {f.name for f in fields(cls)}
    unknown = set(payload) - known
    if unknown:
        raise ValueError(f"unknown {cls.__name__} fields: {sorted(unknown)}")
    kwargs = dict(payload)
    if "architecture" in kwargs and not isinstance(kwargs["architecture"], ArchitectureKind):
        kwargs["architecture"] = ArchitectureKind(kwargs["architecture"])
    return cls(**kwargs)


class ArchitectureKind(enum.Enum):
    """Which watermark architecture is instantiated."""

    BASELINE_LOAD_CIRCUIT = "baseline"
    CLOCK_MODULATION = "clock_modulation"


@dataclass(frozen=True)
class WatermarkConfig:
    """Parameters of the watermark circuit.

    Defaults reproduce the paper's test-chip configuration: a 12-bit
    maximum-length LFSR modulating a 1,024-register clock-gated bank
    (32 words x 32 bits), with all registers pre-initialised to zero so no
    data switching occurs.
    """

    architecture: ArchitectureKind = ArchitectureKind.CLOCK_MODULATION
    lfsr_width: int = 12
    lfsr_seed: int = 0x5A5 & 0xFFF
    num_words: int = 32
    word_width: int = 32
    switching_registers: int = 0
    load_registers: int = 576
    use_test_chip_wgc: bool = True

    def __post_init__(self) -> None:
        if self.lfsr_width < 2:
            raise ValueError("LFSR width must be at least 2")
        if self.lfsr_seed == 0:
            raise ValueError("LFSR seed must be non-zero")
        if self.num_words <= 0 or self.word_width <= 0:
            raise ValueError("bank dimensions must be positive")
        if self.switching_registers < 0:
            raise ValueError("switching register count must be non-negative")
        if self.switching_registers > self.num_words * self.word_width:
            raise ValueError("more switching registers than registers in the bank")
        if self.load_registers <= 0:
            raise ValueError("load circuit register count must be positive")

    @property
    def sequence_period(self) -> int:
        """Period of the watermark sequence."""
        return (1 << self.lfsr_width) - 1

    @property
    def bank_registers(self) -> int:
        """Total register count of the clock-modulated bank."""
        return self.num_words * self.word_width

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able representation (the architecture enum becomes its value)."""
        return _config_to_dict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "WatermarkConfig":
        """Rebuild from :meth:`to_dict` output."""
        return _config_from_dict(cls, payload)


@dataclass(frozen=True)
class MeasurementConfig:
    """Parameters of the measurement chain (Section IV of the paper).

    The bench is an Agilent MSO6032A oscilloscope with a 1130A differential
    probe across a 270 mOhm shunt, sampling at 500 MS/s while the chips run
    at 10 MHz; 50 samples are averaged into each per-cycle power value and
    300,000 cycles form one correlation vector.

    Two noise knobs dominate the resulting correlation amplitude:

    ``probe_noise_rms_v``
        Per-sample voltage noise of the probe/front-end.
    ``transient_noise_floor_w`` / ``transient_noise_fraction``
        Residual per-cycle noise equivalent (in watts) of the unsettled
        switching transients that the 50-sample average does not remove.
        The effective per-cycle sigma is
        ``floor + fraction * mean_chip_power`` -- the fraction term models
        the oscilloscope's vertical range being scaled up for a chip that
        draws more current.  These defaults are calibrated so that the
        silicon-measured correlation peaks of Fig. 5 (about 0.015-0.02 on
        chip I and about 0.01-0.015 on chip II) are reproduced; see
        EXPERIMENTS.md.
    """

    clock_frequency_hz: float = 10e6
    sampling_frequency_hz: float = 500e6
    num_cycles: int = 300_000
    supply_voltage_v: float = 1.2
    shunt_resistance_ohm: float = 0.270
    probe_noise_rms_v: float = 2.0e-3
    probe_bandwidth_hz: float = 120e6
    adc_bits: int = 8
    transient_noise_floor_w: float = 0.040
    transient_noise_fraction: float = 0.75
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.clock_frequency_hz <= 0 or self.sampling_frequency_hz <= 0:
            raise ValueError("frequencies must be positive")
        if self.sampling_frequency_hz < self.clock_frequency_hz:
            raise ValueError("the oscilloscope must sample faster than the system clock")
        if self.num_cycles <= 0:
            raise ValueError("number of cycles must be positive")
        if self.supply_voltage_v <= 0:
            raise ValueError("supply voltage must be positive")
        if self.shunt_resistance_ohm <= 0:
            raise ValueError("shunt resistance must be positive")
        if self.probe_noise_rms_v < 0 or self.transient_noise_floor_w < 0:
            raise ValueError("noise levels must be non-negative")
        if self.transient_noise_fraction < 0:
            raise ValueError("the range-proportional noise fraction must be non-negative")
        if self.adc_bits < 4:
            raise ValueError("ADC resolution below 4 bits is not supported")

    @property
    def samples_per_cycle(self) -> int:
        """Oscilloscope samples averaged into one per-cycle power value."""
        return int(round(self.sampling_frequency_hz / self.clock_frequency_hz))

    @classmethod
    def quick(cls, num_cycles: Optional[int] = None) -> "MeasurementConfig":
        """The ``--quick`` preset: short acquisition, reduced transient noise.

        Shared by the CLI and the scenario registry so a quick run means the
        same bench everywhere.
        """
        return cls(
            num_cycles=QUICK_CYCLES if num_cycles is None else num_cycles,
            transient_noise_floor_w=QUICK_TRANSIENT_NOISE_FLOOR_W,
            transient_noise_fraction=QUICK_TRANSIENT_NOISE_FRACTION,
        )

    @classmethod
    def full(cls, num_cycles: Optional[int] = None) -> "MeasurementConfig":
        """The paper-scale preset, optionally with an overridden length."""
        if num_cycles is None:
            return cls()
        return cls(num_cycles=num_cycles)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able representation."""
        return _config_to_dict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MeasurementConfig":
        """Rebuild from :meth:`to_dict` output."""
        return _config_from_dict(cls, payload)


@dataclass(frozen=True)
class DetectionConfig:
    """Parameters of the CPA detector.

    ``detection_threshold`` is the minimum z-score (peak correlation in
    units of the off-peak standard deviation) for significance;
    ``uniqueness_margin`` enforces the paper's "single resolvable peak"
    requirement: the second-largest |correlation| must stay below this
    fraction of the peak.
    """

    detection_threshold: float = 4.0
    uniqueness_margin: float = 0.95
    use_fft: bool = True

    def __post_init__(self) -> None:
        if self.detection_threshold <= 0:
            raise ValueError("detection threshold must be positive")
        if not 0.0 < self.uniqueness_margin <= 1.0:
            raise ValueError("uniqueness margin must be in (0, 1]")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able representation."""
        return _config_to_dict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "DetectionConfig":
        """Rebuild from :meth:`to_dict` output."""
        return _config_from_dict(cls, payload)


@dataclass(frozen=True)
class SynthesisConfig:
    """Knobs of the vectorized trial-synthesis engine.

    ``compat_draw_order=True`` keeps the per-row random stream bit-identical
    to the original per-trial loops (golden curves); ``False`` selects the
    fast chunked Gaussian path.  ``gaussian_dtype`` is stored as a dtype
    *name* so specs stay JSON-serializable.  ``max_trials_per_chunk`` bounds
    how many trial rows a sweep materialises at once.
    """

    compat_draw_order: bool = True
    gaussian_dtype: str = "float64"
    max_trials_per_chunk: Optional[int] = None

    def __post_init__(self) -> None:
        if self.gaussian_dtype not in ("float64", "float32"):
            raise ValueError("gaussian_dtype must be 'float64' or 'float32'")
        if self.max_trials_per_chunk is not None and self.max_trials_per_chunk <= 0:
            raise ValueError("max_trials_per_chunk must be positive")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able representation."""
        return _config_to_dict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SynthesisConfig":
        """Rebuild from :meth:`to_dict` output."""
        return _config_from_dict(cls, payload)


@dataclass(frozen=True)
class ExperimentConfig:
    """Bundle of all configuration needed by an experiment driver."""

    watermark: WatermarkConfig = field(default_factory=WatermarkConfig)
    measurement: MeasurementConfig = field(default_factory=MeasurementConfig)
    detection: DetectionConfig = field(default_factory=DetectionConfig)

    @classmethod
    def paper_defaults(cls) -> "ExperimentConfig":
        """The configuration matching the paper's silicon experiments."""
        return cls()

    @classmethod
    def fast(cls, num_cycles: int = 40_000) -> "ExperimentConfig":
        """A reduced-length configuration for quick tests and CI runs."""
        return cls(measurement=MeasurementConfig(num_cycles=num_cycles))

    @classmethod
    def quick(cls, num_cycles: Optional[int] = None) -> "ExperimentConfig":
        """The CLI's ``--quick`` bundle (see :meth:`MeasurementConfig.quick`)."""
        return cls(measurement=MeasurementConfig.quick(num_cycles))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able nested representation."""
        return {
            "watermark": self.watermark.to_dict(),
            "measurement": self.measurement.to_dict(),
            "detection": self.detection.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExperimentConfig":
        """Rebuild from :meth:`to_dict` output."""
        unknown = set(payload) - {"watermark", "measurement", "detection"}
        if unknown:
            raise ValueError(f"unknown ExperimentConfig fields: {sorted(unknown)}")
        return cls(
            watermark=WatermarkConfig.from_dict(payload.get("watermark", {})),
            measurement=MeasurementConfig.from_dict(payload.get("measurement", {})),
            detection=DetectionConfig.from_dict(payload.get("detection", {})),
        )
